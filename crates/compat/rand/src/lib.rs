//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no registry access, so the
//! workspace routes `rand` to this shim (see `crates/compat/README.md`).
//!
//! The core generator is splitmix64 — deterministic under
//! [`SeedableRng::seed_from_u64`], which is all the tests and search
//! heuristics need.

use std::ops::{Range, RangeInclusive};

/// The raw entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "just give me a uniform one" distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// 53-bit mantissa uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic splitmix64 generator, standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers, mirroring `rand::seq`.

    use crate::RngCore;

    fn index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (rng.next_u64() % n as u64) as usize
    }

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(1..32);
            assert!((1..32).contains(&x));
            let y = rng.gen_range(1..=2u64);
            assert!((1..=2).contains(&y));
            let z = rng.gen_range(0.05..0.95);
            assert!((0.05..0.95).contains(&z));
            let w: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
