//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses (see `crates/compat/README.md`). Property tests sample
//! deterministically — the RNG is seeded from the test's name — and run a
//! configurable number of cases. There is no shrinking: a failing case
//! panics with the ordinary assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic case generator behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// RNG handed to strategies; seeded from the test name so every run of a
    /// given test replays the same cases.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Subset of proptest's run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for producing random values.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform drawn values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(rng)
            }
        }
    )*};
}

impl_arbitrary_via_standard!(bool, u32, u64, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (used for `name: Type` proptest params).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Scale a 53-bit draw onto [lo, hi], hitting both endpoints.
        let max = ((1u64 << 53) - 1) as f64;
        let unit = (rand::RngCore::next_u64(rng) >> 11) as f64 / max;
        lo + unit * (hi - lo)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A `Vec` of exactly `len` draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, one `use` away.

    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirror of proptest's `prelude::prop` namespace.
        pub use crate::collection;
    }
}

/// Assert inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Skip the current case when its precondition fails. Expands to `continue`
/// on the case loop, so it must appear directly in the property body (not in
/// a nested loop) — true for every use in this workspace.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn prop(x in 0u32..10, flag: bool) { prop_assert!(x < 10 || flag); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind! { __rng, $($args)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat_param in $strategy:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng $(, $($rest)*)? }
    };
    ($rng:ident, $var:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $var: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng $(, $($rest)*)? }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed binding forms all work.
        #[test]
        fn bindings(x in 1u32..10, v in prop::collection::vec(any::<bool>(), 4), flag: bool) {
            prop_assert!((1..10).contains(&x));
            prop_assert_eq!(v.len(), 4);
            let _ = flag;
        }

        #[test]
        fn mapped(total in (0u64..100).prop_map(|n| n * 2)) {
            prop_assert!(total % 2 == 0 && total < 200);
        }
    }
}
