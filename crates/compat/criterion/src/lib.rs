//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses (see `crates/compat/README.md`). Benchmarks run a short
//! timed loop and print mean wall-clock time per iteration — no warm-up
//! analysis, outlier detection, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (a no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Handed to benchmark closures; times the routine.
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, storing the mean over the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u32;
        // Run the full sample budget, but stop early after ~200ms so slow
        // benchmarks don't stall test suites.
        while iters < self.samples as u32 {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }
        self.mean = Some(start.elapsed() / iters.max(1));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{label:<40} {mean:>12.2?}/iter"),
        None => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
