//! The snapshot container format: versioned, checksummed, sectioned.
//!
//! This crate is the pure format layer of the snapshot persistence tier —
//! it knows nothing about vtrees, SDDs or knowledge bases. Domain crates
//! (`sdd`, `kb`) define *what* goes into each section; this crate defines
//! *how* sections travel: framing, integrity, and the typed failure menu
//! ([`SnapError`]) every corrupted input must resolve to. The build is
//! offline, so the format is hand-rolled — no serde, no external codecs.
//!
//! # Container layout
//!
//! All integers are little-endian. A container is:
//!
//! ```text
//! magic      8 bytes   b"PODSSNAP"
//! version    u32       FORMAT_VERSION (readers reject anything else)
//! kind       u32       what the sections describe (KIND_SDD, KIND_KB)
//! count      u32       number of sections that follow
//! section*   count times:
//!   tag      u32       section identity (domain-defined)
//!   len      u64       payload bytes
//!   checksum u64       checksum(payload) — see below
//!   payload  len bytes
//! ```
//!
//! The checksum is a 64-bit word-level rolling hash (the workspace's
//! FxHash fold over the payload's little-endian 8-byte words, tail
//! zero-padded, with the length folded in last so zero-extension is not
//! free). It detects accidental corruption — truncation, bit flips, torn
//! writes — which is the threat model of an on-disk cache of something the
//! loader *also* fully validates; it is not a cryptographic MAC.
//!
//! # Reading discipline
//!
//! [`Reader::new`] reads every section **once** into its final contiguous
//! byte buffer, verifying length and checksum as it goes; domain loaders
//! then reinterpret those buffers with the bulk converters
//! ([`bytes_to_u32s`] & friends — chunked word loads, no per-record parse
//! state) and bounds-check every id before trusting it. A section whose
//! declared length lies about the file runs out of input and fails with
//! [`SnapError::Truncated`] — lengths are consumed incrementally, so a
//! corrupt length cannot force a giant allocation.

use std::fmt;
use std::io::{Read, Write};

/// The 8-byte container magic.
pub const MAGIC: [u8; 8] = *b"PODSSNAP";

/// The container format version this crate writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Container kind: a standalone frozen SDD slab.
pub const KIND_SDD: u32 = 1;

/// Container kind: a full frozen knowledge base (SDD sections + KB
/// sections).
pub const KIND_KB: u32 = 2;

/// Everything that can go wrong while writing, framing, or decoding a
/// snapshot. Loaders must surface **every** malformed input as one of
/// these — never a panic, never an out-of-bounds index.
#[derive(Debug)]
pub enum SnapError {
    /// An underlying I/O failure (includes clean EOF mid-structure).
    Io(std::io::Error),
    /// The first 8 bytes are not [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// A snapshot, but written by a different format version.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The container holds a different artifact kind than the loader
    /// expects (e.g. a bare SDD handed to the KB loader).
    WrongKind {
        /// The kind the file declares.
        found: u32,
        /// The kind the loader was asked for.
        expected: u32,
    },
    /// The input ended before the declared structure did.
    Truncated {
        /// What was being read when the input ran out.
        what: &'static str,
    },
    /// A section's payload does not match its declared checksum.
    Checksum {
        /// The failing section's tag.
        tag: u32,
    },
    /// A section the loader requires is absent.
    MissingSection {
        /// The absent tag.
        tag: u32,
    },
    /// The same tag appears twice (sections are single-occurrence).
    DuplicateSection {
        /// The repeated tag.
        tag: u32,
    },
    /// Framing and checksums are fine, but the decoded values violate a
    /// structural invariant (an id out of bounds, a range inverted, a
    /// weight non-finite, …).
    Invalid {
        /// Which invariant failed, in loader terms.
        what: &'static str,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot i/o: {e}"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "snapshot format version {found} (supported: {FORMAT_VERSION})"
                )
            }
            SnapError::WrongKind { found, expected } => {
                write!(
                    f,
                    "snapshot kind {found} where kind {expected} was expected"
                )
            }
            SnapError::Truncated { what } => write!(f, "snapshot truncated in {what}"),
            SnapError::Checksum { tag } => write!(f, "checksum mismatch in section {tag}"),
            SnapError::MissingSection { tag } => write!(f, "missing section {tag}"),
            SnapError::DuplicateSection { tag } => write!(f, "duplicate section {tag}"),
            SnapError::Invalid { what } => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// One FxHash fold step (the same constant as the workspace's hot hash
/// tables — fast, and one multiply per word).
#[inline]
fn fold(h: u64, word: u64) -> u64 {
    const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    (h.rotate_left(5) ^ word).wrapping_mul(SEED64)
}

/// The section checksum: fold the payload's little-endian 8-byte words
/// (tail zero-padded), then the payload length, so appended or truncated
/// zeros change the sum.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        h = fold(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = fold(h, u64::from_le_bytes(tail));
    }
    fold(h, payload.len() as u64)
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Streams one container: header first, then exactly the promised number
/// of sections. [`Writer::finish`] asserts the count was honored, so a
/// writer bug cannot silently emit a short container.
pub struct Writer<W: Write> {
    out: W,
    promised: u32,
    written: u32,
}

impl<W: Write> Writer<W> {
    /// Write the container header and return the section writer.
    pub fn new(mut out: W, kind: u32, sections: u32) -> Result<Self, SnapError> {
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&kind.to_le_bytes())?;
        out.write_all(&sections.to_le_bytes())?;
        Ok(Writer {
            out,
            promised: sections,
            written: 0,
        })
    }

    /// Append one section: tag, length, checksum, payload.
    pub fn section(&mut self, tag: u32, payload: &[u8]) -> Result<(), SnapError> {
        assert!(self.written < self.promised, "more sections than promised");
        self.out.write_all(&tag.to_le_bytes())?;
        self.out.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.out.write_all(&checksum(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.written += 1;
        Ok(())
    }

    /// Flush and hand the sink back. Panics if fewer sections were written
    /// than the header promised (a writer-side bug, not an input error).
    pub fn finish(mut self) -> Result<W, SnapError> {
        assert_eq!(
            self.written, self.promised,
            "container promised {} sections, wrote {}",
            self.promised, self.written
        );
        self.out.flush()?;
        Ok(self.out)
    }
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Read exactly `n` bytes, mapping clean EOF to [`SnapError::Truncated`].
fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), SnapError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapError::Truncated { what }
        } else {
            SnapError::Io(e)
        }
    })
}

fn read_u32(r: &mut impl Read, what: &'static str) -> Result<u32, SnapError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read, what: &'static str) -> Result<u64, SnapError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

/// A fully framed container: every section read once into its final
/// contiguous byte buffer, length- and checksum-verified. Domain loaders
/// [`take`](Reader::take) the sections they need and bulk-convert them.
#[derive(Debug)]
pub struct Reader {
    sections: Vec<(u32, Vec<u8>)>,
}

/// Incremental read granularity: a lying section length fails with
/// [`SnapError::Truncated`] after at most one spill of this size, instead
/// of forcing a giant up-front allocation.
const READ_CHUNK: usize = 8 << 20;

impl Reader {
    /// Read and verify a whole container of the given kind.
    pub fn new(r: &mut impl Read, expected_kind: u32) -> Result<Reader, SnapError> {
        let mut magic = [0u8; 8];
        read_exact(r, &mut magic, "magic")?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = read_u32(r, "version")?;
        if version != FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion { found: version });
        }
        let kind = read_u32(r, "kind")?;
        if kind != expected_kind {
            return Err(SnapError::WrongKind {
                found: kind,
                expected: expected_kind,
            });
        }
        let count = read_u32(r, "section count")?;
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();
        for _ in 0..count {
            let tag = read_u32(r, "section tag")?;
            let len = read_u64(r, "section length")? as usize;
            let sum = read_u64(r, "section checksum")?;
            // Incremental fill: allocation only grows as bytes actually
            // arrive, so a corrupt length cannot OOM before Truncated.
            let mut payload: Vec<u8> = Vec::with_capacity(len.min(READ_CHUNK));
            while payload.len() < len {
                let step = (len - payload.len()).min(READ_CHUNK);
                let start = payload.len();
                payload.resize(start + step, 0);
                read_exact(r, &mut payload[start..], "section payload")?;
            }
            if checksum(&payload) != sum {
                return Err(SnapError::Checksum { tag });
            }
            if sections.iter().any(|&(t, _)| t == tag) {
                return Err(SnapError::DuplicateSection { tag });
            }
            sections.push((tag, payload));
        }
        Ok(Reader { sections })
    }

    /// Remove and return a required section's payload.
    pub fn take(&mut self, tag: u32) -> Result<Vec<u8>, SnapError> {
        match self.sections.iter().position(|&(t, _)| t == tag) {
            Some(i) => Ok(self.sections.swap_remove(i).1),
            None => Err(SnapError::MissingSection { tag }),
        }
    }
}

// ---------------------------------------------------------------------
// Bulk byte ↔ word conversion
// ---------------------------------------------------------------------

/// Grow a byte buffer by one `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Grow a byte buffer by one `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reinterpret a payload as `u32`s. One pass of 4-byte word loads — on a
/// little-endian target the loop compiles to a memcpy-like sweep.
pub fn bytes_to_u32s(bytes: &[u8], what: &'static str) -> Result<Vec<u32>, SnapError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(SnapError::Invalid { what });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

/// Reinterpret a payload as `u64`s.
pub fn bytes_to_u64s(bytes: &[u8], what: &'static str) -> Result<Vec<u64>, SnapError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SnapError::Invalid { what });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

/// Reinterpret a payload as `(u32, u32)` pairs.
pub fn bytes_to_u32_pairs(bytes: &[u8], what: &'static str) -> Result<Vec<(u32, u32)>, SnapError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SnapError::Invalid { what });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().expect("4-byte half")),
                u32::from_le_bytes(c[4..8].try_into().expect("4-byte half")),
            )
        })
        .collect())
}

/// Reinterpret a payload as `(u64, u64)` pairs (e.g. `f64::to_bits`
/// weight pairs).
pub fn bytes_to_u64_pairs(bytes: &[u8], what: &'static str) -> Result<Vec<(u64, u64)>, SnapError> {
    if !bytes.len().is_multiple_of(16) {
        return Err(SnapError::Invalid { what });
    }
    Ok(bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().expect("8-byte half")),
                u64::from_le_bytes(c[8..16].try_into().expect("8-byte half")),
            )
        })
        .collect())
}

/// A small sequential decoder for header-like sections that mix scalar
/// fields with bulk tails. Every accessor is bounds-checked; running out
/// of payload is [`SnapError::Truncated`].
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Dec<'a> {
    /// Decode `bytes`, reporting truncation as being inside `what`.
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Dec {
            bytes,
            pos: 0,
            what,
        }
    }

    /// Next `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or(SnapError::Truncated { what: self.what })?;
        let v = u32::from_le_bytes(self.bytes[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// Next `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or(SnapError::Truncated { what: self.what })?;
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// The unread remainder of the payload (the bulk tail).
    pub fn rest(self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }

    /// Assert the payload is fully consumed (trailing garbage is
    /// [`SnapError::Invalid`]).
    pub fn done(self) -> Result<(), SnapError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapError::Invalid { what: self.what })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_container() -> Vec<u8> {
        let mut w = Writer::new(Vec::new(), KIND_SDD, 2).unwrap();
        w.section(7, &[1, 2, 3, 4, 5]).unwrap();
        w.section(9, b"payload-bytes").unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let bytes = demo_container();
        let mut r = Reader::new(&mut bytes.as_slice(), KIND_SDD).unwrap();
        assert_eq!(r.take(9).unwrap(), b"payload-bytes");
        assert_eq!(r.take(7).unwrap(), &[1, 2, 3, 4, 5]);
        assert!(matches!(
            r.take(7),
            Err(SnapError::MissingSection { tag: 7 })
        ));
    }

    #[test]
    fn empty_sections_roundtrip() {
        let mut w = Writer::new(Vec::new(), KIND_KB, 1).unwrap();
        w.section(1, &[]).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = Reader::new(&mut bytes.as_slice(), KIND_KB).unwrap();
        assert_eq!(r.take(1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_truncation_prefix_is_a_typed_error() {
        let bytes = demo_container();
        for cut in 0..bytes.len() {
            let err = Reader::new(&mut &bytes[..cut], KIND_SDD).unwrap_err();
            assert!(
                matches!(err, SnapError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_a_typed_error_or_detected() {
        let bytes = demo_container();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match Reader::new(&mut bad.as_slice(), KIND_SDD) {
                // Flips in a tag leave framing valid — the loader's
                // MissingSection/validation layer catches those; every
                // other flip must be detected here.
                Ok(mut r) => {
                    assert!(
                        r.take(7).is_err() || r.take(9).is_err(),
                        "flip at {i} went unnoticed"
                    );
                }
                Err(
                    SnapError::BadMagic
                    | SnapError::UnsupportedVersion { .. }
                    | SnapError::WrongKind { .. }
                    | SnapError::Checksum { .. }
                    | SnapError::Truncated { .. }
                    | SnapError::DuplicateSection { .. },
                ) => {}
                Err(e) => panic!("flip at {i}: unexpected error class {e}"),
            }
        }
    }

    #[test]
    fn wrong_kind_and_version_are_rejected() {
        let bytes = demo_container();
        assert!(matches!(
            Reader::new(&mut bytes.as_slice(), KIND_KB),
            Err(SnapError::WrongKind {
                found: KIND_SDD,
                expected: KIND_KB
            })
        ));
        let mut v2 = bytes.clone();
        v2[8] = 99; // version field
        assert!(matches!(
            Reader::new(&mut v2.as_slice(), KIND_SDD),
            Err(SnapError::UnsupportedVersion { found: 99 })
        ));
        let mut garbage = bytes;
        garbage[0] = b'X';
        assert!(matches!(
            Reader::new(&mut garbage.as_slice(), KIND_SDD),
            Err(SnapError::BadMagic)
        ));
    }

    #[test]
    fn oversized_length_truncates_not_allocates() {
        let mut w = Writer::new(Vec::new(), KIND_SDD, 1).unwrap();
        w.section(1, &[0xAB; 32]).unwrap();
        let mut bytes = w.finish().unwrap();
        // Rewrite the section length to an absurd value (offset: 20-byte
        // header + 4-byte tag).
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = Reader::new(&mut bytes.as_slice(), KIND_SDD).unwrap_err();
        assert!(matches!(err, SnapError::Truncated { .. }), "{err}");
    }

    #[test]
    fn checksum_depends_on_length_and_content() {
        assert_ne!(checksum(&[]), checksum(&[0]));
        assert_ne!(checksum(&[0; 8]), checksum(&[0; 16]));
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[1, 2, 4]));
        assert_eq!(checksum(b"stable"), checksum(b"stable"));
    }

    #[test]
    fn word_converters_reject_ragged_payloads() {
        assert!(bytes_to_u32s(&[1, 2, 3], "x").is_err());
        assert!(bytes_to_u64s(&[1; 12], "x").is_err());
        assert!(bytes_to_u32_pairs(&[1; 4], "x").is_err());
        assert!(bytes_to_u64_pairs(&[1; 8], "x").is_err());
        assert_eq!(bytes_to_u32s(&2u32.to_le_bytes(), "x").unwrap(), vec![2]);
        assert_eq!(
            bytes_to_u32_pairs(&[1, 0, 0, 0, 2, 0, 0, 0], "x").unwrap(),
            vec![(1, 2)]
        );
    }

    #[test]
    fn dec_reports_truncation_and_trailing_garbage() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 5);
        put_u64(&mut payload, 77);
        let mut d = Dec::new(&payload, "demo");
        assert_eq!(d.u32().unwrap(), 5);
        assert_eq!(d.u64().unwrap(), 77);
        assert!(d.u32().is_err());
        let d2 = Dec::new(&payload, "demo");
        assert!(matches!(d2.done(), Err(SnapError::Invalid { .. })));
    }
}
