//! Owned, recursive vtree shapes.
//!
//! [`VtreeShape`] is the free-form construction syntax for vtrees; the arena
//! representation [`crate::Vtree`] is derived from it. Shapes are convenient
//! for recursive builders (Lemma 1's tree-decomposition-to-vtree extraction,
//! the ISA vtree of Appendix A) and for enumeration.

use crate::VarId;

/// A binary leaf-labelled tree as a recursive value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VtreeShape {
    /// A leaf labelled by a variable.
    Leaf(VarId),
    /// An internal node.
    Node(Box<VtreeShape>, Box<VtreeShape>),
}

impl VtreeShape {
    /// Convenience constructor for an internal node.
    pub fn node(left: VtreeShape, right: VtreeShape) -> Self {
        VtreeShape::Node(Box::new(left), Box::new(right))
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        match self {
            VtreeShape::Leaf(_) => 1,
            VtreeShape::Node(l, r) => l.num_leaves() + r.num_leaves(),
        }
    }

    /// All leaf variables, left to right.
    pub fn leaf_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<VarId>) {
        match self {
            VtreeShape::Leaf(v) => out.push(*v),
            VtreeShape::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Combine a non-empty list of shapes into one (right fold).
    ///
    /// Used when flattening multi-child tree-decomposition nodes into binary
    /// vtree nodes.
    pub fn combine(mut shapes: Vec<VtreeShape>) -> Option<VtreeShape> {
        let mut acc = shapes.pop()?;
        while let Some(s) = shapes.pop() {
            acc = VtreeShape::node(s, acc);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_three() {
        let l = |i: u32| VtreeShape::Leaf(VarId(i));
        let s = VtreeShape::combine(vec![l(0), l(1), l(2)]).unwrap();
        assert_eq!(s.num_leaves(), 3);
        assert_eq!(s.leaf_vars(), vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn combine_empty_is_none() {
        assert!(VtreeShape::combine(vec![]).is_none());
    }
}
