//! Owned, recursive vtree shapes.
//!
//! [`VtreeShape`] is the free-form construction syntax for vtrees; the arena
//! representation [`crate::Vtree`] is derived from it. Shapes are convenient
//! for recursive builders (Lemma 1's tree-decomposition-to-vtree extraction,
//! the ISA vtree of Appendix A) and for enumeration.
//!
//! Shapes can be as deep as the variable count (chain inputs produce linear
//! shapes), so nothing here recurses on the shape: traversals use explicit
//! stacks, and `Drop` unlinks children iteratively — the derived drop glue
//! would overflow the stack on a 100k-leaf linear shape.

use crate::VarId;
use std::fmt;

/// A binary leaf-labelled tree as a recursive value.
///
/// `Clone`, `PartialEq`, `Debug` and `Drop` are hand-written with explicit
/// stacks — the derived implementations recurse to shape depth, which is
/// the variable count on linear shapes.
pub enum VtreeShape {
    /// A leaf labelled by a variable.
    Leaf(VarId),
    /// An internal node.
    Node(Box<VtreeShape>, Box<VtreeShape>),
}

impl Clone for VtreeShape {
    fn clone(&self) -> Self {
        enum Walk<'a> {
            Enter(&'a VtreeShape),
            Exit,
        }
        let mut built: Vec<VtreeShape> = Vec::new();
        let mut walk = vec![Walk::Enter(self)];
        while let Some(w) = walk.pop() {
            match w {
                Walk::Enter(VtreeShape::Leaf(v)) => built.push(VtreeShape::Leaf(*v)),
                Walk::Enter(VtreeShape::Node(l, r)) => {
                    walk.push(Walk::Exit);
                    walk.push(Walk::Enter(r));
                    walk.push(Walk::Enter(l));
                }
                Walk::Exit => {
                    let r = built.pop().expect("right clone built");
                    let l = built.pop().expect("left clone built");
                    built.push(VtreeShape::node(l, r));
                }
            }
        }
        built.pop().expect("clone built")
    }
}

impl PartialEq for VtreeShape {
    fn eq(&self, other: &Self) -> bool {
        let mut stack = vec![(self, other)];
        while let Some((a, b)) = stack.pop() {
            match (a, b) {
                (VtreeShape::Leaf(x), VtreeShape::Leaf(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (VtreeShape::Node(al, ar), VtreeShape::Node(bl, br)) => {
                    stack.push((al, bl));
                    stack.push((ar, br));
                }
                _ => return false,
            }
        }
        true
    }
}

impl Eq for VtreeShape {}

impl fmt::Debug for VtreeShape {
    /// Nested-parenthesis rendering, e.g. `(x0 (x1 x2))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        enum Tok<'a> {
            Shape(&'a VtreeShape),
            Text(&'static str),
        }
        let mut stack = vec![Tok::Shape(self)];
        while let Some(t) = stack.pop() {
            match t {
                Tok::Text(s) => f.write_str(s)?,
                Tok::Shape(VtreeShape::Leaf(v)) => write!(f, "{v:?}")?,
                Tok::Shape(VtreeShape::Node(l, r)) => {
                    f.write_str("(")?;
                    stack.push(Tok::Text(")"));
                    stack.push(Tok::Shape(r));
                    stack.push(Tok::Text(" "));
                    stack.push(Tok::Shape(l));
                }
            }
        }
        Ok(())
    }
}

impl VtreeShape {
    /// Convenience constructor for an internal node.
    pub fn node(left: VtreeShape, right: VtreeShape) -> Self {
        VtreeShape::Node(Box::new(left), Box::new(right))
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            match s {
                VtreeShape::Leaf(_) => count += 1,
                VtreeShape::Node(l, r) => {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
        count
    }

    /// All leaf variables, left to right.
    pub fn leaf_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(s) = stack.pop() {
            match s {
                VtreeShape::Leaf(v) => out.push(*v),
                VtreeShape::Node(l, r) => {
                    // Right first so the left subtree is visited first.
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
        out
    }

    /// Combine a non-empty list of shapes into one (right fold).
    ///
    /// Used when flattening multi-child tree-decomposition nodes into binary
    /// vtree nodes.
    pub fn combine(mut shapes: Vec<VtreeShape>) -> Option<VtreeShape> {
        let mut acc = shapes.pop()?;
        while let Some(s) = shapes.pop() {
            acc = VtreeShape::node(s, acc);
        }
        Some(acc)
    }
}

impl VtreeShape {
    /// Swap both children's contents out (replacing them with dummy
    /// leaves), leaving `self` shallow. `None` on leaves.
    fn take_children(&mut self) -> Option<(VtreeShape, VtreeShape)> {
        match self {
            VtreeShape::Leaf(_) => None,
            VtreeShape::Node(l, r) => Some((
                std::mem::replace(&mut **l, VtreeShape::Leaf(VarId(0))),
                std::mem::replace(&mut **r, VtreeShape::Leaf(VarId(0))),
            )),
        }
    }
}

impl Drop for VtreeShape {
    fn drop(&mut self) {
        // Detach subtrees onto an explicit stack so every node is dropped
        // shallow (its boxed children already reduced to dummy leaves).
        let mut stack: Vec<VtreeShape> = Vec::new();
        if let Some((l, r)) = self.take_children() {
            stack.push(l);
            stack.push(r);
        }
        while let Some(mut s) = stack.pop() {
            if let Some((l, r)) = s.take_children() {
                stack.push(l);
                stack.push(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_three() {
        let l = |i: u32| VtreeShape::Leaf(VarId(i));
        let s = VtreeShape::combine(vec![l(0), l(1), l(2)]).unwrap();
        assert_eq!(s.num_leaves(), 3);
        assert_eq!(s.leaf_vars(), vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn combine_empty_is_none() {
        assert!(VtreeShape::combine(vec![]).is_none());
    }

    #[test]
    fn deep_linear_shape_clones_compares_and_drops_without_recursion() {
        // 300k-node linear shape: the derived Clone/PartialEq/Drop glue
        // would all recurse that deep; the manual impls must not.
        let mut s = VtreeShape::Leaf(VarId(0));
        for i in 1..300_000u32 {
            s = VtreeShape::node(VtreeShape::Leaf(VarId(i)), s);
        }
        assert_eq!(s.num_leaves(), 300_000);
        let t = s.clone();
        assert!(s == t, "deep equality");
        let u = VtreeShape::node(t, VtreeShape::Leaf(VarId(300_000)));
        assert!(s != u, "structural difference detected");
        drop(s);
        drop(u);
    }

    #[test]
    fn debug_renders_nested_parens() {
        let s = VtreeShape::node(
            VtreeShape::Leaf(VarId(0)),
            VtreeShape::node(VtreeShape::Leaf(VarId(1)), VtreeShape::Leaf(VarId(2))),
        );
        assert_eq!(format!("{s:?}"), "(x0 (x1 x2))");
    }
}
