//! A minimal FxHash-style hasher.
//!
//! The standard library's SipHash is collision-resistant but slow for the
//! short integer keys that dominate the unique tables and apply caches in the
//! OBDD/SDD managers (see the Rust Performance Book, "Hashing"). This is the
//! rustc `FxHasher` multiply-rotate scheme, reimplemented here so the
//! workspace needs no extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-rotate hasher; very fast for small fixed-size keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishing() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&i));
        }
    }

    #[test]
    fn hashes_are_stable_within_process() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h1 = bh.hash_one((42u64, 17u64));
        let h2 = bh.hash_one((42u64, 17u64));
        assert_eq!(h1, h2);
    }
}
