//! Variable trees (*vtrees*) for structured decomposability.
//!
//! A vtree for a variable set `Y` is a rooted binary tree whose leaves
//! correspond bijectively to the variables in `Y` (Bova & Szeider, §2.1;
//! Darwiche 2011). Vtrees underlie both sentential decision diagrams and the
//! canonical deterministic structured NNFs of the paper: every ∧-gate of a
//! structured circuit is *structured by* an internal vtree node, with the left
//! conjunct over the variables of the left subtree and the right conjunct over
//! those of the right subtree.
//!
//! This crate is the bottom of the workspace dependency stack, so it also
//! hosts the shared [`VarId`] newtype and the fast FxHash-style hasher used by
//! the hot hash tables across the workspace.

pub mod fxhash;
pub mod shape;

mod enumerate;

pub use enumerate::all_vtrees;
pub use shape::VtreeShape;

use std::fmt;

/// A globally scoped Boolean variable identifier.
///
/// Variables are shared across crates: the same `VarId` denotes the same
/// variable in truth tables, circuits, OBDDs, SDDs, and query lineages.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Convenience constructor from a `usize` index.
    #[inline]
    pub fn new(i: usize) -> Self {
        VarId(i as u32)
    }

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Produce `n` fresh variables `x0..x(n-1)`.
pub fn fresh_vars(n: usize) -> Vec<VarId> {
    (0..n as u32).map(VarId).collect()
}

/// Index of a node inside a [`Vtree`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VtreeNodeId(pub u32);

impl VtreeNodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VtreeNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The payload of a vtree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VtreeNodeKind {
    /// A leaf labelled with the variable it corresponds to.
    Leaf(VarId),
    /// An internal node with a left and right child.
    Internal {
        left: VtreeNodeId,
        right: VtreeNodeId,
    },
}

#[derive(Clone, Debug)]
struct VtreeNode {
    kind: VtreeNodeKind,
    parent: Option<VtreeNodeId>,
    depth: u32,
    /// Start of this subtree's leaves in [`Vtree::leaf_seq`] (subtree
    /// leaves are contiguous in inorder).
    leaf_start: u32,
    /// Number of leaves below (and including) this node.
    leaf_count: u32,
}

/// Which side of an internal node a descendant lies on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Errors raised by vtree construction and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VtreeError {
    /// The variable list was empty.
    Empty,
    /// A variable occurs at more than one leaf.
    DuplicateVar(VarId),
    /// An explicit node arena (see [`Vtree::from_node_kinds`]) does not
    /// describe a rooted binary tree.
    Malformed(&'static str),
}

impl fmt::Display for VtreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VtreeError::Empty => write!(f, "vtree must have at least one leaf"),
            VtreeError::DuplicateVar(v) => write!(f, "variable {v} occurs at two leaves"),
            VtreeError::Malformed(what) => write!(f, "malformed vtree arena: {what}"),
        }
    }
}

impl std::error::Error for VtreeError {}

/// A rooted binary tree whose leaves are pairwise distinct variables.
///
/// Nodes are stored in an arena; ids are stable for the lifetime of the tree.
/// Construction precomputes, for every node `v`, the contiguous inorder leaf
/// range of the subtree rooted at `v` (the variable set `Y_v` the objects
/// `factors(F, Y_v)` and the structuredness checks are defined against) —
/// ranges into one shared leaf sequence, so the arena stays linear in the
/// variable count even for linear (chain-shaped) vtrees, where per-node
/// variable lists would cost Θ(n²) memory.
///
/// Nothing in this type recurses on the tree: construction, traversal,
/// rendering and conversion all use explicit stacks, so vtrees as deep as
/// the variable count (chain inputs) are handled on a default-size stack.
#[derive(Clone, Debug)]
pub struct Vtree {
    nodes: Vec<VtreeNode>,
    root: VtreeNodeId,
    /// Map from variable index to its leaf node (dense over the max VarId).
    leaf_of: Vec<Option<VtreeNodeId>>,
    /// The leaf variables in inorder (left-to-right); every node's subtree
    /// is a contiguous range of this sequence.
    leaf_seq: Vec<VarId>,
    /// All variables, sorted (the classical `Y_root` view).
    sorted_vars: Vec<VarId>,
    /// Binary-lifting ancestor tables: `up[k][v]` is `v`'s 2^k-th ancestor
    /// (saturating at the root), powering O(log n) [`Vtree::lca`] — the
    /// naive parent walk made every SDD apply pay Θ(depth), which is Θ(n)
    /// per apply on chain vtrees.
    up: Vec<Vec<VtreeNodeId>>,
}

impl Vtree {
    /// Build a vtree from a [`VtreeShape`].
    pub fn from_shape(shape: &VtreeShape) -> Result<Self, VtreeError> {
        // Iterative post-order over the shape (shapes are input-depth deep
        // on chain inputs); ids are assigned children-first, left subtree
        // fully before right, exactly like the former recursive builder.
        enum Walk<'a> {
            Enter(&'a VtreeShape),
            Exit,
        }
        let mut nodes: Vec<VtreeNode> = Vec::new();
        let mut built: Vec<VtreeNodeId> = Vec::new();
        let mut walk = vec![Walk::Enter(shape)];
        while let Some(w) = walk.pop() {
            match w {
                Walk::Enter(VtreeShape::Leaf(v)) => {
                    let id = VtreeNodeId(nodes.len() as u32);
                    nodes.push(VtreeNode {
                        kind: VtreeNodeKind::Leaf(*v),
                        parent: None,
                        depth: 0,
                        leaf_start: 0,
                        leaf_count: 1,
                    });
                    built.push(id);
                }
                Walk::Enter(VtreeShape::Node(l, r)) => {
                    walk.push(Walk::Exit);
                    walk.push(Walk::Enter(r));
                    walk.push(Walk::Enter(l));
                }
                Walk::Exit => {
                    let right = built.pop().expect("right child built");
                    let left = built.pop().expect("left child built");
                    let id = VtreeNodeId(nodes.len() as u32);
                    nodes.push(VtreeNode {
                        kind: VtreeNodeKind::Internal { left, right },
                        parent: None,
                        depth: 0,
                        leaf_start: 0,
                        leaf_count: 0,
                    });
                    built.push(id);
                }
            }
        }
        let root = built.pop().expect("shape has a root");
        let mut vt = Vtree {
            nodes,
            root,
            leaf_of: Vec::new(),
            leaf_seq: Vec::new(),
            sorted_vars: Vec::new(),
            up: Vec::new(),
        };
        vt.finish()?;
        Ok(vt)
    }

    /// Fill in parents, depths, leaf ranges and the variable→leaf map;
    /// validate.
    fn finish(&mut self) -> Result<(), VtreeError> {
        if self.nodes.is_empty() {
            return Err(VtreeError::Empty);
        }
        // Parents and depths via a DFS from the root.
        let mut stack = vec![(self.root, None::<VtreeNodeId>, 0u32)];
        while let Some((id, parent, depth)) = stack.pop() {
            self.nodes[id.index()].parent = parent;
            self.nodes[id.index()].depth = depth;
            if let VtreeNodeKind::Internal { left, right } = self.nodes[id.index()].kind {
                stack.push((left, Some(id), depth + 1));
                stack.push((right, Some(id), depth + 1));
            }
        }
        // Inorder leaf sequence and per-node contiguous leaf ranges, via an
        // enter/exit DFS (leaves get their inorder position; an internal
        // node spans from its left child's start over both children).
        enum Visit {
            Enter(VtreeNodeId),
            Exit(VtreeNodeId),
        }
        self.leaf_seq = Vec::new();
        let mut visits = vec![Visit::Enter(self.root)];
        while let Some(v) = visits.pop() {
            match v {
                Visit::Enter(id) => match self.nodes[id.index()].kind {
                    VtreeNodeKind::Leaf(var) => {
                        self.nodes[id.index()].leaf_start = self.leaf_seq.len() as u32;
                        self.nodes[id.index()].leaf_count = 1;
                        self.leaf_seq.push(var);
                    }
                    VtreeNodeKind::Internal { left, right } => {
                        visits.push(Visit::Exit(id));
                        visits.push(Visit::Enter(right));
                        visits.push(Visit::Enter(left));
                    }
                },
                Visit::Exit(id) => {
                    let VtreeNodeKind::Internal { left, right } = self.nodes[id.index()].kind
                    else {
                        unreachable!("only internal nodes get Exit visits")
                    };
                    self.nodes[id.index()].leaf_start = self.nodes[left.index()].leaf_start;
                    self.nodes[id.index()].leaf_count =
                        self.nodes[left.index()].leaf_count + self.nodes[right.index()].leaf_count;
                }
            }
        }
        self.sorted_vars = self.leaf_seq.clone();
        self.sorted_vars.sort_unstable();
        // Binary-lifting ancestors (root saturates to itself).
        let up0: Vec<VtreeNodeId> = (0..self.nodes.len())
            .map(|i| self.nodes[i].parent.unwrap_or(VtreeNodeId(i as u32)))
            .collect();
        let max_depth = self.nodes.iter().map(|n| n.depth).max().unwrap_or(0);
        let levels = (usize::BITS - (max_depth as usize).leading_zeros()).max(1) as usize;
        self.up = Vec::with_capacity(levels);
        self.up.push(up0);
        for k in 1..levels {
            let prev = &self.up[k - 1];
            let next: Vec<VtreeNodeId> = (0..self.nodes.len())
                .map(|i| prev[prev[i].index()])
                .collect();
            self.up.push(next);
        }
        let max_var = self
            .sorted_vars
            .last()
            .map(|v| v.index())
            .ok_or(VtreeError::Empty)?;
        self.leaf_of = vec![None; max_var + 1];
        for (i, n) in self.nodes.iter().enumerate() {
            if let VtreeNodeKind::Leaf(v) = n.kind {
                if self.leaf_of[v.index()].is_some() {
                    return Err(VtreeError::DuplicateVar(v));
                }
                self.leaf_of[v.index()] = Some(VtreeNodeId(i as u32));
            }
        }
        Ok(())
    }

    /// Rebuild a vtree from an explicit node arena — the untrusted-input
    /// constructor (snapshot loading): node `i` of the result has kind
    /// `kinds[i]`, ids are preserved exactly, and the arena is **fully
    /// validated** before anything is trusted. Accepts any arena that
    /// describes a rooted binary tree whose leaves carry pairwise
    /// distinct variables; everything else — a child index out of
    /// bounds, a node with two parents (shared substructure or a cycle),
    /// an unreachable node, the root below another node — is a typed
    /// [`VtreeError`], never a panic.
    pub fn from_node_kinds(
        kinds: Vec<VtreeNodeKind>,
        root: VtreeNodeId,
    ) -> Result<Self, VtreeError> {
        if kinds.is_empty() {
            return Err(VtreeError::Empty);
        }
        let n = kinds.len();
        if root.index() >= n {
            return Err(VtreeError::Malformed("root out of bounds"));
        }
        // Tree-ness: every child reference in bounds, every node except
        // the root the child of exactly one parent. In-degree 1 for all
        // non-root nodes plus reachability from the root rules out
        // cycles, sharing, and disconnected components in one pass.
        let mut indegree = vec![0u8; n];
        for k in &kinds {
            if let VtreeNodeKind::Internal { left, right } = *k {
                if left.index() >= n || right.index() >= n {
                    return Err(VtreeError::Malformed("child out of bounds"));
                }
                if left == right {
                    return Err(VtreeError::Malformed("node is both children of a parent"));
                }
                for c in [left, right] {
                    if indegree[c.index()] == 1 {
                        return Err(VtreeError::Malformed("node has two parents"));
                    }
                    indegree[c.index()] = 1;
                }
            }
        }
        if indegree[root.index()] != 0 {
            return Err(VtreeError::Malformed("root has a parent"));
        }
        let mut reached = 0usize;
        let mut stack = vec![root];
        let mut seen = vec![false; n];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                // Unreachable with indegree ≤ 1, but cheap to keep.
                return Err(VtreeError::Malformed("node has two parents"));
            }
            seen[id.index()] = true;
            reached += 1;
            if let VtreeNodeKind::Internal { left, right } = kinds[id.index()] {
                stack.push(left);
                stack.push(right);
            }
        }
        if reached != n {
            return Err(VtreeError::Malformed("unreachable nodes in the arena"));
        }
        let nodes = kinds
            .into_iter()
            .map(|kind| VtreeNode {
                kind,
                parent: None,
                depth: 0,
                leaf_start: 0,
                leaf_count: 0,
            })
            .collect();
        let mut vt = Vtree {
            nodes,
            root,
            leaf_of: Vec::new(),
            leaf_seq: Vec::new(),
            sorted_vars: Vec::new(),
            up: Vec::new(),
        };
        vt.finish()?;
        Ok(vt)
    }

    /// A right-linear vtree over `vars` in the given order.
    ///
    /// Right-linear vtrees are exactly the vtrees of OBDDs respecting the
    /// variable order `vars` (Darwiche 2011; paper §3.2.2).
    pub fn right_linear(vars: &[VarId]) -> Result<Self, VtreeError> {
        if vars.is_empty() {
            return Err(VtreeError::Empty);
        }
        let mut shape = VtreeShape::Leaf(vars[vars.len() - 1]);
        for &v in vars[..vars.len() - 1].iter().rev() {
            shape = VtreeShape::Node(Box::new(VtreeShape::Leaf(v)), Box::new(shape));
        }
        Self::from_shape(&shape)
    }

    /// A left-linear vtree over `vars`: every *right* child is a leaf, and a
    /// postorder traversal of the right leaves yields `vars[1..]`.
    pub fn left_linear(vars: &[VarId]) -> Result<Self, VtreeError> {
        if vars.is_empty() {
            return Err(VtreeError::Empty);
        }
        let mut shape = VtreeShape::Leaf(vars[0]);
        for &v in &vars[1..] {
            shape = VtreeShape::Node(Box::new(shape), Box::new(VtreeShape::Leaf(v)));
        }
        Self::from_shape(&shape)
    }

    /// A balanced vtree over `vars` (recursive halving).
    pub fn balanced(vars: &[VarId]) -> Result<Self, VtreeError> {
        fn rec(vars: &[VarId]) -> VtreeShape {
            if vars.len() == 1 {
                VtreeShape::Leaf(vars[0])
            } else {
                let mid = vars.len() / 2;
                VtreeShape::Node(Box::new(rec(&vars[..mid])), Box::new(rec(&vars[mid..])))
            }
        }
        if vars.is_empty() {
            return Err(VtreeError::Empty);
        }
        Self::from_shape(&rec(vars))
    }

    /// A uniformly random vtree shape over a uniformly random permutation of
    /// `vars`.
    pub fn random<R: rand::Rng>(vars: &[VarId], rng: &mut R) -> Result<Self, VtreeError> {
        use rand::seq::SliceRandom;
        if vars.is_empty() {
            return Err(VtreeError::Empty);
        }
        let mut perm = vars.to_vec();
        perm.shuffle(rng);
        fn rec<R: rand::Rng>(vars: &[VarId], rng: &mut R) -> VtreeShape {
            if vars.len() == 1 {
                VtreeShape::Leaf(vars[0])
            } else {
                let cut = rng.gen_range(1..vars.len());
                VtreeShape::Node(
                    Box::new(rec(&vars[..cut], rng)),
                    Box::new(rec(&vars[cut..], rng)),
                )
            }
        }
        let shape = rec(&perm, rng);
        Self::from_shape(&shape)
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> VtreeNodeId {
        self.root
    }

    /// Total number of nodes (leaves + internal).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of variables (= leaves).
    pub fn num_vars(&self) -> usize {
        self.leaf_seq.len()
    }

    /// The node kind.
    #[inline]
    pub fn kind(&self, id: VtreeNodeId) -> &VtreeNodeKind {
        &self.nodes[id.index()].kind
    }

    /// Is `id` a leaf?
    #[inline]
    pub fn is_leaf(&self, id: VtreeNodeId) -> bool {
        matches!(self.nodes[id.index()].kind, VtreeNodeKind::Leaf(_))
    }

    /// The variable at a leaf (None for internal nodes).
    pub fn leaf_var(&self, id: VtreeNodeId) -> Option<VarId> {
        match self.nodes[id.index()].kind {
            VtreeNodeKind::Leaf(v) => Some(v),
            _ => None,
        }
    }

    /// Children of an internal node.
    pub fn children(&self, id: VtreeNodeId) -> Option<(VtreeNodeId, VtreeNodeId)> {
        match self.nodes[id.index()].kind {
            VtreeNodeKind::Internal { left, right } => Some((left, right)),
            _ => None,
        }
    }

    /// Parent of a node (None at the root).
    #[inline]
    pub fn parent(&self, id: VtreeNodeId) -> Option<VtreeNodeId> {
        self.nodes[id.index()].parent
    }

    /// Depth of a node (root has depth 0).
    #[inline]
    pub fn depth(&self, id: VtreeNodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// The variable set `Y_v` below node `v`, in left-to-right (inorder)
    /// leaf order — a contiguous slice of the shared leaf sequence, so the
    /// arena stays linear-sized on deep vtrees. Wrap in a sorted set type
    /// (e.g. `boolfunc::VarSet`) where set semantics are needed.
    #[inline]
    pub fn vars_below(&self, id: VtreeNodeId) -> &[VarId] {
        let n = &self.nodes[id.index()];
        &self.leaf_seq[n.leaf_start as usize..(n.leaf_start + n.leaf_count) as usize]
    }

    /// All variables of the vtree, sorted.
    pub fn vars(&self) -> &[VarId] {
        &self.sorted_vars
    }

    /// The leaf node of a variable, if the variable occurs in this vtree.
    pub fn leaf_of_var(&self, v: VarId) -> Option<VtreeNodeId> {
        self.leaf_of.get(v.index()).copied().flatten()
    }

    /// Does this vtree contain variable `v`?
    pub fn contains_var(&self, v: VarId) -> bool {
        self.leaf_of_var(v).is_some()
    }

    /// Iterate over all node ids (arena order; children precede parents).
    pub fn node_ids(&self) -> impl Iterator<Item = VtreeNodeId> {
        (0..self.nodes.len() as u32).map(VtreeNodeId)
    }

    /// Iterate over internal node ids.
    pub fn internal_nodes(&self) -> impl Iterator<Item = VtreeNodeId> + '_ {
        self.node_ids().filter(|id| !self.is_leaf(*id))
    }

    /// Iterate over leaf node ids.
    pub fn leaves(&self) -> impl Iterator<Item = VtreeNodeId> + '_ {
        self.node_ids().filter(|id| self.is_leaf(*id))
    }

    /// Variables in left-to-right (inorder) leaf order.
    pub fn leaf_order(&self) -> Vec<VarId> {
        self.leaf_seq.clone()
    }

    /// Is `desc` in the subtree rooted at `anc` (inclusive)? O(1) via the
    /// inorder leaf ranges (a subtree's leaves are a contiguous range, and
    /// ranges of distinct nodes never coincide in a binary tree).
    pub fn is_descendant(&self, desc: VtreeNodeId, anc: VtreeNodeId) -> bool {
        let (d, a) = (&self.nodes[desc.index()], &self.nodes[anc.index()]);
        a.leaf_start <= d.leaf_start && d.leaf_start + d.leaf_count <= a.leaf_start + a.leaf_count
    }

    /// Lowest common ancestor of two nodes — O(log n) via binary lifting
    /// (the parent-pointer walk was Θ(depth), which made every SDD apply on
    /// a chain vtree pay Θ(n)).
    pub fn lca(&self, a: VtreeNodeId, b: VtreeNodeId) -> VtreeNodeId {
        if self.is_descendant(b, a) {
            return a;
        }
        if self.is_descendant(a, b) {
            return b;
        }
        // Lift `a` to the highest ancestor NOT containing `b`; its parent
        // is the lca.
        let mut a = a;
        for k in (0..self.up.len()).rev() {
            let anc = self.up[k][a.index()];
            if !self.is_descendant(b, anc) {
                a = anc;
            }
        }
        self.parent(a)
            .expect("distinct subtrees join below the root")
    }

    /// Which side of internal node `anc` contains `desc`?
    ///
    /// Returns `None` if `desc == anc`, if `anc` is a leaf, or if `desc` is
    /// not below `anc`.
    pub fn side_of(&self, anc: VtreeNodeId, desc: VtreeNodeId) -> Option<Side> {
        let (left, right) = self.children(anc)?;
        if self.is_descendant(desc, left) {
            Some(Side::Left)
        } else if self.is_descendant(desc, right) {
            Some(Side::Right)
        } else {
            None
        }
    }

    /// Every node with both children before their parent (reverse
    /// preorder) — the evaluation order of the bottom-up engines
    /// (`sdd::eval`'s smoothing-gap tables, `kb`'s circuit unfolding).
    pub fn bottom_up_order(&self) -> Vec<VtreeNodeId> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            order.push(n);
            if let Some((l, r)) = self.children(n) {
                stack.push(l);
                stack.push(r);
            }
        }
        order.reverse();
        order
    }

    /// Walk from `scope` down to `target` (a descendant-or-self of
    /// `scope`), visiting the root of every subtree branched *away* from —
    /// exactly the subtrees whose variables lie below `scope` but not
    /// below `target`. This is the smoothing walk shared by every
    /// gap-smoothed evaluation (`sdd::eval::{Evaluator, EvalCache}`,
    /// `kb`'s arithmetic-circuit builder).
    ///
    /// Panics if `target` is not below `scope`.
    pub fn branched_away(
        &self,
        scope: VtreeNodeId,
        target: VtreeNodeId,
        mut visit: impl FnMut(VtreeNodeId),
    ) {
        let mut cur = scope;
        while cur != target {
            let (l, r) = self.children(cur).expect("target strictly below scope");
            match self.side_of(cur, target) {
                Some(Side::Left) => {
                    visit(r);
                    cur = l;
                }
                Some(Side::Right) => {
                    visit(l);
                    cur = r;
                }
                None => panic!("branched_away: target not below scope"),
            }
        }
    }

    /// If this vtree is right-linear (every left child a leaf), the variable
    /// order it induces; otherwise `None`.
    pub fn linear_order(&self) -> Option<Vec<VarId>> {
        let mut order = Vec::with_capacity(self.num_vars());
        let mut cur = self.root;
        loop {
            match self.nodes[cur.index()].kind {
                VtreeNodeKind::Leaf(v) => {
                    order.push(v);
                    return Some(order);
                }
                VtreeNodeKind::Internal { left, right } => {
                    let VtreeNodeKind::Leaf(v) = self.nodes[left.index()].kind else {
                        return None;
                    };
                    order.push(v);
                    cur = right;
                }
            }
        }
    }

    /// Is this vtree right-linear?
    pub fn is_right_linear(&self) -> bool {
        self.linear_order().is_some()
    }

    /// Export as a [`VtreeShape`] (useful for re-rooting / transformation).
    pub fn to_shape(&self) -> VtreeShape {
        // Post-order over bottom_up_order: children are built before their
        // parent, so each internal node pops its finished subtrees.
        let mut shapes: Vec<Option<VtreeShape>> = vec![None; self.num_nodes()];
        for id in self.bottom_up_order() {
            let s = match self.nodes[id.index()].kind {
                VtreeNodeKind::Leaf(v) => VtreeShape::Leaf(v),
                VtreeNodeKind::Internal { left, right } => VtreeShape::node(
                    shapes[left.index()].take().expect("child shape built"),
                    shapes[right.index()].take().expect("child shape built"),
                ),
            };
            shapes[id.index()] = Some(s);
        }
        shapes[self.root.index()].take().expect("root shape built")
    }
}

impl fmt::Display for Vtree {
    /// Nested-parenthesis rendering, e.g. `((x0 x1) x2)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        enum Tok {
            Node(VtreeNodeId),
            Text(&'static str),
        }
        let mut stack = vec![Tok::Node(self.root)];
        while let Some(t) = stack.pop() {
            match t {
                Tok::Text(s) => f.write_str(s)?,
                Tok::Node(id) => match self.nodes[id.index()].kind {
                    VtreeNodeKind::Leaf(v) => write!(f, "{v}")?,
                    VtreeNodeKind::Internal { left, right } => {
                        f.write_str("(")?;
                        stack.push(Tok::Text(")"));
                        stack.push(Tok::Node(right));
                        stack.push(Tok::Text(" "));
                        stack.push(Tok::Node(left));
                    }
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: usize) -> Vec<VarId> {
        fresh_vars(n)
    }

    #[test]
    fn right_linear_order_roundtrip() {
        let vs = vars(5);
        let vt = Vtree::right_linear(&vs).unwrap();
        assert_eq!(vt.linear_order().unwrap(), vs);
        assert!(vt.is_right_linear());
        assert_eq!(vt.num_vars(), 5);
        assert_eq!(vt.num_nodes(), 9);
    }

    #[test]
    fn left_linear_is_not_right_linear() {
        let vs = vars(4);
        let vt = Vtree::left_linear(&vs).unwrap();
        assert!(!vt.is_right_linear());
        assert_eq!(vt.leaf_order(), vs);
    }

    #[test]
    fn single_leaf_is_both() {
        let vs = vars(1);
        let vt = Vtree::right_linear(&vs).unwrap();
        assert!(vt.is_right_linear());
        assert_eq!(vt.num_nodes(), 1);
        assert_eq!(vt.root(), VtreeNodeId(0));
    }

    #[test]
    fn balanced_vars_below() {
        let vs = vars(7);
        let vt = Vtree::balanced(&vs).unwrap();
        assert_eq!(vt.vars(), &vs[..]);
        let (l, r) = vt.children(vt.root()).unwrap();
        assert_eq!(vt.vars_below(l), &vs[..3]);
        assert_eq!(vt.vars_below(r), &vs[3..]);
    }

    #[test]
    fn lca_and_sides() {
        let vs = vars(4);
        let vt = Vtree::balanced(&vs).unwrap(); // ((x0 x1) (x2 x3))
        let l0 = vt.leaf_of_var(vs[0]).unwrap();
        let l3 = vt.leaf_of_var(vs[3]).unwrap();
        assert_eq!(vt.lca(l0, l3), vt.root());
        assert_eq!(vt.side_of(vt.root(), l0), Some(Side::Left));
        assert_eq!(vt.side_of(vt.root(), l3), Some(Side::Right));
        let l1 = vt.leaf_of_var(vs[1]).unwrap();
        let inner = vt.lca(l0, l1);
        assert_ne!(inner, vt.root());
        assert!(vt.is_descendant(inner, vt.root()));
        assert!(!vt.is_descendant(vt.root(), inner));
    }

    #[test]
    fn bottom_up_order_puts_children_first() {
        let vt = Vtree::balanced(&vars(6)).unwrap();
        let order = vt.bottom_up_order();
        assert_eq!(order.len(), vt.num_nodes());
        let pos = |n: VtreeNodeId| order.iter().position(|&m| m == n).unwrap();
        for n in vt.node_ids() {
            if let Some((l, r)) = vt.children(n) {
                assert!(pos(l) < pos(n) && pos(r) < pos(n), "child before parent");
            }
        }
    }

    #[test]
    fn branched_away_yields_exactly_the_gap_subtrees() {
        let vs = vars(4);
        let vt = Vtree::balanced(&vs).unwrap(); // ((x0 x1) (x2 x3))
        let l0 = vt.leaf_of_var(vs[0]).unwrap();
        let mut gaps = Vec::new();
        vt.branched_away(vt.root(), l0, |t| gaps.push(t));
        // Walking root → x0 branches away (x2 x3), then x1.
        let skipped: Vec<Vec<VarId>> = gaps.iter().map(|&t| vt.vars_below(t).to_vec()).collect();
        assert_eq!(skipped, vec![vec![vs[2], vs[3]], vec![vs[1]]]);
        // Walking to itself branches away nothing.
        let mut none = Vec::new();
        vt.branched_away(l0, l0, |t| none.push(t));
        assert!(none.is_empty());
    }

    #[test]
    fn duplicate_var_rejected() {
        let v = VarId(0);
        let shape = VtreeShape::Node(Box::new(VtreeShape::Leaf(v)), Box::new(VtreeShape::Leaf(v)));
        assert_eq!(
            Vtree::from_shape(&shape).unwrap_err(),
            VtreeError::DuplicateVar(v)
        );
    }

    #[test]
    fn random_vtree_valid() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let vs = vars(9);
        for _ in 0..20 {
            let vt = Vtree::random(&vs, &mut rng).unwrap();
            assert_eq!(vt.num_vars(), 9);
            assert_eq!(vt.vars(), &vs[..]);
            assert_eq!(vt.num_nodes(), 17);
        }
    }

    #[test]
    fn display_nested() {
        let vs = vars(3);
        let vt = Vtree::right_linear(&vs).unwrap();
        assert_eq!(vt.to_string(), "(x0 (x1 x2))");
    }

    #[test]
    fn shape_roundtrip() {
        let vs = vars(6);
        let vt = Vtree::balanced(&vs).unwrap();
        let vt2 = Vtree::from_shape(&vt.to_shape()).unwrap();
        assert_eq!(vt.to_string(), vt2.to_string());
    }

    #[test]
    fn from_node_kinds_roundtrips_ids_exactly() {
        let vs = vars(6);
        for vt in [
            Vtree::balanced(&vs).unwrap(),
            Vtree::right_linear(&vs).unwrap(),
            Vtree::left_linear(&vs).unwrap(),
        ] {
            let kinds: Vec<VtreeNodeKind> = vt.node_ids().map(|id| vt.kind(id).clone()).collect();
            let back = Vtree::from_node_kinds(kinds, vt.root()).unwrap();
            assert_eq!(back.root(), vt.root());
            assert_eq!(back.num_nodes(), vt.num_nodes());
            for id in vt.node_ids() {
                assert_eq!(back.kind(id), vt.kind(id));
                assert_eq!(back.parent(id), vt.parent(id));
                assert_eq!(back.depth(id), vt.depth(id));
                assert_eq!(back.vars_below(id), vt.vars_below(id));
            }
            assert_eq!(back.to_string(), vt.to_string());
        }
    }

    #[test]
    fn from_node_kinds_rejects_malformed_arenas() {
        use VtreeNodeKind as K;
        let leaf = |i: u32| K::Leaf(VarId(i));
        let node = |l: u32, r: u32| K::Internal {
            left: VtreeNodeId(l),
            right: VtreeNodeId(r),
        };
        let m = |kinds: Vec<K>, root: u32| Vtree::from_node_kinds(kinds, VtreeNodeId(root));
        assert_eq!(m(vec![], 0).unwrap_err(), VtreeError::Empty);
        // Root out of bounds.
        assert!(matches!(m(vec![leaf(0)], 5), Err(VtreeError::Malformed(_))));
        // Child out of bounds.
        assert!(matches!(
            m(vec![leaf(0), node(0, 9)], 1),
            Err(VtreeError::Malformed(_))
        ));
        // Shared child (DAG, not a tree).
        assert!(matches!(
            m(vec![leaf(0), node(0, 0), node(1, 0)], 2),
            Err(VtreeError::Malformed(_))
        ));
        // Root below another node.
        assert!(matches!(
            m(vec![leaf(0), leaf(1), node(0, 1)], 0),
            Err(VtreeError::Malformed(_))
        ));
        // Unreachable extra node.
        assert!(matches!(
            m(vec![leaf(0), leaf(1), node(0, 1), leaf(2)], 2),
            Err(VtreeError::Malformed(_))
        ));
        // Self-loop.
        assert!(matches!(
            m(vec![leaf(0), node(1, 0)], 1),
            Err(VtreeError::Malformed(_))
        ));
        // Duplicate variables still come back as DuplicateVar.
        assert_eq!(
            m(vec![leaf(3), leaf(3), node(0, 1)], 2).unwrap_err(),
            VtreeError::DuplicateVar(VarId(3))
        );
    }

    #[test]
    fn leaf_order_matches_inorder() {
        let vs = vars(5);
        let vt = Vtree::balanced(&vs).unwrap();
        assert_eq!(vt.leaf_order(), vs);
    }
}
