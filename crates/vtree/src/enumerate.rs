//! Exhaustive enumeration of vtrees over small variable sets.
//!
//! The number of distinct leaf-labelled binary trees over `n` labelled leaves
//! (ignoring left/right order, which neither factor width, nor factorized
//! implicant width, nor SDD width depends on) is `(2n-3)!! = 1, 1, 3, 15, 105,
//! 945, 10395, …`. Enumeration proceeds by the classical leaf-insertion
//! scheme: a tree over `k+1` leaves arises uniquely from a tree over `k`
//! leaves by splitting one of its `2k-1` nodes (edges plus root).
//!
//! Width-minimization procedures (`fw(F)`, `fiw(F)`, `sdw(F)` per
//! Definitions 2, 4, 5 of the paper) search this space for small `n`.

use crate::{VarId, Vtree, VtreeShape};

/// Enumerate every vtree over `vars`, up to left/right child order.
///
/// Panics if `vars.len() > max_n`, the caller-supplied safety bound
/// (`(2n-3)!!` trees are produced; `n = 7` already yields 10 395).
pub fn all_vtrees(vars: &[VarId], max_n: usize) -> Vec<Vtree> {
    assert!(
        vars.len() <= max_n,
        "refusing to enumerate (2n-3)!! vtrees for n = {} > max_n = {}",
        vars.len(),
        max_n
    );
    assert!(!vars.is_empty(), "need at least one variable");
    let mut shapes = vec![VtreeShape::Leaf(vars[0])];
    for &v in &vars[1..] {
        let mut next = Vec::with_capacity(shapes.len() * (2 * shapes.len() - 1).max(1));
        for s in &shapes {
            insert_everywhere(s, v, &mut next);
        }
        shapes = next;
    }
    shapes
        .iter()
        .map(|s| Vtree::from_shape(s).expect("enumerated shapes have distinct leaves"))
        .collect()
}

/// Produce all trees obtained from `s` by pairing `v` with some subtree of
/// `s` (including `s` itself).
fn insert_everywhere(s: &VtreeShape, v: VarId, out: &mut Vec<VtreeShape>) {
    // Pair with the whole tree (new root).
    out.push(VtreeShape::node(s.clone(), VtreeShape::Leaf(v)));
    // Pair with a proper subtree: recurse structurally, rebuilding the path.
    if let VtreeShape::Node(l, r) = s {
        let mut subs = Vec::new();
        insert_everywhere(l, v, &mut subs);
        for nl in subs.drain(..) {
            out.push(VtreeShape::node(nl, (**r).clone()));
        }
        insert_everywhere(r, v, &mut subs);
        for nr in subs {
            out.push(VtreeShape::node((**l).clone(), nr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fresh_vars;

    fn double_factorial(n: i64) -> usize {
        if n <= 0 {
            1
        } else {
            (n as usize) * double_factorial(n - 2)
        }
    }

    #[test]
    fn counts_match_double_factorial() {
        for n in 1..=6usize {
            let vs = fresh_vars(n);
            let trees = all_vtrees(&vs, 6);
            assert_eq!(
                trees.len(),
                double_factorial(2 * n as i64 - 3),
                "vtree count for n = {n}"
            );
        }
    }

    #[test]
    fn all_trees_have_right_leaves() {
        let vs = fresh_vars(4);
        for vt in all_vtrees(&vs, 4) {
            assert_eq!(vt.vars(), &vs[..]);
        }
    }

    #[test]
    fn enumeration_contains_linear_tree_shapes() {
        // Among the 3 vtrees over {x0,x1,x2} there must be one whose
        // leaf order groups (x0 x1) first.
        let vs = fresh_vars(3);
        let reprs: Vec<String> = all_vtrees(&vs, 3).iter().map(|t| t.to_string()).collect();
        assert!(reprs.iter().any(|r| r.contains("(x0 x1)")), "{reprs:?}");
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn guard_rails() {
        let vs = fresh_vars(9);
        let _ = all_vtrees(&vs, 8);
    }
}
