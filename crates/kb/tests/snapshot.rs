//! The snapshot tier's contract, tested end to end: a saved-and-loaded
//! [`FrozenKb`] answers every query **bit-identically** to the original
//! (proptest over random weighted instances), and every corrupted artifact
//! — truncation at any prefix, any flipped byte, a wrong version, an
//! oversized range — fails with a typed [`SnapError`], never a panic.

use cnf::CnfFormula;
use kb::{FrozenKb, KnowledgeBase};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentential_core::Compiler;
use snap::SnapError;
use std::sync::Arc;
use vtree::VarId;

/// A seeded random low-treewidth instance (the props.rs recipe) plus
/// probabilities bounded away from 0 and 1.
fn random_instance(n: u32, m: usize, seed: u64) -> (CnfFormula, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = 3u32.min(n);
    let mut f = CnfFormula::new(n);
    for _ in 0..m {
        let start = rng.gen_range(0..n - w + 1);
        let k = rng.gen_range(1..=w);
        let mut vars: Vec<u32> = (start..start + w).collect();
        for i in (1..vars.len()).rev() {
            vars.swap(i, rng.gen_range(0..i as u32 + 1) as usize);
        }
        f.add_clause(
            vars.into_iter()
                .take(k as usize)
                .map(|v| (VarId(v), rng.gen_bool(0.5)))
                .collect(),
        );
    }
    let probs = (0..n)
        .map(|_| 0.05 + 0.9 * rng.gen_range(0.0..1.0))
        .collect();
    (f, probs)
}

fn frozen_instance(n: u32, m: usize, seed: u64) -> Arc<FrozenKb> {
    let (f, probs) = random_instance(n, m, seed);
    let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), &f).expect("compiles");
    for (i, &p) in probs.iter().enumerate() {
        kb.set_probability(VarId(i as u32), p).unwrap();
    }
    // Freeze some evidence in when it stays consistent, so snapshots carry
    // a nontrivial pin table.
    let _ = kb.condition(&[(VarId(0), seed.is_multiple_of(2))]);
    Arc::new(kb.freeze())
}

fn save(kb: &FrozenKb) -> Vec<u8> {
    let mut bytes = Vec::new();
    kb.save(&mut bytes).unwrap();
    bytes
}

/// Every query answer of `b`, asserted bit-identical to `a`'s. Weighted
/// answers are compared with `to_bits` — same floats, not close floats.
fn assert_bit_identical(a: &Arc<FrozenKb>, b: &Arc<FrozenKb>) {
    let (mut sa, mut sb) = (a.session(), b.session());
    assert_eq!(a.vars(), b.vars());
    assert_eq!(a.evidence(), b.evidence());
    assert_eq!(sa.count_models(), sb.count_models());
    assert_eq!(sa.is_consistent(), sb.is_consistent());
    assert_eq!(sa.log_weight().to_bits(), sb.log_weight().to_bits());
    match (sa.all_marginals(), sb.all_marginals()) {
        (Ok(ma), Ok(mb)) => {
            assert_eq!(ma.len(), mb.len());
            for ((va, pa), (vb, pb)) in ma.iter().zip(mb.iter()) {
                assert_eq!(va, vb);
                assert_eq!(pa.to_bits(), pb.to_bits());
            }
        }
        (ra, rb) => assert_eq!(ra.is_err(), rb.is_err()),
    }
    match (sa.mpe(), sb.mpe()) {
        (Ok(ma), Ok(mb)) => {
            assert_eq!(ma.log_weight.to_bits(), mb.log_weight.to_bits());
            assert_eq!(ma.assignment, mb.assignment);
        }
        (ra, rb) => assert_eq!(ra.is_err(), rb.is_err()),
    }
    for &v in a.vars() {
        assert_eq!(sa.entails(&[(v, true)]), sb.entails(&[(v, true)]));
    }
    // And with fresh session-local evidence on both sides.
    if let Some(&v) = a.vars().first() {
        let ra = sa.condition(&[(v, true)]);
        let rb = sb.condition(&[(v, true)]);
        assert_eq!(ra.is_err(), rb.is_err());
        if ra.is_ok() {
            assert_eq!(sa.log_weight().to_bits(), sb.log_weight().to_bits());
            assert_eq!(sa.count_models(), sb.count_models());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load is the identity as far as any query can tell, down to
    /// the last mantissa bit.
    #[test]
    fn save_load_roundtrip_is_bit_identical(n in 2u32..=12, m in 0usize..16, seed: u64) {
        let kb = frozen_instance(n, m, seed);
        let loaded = Arc::new(FrozenKb::load(save(&kb).as_slice()).unwrap());
        assert_bit_identical(&kb, &loaded);
    }

    /// Truncating a valid artifact anywhere fails with a typed error.
    #[test]
    fn truncation_never_panics(seed: u64, frac in 0.0f64..1.0) {
        let kb = frozen_instance(6, 8, seed);
        let bytes = save(&kb);
        let cut = (bytes.len() as f64 * frac) as usize;
        prop_assert!(FrozenKb::load(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }

    /// Flipping any single byte fails with a typed error (the per-section
    /// checksum catches payload damage; header fields are validated).
    #[test]
    fn any_flipped_byte_is_rejected(seed in 0u64..8, pos_seed: u64) {
        let kb = frozen_instance(6, 8, seed);
        let mut bytes = save(&kb);
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 0x01;
        prop_assert!(FrozenKb::load(bytes.as_slice()).is_err());
    }
}

#[test]
fn wrong_version_and_kind_are_typed() {
    let kb = frozen_instance(5, 6, 7);
    let mut bytes = save(&kb);
    // Format version lives right after the magic.
    bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
    assert!(matches!(
        FrozenKb::load(bytes.as_slice()),
        Err(SnapError::UnsupportedVersion { found: 999 })
    ));

    let mut bytes = save(&kb);
    bytes[0] = b'X';
    assert!(matches!(
        FrozenKb::load(bytes.as_slice()),
        Err(SnapError::BadMagic)
    ));

    // An SDD container is not a KB container.
    let mut sdd_bytes = Vec::new();
    kb.sdd().write_to(&mut sdd_bytes).unwrap();
    assert!(matches!(
        FrozenKb::load(sdd_bytes.as_slice()),
        Err(SnapError::WrongKind {
            expected: snap::KIND_KB,
            ..
        })
    ));
}

#[test]
fn empty_and_garbage_inputs_are_typed() {
    assert!(matches!(
        FrozenKb::load(&[][..]),
        Err(SnapError::Truncated { .. })
    ));
    let garbage = vec![0xABu8; 4096];
    assert!(FrozenKb::load(garbage.as_slice()).is_err());

    // A section whose declared length lies far beyond the file must fail
    // with truncation, not an attempted huge allocation. Byte 12 starts
    // the section count; the first section header follows at 16.
    let kb = frozen_instance(4, 4, 1);
    let mut bytes = save(&kb);
    // Oversize the first section's length field (tag u32 at 16, len u64 at 20).
    bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(FrozenKb::load(bytes.as_slice()).is_err());
}

/// The loaded base is fully serviceable as a branching base too: reopening
/// a mutable overlay and asserting fresh evidence works on top of a loaded
/// slab exactly as on a frozen one.
#[test]
fn loaded_kb_branches_and_reconditions() {
    let kb = frozen_instance(8, 10, 42);
    let loaded = Arc::new(FrozenKb::load(save(&kb).as_slice()).unwrap());
    let mut branch = loaded.branch();
    let before = branch.count_models();
    if branch.condition(&[(VarId(2), true)]).is_ok() {
        assert!(branch.count_models() <= before);
    }
    // A second generation survives: save the loaded KB again and reload.
    let again = Arc::new(FrozenKb::load(save(&loaded).as_slice()).unwrap());
    assert_bit_identical(&loaded, &again);
}
