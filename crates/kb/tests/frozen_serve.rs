//! Concurrent-read stress: 8 threads over one frozen slab, every answer
//! cross-checked **bit-for-bit** against the sequential mutable engine.
//!
//! Each thread opens its own [`kb::KbSession`] on a shared
//! [`kb::FrozenKb`], asserts a thread-specific evidence script, runs the
//! full query menu, retracts, and repeats — while seven other threads do
//! the same with *different* evidence over the very same `Arc`'d slab.
//! The expected answers are computed up front on a sequential
//! [`kb::KnowledgeBase`] running the identical scripts; every float is
//! compared by bit pattern, every count by exact `BigUint` equality.
//! This is the concurrency half of the freeze-and-serve contract (the
//! compile-time `Send + Sync` half is asserted inside the crates).

use arith::BigUint;
use cnf::{families, CnfFormula};
use kb::{KbSession, KnowledgeBase, Lit};
use sentential_core::Compiler;
use std::sync::Arc;
use vtree::VarId;

const THREADS: usize = 8;
/// Condition → query-menu → retract cycles per thread.
const ROUNDS: usize = 3;

/// Deterministic, non-degenerate prior of variable `i`.
fn prior(i: usize) -> f64 {
    0.2 + 0.6 * ((i * 7) % 10) as f64 / 10.0
}

fn build(f: &CnfFormula) -> KnowledgeBase {
    let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), f).expect("fixture compiles");
    for i in 0..f.num_vars() as usize {
        kb.set_probability(VarId(i as u32), prior(i)).unwrap();
    }
    kb
}

/// Thread `t`'s evidence: one polarity-alternating pin plus one distant
/// positive pin (distinct variables, so the script is never
/// self-contradictory; at most one `false` pin keeps the chain fixture
/// consistent).
fn script(t: usize, n: u32) -> Vec<Lit> {
    let a = VarId(t as u32 % n);
    let b = VarId((t as u32 + n / 2) % n);
    vec![(a, t.is_multiple_of(2)), (b, true)]
}

/// Everything one serving round answers, with floats as raw bits so
/// "close enough" can't mask a divergence.
#[derive(Debug, PartialEq)]
struct Answers {
    consistent: bool,
    log_weight: u64,
    prob_evidence: u64,
    query: u64,
    marginals: Vec<u64>,
    mpe_log_weight: u64,
    mpe_bits: Vec<bool>,
    count: BigUint,
    entailed: bool,
}

/// The query menu under `evidence`, on the sequential mutable engine.
fn answers_mut(kb: &mut KnowledgeBase, evidence: &[Lit], n: u32) -> Answers {
    kb.condition(evidence).expect("scripts are consistent");
    let out = Answers {
        consistent: kb.is_consistent(),
        log_weight: kb.log_weight().to_bits(),
        prob_evidence: kb.probability_of_evidence().unwrap().to_bits(),
        query: kb.query(&[(VarId(n - 1), true)]).unwrap().to_bits(),
        marginals: kb
            .all_marginals()
            .unwrap()
            .into_iter()
            .map(|(_, m)| m.to_bits())
            .collect(),
        mpe_log_weight: kb.mpe().unwrap().log_weight.to_bits(),
        mpe_bits: {
            let m = kb.mpe().unwrap();
            (0..n)
                .map(|i| m.assignment.get(VarId(i)) == Some(true))
                .collect()
        },
        count: kb.count_models(),
        entailed: kb.entails(&[(VarId(0), true), (VarId(1), true)]).unwrap(),
    };
    kb.retract();
    out
}

/// The same menu on a frozen session — same call sequence, same order.
fn answers_session(s: &mut KbSession, evidence: &[Lit], n: u32) -> Answers {
    s.condition(evidence).expect("scripts are consistent");
    let out = Answers {
        consistent: s.is_consistent(),
        log_weight: s.log_weight().to_bits(),
        prob_evidence: s.probability_of_evidence().unwrap().to_bits(),
        query: s.query(&[(VarId(n - 1), true)]).unwrap().to_bits(),
        marginals: s
            .all_marginals()
            .unwrap()
            .into_iter()
            .map(|(_, m)| m.to_bits())
            .collect(),
        mpe_log_weight: s.mpe().unwrap().log_weight.to_bits(),
        mpe_bits: {
            let m = s.mpe().unwrap();
            (0..n)
                .map(|i| m.assignment.get(VarId(i)) == Some(true))
                .collect()
        },
        count: s.count_models(),
        entailed: s.entails(&[(VarId(0), true), (VarId(1), true)]).unwrap(),
    };
    s.retract();
    out
}

#[test]
fn eight_threads_over_one_slab_match_the_sequential_engine() {
    let fixtures: [(&str, CnfFormula); 2] = [
        ("chain", families::chain_cnf(60)),
        ("band_w3", families::band_cnf(30, 3)),
    ];
    for (label, f) in &fixtures {
        let n = f.num_vars();
        // Sequential oracle: the mutable engine runs every thread's script.
        let mut seq = build(f);
        let expected: Vec<Answers> = (0..THREADS)
            .map(|t| answers_mut(&mut seq, &script(t, n), n))
            .collect();

        // 8 threads, one shared slab, private sessions — repeated rounds
        // so warm-cache answers are checked too, not just cold ones.
        let frozen = Arc::new(build(f).freeze());
        std::thread::scope(|sc| {
            for (t, want) in expected.iter().enumerate() {
                let frozen = &frozen;
                let ev = script(t, n);
                sc.spawn(move || {
                    let mut s = frozen.session();
                    for round in 0..ROUNDS {
                        let got = answers_session(&mut s, &ev, n);
                        assert_eq!(
                            &got, want,
                            "{label}: thread {t} round {round} diverged from the sequential engine"
                        );
                    }
                });
            }
        });
    }
}
