//! Deep-chain stress: the iterative-engine invariant, end to end.
//!
//! The chain family compiles to vtree/SDD structures as *deep* as the
//! variable count, which is exactly where the pre-iterative engines blew
//! the stack (~10k variables needed a dedicated 256 MB thread). These
//! tests drive a full knowledge-base session — `compile_cnf` →
//! `condition` → `all_marginals` → `mpe` → `enumerate_models` — on the
//! harness's **default-size test thread**, at 100k variables, with every
//! numeric answer checked against an independent O(n) chain-DP oracle;
//! the same session at small scale is additionally pinned against the
//! exact `Rational` engine (the `LogF64`/`Rat` cross-check).

use arith::{BigUint, Rational};
use cnf::families;
use kb::KnowledgeBase;
use sentential_core::Compiler;
use vtree::VarId;

/// Variables the deep test runs (the acceptance bar: ≥ 100k on a default
/// stack).
const DEEP_N: u32 = 100_000;

fn log_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// Independent oracle for the chain `⋀ (xᵢ ∨ xᵢ₊₁)`: forward/backward
/// message passing over the line MRF whose pairwise factor forbids two
/// adjacent `false`s. `lw[i] = (log w⁻, log w⁺)` (evidence = `-∞` on the
/// suppressed polarity). Returns `(log Z, per-variable P(xᵢ = 1), best
/// log-weight)` — the exact quantities `log_weight`, `all_marginals` and
/// `mpe` must reproduce. O(n) and recursion-free, so it scales to any n.
fn chain_oracle(lw: &[(f64, f64)]) -> (f64, Vec<f64>, f64) {
    let n = lw.len();
    let w = |i: usize, b: bool| if b { lw[i].1 } else { lw[i].0 };
    let allowed = |a: bool, b: bool| a || b;
    // Sum-product and max-product forward messages, in lockstep.
    let mut alpha = vec![(0.0f64, 0.0f64); n];
    let mut alpha_max = vec![(0.0f64, 0.0f64); n];
    alpha[0] = (w(0, false), w(0, true));
    alpha_max[0] = alpha[0];
    for i in 1..n {
        for b in [false, true] {
            let (mut s, mut m) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for a in [false, true] {
                if !allowed(a, b) {
                    continue;
                }
                let pa = if a { alpha[i - 1].1 } else { alpha[i - 1].0 };
                let pm = if a {
                    alpha_max[i - 1].1
                } else {
                    alpha_max[i - 1].0
                };
                s = log_sum_exp(s, pa);
                m = m.max(pm);
            }
            let (s, m) = (s + w(i, b), m + w(i, b));
            if b {
                alpha[i].1 = s;
                alpha_max[i].1 = m;
            } else {
                alpha[i].0 = s;
                alpha_max[i].0 = m;
            }
        }
    }
    let log_z = log_sum_exp(alpha[n - 1].0, alpha[n - 1].1);
    let best = alpha_max[n - 1].0.max(alpha_max[n - 1].1);
    // Backward messages for the marginals.
    let mut beta = vec![(0.0f64, 0.0f64); n];
    for i in (0..n - 1).rev() {
        for b in [false, true] {
            let mut s = f64::NEG_INFINITY;
            for a in [false, true] {
                if !allowed(b, a) {
                    continue;
                }
                let nb = if a { beta[i + 1].1 } else { beta[i + 1].0 };
                s = log_sum_exp(s, w(i + 1, a) + nb);
            }
            if b {
                beta[i].1 = s;
            } else {
                beta[i].0 = s;
            }
        }
    }
    let marginals = (0..n)
        .map(|i| (alpha[i].1 + beta[i].1 - log_z).exp())
        .collect();
    (log_z, marginals, best)
}

/// The serving compiler for chain-scale sessions: exact counting off (the
/// up-front `BigUint` count stage is quadratic at this depth; counts stay
/// available on demand).
fn serving_compiler() -> Compiler {
    Compiler::builder().exact_counts(false).build()
}

/// A deterministic, non-degenerate probability for variable `i`.
fn prior(i: u32) -> f64 {
    0.15 + 0.7 * ((i as usize * 13) % 10) as f64 / 10.0
}

/// The full session at oracle-verifiable scale, additionally pinned
/// against the exact `Rational` engine: the `LogF64` serving answers must
/// match exact rational weighted counts to 1e-9, and the oracle must agree
/// with both — which is what licenses the oracle as the only anchor at
/// 100k. (The `Rat` side is kept at n = 48 with a handful of sampled
/// numerators: exact rational evaluation normalizes through bignum gcds,
/// whose cost grows superlinearly — ~40 s per evaluation at n = 120 in
/// debug builds — and escaping exactly that cost is the log carrier's
/// reason to exist.)
#[test]
fn chain_session_matches_exact_rationals_and_oracle_at_small_scale() {
    let n = 48u32;
    let f = families::chain_cnf(n);
    let mut kb = KnowledgeBase::compile_cnf(&serving_compiler(), &f).expect("compiles");
    for i in 0..n {
        kb.set_probability(VarId(i), prior(i)).unwrap();
    }
    let evidence = (VarId(n / 2), true);
    kb.condition(&[evidence]).unwrap();

    // Oracle weights under the evidence.
    let lw: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let p = prior(i);
            if i == evidence.0 .0 {
                (f64::NEG_INFINITY, p.ln())
            } else {
                ((1.0 - p).ln(), p.ln())
            }
        })
        .collect();
    let (log_z, oracle_marginals, oracle_best) = chain_oracle(&lw);

    // The serving layer's answers, collected first (queries take &mut).
    let lnw = kb.log_weight();
    let marginals = kb.all_marginals().unwrap();
    let mpe = kb.mpe().unwrap();
    let top = kb.enumerate_models(3);

    // Exact rational anchor: the same session weights as exact rationals,
    // prior(i) = 0.15 + 0.07·((13i) mod 10) = (15 + 7·((13i) mod 10))/100.
    let compiled = kb.sdd();
    let root = kb.root();
    let p_rat = |i: u32| {
        Rational::from_ratio(
            BigUint::from_u64(15 + 7 * ((i as u64 * 13) % 10)),
            BigUint::from_u64(100),
        )
    };
    for i in 0..n {
        let diff = p_rat(i).to_f64() - prior(i);
        assert!(diff.abs() < 1e-12, "exact prior reconstruction at {i}");
    }
    let weight_of = |pin: Option<(VarId, bool)>| {
        move |v: VarId| {
            let p = p_rat(v.0);
            let one = Rational::one();
            let (mut wn, mut wp) = (one.sub(&p), p);
            if v == evidence.0 {
                wn = Rational::zero();
            }
            if let Some((pv, pb)) = pin {
                if v == pv {
                    if pb {
                        wn = Rational::zero();
                    } else {
                        wp = Rational::zero();
                    }
                }
            }
            (wn, wp)
        }
    };
    let denom = compiled.weighted_count_exact(root, weight_of(None));
    assert!(!denom.is_zero(), "evidence is consistent");

    // log_weight (LogF64) vs exact rationals vs oracle.
    let ln_denom = ln_rational(&denom);
    assert!(
        (lnw - ln_denom).abs() < 1e-9 * ln_denom.abs().max(1.0),
        "LogF64 log-weight {lnw} vs exact {ln_denom}"
    );
    assert!(
        (lnw - log_z).abs() < 1e-9 * log_z.abs().max(1.0),
        "oracle log Z {log_z} vs kb {lnw}"
    );

    // Marginals: kb (LogF64 two-pass) vs exact rational ratio vs oracle.
    for &(v, got) in marginals.iter().step_by(10) {
        let numer = compiled.weighted_count_exact(root, weight_of(Some((v, true))));
        let exact = if numer.is_zero() {
            0.0
        } else {
            (ln_rational(&numer) - ln_denom).exp()
        };
        assert!(
            (got - exact).abs() < 1e-9,
            "marginal {v}: kb {got} vs exact {exact}"
        );
        let oracle = oracle_marginals[v.0 as usize];
        assert!(
            (got - oracle).abs() < 1e-9,
            "marginal {v}: kb {got} vs oracle {oracle}"
        );
    }

    // MPE vs the oracle's max-product value (the witness itself is
    // verified inside mpe(): satisfies the SDD, the evidence, and its
    // weight reproduces the maximum).
    assert!(
        (mpe.log_weight - oracle_best).abs() < 1e-9 * oracle_best.abs().max(1.0),
        "mpe {} vs oracle {oracle_best}",
        mpe.log_weight
    );
    assert_eq!(top.len(), 3);
    assert!(
        (top[0].log_weight - mpe.log_weight).abs() < 1e-9,
        "top-1 = MPE"
    );
    assert!(top[0].log_weight >= top[1].log_weight && top[1].log_weight >= top[2].log_weight);
}

/// The acceptance bar: a 100k-variable chain knowledge-base session —
/// compile, condition, all_marginals, mpe, enumerate_models — completes
/// on the harness's default-size thread, answers matching the O(n)
/// oracle. Before the worklist rewrite every stage of this overflowed an
/// 8 MB stack (the engines recursed to vtree depth ≈ 100k).
#[test]
fn hundred_thousand_variable_session_on_a_default_stack() {
    let n = DEEP_N;
    let f = families::chain_cnf(n);
    let mut kb = KnowledgeBase::compile_cnf(&serving_compiler(), &f).expect("compiles at 100k");
    assert_eq!(kb.vars().len(), n as usize);

    // Weight a scattered handful of variables (each update walks one
    // leaf-to-root cone; the rest keep counting semantics).
    let weighted: Vec<u32> = (0..10).map(|j| j * (n / 10) + 7).collect();
    for &i in &weighted {
        kb.set_probability(VarId(i), prior(i)).unwrap();
    }
    let evidence = (VarId(n / 2), true);
    kb.condition(&[evidence]).unwrap();
    assert!(kb.is_consistent());

    // The oracle's weight table under the same session state.
    let lw: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let (wn, wp) = if weighted.contains(&i) {
                let p = prior(i);
                ((1.0 - p).ln(), p.ln())
            } else {
                (0.0, 0.0)
            };
            if i == evidence.0 .0 {
                (f64::NEG_INFINITY, wp)
            } else {
                (wn, wp)
            }
        })
        .collect();
    let (log_z, oracle_marginals, oracle_best) = chain_oracle(&lw);

    // Weighted count of the conditioned session, in log space.
    let lnw = kb.log_weight();
    assert!(lnw.is_finite());
    assert!(
        (lnw - log_z).abs() < 1e-6 * log_z.abs().max(1.0),
        "kb log-weight {lnw} vs oracle {log_z}"
    );

    // All 100k posterior marginals in one two-pass sweep.
    let marginals = kb.all_marginals().unwrap();
    assert_eq!(marginals.len(), n as usize);
    let pinned_idx = (n / 2) as usize;
    assert!(
        (marginals[pinned_idx].1 - 1.0).abs() < 1e-9,
        "conditioned variable is pinned"
    );
    for (i, &(v, m)) in marginals.iter().enumerate().step_by(4999) {
        assert_eq!(v.0 as usize, i);
        assert!((0.0..=1.0 + 1e-12).contains(&m), "marginal {v} = {m}");
        let oracle = oracle_marginals[i];
        assert!(
            (m - oracle).abs() < 1e-6,
            "marginal {v}: kb {m} vs oracle {oracle}"
        );
    }

    // MPE: the argmax sweep plus its internally verified witness (the
    // witness is checked against the compiled SDD, the evidence, and its
    // own weight inside mpe()).
    let mpe = kb.mpe().unwrap();
    assert!(
        (mpe.log_weight - oracle_best).abs() < 1e-6 * oracle_best.abs().max(1.0),
        "mpe {} vs oracle {oracle_best}",
        mpe.log_weight
    );
    assert_eq!(mpe.assignment.get(evidence.0), Some(true));
    assert!(f.eval(&mpe.assignment), "MPE witness satisfies the formula");

    // Top-k enumeration at depth: distinct models, sorted, top-1 = MPE.
    let top = kb.enumerate_models(2);
    assert_eq!(top.len(), 2);
    assert!(
        (top[0].log_weight - mpe.log_weight).abs() < 1e-9,
        "top-1 = MPE"
    );
    assert!(top[0].log_weight >= top[1].log_weight);
    assert_ne!(
        top[0].assignment, top[1].assignment,
        "determinism: no duplicate models"
    );
    assert!(f.eval(&top[1].assignment));
}

/// The frozen half of the acceptance bar: the same 100k-variable chain
/// session served through `freeze()` → `FrozenKb::session()` on the
/// default test thread, every answer **bit-identical** to the mutable
/// path captured just before the freeze, plus a copy-on-write `branch()`
/// driving the overlay apply machinery at full depth.
#[test]
fn hundred_thousand_variable_frozen_session_on_a_default_stack() {
    let n = DEEP_N;
    let f = families::chain_cnf(n);
    let mut kb = KnowledgeBase::compile_cnf(&serving_compiler(), &f).expect("compiles at 100k");
    let weighted: Vec<u32> = (0..10).map(|j| j * (n / 10) + 7).collect();
    for &i in &weighted {
        kb.set_probability(VarId(i), prior(i)).unwrap();
    }
    kb.condition(&[(VarId(n / 2), true)]).unwrap();

    // The mutable path's answers, captured before the freeze consumes it…
    let lnw = kb.log_weight();
    let marginals = kb.all_marginals().unwrap();
    let mpe = kb.mpe().unwrap();

    // …must reappear bit-for-bit through the frozen slab.
    let frozen = std::sync::Arc::new(kb.freeze());
    let mut s = frozen.session();
    assert_eq!(s.log_weight().to_bits(), lnw.to_bits());
    let frozen_marginals = s.all_marginals().unwrap();
    assert_eq!(frozen_marginals.len(), marginals.len());
    for (&(v, a), &(w, b)) in marginals.iter().zip(&frozen_marginals) {
        assert_eq!(v, w);
        assert_eq!(a.to_bits(), b.to_bits(), "marginal {v} diverged");
    }
    let frozen_mpe = s.mpe().unwrap();
    assert_eq!(frozen_mpe.log_weight.to_bits(), mpe.log_weight.to_bits());
    assert_eq!(frozen_mpe.assignment, mpe.assignment);

    // Session-local evidence at depth, then back to the frozen baseline.
    let extra = (VarId(3), true);
    let posterior = s.query(&[extra]).unwrap();
    s.condition(&[extra]).unwrap();
    assert!(s.is_consistent());
    assert!(s.log_weight().is_finite());
    s.retract();
    assert_eq!(s.log_weight().to_bits(), lnw.to_bits());

    // Copy-on-write branch: the mutable apply machinery over the overlay
    // manager, still on the default stack, agreeing with the session's
    // weight-space answer for the same evidence.
    let mut branch = frozen.branch();
    branch.condition(&[extra]).unwrap();
    assert!(branch.is_consistent());
    let branch_posterior = (branch.log_weight() - lnw).exp();
    assert!(
        (posterior - branch_posterior).abs() < 1e-9,
        "session query {posterior} vs branch posterior {branch_posterior}"
    );
}

/// The batched half of the acceptance bar: a full B = 16 evidence batch
/// over the 100k-variable frozen chain, on the default test thread. Every
/// lane of `marginal_batch` must be bit-identical to the scalar
/// condition-then-marginal loop (the batched sweep is the same per-lane
/// op sequence, just column-parallel), `query_batch` to the scalar
/// `query` loop, and `mpe_batch` — score and full 100k-bit witness — to
/// the scalar condition-then-mpe loop — the deep-vtree case of the
/// batched-core contract, where the lane tables run to ~2M gate columns.
#[test]
fn sixteen_lane_batch_over_the_hundred_thousand_variable_kb() {
    let n = DEEP_N;
    let f = families::chain_cnf(n);
    let mut kb = KnowledgeBase::compile_cnf(&serving_compiler(), &f).expect("compiles at 100k");
    let weighted: Vec<u32> = (0..10).map(|j| j * (n / 10) + 7).collect();
    for &i in &weighted {
        kb.set_probability(VarId(i), prior(i)).unwrap();
    }
    let frozen = std::sync::Arc::new(kb.freeze());
    let target = VarId(n / 2);

    // 16 single-literal evidence lanes scattered across the chain's full
    // depth, alternating polarity.
    let batch: Vec<Vec<(VarId, bool)>> = (0..16u32)
        .map(|j| vec![(VarId((j * (n / 16) + 3) % n), j % 2 == 0)])
        .collect();

    let mut batched = frozen.session();
    let marginals = batched.marginal_batch(target, &batch);
    let joints = batched.query_batch(&batch);
    let mpes = batched.mpe_batch(&batch);

    let mut scalar = frozen.session();
    for (l, e) in batch.iter().enumerate() {
        let want_joint = scalar.query(e).expect("chain evidence is consistent");
        let got_joint = joints[l].as_ref().expect("batched lane is consistent");
        assert_eq!(
            got_joint.to_bits(),
            want_joint.to_bits(),
            "query lane {l} diverged at depth"
        );
        scalar.condition(e).unwrap();
        let want = scalar.marginal(target).unwrap();
        let want_mpe = scalar.mpe().unwrap();
        scalar.retract();
        let got = marginals[l].as_ref().expect("batched lane is consistent");
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "marginal lane {l} diverged at depth"
        );
        assert!((0.0..=1.0 + 1e-12).contains(got));
        // mpe_batch: score AND 100k-bit witness, bit-identical to the
        // scalar argmax descent (the MaxPlus lane decode reproduces its
        // tie-breaking exactly).
        let got_mpe = mpes[l].as_ref().expect("batched lane is consistent");
        assert_eq!(
            got_mpe.log_weight.to_bits(),
            want_mpe.log_weight.to_bits(),
            "mpe lane {l} score diverged at depth"
        );
        assert_eq!(
            got_mpe.assignment, want_mpe.assignment,
            "mpe lane {l} witness diverged at depth"
        );
        assert_eq!(got_mpe.assignment.get(e[0].0), Some(e[0].1));
    }
}

/// `ln` of a positive rational at any size: split numerator and
/// denominator into `mantissa · 2^shift` (the `to_f64` route overflows
/// past ~2^1024).
fn ln_rational(r: &Rational) -> f64 {
    fn ln_big(b: &BigUint) -> f64 {
        let bits = b.bits();
        if bits <= 53 {
            return b.to_f64().ln();
        }
        let shift = bits - 53;
        b.shr(shift).to_f64().ln() + shift as f64 * std::f64::consts::LN_2
    }
    assert!(!r.is_negative() && !r.is_zero());
    ln_big(r.numer()) - ln_big(r.denom())
}
