//! Property tests for the knowledge-base serving layer (via the workspace
//! proptest shim): every KB query is pinned against brute-force
//! enumeration on kernel-sized random formulas, and the log-space carrier
//! against the exact rational engine on the chain families.

use arith::{LogF64, Rational};
use boolfunc::Assignment;
use cnf::{families, CnfFormula};
use kb::{FrozenKb, KbError, KnowledgeBase, Lit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sentential_core::Compiler;
use std::sync::Arc;
use vtree::VarId;

/// A seeded random formula over `n ≤ 16` variables plus per-variable
/// probabilities bounded away from 0 and 1 (no degenerate weights).
///
/// Clauses draw their variables from a random sliding window of width ≤ 3,
/// with uniform polarities: the polarity/satisfiability structure is fully
/// random (unsatisfiable instances included), while the primal treewidth
/// stays ≤ 3 — an *unstructured* random CNF at treewidth ~10 makes the
/// bottom-up apply compilation take tens of seconds per case in debug
/// builds, which is the regime the paper's pipeline is explicitly not for.
fn random_instance(n: u32, m: usize, seed: u64) -> (CnfFormula, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = 3u32.min(n);
    let mut f = CnfFormula::new(n);
    for _ in 0..m {
        let start = rng.gen_range(0..n - w + 1);
        let k = rng.gen_range(1..=w);
        let mut vars: Vec<u32> = (start..start + w).collect();
        for i in (1..vars.len()).rev() {
            vars.swap(i, rng.gen_range(0..i as u32 + 1) as usize);
        }
        f.add_clause(
            vars.into_iter()
                .take(k as usize)
                .map(|v| (VarId(v), rng.gen_bool(0.5)))
                .collect(),
        );
    }
    let probs = (0..n)
        .map(|_| 0.05 + 0.9 * rng.gen_range(0.0..1.0))
        .collect();
    (f, probs)
}

fn kb_of(f: &CnfFormula, probs: &[f64]) -> KnowledgeBase {
    let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), f).expect("compiles");
    for (i, &p) in probs.iter().enumerate() {
        kb.set_probability(VarId(i as u32), p).unwrap();
    }
    kb
}

/// Weight of one complete assignment (bit `i` = variable `i`) under
/// independent probabilities.
fn weight_of(mask: u64, probs: &[f64]) -> f64 {
    probs
        .iter()
        .enumerate()
        .map(|(i, &p)| if mask >> i & 1 == 1 { p } else { 1.0 - p })
        .product()
}

/// All models of `f ∧ lits` with their weights, by enumeration over raw
/// bitmasks (bit `i` = variable `i`) — cheap enough for 2^16 worlds per
/// proptest case.
fn brute_models(f: &CnfFormula, probs: &[f64], lits: &[(VarId, bool)]) -> Vec<(u64, f64)> {
    let holds = |mask: u64| {
        f.clauses()
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| (mask >> v.0 & 1 == 1) == pos))
            && lits.iter().all(|&(v, b)| (mask >> v.0 & 1 == 1) == b)
    };
    (0..1u64 << probs.len())
        .filter(|&m| holds(m))
        .map(|m| (m, weight_of(m, probs)))
        .collect()
}

/// Does `a` denote the same world as `mask`?
fn agrees(a: &Assignment, mask: u64, n: usize) -> bool {
    (0..n).all(|i| a.get(VarId(i as u32)) == Some(mask >> i & 1 == 1))
}

/// `ln` of a positive rational, exactly enough for 1e-9 comparisons at any
/// size: split numerator and denominator into `mantissa · 2^shift`.
fn ln_rational(r: &Rational) -> f64 {
    fn ln_big(b: &arith::BigUint) -> f64 {
        let bits = b.bits();
        if bits <= 53 {
            return b.to_f64().ln();
        }
        let shift = bits - 53;
        b.shr(shift).to_f64().ln() + shift as f64 * std::f64::consts::LN_2
    }
    assert!(!r.is_negative() && !r.is_zero());
    ln_big(r.numer()) - ln_big(r.denom())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `mpe()` finds exactly the maximum brute-force model weight (and its
    /// witness carries that weight — witnesses may differ under ties, the
    /// weight may not).
    #[test]
    fn mpe_matches_brute_force(n in 2u32..=16, m in 0usize..20, seed: u64) {
        let (f, probs) = random_instance(n, m, seed);
        let mut kb = kb_of(&f, &probs);
        let models = brute_models(&f, &probs, &[]);
        match kb.mpe() {
            Err(KbError::Inconsistent) => prop_assert!(models.is_empty(), "KB says unsat"),
            Err(e) => panic!("unexpected error {e}"),
            Ok(mpe) => {
                let best = models
                    .iter()
                    .map(|(_, w)| *w)
                    .fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(!models.is_empty());
                prop_assert!(f.eval(&mpe.assignment), "witness satisfies f");
                let got = mpe.weight();
                prop_assert!(
                    (got - best).abs() <= 1e-9 * best,
                    "mpe weight {got} vs brute best {best}"
                );
            }
        }
    }

    /// `all_marginals()` agrees with brute-force `P(v = 1 | F)` for every
    /// variable.
    #[test]
    fn marginals_match_brute_force(n in 2u32..=16, m in 0usize..20, seed: u64) {
        let (f, probs) = random_instance(n, m, seed);
        let mut kb = kb_of(&f, &probs);
        let models = brute_models(&f, &probs, &[]);
        let total: f64 = models.iter().map(|(_, w)| w).sum();
        match kb.all_marginals() {
            Err(KbError::Inconsistent) => prop_assert!(models.is_empty()),
            Err(e) => panic!("unexpected error {e}"),
            Ok(marginals) => {
                prop_assert!(total > 0.0);
                for (v, got) in marginals {
                    let with_v: f64 = models
                        .iter()
                        .filter(|&&(mask, _)| mask >> v.0 & 1 == 1)
                        .map(|(_, w)| w)
                        .sum();
                    let expect = with_v / total;
                    prop_assert!(
                        (got - expect).abs() < 1e-9,
                        "marginal {v}: {got} vs {expect}"
                    );
                }
            }
        }
    }

    /// Top-k enumeration returns exactly the k heaviest brute-force
    /// models: distinct, satisfying, sorted, and weight-for-weight equal
    /// to the sorted brute-force prefix (k is capped — carrying thousands
    /// of candidate models per gate is not what top-k is for).
    #[test]
    fn enumeration_is_the_sorted_brute_force_prefix(n in 2u32..=12, m in 0usize..16, seed: u64) {
        let (f, probs) = random_instance(n, m, seed);
        let mut kb = kb_of(&f, &probs);
        let mut models = brute_models(&f, &probs, &[]);
        models.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let k = models.len().min(9) + 2;
        let listed = kb.enumerate_models(k);
        prop_assert_eq!(listed.len(), models.len().min(k));
        let mut seen = std::collections::HashSet::new();
        for (rank, m) in listed.iter().enumerate() {
            prop_assert!(f.eval(&m.assignment));
            let twin = models
                .iter()
                .find(|&&(mask, _)| agrees(&m.assignment, mask, n as usize))
                .expect("every enumerated model is a brute-force model");
            prop_assert!((m.weight() - twin.1).abs() < 1e-12);
            prop_assert!(seen.insert(twin.0), "duplicate model in enumeration");
            // Weight-for-weight the sorted brute-force prefix (witnesses
            // may permute within ties).
            prop_assert!(
                (m.weight() - models[rank].1).abs() < 1e-12,
                "rank {rank}: {} vs {}",
                m.weight(),
                models[rank].1
            );
        }
        for w in listed.windows(2) {
            prop_assert!(w[0].log_weight >= w[1].log_weight - 1e-12);
        }
    }

    /// The chain rule on the serving layer: P(q ∧ e) = P(q | e) · P(e),
    /// with P(q | e) read off a *conditioned* KB and both other factors
    /// off the unconditioned one.
    #[test]
    fn condition_then_count_is_consistent(n in 3u32..=14, m in 0usize..18, seed: u64) {
        let (f, probs) = random_instance(n, m, seed);
        let mut kb = kb_of(&f, &probs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE51D);
        let ev = (VarId(rng.gen_range(0..n)), rng.gen_bool(0.5));
        let qv = VarId((ev.0 .0 + 1 + rng.gen_range(0..n - 1)) % n);
        let q = (qv, rng.gen_bool(0.5));
        prop_assume!(q.0 != ev.0);

        // P(q ∧ e) and P(e) on the unconditioned base.
        let p_q_and_e = kb.query(&[q, ev]);
        let p_e = kb.query(&[ev]);
        let (Ok(p_q_and_e), Ok(p_e)) = (p_q_and_e, p_e) else {
            // Unsatisfiable formula: nothing to check.
            prop_assert!(brute_models(&f, &probs, &[]).is_empty());
            continue;
        };
        // P(q | e) on the conditioned base.
        match kb.condition(&[ev]) {
            Err(KbError::Inconsistent) => {
                prop_assert!(brute_models(&f, &probs, &[ev]).is_empty());
                kb.retract();
                continue;
            }
            Err(e) => panic!("unexpected error {e}"),
            Ok(()) => {}
        }
        if p_e == 0.0 {
            // Structurally consistent but measure-zero evidence cannot be
            // conditioned on numerically.
            continue;
        }
        let p_q_given_e = kb.marginal(q.0).unwrap();
        let p_q_given_e = if q.1 { p_q_given_e } else { 1.0 - p_q_given_e };
        prop_assert!(
            (p_q_and_e - p_q_given_e * p_e).abs() < 1e-9,
            "P(q ∧ e) = {p_q_and_e} vs P(q|e)·P(e) = {}",
            p_q_given_e * p_e
        );
        // And the brute-force anchor for the joint.
        let total: f64 = brute_models(&f, &probs, &[]).iter().map(|(_, w)| w).sum();
        let joint: f64 = brute_models(&f, &probs, &[q, ev]).iter().map(|(_, w)| w).sum();
        prop_assert!((p_q_and_e - joint / total).abs() < 1e-9);
    }
}

/// A random batch of evidence sets (0–2 literals each) over `n` variables.
fn random_batch(n: u32, lanes: usize, rng: &mut StdRng) -> Vec<Vec<Lit>> {
    (0..lanes)
        .map(|_| {
            (0..rng.gen_range(0..=2usize))
                .map(|_| (VarId(rng.gen_range(0..n)), rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// The scalar serving loop for one lane of a marginal batch: a fresh
/// session (so a failed `condition` cannot leak state into the next
/// lane), evidence asserted, one marginal read.
fn scalar_marginal(frozen: &Arc<FrozenKb>, target: VarId, e: &[Lit]) -> Result<f64, KbError> {
    let mut s = frozen.session();
    s.condition(e)?;
    s.marginal(target)
}

/// As [`scalar_marginal`], for the full marginal table.
fn scalar_all_marginals(frozen: &Arc<FrozenKb>, e: &[Lit]) -> Result<Vec<(VarId, f64)>, KbError> {
    let mut s = frozen.session();
    s.condition(e)?;
    s.all_marginals()
}

/// As [`scalar_marginal`], for one lane of an MPE batch.
fn scalar_mpe(frozen: &Arc<FrozenKb>, e: &[Lit]) -> Result<kb::Model, KbError> {
    let mut s = frozen.session();
    s.condition(e)?;
    s.mpe()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batched session APIs are **bit-identical**, lane for lane, to
    /// the scalar serving loop — `query_batch` vs `query`, and the
    /// marginal batches vs condition-then-read — and invariant under lane
    /// permutation (a lane's answer depends only on its own evidence, not
    /// on its neighbors). `Ok` lanes are additionally anchored to
    /// brute-force enumeration.
    #[test]
    fn batched_answers_are_the_scalar_loop_bit_for_bit(
        n in 2u32..=16, m in 0usize..20, seed: u64
    ) {
        let (f, probs) = random_instance(n, m, seed);
        let frozen = Arc::new(kb_of(&f, &probs).freeze());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
        let lanes = rng.gen_range(1..=9usize);
        let batch = random_batch(n, lanes, &mut rng);
        let target = VarId(rng.gen_range(0..n));

        let mut batched = frozen.session();
        let mut scalar = frozen.session();

        // query_batch ≡ query, to the bit (errors included: KbError is
        // PartialEq).
        let joints = batched.query_batch(&batch);
        for (l, e) in batch.iter().enumerate() {
            prop_assert_eq!(
                joints[l].clone().map(f64::to_bits),
                scalar.query(e).map(f64::to_bits),
                "query lane {}", l
            );
        }

        // marginal_batch ≡ condition + marginal on a fresh session.
        let marginals = batched.marginal_batch(target, &batch);
        for (l, e) in batch.iter().enumerate() {
            prop_assert_eq!(
                marginals[l].clone().map(f64::to_bits),
                scalar_marginal(&frozen, target, e).map(f64::to_bits),
                "marginal lane {}", l
            );
        }

        // all_marginals_batch ≡ condition + all_marginals, every variable.
        let tables = batched.all_marginals_batch(&batch);
        for (l, e) in batch.iter().enumerate() {
            let want = scalar_all_marginals(&frozen, e);
            let got = tables[l].clone();
            prop_assert_eq!(
                got.map(|t| t.into_iter().map(|(v, p)| (v, p.to_bits())).collect::<Vec<_>>()),
                want.map(|t| t.into_iter().map(|(v, p)| (v, p.to_bits())).collect::<Vec<_>>()),
                "all_marginals lane {}", l
            );
        }

        // Lane permutation: shuffling the batch shuffles the answers and
        // changes nothing else.
        let mut perm: Vec<usize> = (0..lanes).collect();
        for i in (1..lanes).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let shuffled: Vec<Vec<Lit>> = perm.iter().map(|&i| batch[i].clone()).collect();
        let reshuffled = batched.marginal_batch(target, &shuffled);
        for (j, &i) in perm.iter().enumerate() {
            prop_assert_eq!(
                reshuffled[j].clone().map(f64::to_bits),
                marginals[i].clone().map(f64::to_bits),
                "permuted lane {} (was {})", j, i
            );
        }

        // Brute-force anchor for the Ok lanes.
        for (l, e) in batch.iter().enumerate() {
            let Ok(p) = marginals[l] else { continue };
            let models = brute_models(&f, &probs, e);
            let total: f64 = models.iter().map(|(_, w)| w).sum();
            prop_assert!(total > 0.0, "Ok lane over an empty model set");
            let with_t: f64 = models
                .iter()
                .filter(|&&(mask, _)| mask >> target.0 & 1 == 1)
                .map(|(_, w)| w)
                .sum();
            prop_assert!(
                (p - with_t / total).abs() < 1e-9,
                "lane {}: {} vs brute {}", l, p, with_t / total
            );
        }
    }

    /// `mpe_batch` is **bit-identical**, lane for lane, to the scalar
    /// serving loop (fresh session, `condition`, `mpe`) — score AND
    /// witness, errors included. The MaxPlus lane decode reproduces the
    /// scalar argmax descent's tie-breaking exactly, so even degenerate
    /// weight ties may not flip a single assignment bit. Ok lanes are
    /// additionally anchored to brute-force enumeration.
    #[test]
    fn mpe_batch_is_the_scalar_loop_bit_for_bit(
        n in 2u32..=16, m in 0usize..20, seed: u64
    ) {
        let (f, probs) = random_instance(n, m, seed);
        let frozen = Arc::new(kb_of(&f, &probs).freeze());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3A9E);
        let lanes = rng.gen_range(1..=9usize);
        let batch = random_batch(n, lanes, &mut rng);

        let mut batched = frozen.session();
        let decoded = batched.mpe_batch(&batch);
        prop_assert_eq!(decoded.len(), batch.len());
        for (l, e) in batch.iter().enumerate() {
            let want = scalar_mpe(&frozen, e);
            match (&decoded[l], &want) {
                (Ok(got), Ok(w)) => {
                    prop_assert_eq!(
                        got.log_weight.to_bits(), w.log_weight.to_bits(),
                        "lane {} score", l
                    );
                    prop_assert_eq!(
                        &got.assignment, &w.assignment,
                        "lane {} witness", l
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "lane {} error", l),
                (got, want) => prop_assert!(
                    false,
                    "lane {} diverged: batched ok={} scalar ok={}",
                    l, got.is_ok(), want.is_ok()
                ),
            }
            // Brute-force anchor: the batched witness is a maximal model
            // of f ∧ e.
            if let Ok(got) = &decoded[l] {
                let models = brute_models(&f, &probs, e);
                let best = models
                    .iter()
                    .map(|(_, w)| *w)
                    .fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(!models.is_empty(), "Ok lane over an empty model set");
                prop_assert!(f.eval(&got.assignment), "lane {} witness satisfies f", l);
                prop_assert!(
                    e.iter().all(|&(v, b)| got.assignment.get(v) == Some(b)),
                    "lane {} witness honors its evidence", l
                );
                let gw = got.weight();
                prop_assert!(
                    (gw - best).abs() <= 1e-9 * best,
                    "lane {}: mpe weight {} vs brute best {}", l, gw, best
                );
            }
        }
    }
}

/// The same bit-identity contract on the structured families the strategy
/// matrix serves: weighted chains and bands up to 16 variables, a full
/// 16-lane batch each, anchored to brute force.
#[test]
fn batched_answers_match_the_scalar_loop_on_chains_and_bands() {
    let cases: Vec<(&str, CnfFormula)> = vec![
        ("chain_8", families::chain_cnf(8)),
        ("chain_16", families::chain_cnf(16)),
        ("band_12_w3", families::band_cnf(12, 3)),
        ("band_16_w3", families::band_cnf(16, 3)),
    ];
    for (label, f) in cases {
        let n = f.num_vars();
        let probs: Vec<f64> = (0..n)
            .map(|i| 0.1 + 0.8 * ((i * 7) % 11) as f64 / 11.0)
            .collect();
        let frozen = Arc::new(kb_of(&f, &probs).freeze());
        let target = VarId(n / 2);
        let batch: Vec<Vec<Lit>> = (0..16)
            .map(|j| vec![(VarId(j as u32 % n), j % 2 == 0)])
            .collect();
        let mut batched = frozen.session();
        let marginals = batched.marginal_batch(target, &batch);
        let models_of = |e: &[Lit]| brute_models(&f, &probs, e);
        for (l, e) in batch.iter().enumerate() {
            let want = scalar_marginal(&frozen, target, e);
            assert_eq!(
                marginals[l].clone().map(f64::to_bits),
                want.map(f64::to_bits),
                "{label}: lane {l}"
            );
            if let Ok(p) = marginals[l] {
                let models = models_of(e);
                let total: f64 = models.iter().map(|(_, w)| w).sum();
                let with_t: f64 = models
                    .iter()
                    .filter(|&&(mask, _)| mask >> target.0 & 1 == 1)
                    .map(|(_, w)| w)
                    .sum();
                assert!(
                    (p - with_t / total).abs() < 1e-9,
                    "{label}: lane {l} vs brute force"
                );
            }
        }
    }
}

/// `LogF64` stays within 1e-9 (relative, in log space) of the exact
/// `Rational` engine on the weighted chain families. (Sizes are capped at
/// 120: the exact side's rationals grow ~`10^n`-denominator normal forms,
/// whose gcd normalization is what the log carrier exists to avoid — the
/// 10k-variable test below covers the large end without the `Rat` anchor.)
#[test]
fn logf64_tracks_exact_rationals_on_chains() {
    for n in [25u32, 50, 80, 120] {
        let f = families::chain_cnf(n);
        let compiled = Compiler::new().compile_cnf(&f).unwrap();
        let weight_of = |v: VarId| {
            let i = v.index() as u64;
            (
                Rational::from_ratio(((i % 7) + 1).into(), 10u64.into()),
                Rational::from_ratio(((i % 9) + 1).into(), 10u64.into()),
            )
        };
        let exact = compiled.sdd.weighted_count_exact(compiled.root, weight_of);
        let expect = ln_rational(&exact);
        let logged = compiled.sdd.evaluate(compiled.root, &LogF64, |v, pos| {
            let (wn, wp) = weight_of(v);
            if pos {
                wp.to_f64().ln()
            } else {
                wn.to_f64().ln()
            }
        });
        let rel = (logged - expect).abs() / expect.abs().max(1.0);
        assert!(
            rel < 1e-9,
            "n={n}: log-space {logged} vs exact {expect} (rel {rel:.2e})"
        );
    }
}

/// At 10k variables the chain's weighted count is far below `f64::MIN` —
/// the linear engine underflows to 0, the log-space engine keeps the full
/// answer. (The underflow-safety claim of the semiring-zoo roadmap item.)
/// Runs directly on the harness's default-size test thread: the engines
/// are worklist-iterative, so vtree depth no longer consumes stack (the
/// pre-iterative version needed a dedicated 256 MB thread here; the
/// 100k-variable session lives in `tests/deep_chain.rs`).
#[test]
fn logf64_survives_ten_thousand_variables() {
    let n = 10_000u32;
    let f = families::chain_cnf(n);
    let compiled = Compiler::new().compile_cnf(&f).unwrap();
    let linear = compiled.sdd.weighted_count(compiled.root, |_| (1e-3, 1e-3));
    assert_eq!(linear, 0.0, "the f64 engine underflows at this size");
    let logged = compiled
        .sdd
        .evaluate(compiled.root, &LogF64, |_, _| (1e-3f64).ln());
    assert!(logged.is_finite());
    // W = count · (1e-3)^n, so ln W = ln count + n · ln 1e-3 exactly.
    let ln_count = ln_rational(&Rational::from_ratio(
        families::chain_count(n),
        arith::BigUint::one(),
    ));
    let expect = ln_count + n as f64 * (1e-3f64).ln();
    assert!(
        (logged - expect).abs() < 1e-6 * expect.abs(),
        "{logged} vs {expect}"
    );
}
