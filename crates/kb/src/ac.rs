//! The smoothed arithmetic circuit behind the KB's two-pass queries.
//!
//! The semiring engine (`sdd::eval`) walks the SDD *implicitly*, recomputing
//! smoothing products from vtree paths on every visit. Marginals and MPE
//! witnesses need more than a single bottom-up value: they need the
//! **derivative** of the weighted count with respect to every literal
//! weight (Darwiche's differential approach to inference), which requires a
//! downward pass over an *explicit* computation graph. [`Ac`] is that
//! graph: the SDD unfolded — once, at KB construction — into a plain DAG of
//! `⊕`/`⊗` nodes with one shared leaf per literal and shared smoothing
//! subcircuits per vtree node, stored in topological order so the upward
//! pass is a forward sweep and the downward pass a reverse sweep.
//!
//! The graph is stored **CSR-style** — parallel `kinds`/`meta` arrays plus
//! one flat `children` array that per-gate `(start, end)` ranges tile — so
//! a circuit is four contiguous buffers with no per-gate allocation. That
//! is both the fast layout for the sweeps (no pointer chasing) and the
//! serialization layout: a snapshot writes the buffers as raw sections and
//! a load reads them straight back.
//!
//! Everything here is generic over [`Semiring`]:
//!
//! * forward sweep + [`Ac::backprop`] in a sum-product carrier (`LogF64`)
//!   → every variable's unnormalized marginal pair in two passes;
//! * forward sweep in `MaxPlus` + [`Ac::mpe`]'s argmax descent → the most
//!   probable explanation *with* its witnessing assignment;
//! * [`Ac::top_k`] — the same sweep over lists of partial models → the `k`
//!   heaviest models, each materialized as a complete assignment.
//!
//! Everything here honors the workspace's **iterative-engine invariant**:
//! the unfold walks decisions in interning order (children before parents
//! — ascending [`SddId`] is topological), the up/down passes are indexed
//! sweeps over the stored topological order, and the MPE/top-k decoders
//! walk with explicit stacks — no pass recurses on input-sized structure,
//! so 100k-variable circuits sweep on a default-size thread stack.

use arith::{LaneSemiring, MaxPlus, Semiring};
use sdd::{SddId, SddManager, SddNode};
use vtree::fxhash::FxHashMap;
use vtree::{VarId, VtreeNodeId};

/// Index into the gate arrays of [`Ac`].
pub(crate) type AcId = u32;

/// Result of [`Ac::marginals`]: the root value and, per dense variable,
/// the unnormalized `(m⁻, m⁺)` pair.
pub(crate) type Marginals<E> = (E, Vec<(E, E)>);

/// Gate kinds (the `kinds` byte per gate).
pub(crate) const K_ZERO: u8 = 0;
/// A literal-weight leaf; `meta` = (dense var index, positive as 0/1).
pub(crate) const K_LEAF: u8 = 1;
/// `⊕` over a `children` range; `meta` = (start, end).
pub(crate) const K_ADD: u8 = 2;
/// `⊗` over a `children` range; `meta` = (start, end).
pub(crate) const K_MUL: u8 = 3;

/// The unfolded, smoothed arithmetic circuit of one compiled SDD root.
///
/// Gate ids are a topological order (children strictly below parents), so
/// evaluation is a single indexed sweep in either direction. Gate `0` is
/// the shared constant-zero gate.
///
/// The circuit is plain owned data with no back-reference into the manager
/// it was unfolded from (gate ids are its own dense ids), so a
/// [`crate::FrozenKb`] carries it into the `Send + Sync` serving tier
/// unchanged, branch sessions clone it instead of re-unfolding, and a
/// snapshot persists the four buffers verbatim.
#[derive(Clone)]
pub(crate) struct Ac {
    /// One kind byte per gate ([`K_ZERO`]…[`K_MUL`]).
    pub(crate) kinds: Vec<u8>,
    /// Per gate: leaf `(var, positive)`, or child range `(start, end)`.
    pub(crate) meta: Vec<(u32, u32)>,
    /// Flattened child lists; each `⊕`/`⊗` gate owns one contiguous range.
    pub(crate) children: Vec<AcId>,
    pub(crate) root: AcId,
    /// The vtree variables, defining the dense index.
    pub(crate) vars: Vec<VarId>,
    /// Per dense variable: the shared `(¬v, v)` leaf ids.
    pub(crate) leaves: Vec<(AcId, AcId)>,
}

/// Transient state while unfolding the SDD (see [`Ac::build`]).
struct Builder<'m> {
    mgr: &'m SddManager,
    kinds: Vec<u8>,
    meta: Vec<(u32, u32)>,
    children: Vec<AcId>,
    /// Per vtree node: the shared smoothing subcircuit `⊗ (w⁻ ⊕ w⁺)`.
    gapc: Vec<AcId>,
    /// Per decision node: its unsmoothed `⊕ (prime ⊗ sub)` gate.
    rawc: FxHashMap<SddId, AcId>,
    var_index: FxHashMap<VarId, u32>,
    leaves: Vec<(AcId, AcId)>,
}

impl<'m> Builder<'m> {
    /// Push a childless gate (zero or leaf).
    fn push(&mut self, kind: u8, meta: (u32, u32)) -> AcId {
        let id = self.kinds.len() as AcId;
        self.kinds.push(kind);
        self.meta.push(meta);
        id
    }

    /// Push an `⊕`/`⊗` gate, appending its child list to the flat array.
    fn push_gate(&mut self, kind: u8, ch: &[AcId]) -> AcId {
        let start = self.children.len() as u32;
        self.children.extend_from_slice(ch);
        self.push(kind, (start, self.children.len() as u32))
    }

    /// AC gate computing `a`'s value over the scope of vtree node `scope`.
    fn scoped(&mut self, a: SddId, scope: VtreeNodeId) -> AcId {
        match self.mgr.node(a) {
            SddNode::False => 0,
            SddNode::True => self.gapc[scope.index()],
            SddNode::Literal { var, positive } => {
                let vi = self.var_index[var] as usize;
                let leaf = if *positive {
                    self.leaves[vi].1
                } else {
                    self.leaves[vi].0
                };
                let target = self.mgr.vtree().leaf_of_var(*var).expect("var in vtree");
                self.smoothed(leaf, scope, target)
            }
            SddNode::Decision { vnode, .. } => {
                let (vnode, raw) = (*vnode, self.rawc[&a]);
                self.smoothed(raw, scope, vnode)
            }
        }
    }

    /// Multiply `base` by the smoothing gaps of every subtree branched away
    /// from on the vtree walk `scope → target` ([`vtree::Vtree::branched_away`]).
    fn smoothed(&mut self, base: AcId, scope: VtreeNodeId, target: VtreeNodeId) -> AcId {
        let mut factors = vec![base];
        let gapc = &self.gapc;
        self.mgr
            .vtree()
            .branched_away(scope, target, |t| factors.push(gapc[t.index()]));
        if factors.len() == 1 {
            base
        } else {
            self.push_gate(K_MUL, &factors)
        }
    }
}

impl Ac {
    /// Unfold the SDD rooted at `root` into its smoothed arithmetic
    /// circuit. Runs once per knowledge base; every query afterwards is a
    /// sweep (or two) over the result.
    pub fn build(mgr: &SddManager, root: SddId) -> Ac {
        let vt = mgr.vtree();
        let vars: Vec<VarId> = vt.vars().to_vec();
        let mut b = Builder {
            mgr,
            kinds: vec![K_ZERO],
            meta: vec![(0, 0)],
            children: Vec::new(),
            gapc: vec![0; vt.num_nodes()],
            rawc: FxHashMap::default(),
            var_index: vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect(),
            leaves: Vec::with_capacity(vars.len()),
        };
        // Shared literal leaves, one pair per variable.
        for i in 0..vars.len() as u32 {
            let neg = b.push(K_LEAF, (i, 0));
            let pos = b.push(K_LEAF, (i, 1));
            b.leaves.push((neg, pos));
        }
        // Smoothing subcircuits, bottom-up over the vtree.
        for n in vt.bottom_up_order() {
            b.gapc[n.index()] = match vt.children(n) {
                None => {
                    let v = vt.leaf_var(n).expect("leaf");
                    let (neg, pos) = b.leaves[b.var_index[&v] as usize];
                    b.push_gate(K_ADD, &[neg, pos])
                }
                Some((l, r)) => {
                    let (gl, gr) = (b.gapc[l.index()], b.gapc[r.index()]);
                    b.push_gate(K_MUL, &[gl, gr])
                }
            };
        }
        // Decision nodes in ascending id order — the manager creates
        // children before parents, so this is a topological order.
        let mut decisions = mgr.reachable_decisions(root);
        decisions.sort_unstable();
        for d in decisions {
            let SddNode::Decision { vnode, .. } = mgr.node(d) else {
                unreachable!("reachable_decisions returns decisions");
            };
            let vnode = *vnode;
            let (lv, rv) = vt.children(vnode).expect("internal vnode");
            // The element slice is borrowed straight from the manager's
            // arena — the unfold never clones element lists.
            let parts: Vec<AcId> = mgr
                .elements_of(d)
                .iter()
                .map(|&(p, s)| {
                    let pa = b.scoped(p, lv);
                    let sa = b.scoped(s, rv);
                    b.push_gate(K_MUL, &[pa, sa])
                })
                .collect();
            let raw = b.push_gate(K_ADD, &parts);
            b.rawc.insert(d, raw);
        }
        let root_ac = b.scoped(root, vt.root());
        Ac {
            kinds: b.kinds,
            meta: b.meta,
            children: b.children,
            root: root_ac,
            vars,
            leaves: b.leaves,
        }
    }

    /// Gates in the unfolded circuit.
    pub fn size(&self) -> usize {
        self.kinds.len()
    }

    /// The child slice of gate `id` (empty for zero/leaf gates).
    #[inline]
    fn ch(&self, id: usize) -> &[AcId] {
        match self.kinds[id] {
            K_ADD | K_MUL => {
                let (start, end) = self.meta[id];
                &self.children[start as usize..end as usize]
            }
            _ => &[],
        }
    }

    /// Upward pass: the value of every gate under `weights` (indexed by
    /// dense variable, `(w⁻, w⁺)`).
    pub fn eval<S: Semiring>(&self, s: &S, weights: &[(S::Elem, S::Elem)]) -> Vec<S::Elem> {
        let mut vals: Vec<S::Elem> = Vec::with_capacity(self.kinds.len());
        for id in 0..self.kinds.len() {
            let (a, b) = self.meta[id];
            let v = match self.kinds[id] {
                K_ZERO => s.zero(),
                K_LEAF => {
                    let (wn, wp) = &weights[a as usize];
                    if b == 1 {
                        wp.clone()
                    } else {
                        wn.clone()
                    }
                }
                K_ADD => {
                    let mut acc = s.zero();
                    for &c in &self.children[a as usize..b as usize] {
                        acc = s.add(&acc, &vals[c as usize]);
                    }
                    acc
                }
                _ => {
                    let mut acc = s.one();
                    for &c in &self.children[a as usize..b as usize] {
                        acc = s.mul(&acc, &vals[c as usize]);
                    }
                    acc
                }
            };
            vals.push(v);
        }
        vals
    }

    /// Downward pass: `dr[g]` = ∂(root)/∂(gate g), the semiring
    /// generalization of backpropagation. `⊕`-gates pass their derivative
    /// through; `⊗`-gates multiply it by the product of the *other*
    /// children's values (computed with prefix/suffix products, so the pass
    /// stays linear even for wide gates).
    pub fn backprop<S: Semiring>(&self, s: &S, vals: &[S::Elem]) -> Vec<S::Elem> {
        let mut dr: Vec<S::Elem> = vec![s.zero(); self.kinds.len()];
        dr[self.root as usize] = s.one();
        for id in (0..self.kinds.len()).rev() {
            match self.kinds[id] {
                K_ADD => {
                    let d = dr[id].clone();
                    for &c in self.ch(id) {
                        dr[c as usize] = s.add(&dr[c as usize], &d);
                    }
                }
                K_MUL => {
                    let d = dr[id].clone();
                    let ch = self.ch(id);
                    match ch.len() {
                        0 => {}
                        1 => {
                            let c = ch[0] as usize;
                            dr[c] = s.add(&dr[c], &d);
                        }
                        2 => {
                            let (a, b) = (ch[0] as usize, ch[1] as usize);
                            dr[a] = s.add(&dr[a], &s.mul(&d, &vals[b]));
                            dr[b] = s.add(&dr[b], &s.mul(&d, &vals[a]));
                        }
                        n => {
                            // prefix[i] = v₀⊗…⊗vᵢ₋₁, built left to right;
                            // suffix runs right to left.
                            let mut prefix = Vec::with_capacity(n);
                            let mut acc = s.one();
                            for &c in ch {
                                prefix.push(acc.clone());
                                acc = s.mul(&acc, &vals[c as usize]);
                            }
                            let mut suffix = s.one();
                            for i in (0..n).rev() {
                                let c = ch[i] as usize;
                                let other = s.mul(&prefix[i], &suffix);
                                dr[c] = s.add(&dr[c], &s.mul(&d, &other));
                                suffix = s.mul(&suffix, &vals[c]);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        dr
    }

    /// Two-pass marginals: returns the root value plus, per dense variable,
    /// the unnormalized pair `(m⁻, m⁺)` — the total weight of models
    /// setting the variable false resp. true. Smoothness guarantees
    /// `m⁻ ⊕ m⁺ = root value` for every variable.
    pub fn marginals<S: Semiring>(
        &self,
        s: &S,
        weights: &[(S::Elem, S::Elem)],
    ) -> Marginals<S::Elem> {
        let vals = self.eval(s, weights);
        let dr = self.backprop(s, &vals);
        let pairs = self
            .leaves
            .iter()
            .enumerate()
            .map(|(i, &(neg, pos))| {
                let (wn, wp) = &weights[i];
                (s.mul(wn, &dr[neg as usize]), s.mul(wp, &dr[pos as usize]))
            })
            .collect();
        (vals[self.root as usize].clone(), pairs)
    }

    /// Batched upward pass: `lanes` weight rows per gate visit. `weights`
    /// holds lane columns at `var * lanes + l`; the returned value table
    /// holds gate columns at `gate * lanes + l`. Per lane the *values* are
    /// bit-identical to a scalar [`Ac::eval`] sweep under that lane's
    /// weights: the fold order over children is the same, and the one
    /// structural difference — the scalar fold starts from the identity
    /// (`add(zero, c₀)`, `mul(one, c₀)`) where this pass copies the first
    /// child column — is exact for every semiring this crate evaluates in
    /// (`lse(-∞, x) = x` and `0 + x = x` bit-for-bit in [`LogF64`], and
    /// exactly in the counting carriers). Eliding the identity fold
    /// removes one full ⊕-kernel per gate, and the gate dispatch (kind
    /// match, CSR range walk, bounds checks) is paid once per gate instead
    /// of once per gate per query.
    pub fn eval_lanes<S: LaneSemiring>(
        &self,
        s: &S,
        lanes: usize,
        weights: &[(S::Elem, S::Elem)],
    ) -> Vec<S::Elem> {
        let n = self.kinds.len();
        let mut vals: Vec<S::Elem> = Vec::with_capacity(n * lanes);
        for id in 0..n {
            let (a, b) = self.meta[id];
            let start = vals.len();
            match self.kinds[id] {
                K_ZERO => vals.resize(start + lanes, s.zero()),
                K_LEAF => {
                    let base = a as usize * lanes;
                    if b == 1 {
                        vals.extend(weights[base..base + lanes].iter().map(|w| w.1.clone()));
                    } else {
                        vals.extend(weights[base..base + lanes].iter().map(|w| w.0.clone()));
                    }
                }
                K_ADD => {
                    let ch = &self.children[a as usize..b as usize];
                    match ch.split_first() {
                        None => vals.resize(start + lanes, s.zero()),
                        Some((&c0, rest)) => {
                            let c0b = c0 as usize * lanes;
                            vals.extend_from_within(c0b..c0b + lanes);
                            let (below, col) = vals.split_at_mut(start);
                            for &c in rest {
                                let cb = c as usize * lanes;
                                s.add_assign_lanes(col, &below[cb..cb + lanes]);
                            }
                        }
                    }
                }
                _ => {
                    let ch = &self.children[a as usize..b as usize];
                    match ch.split_first() {
                        None => vals.resize(start + lanes, s.one()),
                        Some((&c0, rest)) => {
                            let c0b = c0 as usize * lanes;
                            vals.extend_from_within(c0b..c0b + lanes);
                            let (below, col) = vals.split_at_mut(start);
                            for &c in rest {
                                let cb = c as usize * lanes;
                                s.mul_assign_lanes(col, &below[cb..cb + lanes]);
                            }
                        }
                    }
                }
            }
        }
        vals
    }

    /// Batched downward pass over a [`Ac::eval_lanes`] value table: the
    /// column form of [`Ac::backprop`], same prefix/suffix handling of wide
    /// `⊗`-gates, same per-lane fold order — except that a gate's *first*
    /// parent contribution is written directly into its (still all-zero)
    /// derivative column instead of ⊕-folded into it, which is exact
    /// (`lse(-∞, x) = x` bit-for-bit) and removes one full ⊕-kernel per
    /// gate; on chain-shaped circuits, where almost every gate has exactly
    /// one parent, that is nearly the whole downward ⊕ cost.
    pub fn backprop_lanes<S: LaneSemiring>(
        &self,
        s: &S,
        lanes: usize,
        vals: &[S::Elem],
    ) -> Vec<S::Elem> {
        let n = self.kinds.len();
        let mut dr: Vec<S::Elem> = vec![s.zero(); n * lanes];
        let rb = self.root as usize * lanes;
        s.one_fill(&mut dr[rb..rb + lanes]);
        // Per-gate "has a parent written here yet" flags: the first write
        // to a column is a copy, later writes ⊕-fold.
        let mut seen: Vec<bool> = vec![false; n];
        seen[self.root as usize] = true;
        // Scratch columns, allocated once for the whole sweep.
        let mut prefix: Vec<S::Elem> = Vec::new();
        let mut acc: Vec<S::Elem> = vec![s.zero(); lanes];
        let mut suffix: Vec<S::Elem> = vec![s.zero(); lanes];
        let mut other: Vec<S::Elem> = vec![s.zero(); lanes];
        let mut dother: Vec<S::Elem> = vec![s.zero(); lanes];
        for id in (0..n).rev() {
            match self.kinds[id] {
                K_ADD => {
                    // Children sit strictly below the gate, so the gate's
                    // derivative column and the child columns never alias.
                    let (below, d) = dr.split_at_mut(id * lanes);
                    let d = &d[..lanes];
                    for &c in self.ch(id) {
                        let cb = c as usize * lanes;
                        if seen[c as usize] {
                            s.add_assign_lanes(&mut below[cb..cb + lanes], d);
                        } else {
                            below[cb..cb + lanes].clone_from_slice(d);
                            seen[c as usize] = true;
                        }
                    }
                }
                K_MUL => {
                    let ch_range = {
                        let (start, end) = self.meta[id];
                        start as usize..end as usize
                    };
                    let (below, d) = dr.split_at_mut(id * lanes);
                    let d = &d[..lanes];
                    let ch = &self.children[ch_range];
                    match ch.len() {
                        0 => {}
                        1 => {
                            let c = ch[0] as usize;
                            let cb = c * lanes;
                            if seen[c] {
                                s.add_assign_lanes(&mut below[cb..cb + lanes], d);
                            } else {
                                below[cb..cb + lanes].clone_from_slice(d);
                                seen[c] = true;
                            }
                        }
                        2 => {
                            let (ca, cb2) = (ch[0] as usize, ch[1] as usize);
                            let (ab, bb) = (ca * lanes, cb2 * lanes);
                            if seen[ca] {
                                s.mul_lanes_into(&mut other, d, &vals[bb..bb + lanes]);
                                s.add_assign_lanes(&mut below[ab..ab + lanes], &other);
                            } else {
                                s.mul_lanes_into(
                                    &mut below[ab..ab + lanes],
                                    d,
                                    &vals[bb..bb + lanes],
                                );
                                seen[ca] = true;
                            }
                            if seen[cb2] {
                                s.mul_lanes_into(&mut other, d, &vals[ab..ab + lanes]);
                                s.add_assign_lanes(&mut below[bb..bb + lanes], &other);
                            } else {
                                s.mul_lanes_into(
                                    &mut below[bb..bb + lanes],
                                    d,
                                    &vals[ab..ab + lanes],
                                );
                                seen[cb2] = true;
                            }
                        }
                        k => {
                            prefix.clear();
                            s.one_fill(&mut acc);
                            for &c in ch {
                                prefix.extend_from_slice(&acc);
                                let cb = c as usize * lanes;
                                s.mul_assign_lanes(&mut acc, &vals[cb..cb + lanes]);
                            }
                            s.one_fill(&mut suffix);
                            for i in (0..k).rev() {
                                let c = ch[i] as usize;
                                let cb = c * lanes;
                                s.mul_lanes_into(
                                    &mut other,
                                    &prefix[i * lanes..(i + 1) * lanes],
                                    &suffix,
                                );
                                if seen[c] {
                                    s.mul_lanes_into(&mut dother, d, &other);
                                    s.add_assign_lanes(&mut below[cb..cb + lanes], &dother);
                                } else {
                                    s.mul_lanes_into(&mut below[cb..cb + lanes], d, &other);
                                    seen[c] = true;
                                }
                                s.mul_assign_lanes(&mut suffix, &vals[cb..cb + lanes]);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        dr
    }

    /// Batched two-pass marginals: the root column plus, per dense
    /// variable, the unnormalized `(m⁻, m⁺)` lane columns (pairs at
    /// `var * lanes + l`). Per lane bit-identical to [`Ac::marginals`].
    #[allow(clippy::type_complexity)]
    pub fn marginals_lanes<S: LaneSemiring>(
        &self,
        s: &S,
        lanes: usize,
        weights: &[(S::Elem, S::Elem)],
    ) -> (Vec<S::Elem>, Vec<(S::Elem, S::Elem)>) {
        let vals = self.eval_lanes(s, lanes, weights);
        let dr = self.backprop_lanes(s, lanes, &vals);
        let mut pairs = Vec::with_capacity(self.vars.len() * lanes);
        for (i, &(neg, pos)) in self.leaves.iter().enumerate() {
            let (nb, pb) = (neg as usize * lanes, pos as usize * lanes);
            for l in 0..lanes {
                let (wn, wp) = &weights[i * lanes + l];
                pairs.push((s.mul(wn, &dr[nb + l]), s.mul(wp, &dr[pb + l])));
            }
        }
        let rb = self.root as usize * lanes;
        (vals[rb..rb + lanes].to_vec(), pairs)
    }

    /// Most probable explanation: evaluate in [`MaxPlus`] over
    /// **log**-weights, then descend from the root following the argmax
    /// child of every `⊕`-gate (and every child of every `⊗`-gate) to read
    /// off the witnessing assignment. Returns `None` when no model has
    /// nonzero weight (root value `-∞`). The returned log-weight is the
    /// witness's exact log-weight; each variable's polarity appears exactly
    /// once because the circuit is smooth and decomposable.
    pub fn mpe(&self, log_weights: &[(f64, f64)]) -> Option<(f64, Vec<bool>)> {
        let s = MaxPlus;
        let vals = self.eval(&s, log_weights);
        let best = vals[self.root as usize];
        if best == f64::NEG_INFINITY {
            return None;
        }
        let mut assignment: Vec<Option<bool>> = vec![None; self.vars.len()];
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let (a, b) = self.meta[id as usize];
            match self.kinds[id as usize] {
                K_ZERO => unreachable!("finite-valued gates have no Zero children"),
                K_LEAF => {
                    let slot = &mut assignment[a as usize];
                    debug_assert!(
                        slot.is_none() || *slot == Some(b == 1),
                        "decomposability: one polarity per variable"
                    );
                    *slot = Some(b == 1);
                }
                K_ADD => {
                    // The argmax back-pointer: the child carrying the gate's
                    // value (max_by keeps the last maximal element, so ties
                    // resolve to the last child).
                    let &arg = self.children[a as usize..b as usize]
                        .iter()
                        .max_by(|&&x, &&y| {
                            vals[x as usize]
                                .partial_cmp(&vals[y as usize])
                                .expect("log-weights are never NaN")
                        })
                        .expect("decisions and gaps have children");
                    stack.push(arg);
                }
                _ => stack.extend_from_slice(&self.children[a as usize..b as usize]),
            }
        }
        let witness = assignment
            .into_iter()
            .map(|b| b.expect("smoothness: every variable decided"))
            .collect();
        Some((best, witness))
    }

    /// Batched MPE: one lane-parallel [`MaxPlus`] sweep (`log_weights`
    /// holds lane columns of log pairs at `var * lanes + l`, the
    /// [`Ac::eval_lanes`] layout), then a per-lane argmax descent over the
    /// shared value table. Lane `l` is **bit-identical** to
    /// `self.mpe(&weights_l)`: the lane sweep's identity elision is exact
    /// in `MaxPlus` (`max(-∞, x) = x`, and `0 + x = x` — log-weights are
    /// `ln` images, never `-0.0`), and the descent resolves `⊕`-gate ties
    /// through the same `max_by` (last maximal child wins), so even
    /// tie-broken witnesses agree.
    pub fn mpe_lanes(
        &self,
        lanes: usize,
        log_weights: &[(f64, f64)],
    ) -> Vec<Option<(f64, Vec<bool>)>> {
        let vals = self.eval_lanes(&MaxPlus, lanes, log_weights);
        (0..lanes)
            .map(|l| {
                let best = vals[self.root as usize * lanes + l];
                if best == f64::NEG_INFINITY {
                    return None;
                }
                let mut assignment: Vec<Option<bool>> = vec![None; self.vars.len()];
                let mut stack = vec![self.root];
                while let Some(id) = stack.pop() {
                    let (a, b) = self.meta[id as usize];
                    match self.kinds[id as usize] {
                        K_ZERO => unreachable!("finite-valued gates have no Zero children"),
                        K_LEAF => {
                            let slot = &mut assignment[a as usize];
                            debug_assert!(
                                slot.is_none() || *slot == Some(b == 1),
                                "decomposability: one polarity per variable"
                            );
                            *slot = Some(b == 1);
                        }
                        K_ADD => {
                            let &arg = self.children[a as usize..b as usize]
                                .iter()
                                .max_by(|&&x, &&y| {
                                    vals[x as usize * lanes + l]
                                        .partial_cmp(&vals[y as usize * lanes + l])
                                        .expect("log-weights are never NaN")
                                })
                                .expect("decisions and gaps have children");
                            stack.push(arg);
                        }
                        _ => stack.extend_from_slice(&self.children[a as usize..b as usize]),
                    }
                }
                let witness = assignment
                    .into_iter()
                    .map(|b| b.expect("smoothness: every variable decided"))
                    .collect();
                Some((best, witness))
            })
            .collect()
    }

    /// The `k` heaviest models by log-weight, each as `(log-weight,
    /// assignment over the dense variables)`, heaviest first. The sweep
    /// carries a top-`k` list per gate: `⊕` merges its children's lists
    /// (determinism — branches share no model, so no deduplication is
    /// needed), `⊗` crosses them (decomposability — scopes are disjoint, so
    /// assignments union). Models of weight zero are never materialized.
    ///
    /// Partial assignments live in a **shared cell arena** (a literal, or
    /// the disjoint union of two earlier cells) and candidates carry only a
    /// cell index; the full assignments are decoded for the `k` survivors
    /// at the very end. Materializing an `n`-bit mask per candidate per
    /// gate — the previous representation — costs Θ(size · k · n) memory,
    /// which a 100k-variable chain turns into tens of gigabytes; the arena
    /// stays linear in the number of candidates ever produced.
    pub fn top_k(&self, log_weights: &[(f64, f64)], k: usize) -> Vec<(f64, Vec<bool>)> {
        if k == 0 {
            return Vec::new();
        }
        /// One arena cell of a partial assignment.
        enum Cell {
            Lit { var: u32, positive: bool },
            Join(u32, u32),
        }
        /// The empty partial assignment (the unit of `⊗`).
        const EMPTY: u32 = u32::MAX;
        let mut cells: Vec<Cell> = Vec::new();
        // A candidate: log-weight plus its assignment cell.
        type Cand = (f64, u32);
        let by_weight_desc =
            |x: &Cand, y: &Cand| y.0.partial_cmp(&x.0).expect("no NaN log-weights");
        let mut lists: Vec<Vec<Cand>> = Vec::with_capacity(self.kinds.len());
        for id in 0..self.kinds.len() {
            let (a, b) = self.meta[id];
            let l: Vec<Cand> = match self.kinds[id] {
                K_ZERO => Vec::new(),
                K_LEAF => {
                    let (wn, wp) = log_weights[a as usize];
                    let w = if b == 1 { wp } else { wn };
                    if w == f64::NEG_INFINITY {
                        Vec::new()
                    } else {
                        let c = cells.len() as u32;
                        cells.push(Cell::Lit {
                            var: a,
                            positive: b == 1,
                        });
                        vec![(w, c)]
                    }
                }
                K_ADD => {
                    let mut merged: Vec<Cand> = Vec::new();
                    for &c in &self.children[a as usize..b as usize] {
                        merged.extend_from_slice(&lists[c as usize]);
                    }
                    merged.sort_by(by_weight_desc);
                    merged.truncate(k);
                    merged
                }
                _ => {
                    let mut acc: Vec<Cand> = vec![(0.0, EMPTY)];
                    for &c in &self.children[a as usize..b as usize] {
                        let other = &lists[c as usize];
                        let mut out: Vec<Cand> = Vec::with_capacity(acc.len() * other.len());
                        for &(wa, ca) in &acc {
                            for &(wb, cb) in other {
                                let cell = if ca == EMPTY {
                                    cb
                                } else if cb == EMPTY {
                                    ca
                                } else {
                                    let id = cells.len() as u32;
                                    cells.push(Cell::Join(ca, cb));
                                    id
                                };
                                out.push((wa + wb, cell));
                            }
                        }
                        out.sort_by(by_weight_desc);
                        out.truncate(k);
                        acc = out;
                        if acc.is_empty() {
                            break;
                        }
                    }
                    acc
                }
            };
            lists.push(l);
        }
        // Decode the survivors: walk each candidate's cell tree (scopes are
        // disjoint, so every variable is assigned exactly once; smoothness
        // guarantees every variable is assigned at all).
        lists[self.root as usize]
            .iter()
            .map(|&(w, cell)| {
                let mut asg: Vec<Option<bool>> = vec![None; self.vars.len()];
                if cell != EMPTY {
                    let mut stack = vec![cell];
                    while let Some(c) = stack.pop() {
                        match cells[c as usize] {
                            Cell::Lit { var, positive } => {
                                debug_assert!(
                                    asg[var as usize].is_none()
                                        || asg[var as usize] == Some(positive),
                                    "decomposability: one polarity per variable"
                                );
                                asg[var as usize] = Some(positive);
                            }
                            Cell::Join(a, b) => {
                                stack.push(a);
                                stack.push(b);
                            }
                        }
                    }
                }
                let assignment = asg
                    .into_iter()
                    .map(|b| b.expect("smoothness: every variable decided"))
                    .collect();
                (w, assignment)
            })
            .collect()
    }
}
