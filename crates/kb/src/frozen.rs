//! The frozen serving tier: **one compiled base, many concurrent readers**.
//!
//! A [`KnowledgeBase`] owns a mutable [`sdd::SddManager`], so a compiled
//! base can serve exactly one thread. [`KnowledgeBase::freeze`] converts it
//! into a [`FrozenKb`] — the read-only serving form built on the immutable
//! [`FrozenSdd`] slab — which is `Send + Sync` and shared via [`Arc`]:
//!
//! * [`FrozenKb::session`] hands out a [`KbSession`] per serving thread: a
//!   thin handle holding private epoch-tagged [`EvalCache`]s over the
//!   shared slab. Sessions answer the full query menu (`log_weight`,
//!   `query`, `marginal` / `all_marginals`, `mpe`, `enumerate_models`,
//!   `entails`, exact `count_models`) **bit-identically** to the mutable
//!   [`KnowledgeBase`]: the mutable path answers every numeric query by
//!   evaluating the *unconditioned* root under evidence-pinned weights, and
//!   a session does exactly that, so the two paths run the same semiring
//!   operations in the same order.
//! * Session [`KbSession::condition`] / [`KbSession::retract`] are pure
//!   weight-space operations (pin the opposing polarity to log 0) — no node
//!   is ever interned, so any number of sessions condition independently
//!   over one slab. Structural consistency and entailment come from a third
//!   cache carrying `(1, 1)` weights with the same pins: its root value is
//!   `-∞` exactly when the mutable path's restricted root is ⊥. Exact
//!   counting replaces the mutable path's `count(cond_root) ≫ |pins|` with
//!   a `Nat` sweep under `(0, 1)`-pinned weights — the same integer.
//! * [`FrozenKb::branch`] is the copy-on-write escape hatch for work that
//!   truly needs the apply machinery: it reopens a mutable
//!   [`KnowledgeBase`] on an overlay manager ([`FrozenSdd::branch`]) that
//!   interns new nodes *on top of* the shared slab without touching it.
//!   Branching is cheap on purpose — the arena and node table are not
//!   copied, and cache weights are replayed only for variables that differ
//!   from the defaults, so branching a 100k-variable chain does no
//!   per-variable vtree walks unless weights or evidence demand them.
//!
//! Evidence frozen into the base stays asserted in every session; a
//! session's own evidence is local to it and [`KbSession::retract`]
//! restores the frozen baseline, never less.

use crate::ac::Ac;
use crate::{stats_sum, KbError, KbProvenance, KbQueryStats, KnowledgeBase, Lit, Model, QueryKind};
use arith::{log_sum_exp, BigUint, LogF64, Nat};
use boolfunc::Assignment;
use sdd::eval::{EvalCache, EvalCacheStats, EvalLanes};
use sdd::{ApplyStats, FrozenSdd, SddId};
use std::sync::Arc;
use std::time::Instant;
use vtree::fxhash::FxHashMap;
use vtree::VarId;

/// The read-only serving form of a [`KnowledgeBase`]: the frozen SDD slab
/// plus everything a query needs (weights, evidence pins, the unfolded
/// arithmetic circuit, provenance). `Send + Sync`; share with [`Arc`] and
/// open one [`KbSession`] per serving thread.
pub struct FrozenKb {
    pub(crate) sdd: Arc<FrozenSdd>,
    pub(crate) root: SddId,
    /// The root restricted by the *frozen* evidence (kept so
    /// [`FrozenKb::branch`] reopens exactly where the mutable base left
    /// off — sessions never use it).
    pub(crate) cond_root: SddId,
    pub(crate) vars: Vec<VarId>,
    pub(crate) var_index: FxHashMap<VarId, usize>,
    pub(crate) weights: FxHashMap<VarId, (f64, f64)>,
    pub(crate) evidence: Vec<Lit>,
    pub(crate) pinned: FxHashMap<VarId, Option<bool>>,
    pub(crate) ac: Ac,
    pub(crate) provenance: KbProvenance,
}

/// Compile-time proof that the frozen tier is shareable: this never runs,
/// it just fails to compile if any field loses `Send + Sync`.
#[allow(dead_code)]
fn frozen_kb_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<FrozenKb>();
    assert_send_sync::<Arc<FrozenKb>>();
    // A session is owned by one serving thread but may be *moved* to it.
    assert_send::<KbSession>();
}

impl KnowledgeBase {
    /// Freeze this knowledge base into its immutable serving form. The
    /// arithmetic circuit is unfolded first (if it has not been already) so
    /// every session gets the two-pass queries without a build step; the
    /// manager's slabs then move into the [`FrozenSdd`] without copying.
    /// Current weights and evidence are frozen in — sessions start from
    /// this exact state.
    pub fn freeze(mut self) -> FrozenKb {
        self.ensure_ac();
        let KnowledgeBase {
            mgr,
            root,
            cond_root,
            vars,
            var_index,
            weights,
            evidence,
            pinned,
            ac,
            provenance,
            ..
        } = self;
        FrozenKb {
            sdd: Arc::new(mgr.freeze()),
            root,
            cond_root,
            vars,
            var_index,
            weights,
            evidence,
            pinned,
            ac: ac.expect("ensure_ac ran above"),
            provenance,
        }
    }
}

impl FrozenKb {
    /// The variables served by this knowledge base.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The shared frozen slab.
    pub fn sdd(&self) -> &FrozenSdd {
        &self.sdd
    }

    /// The compiled (unconditioned) root.
    pub fn root(&self) -> SddId {
        self.root
    }

    /// Elements in the compiled SDD.
    pub fn sdd_size(&self) -> usize {
        self.sdd.size(self.root)
    }

    /// Gates in the unfolded arithmetic circuit.
    pub fn unfolded_size(&self) -> usize {
        self.ac.size()
    }

    /// The evidence frozen into the base (asserted in every session).
    pub fn evidence(&self) -> &[Lit] {
        &self.evidence
    }

    /// The frozen weight pair `(w⁻, w⁺)` of `v`.
    pub fn weights_of(&self, v: VarId) -> Option<(f64, f64)> {
        self.weights.get(&v).copied()
    }

    /// Where the SDD came from, with its compilation report.
    pub fn provenance(&self) -> &KbProvenance {
        &self.provenance
    }

    /// Estimated resident bytes of the shared slab — the frozen analogue
    /// of [`sdd::SddManager::memory_bytes`], so `mem_bytes` metrics stay
    /// comparable across a freeze.
    pub fn memory_bytes(&self) -> usize {
        self.sdd.memory_bytes()
    }

    /// Publish this base's boot-time telemetry: size gauges
    /// (`kb_vars{kb}`, `kb_sdd_size{kb}`, `kb_ac_gates{kb}`,
    /// `kb_mem_bytes{kb}`) plus — when the base still carries its
    /// compilation provenance — the full compile-time families (stage
    /// timings, the paper's widths, kernel apply counters) via the
    /// report's `publish`. Sessions never run apply, so a serving
    /// process's kernel apply/unique-table metrics come entirely from
    /// here. Snapshot-loaded bases have [`KbProvenance::Raw`] provenance
    /// and publish sizes only.
    pub fn publish_boot_metrics(&self, reg: &obs::MetricsRegistry, id: usize) {
        let id_s = id.to_string();
        let kb_label = [("kb", id_s.as_str())];
        reg.gauge("kb_vars", &kb_label).set(self.vars.len() as f64);
        reg.gauge("kb_sdd_size", &kb_label)
            .set(self.sdd_size() as f64);
        reg.gauge("kb_ac_gates", &kb_label)
            .set(self.unfolded_size() as f64);
        reg.gauge("kb_mem_bytes", &kb_label)
            .set(self.memory_bytes() as f64);
        match &self.provenance {
            KbProvenance::Circuit(report) => report.publish(reg),
            KbProvenance::Cnf(report) => report.publish(reg),
            KbProvenance::Raw => {}
        }
    }

    /// Open a private serving session: fresh epoch caches over the shared
    /// slab, initialized to the frozen weights and evidence. Cheap enough
    /// to hand one to every serving thread; sessions never contend.
    pub fn session(self: &Arc<Self>) -> KbSession {
        let weights = &self.weights;
        let pinned = &self.pinned;
        let slab = self.sdd.as_ref();
        let prior = EvalCache::new(slab, LogF64, |v, pos| {
            let (wn, wp) = weights[&v];
            if pos {
                wp.ln()
            } else {
                wn.ln()
            }
        });
        let posterior = EvalCache::new(slab, LogF64, |v, pos| {
            let (ln, lp) = pinned_log_pair(weights, pinned, v);
            if pos {
                lp
            } else {
                ln
            }
        });
        let structural = EvalCache::new(slab, LogF64, |v, pos| {
            let (sn, sp) = structural_log_pair(pinned, v);
            if pos {
                sp
            } else {
                sn
            }
        });
        KbSession {
            kb: Arc::clone(self),
            weights: self.weights.clone(),
            evidence: Vec::new(),
            pinned: self.pinned.clone(),
            prior,
            posterior,
            structural,
            marginals_memo: None,
            last_query: KbQueryStats::default(),
            memo_hit_scratch: false,
            lanes_scratch: 1,
            lane_stats_scratch: EvalCacheStats::default(),
            obs: None,
        }
    }

    /// Reopen a mutable [`KnowledgeBase`] as a copy-on-write overlay on the
    /// shared slab: new nodes intern on top of the frozen base without
    /// touching it, so structural work (apply-based conditioning,
    /// entailment at scale, further compilation) proceeds per-branch. The
    /// returned base starts from the frozen weights and evidence;
    /// provenance is [`KbProvenance::Raw`] (the report stays with the
    /// frozen original).
    pub fn branch(&self) -> KnowledgeBase {
        let mgr = self.sdd.branch();
        let mut prior = EvalCache::new(&mgr, LogF64, |_, _| 0.0);
        let mut posterior = EvalCache::new(&mgr, LogF64, |_, _| 0.0);
        // Replay only the variables that differ from the (1, 1) default:
        // each set_weight stamps a leaf-to-root vtree path, and a deep
        // chain with default weights should branch in O(1) vtree work.
        for &v in &self.vars {
            let (wn, wp) = self.weights[&v];
            if (wn, wp) != (1.0, 1.0) {
                prior.set_weight(&mgr, v, wn.ln(), wp.ln());
            }
            let (ln, lp) = pinned_log_pair(&self.weights, &self.pinned, v);
            if ln != 0.0 || lp != 0.0 {
                posterior.set_weight(&mgr, v, ln, lp);
            }
        }
        KnowledgeBase {
            mgr,
            root: self.root,
            cond_root: self.cond_root,
            vars: self.vars.clone(),
            var_index: self.var_index.clone(),
            weights: self.weights.clone(),
            evidence: self.evidence.clone(),
            pinned: self.pinned.clone(),
            prior,
            posterior,
            ac: Some(self.ac.clone()),
            marginals_memo: None,
            provenance: KbProvenance::Raw,
            last_query: KbQueryStats::default(),
            memo_hit_scratch: false,
        }
    }
}

/// One serving thread's handle on a shared [`FrozenKb`]: private
/// epoch-tagged evaluation caches (numeric prior/posterior plus the
/// structural consistency cache), session-local evidence and weights. The
/// query methods mirror [`KnowledgeBase`]'s signatures and — by running
/// the identical evaluation in the identical order — return bit-identical
/// answers.
pub struct KbSession {
    kb: Arc<FrozenKb>,
    /// Session-local base weights (start as the frozen table;
    /// [`KbSession::set_weights`] diverges them per session).
    weights: FxHashMap<VarId, (f64, f64)>,
    /// Session-local evidence, in assertion order (the frozen evidence is
    /// not repeated here — see [`FrozenKb::evidence`]).
    evidence: Vec<Lit>,
    /// Combined pin table: the frozen pins plus the session's.
    pinned: FxHashMap<VarId, Option<bool>>,
    /// log W(F): the prior partition function, no evidence pins.
    prior: EvalCache<LogF64>,
    /// log W(F ∧ e): evidence-pinned weights.
    posterior: EvalCache<LogF64>,
    /// Weights forced to `(1, 1)`, evidence pins kept: the root value is
    /// `-∞` exactly when no model satisfies the evidence, reproducing the
    /// mutable path's `cond_root != ⊥` without interning a single node.
    structural: EvalCache<LogF64>,
    /// Marginals memo, keyed by the posterior cache's epoch.
    marginals_memo: Option<(u64, Result<Vec<f64>, KbError>)>,
    last_query: KbQueryStats,
    /// Scratch flag queries raise inside [`KbSession::tracked`] when they
    /// answered from the marginals memo.
    memo_hit_scratch: bool,
    /// Scratch batch width the `*_batch` queries set inside
    /// [`KbSession::tracked`] (scalar queries leave it at 1); feeds
    /// [`KbQueryStats::lanes`] and the per-lane latency telemetry.
    lanes_scratch: usize,
    /// Scratch eval traffic of a batch query's lane evaluator (a local
    /// [`EvalLanes`], not one of the session's three caches).
    lane_stats_scratch: EvalCacheStats,
    /// Telemetry attachment ([`KbSession::attach_obs`]); `None` keeps the
    /// query path free of instrumentation work.
    obs: Option<SessionObs>,
}

/// Pre-resolved telemetry handles for one query kind — resolved once per
/// session so the per-query path records through lock-free atomics.
struct KindHandles {
    queries: obs::Counter,
    latency_us: obs::Histogram,
    eval_lookups: obs::Counter,
    eval_hits: obs::Counter,
    eval_recomputed: obs::Counter,
    memo_hits: obs::Counter,
    /// Total lanes served by batch queries of this kind.
    batch_lanes: obs::Counter,
    /// Per-lane latency of batch queries: duration divided by batch width.
    lane_us: obs::Histogram,
}

/// A session's telemetry attachment: the registry it publishes to, the
/// optional slow-query log, and cached handles (kernel-level plus lazily
/// per query kind).
struct SessionObs {
    registry: Arc<obs::MetricsRegistry>,
    slow: Option<Arc<obs::SlowLog>>,
    kernel_lookups: obs::Counter,
    kernel_hits: obs::Counter,
    kernel_recomputed: obs::Counter,
    mem_gauge: obs::Gauge,
    kinds: [Option<KindHandles>; QueryKind::ALL.len()],
}

impl SessionObs {
    fn new(registry: Arc<obs::MetricsRegistry>, slow: Option<Arc<obs::SlowLog>>) -> SessionObs {
        SessionObs {
            kernel_lookups: registry.counter("sdd_eval_lookups_total", &[]),
            kernel_hits: registry.counter("sdd_eval_hits_total", &[]),
            kernel_recomputed: registry.counter("sdd_eval_recomputed_total", &[]),
            mem_gauge: registry.gauge("sdd_mem_bytes", &[]),
            registry,
            slow,
            kinds: std::array::from_fn(|_| None),
        }
    }

    fn kind(&mut self, k: QueryKind) -> &KindHandles {
        let i = k.index();
        if self.kinds[i].is_none() {
            let kind = [("kind", k.as_str())];
            self.kinds[i] = Some(KindHandles {
                queries: self.registry.counter("kb_queries_total", &kind),
                latency_us: self.registry.histogram("kb_query_us", &kind),
                eval_lookups: self.registry.counter("kb_eval_lookups_total", &kind),
                eval_hits: self.registry.counter("kb_eval_hits_total", &kind),
                eval_recomputed: self.registry.counter("kb_eval_recomputed_total", &kind),
                memo_hits: self.registry.counter("kb_memo_hits_total", &kind),
                batch_lanes: self.registry.counter("kb_batch_lanes_total", &kind),
                lane_us: self.registry.histogram("kb_lane_us", &kind),
            });
        }
        self.kinds[i].as_ref().expect("just initialized")
    }
}

impl KbSession {
    /// The shared base this session serves.
    pub fn kb(&self) -> &Arc<FrozenKb> {
        &self.kb
    }

    /// The variables served by this session.
    pub fn vars(&self) -> &[VarId] {
        &self.kb.vars
    }

    /// Cost of the most recent query (`apply` is always zero: sessions
    /// never run the apply machinery; `mem_bytes` reports the shared slab).
    pub fn last_query(&self) -> KbQueryStats {
        self.last_query
    }

    /// The session's evidence literals, in assertion order (on top of the
    /// frozen base's own evidence).
    pub fn evidence(&self) -> &[Lit] {
        &self.evidence
    }

    /// The session's current weight pair `(w⁻, w⁺)` of `v`.
    pub fn weights_of(&self, v: VarId) -> Option<(f64, f64)> {
        self.weights.get(&v).copied()
    }

    // ------------------------------------------------------------------
    // Weights (session-local)
    // ------------------------------------------------------------------

    /// Set `P(v = 1) = p` for this session only.
    pub fn set_probability(&mut self, v: VarId, p: f64) -> Result<(), KbError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(KbError::InvalidWeight(v));
        }
        self.set_weights(v, 1.0 - p, p)
    }

    /// Set the weight pair `(w⁻, w⁺)` of `v` for this session only — other
    /// sessions over the same [`FrozenKb`] are unaffected.
    pub fn set_weights(&mut self, v: VarId, neg: f64, pos: f64) -> Result<(), KbError> {
        if !self.kb.var_index.contains_key(&v) {
            return Err(KbError::UnknownVariable(v));
        }
        if !(neg >= 0.0 && neg.is_finite() && pos >= 0.0 && pos.is_finite()) {
            return Err(KbError::InvalidWeight(v));
        }
        self.weights.insert(v, (neg, pos));
        self.prior
            .set_weight(self.kb.sdd.as_ref(), v, neg.ln(), pos.ln());
        let (ln, lp) = self.pinned_log_pair(v);
        self.posterior.set_weight(self.kb.sdd.as_ref(), v, ln, lp);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Evidence (weight-space only — nothing is interned)
    // ------------------------------------------------------------------

    /// Assert evidence literals, mirroring [`KnowledgeBase::condition`]'s
    /// semantics exactly (accumulating, contradiction detection, the
    /// [`KbError::Inconsistent`] verdict) — but purely in weight space, so
    /// concurrent sessions condition independently over one shared slab.
    pub fn condition(&mut self, lits: &[Lit]) -> Result<(), KbError> {
        for &(v, _) in lits {
            if !self.kb.var_index.contains_key(&v) {
                return Err(KbError::UnknownVariable(v));
            }
        }
        self.tracked(QueryKind::Condition, |s| {
            for &(v, b) in lits {
                match s.pinned.get(&v).copied() {
                    Some(Some(prev)) if prev == b => continue, // already pinned
                    Some(Some(_)) => {
                        s.pinned.insert(v, None); // both polarities: ⊥
                    }
                    Some(None) => continue, // already contradicted
                    None => {
                        s.pinned.insert(v, Some(b));
                    }
                }
                s.evidence.push((v, b));
                let (ln, lp) = s.pinned_log_pair(v);
                s.posterior.set_weight(s.kb.sdd.as_ref(), v, ln, lp);
                let (sn, sp) = structural_log_pair(&s.pinned, v);
                s.structural.set_weight(s.kb.sdd.as_ref(), v, sn, sp);
            }
            if s.consistent() {
                Ok(())
            } else {
                Err(KbError::Inconsistent)
            }
        })
    }

    /// Drop the session's evidence, restoring the **frozen baseline** (the
    /// base's own evidence stays asserted — it is part of the slab's
    /// identity, not this session's state).
    pub fn retract(&mut self) {
        self.tracked(QueryKind::Retract, |s| {
            let touched: Vec<VarId> = s.pinned.keys().copied().collect();
            s.pinned = s.kb.pinned.clone();
            for v in touched {
                let (ln, lp) = s.pinned_log_pair(v);
                s.posterior.set_weight(s.kb.sdd.as_ref(), v, ln, lp);
                let (sn, sp) = structural_log_pair(&s.pinned, v);
                s.structural.set_weight(s.kb.sdd.as_ref(), v, sn, sp);
            }
            s.evidence.clear();
        })
    }

    /// Does the formula have a model consistent with the evidence?
    /// (Structural — weights are ignored, exactly as in
    /// [`KnowledgeBase::is_consistent`]; `&mut` because the verdict comes
    /// from the session's structural cache.)
    pub fn is_consistent(&mut self) -> bool {
        self.tracked(QueryKind::Consistent, |s| s.consistent())
    }

    fn consistent(&mut self) -> bool {
        self.structural.evaluate(self.kb.sdd.as_ref(), self.kb.root) != f64::NEG_INFINITY
    }

    // ------------------------------------------------------------------
    // Numeric queries (log-space, cached) — mirrors of KnowledgeBase
    // ------------------------------------------------------------------

    /// `ln W(F ∧ e)` — see [`KnowledgeBase::log_weight`].
    pub fn log_weight(&mut self) -> f64 {
        self.tracked(QueryKind::LogWeight, |s| {
            let _sp = obs::span("eval");
            s.posterior.evaluate(s.kb.sdd.as_ref(), s.kb.root)
        })
    }

    /// `W(F ∧ e)` in the linear domain — see
    /// [`KnowledgeBase::weighted_count`].
    pub fn weighted_count(&mut self) -> f64 {
        self.log_weight().exp()
    }

    /// `P(e) = W(F ∧ e) / W(F)` — see
    /// [`KnowledgeBase::probability_of_evidence`].
    pub fn probability_of_evidence(&mut self) -> Result<f64, KbError> {
        self.tracked(QueryKind::ProbEvidence, |s| {
            let _sp = obs::span("eval");
            let prior = s.prior.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            if prior == f64::NEG_INFINITY {
                return Err(KbError::Inconsistent);
            }
            let post = s.posterior.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            Ok((post - prior).exp())
        })
    }

    /// `P(⋀ lits | F ∧ e)` — see [`KnowledgeBase::query`]. The same
    /// pin-evaluate-restore dance over the session's private posterior
    /// cache.
    pub fn query(&mut self, lits: &[Lit]) -> Result<f64, KbError> {
        for &(v, _) in lits {
            if !self.kb.var_index.contains_key(&v) {
                return Err(KbError::UnknownVariable(v));
            }
        }
        self.tracked(QueryKind::Query, |s| {
            let _sp = obs::span("eval");
            let epoch_before = s.posterior.epoch();
            let denom = s.posterior.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            if denom == f64::NEG_INFINITY {
                return Err(KbError::Inconsistent);
            }
            let mut saved: Vec<(VarId, (f64, f64))> = Vec::with_capacity(lits.len());
            for &(v, b) in lits {
                let (ln, lp) = *s.posterior.weight(v);
                saved.push((v, (ln, lp)));
                let pinned = if b {
                    (f64::NEG_INFINITY, lp)
                } else {
                    (ln, f64::NEG_INFINITY)
                };
                s.posterior
                    .set_weight(s.kb.sdd.as_ref(), v, pinned.0, pinned.1);
            }
            let numer = s.posterior.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            for (v, (ln, lp)) in saved.into_iter().rev() {
                s.posterior.set_weight(s.kb.sdd.as_ref(), v, ln, lp);
            }
            // Pin/restore advanced the epoch with a bit-identical weight
            // table: carry a current marginals memo forward.
            if let Some((e, _)) = &mut s.marginals_memo {
                if *e == epoch_before {
                    *e = s.posterior.epoch();
                }
            }
            Ok((numer - denom).exp())
        })
    }

    /// Answer `queries.len()` conjunction queries in one lane-parallel
    /// sweep: lane `l` computes exactly `self.query(&queries[l])`,
    /// **bit-identically**. One [`EvalLanes`] evaluator is seeded from the
    /// session's posterior weight table, each lane pins its own literals
    /// (composing repeated pins in assertion order, like the scalar
    /// pin-evaluate-restore dance), and a single sweep of the slab yields
    /// every numerator column. The denominator comes from the shared
    /// scalar posterior cache — it is the same value for every lane, and
    /// bit-identical to the scalar query's denominator. Per-lane errors
    /// follow the scalar path: an unknown variable in lane `l`'s literals
    /// yields `Err(UnknownVariable)` for that lane only; an inconsistent
    /// session yields `Err(Inconsistent)` in every remaining lane.
    pub fn query_batch(&mut self, queries: &[Vec<Lit>]) -> Vec<Result<f64, KbError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let lanes = queries.len();
        self.tracked(QueryKind::QueryBatch, |s| {
            s.lanes_scratch = lanes;
            let _sp = obs::span("eval_lanes");
            let mut lane_err: Vec<Option<KbError>> = vec![None; lanes];
            for (l, lits) in queries.iter().enumerate() {
                for &(v, _) in lits {
                    if !s.kb.var_index.contains_key(&v) {
                        lane_err[l] = Some(KbError::UnknownVariable(v));
                        break;
                    }
                }
            }
            let denom = s.posterior.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            if denom == f64::NEG_INFINITY {
                return lane_err
                    .into_iter()
                    .map(|e| Err(e.unwrap_or(KbError::Inconsistent)))
                    .collect();
            }
            let posterior = &s.posterior;
            let mut ev = EvalLanes::new(s.kb.sdd.as_ref(), LogF64, lanes, |v, pos| {
                let (ln, lp) = *posterior.weight(v);
                if pos {
                    lp
                } else {
                    ln
                }
            });
            for (l, lits) in queries.iter().enumerate() {
                if lane_err[l].is_some() {
                    continue;
                }
                // Compose repeated pins of one variable exactly as the
                // scalar path does (each pin reads the previous pin's
                // table), then stamp the final pair into the lane.
                let mut local: FxHashMap<VarId, (f64, f64)> = FxHashMap::default();
                for &(v, b) in lits {
                    let (ln, lp) = local
                        .get(&v)
                        .copied()
                        .unwrap_or_else(|| *s.posterior.weight(v));
                    let pinned = if b {
                        (f64::NEG_INFINITY, lp)
                    } else {
                        (ln, f64::NEG_INFINITY)
                    };
                    local.insert(v, pinned);
                }
                for (&v, &(ln, lp)) in &local {
                    ev.set_lane_weight(s.kb.sdd.as_ref(), v, l, ln, lp);
                }
            }
            let numer = ev.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            s.lane_stats_scratch = ev.stats();
            lane_err
                .into_iter()
                .zip(numer)
                .map(|(e, n)| match e {
                    Some(e) => Err(e),
                    None => Ok((n - denom).exp()),
                })
                .collect()
        })
    }

    /// `P(v = 1 | F ∧ e)` — see [`KnowledgeBase::marginal`].
    pub fn marginal(&mut self, v: VarId) -> Result<f64, KbError> {
        let i = *self
            .kb
            .var_index
            .get(&v)
            .ok_or(KbError::UnknownVariable(v))?;
        Ok(self.marginals_table(QueryKind::Marginal)?[i])
    }

    /// All posterior marginals — see [`KnowledgeBase::all_marginals`].
    pub fn all_marginals(&mut self) -> Result<Vec<(VarId, f64)>, KbError> {
        let table = self.marginals_table(QueryKind::AllMarginals)?.clone();
        Ok(self.kb.vars.iter().copied().zip(table).collect())
    }

    fn marginals_table(&mut self, kind: QueryKind) -> Result<&Vec<f64>, KbError> {
        self.tracked(kind, |s| {
            let epoch = s.posterior.epoch();
            if matches!(&s.marginals_memo, Some((e, _)) if *e == epoch) {
                s.memo_hit_scratch = true;
                return;
            }
            let weights = s.posterior_log_weights();
            let (total, pairs) = {
                let _sp = obs::span("ac_sweep");
                s.kb.ac.marginals(&LogF64, &weights)
            };
            let result = if total == f64::NEG_INFINITY {
                Err(KbError::Inconsistent)
            } else {
                Ok(pairs
                    .into_iter()
                    .map(|(mn, mp)| (mp - log_sum_exp(mn, mp)).exp())
                    .collect::<Vec<f64>>())
            };
            s.marginals_memo = Some((epoch, result));
        });
        match &self.marginals_memo.as_ref().expect("just set").1 {
            Ok(table) => Ok(table),
            Err(e) => Err(e.clone()),
        }
    }

    /// `P(v = 1 | F ∧ e ∧ e_l)` for each evidence set `e_l` — lane `l`
    /// answers exactly what the scalar loop `condition(&e_l); marginal(v);
    /// retract-to-here` would, **bit-identically**, from one lane-parallel
    /// up+down sweep of the arithmetic circuit. The session's own pins and
    /// memo are untouched. An unknown `v` fails every lane.
    pub fn marginal_batch(&mut self, v: VarId, evidence: &[Vec<Lit>]) -> Vec<Result<f64, KbError>> {
        let Some(&i) = self.kb.var_index.get(&v) else {
            return vec![Err(KbError::UnknownVariable(v)); evidence.len()];
        };
        self.marginals_batch_table(QueryKind::MarginalBatch, evidence)
            .into_iter()
            .map(|r| r.map(|t| t[i]))
            .collect()
    }

    /// All posterior marginals under each evidence set — the batched
    /// [`KbSession::all_marginals`], one table per lane (see
    /// [`KbSession::marginal_batch`] for the per-lane contract).
    pub fn all_marginals_batch(
        &mut self,
        evidence: &[Vec<Lit>],
    ) -> Vec<Result<Vec<(VarId, f64)>, KbError>> {
        let tables = self.marginals_batch_table(QueryKind::AllMarginalsBatch, evidence);
        tables
            .into_iter()
            .map(|r| r.map(|t| self.kb.vars.iter().copied().zip(t).collect()))
            .collect()
    }

    /// Shared engine of the batched marginal queries: merge each lane's
    /// evidence onto a copy of the session pins (the exact
    /// [`KbSession::condition`] semantics — repeat pins keep, opposing
    /// pins contradict), build the var-major lane weight columns, and run
    /// one [`Ac::marginals_lanes`] sweep. Per lane: an unknown evidence
    /// variable is that lane's error; a `-∞` total (no model under the
    /// merged pins) is `Inconsistent`; otherwise the normalized table, in
    /// vtree variable order.
    fn marginals_batch_table(
        &mut self,
        kind: QueryKind,
        evidence: &[Vec<Lit>],
    ) -> Vec<Result<Vec<f64>, KbError>> {
        if evidence.is_empty() {
            return Vec::new();
        }
        let lanes = evidence.len();
        self.tracked(kind, |s| {
            s.lanes_scratch = lanes;
            let mut lane_err: Vec<Option<KbError>> = vec![None; lanes];
            let mut merged: Vec<FxHashMap<VarId, Option<bool>>> = Vec::with_capacity(lanes);
            for (l, lits) in evidence.iter().enumerate() {
                let mut pins = s.pinned.clone();
                for &(v, b) in lits {
                    if !s.kb.var_index.contains_key(&v) {
                        lane_err[l] = Some(KbError::UnknownVariable(v));
                        break;
                    }
                    match pins.get(&v).copied() {
                        Some(Some(prev)) if prev == b => {}
                        Some(Some(_)) => {
                            pins.insert(v, None);
                        }
                        Some(None) => {}
                        None => {
                            pins.insert(v, Some(b));
                        }
                    }
                }
                merged.push(pins);
            }
            // Var-major lane columns: `cols[i * lanes + l]` is variable
            // `vars[i]` in lane `l`. Seed every lane with the session's own
            // pinned pair, then overwrite only the evidence variables —
            // `pinned_log_pair` is deterministic, so the seeded entries are
            // bit-identical to evaluating it under the merged pins.
            let mut cols: Vec<(f64, f64)> = Vec::with_capacity(s.kb.vars.len() * lanes);
            for &v in &s.kb.vars {
                let base = pinned_log_pair(&s.weights, &s.pinned, v);
                cols.extend(std::iter::repeat_n(base, lanes));
            }
            for (l, lits) in evidence.iter().enumerate() {
                if lane_err[l].is_some() {
                    continue;
                }
                for &(v, _) in lits {
                    let i = s.kb.var_index[&v];
                    cols[i * lanes + l] = pinned_log_pair(&s.weights, &merged[l], v);
                }
            }
            let (total, pairs) = {
                let _sp = obs::span("ac_sweep_lanes");
                s.kb.ac.marginals_lanes(&LogF64, lanes, &cols)
            };
            (0..lanes)
                .map(|l| {
                    if let Some(e) = &lane_err[l] {
                        return Err(e.clone());
                    }
                    if total[l] == f64::NEG_INFINITY {
                        return Err(KbError::Inconsistent);
                    }
                    Ok((0..s.kb.vars.len())
                        .map(|i| {
                            let (mn, mp) = pairs[i * lanes + l];
                            (mp - log_sum_exp(mn, mp)).exp()
                        })
                        .collect())
                })
                .collect()
        })
    }

    /// The most probable explanation — see [`KnowledgeBase::mpe`],
    /// including the verified witness (satisfies the frozen SDD, agrees
    /// with every pin, reproduces the maximum weight).
    pub fn mpe(&mut self) -> Result<Model, KbError> {
        self.tracked(QueryKind::Mpe, |s| {
            let weights = s.posterior_log_weights();
            let (best, polarity) = {
                let _sp = obs::span("ac_mpe");
                s.kb.ac.mpe(&weights).ok_or(KbError::Inconsistent)?
            };
            let assignment =
                Assignment::from_pairs(s.kb.vars.iter().copied().zip(polarity.iter().copied()));
            assert!(
                s.kb.sdd.eval(s.kb.root, &assignment),
                "MPE witness must satisfy the compiled SDD"
            );
            for (&v, &pin) in &s.pinned {
                if let Some(b) = pin {
                    assert_eq!(
                        assignment.get(v),
                        Some(b),
                        "MPE witness must agree with the evidence on {v}"
                    );
                }
            }
            let recomputed: f64 =
                s.kb.vars
                    .iter()
                    .zip(&polarity)
                    .map(|(&v, &b)| {
                        let (ln, lp) = s.pinned_log_pair(v);
                        if b {
                            lp
                        } else {
                            ln
                        }
                    })
                    .sum();
            assert!(
                (recomputed - best).abs() <= 1e-9 * best.abs().max(1.0),
                "MPE witness weight {recomputed} must reproduce the maximum {best}"
            );
            Ok(Model {
                assignment,
                log_weight: best,
            })
        })
    }

    /// The most probable explanation under each evidence set — lane `l`
    /// answers exactly what the scalar loop `condition(&evidence[l]);
    /// mpe(); retract-to-here` would, **bit-identically in both the score
    /// and the decoded witness**, from one lane-parallel [`arith::MaxPlus`]
    /// sweep ([`Ac::mpe_lanes`] resolves `⊕`-gate ties through the same
    /// last-maximal-child rule as the scalar descent). The session's own
    /// pins and memo are untouched. Per lane: an unknown evidence variable
    /// is that lane's error; a `-∞` maximum (no model under the merged
    /// pins) is `Inconsistent`; otherwise the witness carries the same
    /// guarantees as [`KbSession::mpe`] — it satisfies the circuit, agrees
    /// with every merged pin, and reproduces the maximum weight — but the
    /// satisfaction and weight checks are amortized into ONE extra
    /// [`arith::MaxPlus`] sweep over witness-pinned columns instead of a
    /// per-lane SDD traversal plus recompute: the circuit is
    /// deterministic, so under a complete assignment the pinned root is
    /// the witness's weight iff the witness is a model and `-∞` otherwise.
    pub fn mpe_batch(&mut self, evidence: &[Vec<Lit>]) -> Vec<Result<Model, KbError>> {
        if evidence.is_empty() {
            return Vec::new();
        }
        let lanes = evidence.len();
        self.tracked(QueryKind::MpeBatch, |s| {
            s.lanes_scratch = lanes;
            // Merge each lane's evidence onto a copy of the session pins —
            // the exact `condition` semantics (repeat pins keep, opposing
            // pins contradict), as in the batched marginal queries.
            let mut lane_err: Vec<Option<KbError>> = vec![None; lanes];
            let mut merged: Vec<FxHashMap<VarId, Option<bool>>> = Vec::with_capacity(lanes);
            for (l, lits) in evidence.iter().enumerate() {
                let mut pins = s.pinned.clone();
                for &(v, b) in lits {
                    if !s.kb.var_index.contains_key(&v) {
                        lane_err[l] = Some(KbError::UnknownVariable(v));
                        break;
                    }
                    match pins.get(&v).copied() {
                        Some(Some(prev)) if prev == b => {}
                        Some(Some(_)) => {
                            pins.insert(v, None);
                        }
                        Some(None) => {}
                        None => {
                            pins.insert(v, Some(b));
                        }
                    }
                }
                merged.push(pins);
            }
            // Var-major lane columns of evidence-adjusted log pairs, seeded
            // from the session pins and overwritten per evidence variable
            // (see `marginals_batch_table` for why the seed is exact).
            let mut cols: Vec<(f64, f64)> = Vec::with_capacity(s.kb.vars.len() * lanes);
            for &v in &s.kb.vars {
                let base = pinned_log_pair(&s.weights, &s.pinned, v);
                cols.extend(std::iter::repeat_n(base, lanes));
            }
            for (l, lits) in evidence.iter().enumerate() {
                if lane_err[l].is_some() {
                    continue;
                }
                for &(v, _) in lits {
                    let i = s.kb.var_index[&v];
                    cols[i * lanes + l] = pinned_log_pair(&s.weights, &merged[l], v);
                }
            }
            let decoded = {
                let _sp = obs::span("ac_mpe_lanes");
                s.kb.ac.mpe_lanes(lanes, &cols)
            };
            // Batched witness verification: pin every healthy lane's
            // columns to its own decoded witness and re-run ONE MaxPlus
            // lane sweep. The circuit is deterministic, so a complete
            // assignment keeps exactly one child of every ⊕-gate finite:
            // the pinned root is the witness's own weight when the witness
            // satisfies the circuit and `-∞` when it does not — one
            // amortized sweep carries the per-lane satisfaction AND weight
            // checks that the scalar path pays one SDD traversal each for
            // (that traversal survives below as the debug-build check).
            let mut verify_cols = cols;
            for (l, lane) in decoded.iter().enumerate() {
                let Some((_, polarity)) = lane else { continue };
                if lane_err[l].is_some() {
                    continue;
                }
                for (i, &b) in polarity.iter().enumerate() {
                    let c = &mut verify_cols[i * lanes + l];
                    if b {
                        c.0 = f64::NEG_INFINITY;
                    } else {
                        c.1 = f64::NEG_INFINITY;
                    }
                }
            }
            let verified = {
                let _sp = obs::span("ac_mpe_verify_lanes");
                s.kb.ac.eval_lanes(&arith::MaxPlus, lanes, &verify_cols)
            };
            let root_row = s.kb.ac.root as usize * lanes;
            decoded
                .into_iter()
                .enumerate()
                .map(|(l, lane)| {
                    if let Some(e) = &lane_err[l] {
                        return Err(e.clone());
                    }
                    let (best, polarity) = lane.ok_or(KbError::Inconsistent)?;
                    let reweighed = verified[root_row + l];
                    assert!(
                        reweighed.is_finite()
                            && (reweighed - best).abs() <= 1e-9 * best.abs().max(1.0),
                        "MPE witness must satisfy the circuit and reproduce the \
                         maximum: re-evaluated {reweighed}, swept {best}"
                    );
                    let assignment = Assignment::from_pairs(
                        s.kb.vars.iter().copied().zip(polarity.iter().copied()),
                    );
                    debug_assert!(
                        s.kb.sdd.eval(s.kb.root, &assignment),
                        "MPE witness must satisfy the compiled SDD"
                    );
                    for (&v, &pin) in &merged[l] {
                        if let Some(b) = pin {
                            assert_eq!(
                                assignment.get(v),
                                Some(b),
                                "MPE witness must agree with the evidence on {v}"
                            );
                        }
                    }
                    Ok(Model {
                        assignment,
                        log_weight: best,
                    })
                })
                .collect()
        })
    }

    /// The `k` heaviest models — see [`KnowledgeBase::enumerate_models`].
    pub fn enumerate_models(&mut self, k: usize) -> Vec<Model> {
        self.tracked(QueryKind::TopK, |s| {
            let _sp = obs::span("ac_topk");
            let weights = s.posterior_log_weights();
            s.kb.ac
                .top_k(&weights, k)
                .into_iter()
                .map(|(log_weight, polarity)| {
                    let assignment = Assignment::from_pairs(
                        s.kb.vars.iter().copied().zip(polarity.iter().copied()),
                    );
                    debug_assert!(s.kb.sdd.eval(s.kb.root, &assignment));
                    Model {
                        assignment,
                        log_weight,
                    }
                })
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Structural queries (weight-free, but still apply-free)
    // ------------------------------------------------------------------

    /// Does `F ∧ e` entail the clause `⋁ lits`? The mutable path
    /// conditions on the clause's negation through the apply machinery;
    /// the session pins the negation into its structural cache instead —
    /// `F ∧ e ∧ ⋀ ¬lit` has no model exactly when the clause is entailed.
    /// Pin conflicts do the case analysis for free: a clause literal the
    /// evidence satisfies, or a complementary pair within the clause, zero
    /// both polarities of that variable, and the count collapses.
    pub fn entails(&mut self, clause: &[Lit]) -> Result<bool, KbError> {
        for &(v, _) in clause {
            if !self.kb.var_index.contains_key(&v) {
                return Err(KbError::UnknownVariable(v));
            }
        }
        self.tracked(QueryKind::Entails, |s| {
            let _sp = obs::span("structural_eval");
            let mut saved: Vec<(VarId, (f64, f64))> = Vec::with_capacity(clause.len());
            for &(v, b) in clause {
                let (sn, sp) = *s.structural.weight(v);
                saved.push((v, (sn, sp)));
                // Assert ¬lit: zero the polarity the clause literal names.
                let pinned = if b {
                    (sn, f64::NEG_INFINITY)
                } else {
                    (f64::NEG_INFINITY, sp)
                };
                s.structural
                    .set_weight(s.kb.sdd.as_ref(), v, pinned.0, pinned.1);
            }
            let negated = s.structural.evaluate(s.kb.sdd.as_ref(), s.kb.root);
            for (v, (sn, sp)) in saved.into_iter().rev() {
                s.structural.set_weight(s.kb.sdd.as_ref(), v, sn, sp);
            }
            Ok(negated == f64::NEG_INFINITY)
        })
    }

    /// The exact number of models of `F ∧ e` over all variables — the
    /// same integer as [`KnowledgeBase::count_models`], computed as one
    /// `Nat` sweep of the *unconditioned* root under `(0, 1)`-pinned
    /// weights (each pinned variable keeps exactly its asserted polarity,
    /// so no power-of-two correction is needed).
    pub fn count_models(&mut self) -> BigUint {
        self.tracked(QueryKind::Count, |s| {
            let _sp = obs::span("nat_sweep");
            let pinned = &s.pinned;
            s.kb.sdd.evaluate(s.kb.root, &Nat, |v, pos| {
                match pinned.get(&v) {
                    None => BigUint::one(),
                    Some(Some(b)) if *b == pos => BigUint::one(),
                    _ => BigUint::zero(), // opposing polarity, or contradicted
                }
            })
        })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The evidence-adjusted log-weight pair of `v`, over the session's
    /// weights and combined pins.
    fn pinned_log_pair(&self, v: VarId) -> (f64, f64) {
        pinned_log_pair(&self.weights, &self.pinned, v)
    }

    /// Dense evidence-adjusted log-weight table in vtree variable order.
    fn posterior_log_weights(&self) -> Vec<(f64, f64)> {
        self.kb
            .vars
            .iter()
            .map(|&v| self.pinned_log_pair(v))
            .collect()
    }

    /// Attach telemetry: per-query latency/hit-rate families land in
    /// `registry` (labelled by [`QueryKind`]), and — when `slow` is given
    /// — every query is traced, with the worst retained in the slow log.
    /// Handles are resolved here and cached, so the per-query cost is a
    /// handful of relaxed atomic ops.
    pub fn attach_obs(
        &mut self,
        registry: Arc<obs::MetricsRegistry>,
        slow: Option<Arc<obs::SlowLog>>,
    ) {
        self.obs = Some(SessionObs::new(registry, slow));
    }

    /// Run a query body, snapshotting its cost into
    /// [`KbSession::last_query`] (the shape of the mutable path's
    /// `tracked`; the apply counters stay zero because sessions never
    /// intern) and — when telemetry is attached — publishing it under
    /// `kind` and tracing it for the slow log.
    fn tracked<T>(&mut self, kind: QueryKind, body: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let eval0 = stats_sum(
            stats_sum(self.prior.stats(), self.posterior.stats()),
            self.structural.stats(),
        );
        self.memo_hit_scratch = false;
        self.lanes_scratch = 1;
        self.lane_stats_scratch = EvalCacheStats::default();
        if self.obs.as_ref().is_some_and(|o| o.slow.is_some()) {
            obs::trace_begin(kind.as_str());
        }
        let out = body(self);
        self.last_query = KbQueryStats {
            apply: ApplyStats::default(),
            eval: stats_sum(
                stats_sum(
                    stats_sum(self.prior.stats(), self.posterior.stats()),
                    self.structural.stats(),
                )
                .delta_since(eval0),
                self.lane_stats_scratch,
            ),
            mem_bytes: self.kb.sdd.memory_bytes(),
            duration: t0.elapsed(),
            memo_hit: self.memo_hit_scratch,
            lanes: self.lanes_scratch,
        };
        if let Some(o) = self.obs.as_mut() {
            let q = &self.last_query;
            o.kernel_lookups.add(q.eval.lookups);
            o.kernel_hits.add(q.eval.hits);
            o.kernel_recomputed.add(q.eval.recomputed);
            o.mem_gauge.set(q.mem_bytes as f64);
            let h = o.kind(kind);
            h.queries.inc();
            h.latency_us.record_duration_us(q.duration);
            h.eval_lookups.add(q.eval.lookups);
            h.eval_hits.add(q.eval.hits);
            h.eval_recomputed.add(q.eval.recomputed);
            if q.memo_hit {
                h.memo_hits.inc();
            }
            if matches!(
                kind,
                QueryKind::QueryBatch
                    | QueryKind::MarginalBatch
                    | QueryKind::AllMarginalsBatch
                    | QueryKind::MpeBatch
            ) {
                h.batch_lanes.add(q.lanes as u64);
                h.lane_us
                    .record_duration_us(q.duration / q.lanes.max(1) as u32);
            }
            if obs::trace_active() {
                obs::trace_note("eval_lookups", q.eval.lookups);
                obs::trace_note("eval_recomputed", q.eval.recomputed);
                obs::trace_note("memo_hit", u64::from(q.memo_hit));
                if let (Some(rec), Some(slow)) = (obs::trace_end(), &o.slow) {
                    if slow.would_admit(rec.total) {
                        slow.offer(rec);
                    }
                }
            }
        }
        out
    }
}

/// The evidence-adjusted log-weight pair of `v` — the same table as
/// [`KnowledgeBase`]'s private `pinned_log_pair`, shared by the frozen
/// forms.
fn pinned_log_pair(
    weights: &FxHashMap<VarId, (f64, f64)>,
    pinned: &FxHashMap<VarId, Option<bool>>,
    v: VarId,
) -> (f64, f64) {
    let (wn, wp) = weights[&v];
    match pinned.get(&v) {
        None => (wn.ln(), wp.ln()),
        Some(Some(true)) => (f64::NEG_INFINITY, wp.ln()),
        Some(Some(false)) => (wn.ln(), f64::NEG_INFINITY),
        Some(None) => (f64::NEG_INFINITY, f64::NEG_INFINITY),
    }
}

/// The *structural* log pair of `v`: weights forced to `(1, 1)` so only
/// the pins matter. Evaluating the root under this table yields `-∞`
/// exactly when `F ∧ e` has no model — the weight-space reproduction of
/// `cond_root == ⊥`.
fn structural_log_pair(pinned: &FxHashMap<VarId, Option<bool>>, v: VarId) -> (f64, f64) {
    match pinned.get(&v) {
        None => (0.0, 0.0),
        Some(Some(true)) => (f64::NEG_INFINITY, 0.0),
        Some(Some(false)) => (0.0, f64::NEG_INFINITY),
        Some(None) => (f64::NEG_INFINITY, f64::NEG_INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::CnfFormula;
    use sentential_core::Compiler;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// `(x0 ∨ x1) ∧ (¬x1 ∨ x2)` with distinct probabilities — the same
    /// fixture as the mutable layer's tests.
    fn demo_kb() -> KnowledgeBase {
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![(v(0), true), (v(1), true)],
                vec![(v(1), false), (v(2), true)],
            ],
        );
        let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), &f).unwrap();
        for (i, &p) in [0.3, 0.6, 0.8].iter().enumerate() {
            kb.set_probability(v(i as u32), p).unwrap();
        }
        kb
    }

    /// Each `mpe_batch` lane must match the scalar `condition; mpe` loop
    /// bit-for-bit (score *and* witness), with per-lane error isolation:
    /// a poisoned lane errs alone, its neighbors answer normally.
    #[test]
    fn mpe_batch_lanes_match_the_scalar_loop_with_error_isolation() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut s = frozen.session();
        let batch: Vec<Vec<Lit>> = vec![
            vec![],
            vec![(v(1), true)],
            vec![(v(0), false), (v(2), true)],
            vec![(v(9), true)],                // unknown variable
            vec![(v(0), true), (v(0), false)], // contradiction
            vec![(v(2), false)],
        ];
        let got = s.mpe_batch(&batch);
        assert_eq!(got.len(), batch.len());
        for (l, e) in batch.iter().enumerate() {
            let mut lane = frozen.session();
            let want = match lane.condition(e) {
                Err(err) => Err(err),
                Ok(()) => lane.mpe(),
            };
            match (&got[l], &want) {
                (Ok(g), Ok(w)) => {
                    assert_eq!(g.log_weight.to_bits(), w.log_weight.to_bits(), "lane {l}");
                    assert_eq!(g.assignment, w.assignment, "lane {l}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "lane {l}"),
                (g, w) => panic!("lane {l}: batched {g:?} vs scalar {w:?}"),
            }
        }
        // The batch left the session's own posture untouched.
        assert!(s.evidence().is_empty());
        assert_eq!(s.last_query().lanes, batch.len());
    }

    /// Every query a session answers must be *bit-identical* to the
    /// mutable path under the same evidence script — the serving tier's
    /// core contract.
    #[test]
    fn session_answers_are_bit_identical_to_the_mutable_path() {
        let mut kb = demo_kb();
        let frozen = Arc::new(demo_kb().freeze());
        let mut s = frozen.session();

        let scripts: &[&[Lit]] = &[&[], &[(v(1), true)], &[(v(0), false), (v(2), true)]];
        for script in scripts {
            kb.retract();
            s.retract();
            if !script.is_empty() {
                assert_eq!(kb.condition(script), s.condition(script));
            }
            assert_eq!(kb.log_weight().to_bits(), s.log_weight().to_bits());
            assert_eq!(
                kb.probability_of_evidence().map(f64::to_bits),
                s.probability_of_evidence().map(f64::to_bits)
            );
            assert_eq!(
                kb.query(&[(v(0), true)]).map(f64::to_bits),
                s.query(&[(v(0), true)]).map(f64::to_bits)
            );
            for i in 0..3u32 {
                assert_eq!(
                    kb.marginal(v(i)).map(f64::to_bits),
                    s.marginal(v(i)).map(f64::to_bits),
                    "marginal x{i} under {script:?}"
                );
            }
            let (km, sm) = (kb.mpe().unwrap(), s.mpe().unwrap());
            assert_eq!(km.log_weight.to_bits(), sm.log_weight.to_bits());
            assert_eq!(km.assignment, sm.assignment);
            let (ke, se) = (kb.enumerate_models(8), s.enumerate_models(8));
            assert_eq!(ke.len(), se.len());
            for (a, b) in ke.iter().zip(&se) {
                assert_eq!(a.log_weight.to_bits(), b.log_weight.to_bits());
                assert_eq!(a.assignment, b.assignment);
            }
            assert_eq!(kb.count_models(), s.count_models());
            assert_eq!(kb.is_consistent(), s.is_consistent());
        }
    }

    #[test]
    fn session_entailment_matches_the_apply_path() {
        let mut kb = demo_kb();
        let frozen = Arc::new(demo_kb().freeze());
        let mut s = frozen.session();
        let clauses: &[&[Lit]] = &[
            &[(v(0), true)],
            &[(v(0), true), (v(1), true)],
            &[(v(1), false), (v(2), true)],
            &[(v(0), true), (v(0), false)],
            &[(v(2), false), (v(0), true), (v(2), true)],
            &[(v(0), true), (v(0), true)],
            &[],
        ];
        for clause in clauses {
            assert_eq!(kb.entails(clause), s.entails(clause), "{clause:?}");
        }
        // Under evidence — including clauses touching the evidence var.
        kb.condition(&[(v(1), true)]).unwrap();
        s.condition(&[(v(1), true)]).unwrap();
        let clauses: &[&[Lit]] = &[
            &[(v(2), true)],
            &[(v(0), true)],
            &[(v(1), true)],
            &[(v(1), true), (v(0), true)],
            &[(v(1), false), (v(2), true)],
            &[(v(1), false)],
            &[(v(1), false), (v(0), true)],
            &[],
        ];
        for clause in clauses {
            assert_eq!(kb.entails(clause), s.entails(clause), "{clause:?}");
        }
        // Contradictory evidence: both paths report it and then entail ⊥.
        assert_eq!(
            kb.condition(&[(v(1), false)]),
            s.condition(&[(v(1), false)])
        );
        assert_eq!(kb.entails(&[]), s.entails(&[]));
        kb.retract();
        s.retract();
        assert_eq!(kb.entails(&[]), s.entails(&[]));
    }

    #[test]
    fn evidence_frozen_into_the_base_persists_across_session_retract() {
        let mut kb = demo_kb();
        kb.condition(&[(v(2), true)]).unwrap();
        let expect = kb.log_weight();
        let frozen = Arc::new(kb.freeze());
        assert_eq!(frozen.evidence(), &[(v(2), true)]);
        let mut s = frozen.session();
        assert_eq!(s.log_weight().to_bits(), expect.to_bits());
        // A session conditions further, retracts, and lands back on the
        // frozen baseline — not the unconditioned formula.
        s.condition(&[(v(1), false)]).unwrap();
        s.retract();
        assert_eq!(s.log_weight().to_bits(), expect.to_bits());
        assert!(s.evidence().is_empty());
    }

    #[test]
    fn sessions_condition_independently_over_one_slab() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut a = frozen.session();
        let mut b = frozen.session();
        a.condition(&[(v(1), true)]).unwrap();
        b.condition(&[(v(1), false)]).unwrap();
        // Each session sees its own posterior; cross-check via branches of
        // the mutable path.
        let mut ka = frozen.branch();
        ka.condition(&[(v(1), true)]).unwrap();
        let mut kb2 = frozen.branch();
        kb2.condition(&[(v(1), false)]).unwrap();
        assert_eq!(a.log_weight().to_bits(), ka.log_weight().to_bits());
        assert_eq!(b.log_weight().to_bits(), kb2.log_weight().to_bits());
        assert_eq!(a.count_models(), ka.count_models());
        assert_eq!(b.count_models(), kb2.count_models());
    }

    #[test]
    fn session_weight_changes_stay_session_local() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut a = frozen.session();
        let mut b = frozen.session();
        let before = b.log_weight();
        a.set_probability(v(0), 0.99).unwrap();
        assert_ne!(a.log_weight().to_bits(), before.to_bits());
        assert_eq!(b.log_weight().to_bits(), before.to_bits());
        assert_eq!(frozen.weights_of(v(0)), Some((0.7, 0.3)));
        // And the session's answers match a mutable base given the same
        // weight change.
        let mut k = frozen.branch();
        k.set_probability(v(0), 0.99).unwrap();
        assert_eq!(a.log_weight().to_bits(), k.log_weight().to_bits());
        assert_eq!(
            a.marginal(v(2)).map(f64::to_bits),
            k.marginal(v(2)).map(f64::to_bits)
        );
    }

    #[test]
    fn branch_reopens_the_full_mutable_query_menu() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut br = frozen.branch();
        let mut kb = demo_kb();
        // Structural conditioning (the apply machinery) works on the
        // overlay and matches a never-frozen base exactly.
        assert_eq!(br.condition(&[(v(1), true)]), kb.condition(&[(v(1), true)]));
        assert_eq!(br.log_weight().to_bits(), kb.log_weight().to_bits());
        assert_eq!(br.count_models(), kb.count_models());
        assert_eq!(br.entails(&[(v(2), true)]), kb.entails(&[(v(2), true)]));
        assert_eq!(
            br.marginal(v(0)).map(f64::to_bits),
            kb.marginal(v(0)).map(f64::to_bits)
        );
        // The overlay interned the restriction without touching the slab.
        assert!(br.sdd().num_allocated() >= frozen.sdd().num_allocated());
        // A branch can itself be frozen (flattening the overlay) and keep
        // serving.
        let refrozen = Arc::new(br.freeze());
        let mut s = refrozen.session();
        assert_eq!(s.log_weight().to_bits(), kb.log_weight().to_bits());
    }

    #[test]
    fn memory_bytes_parity_with_the_mutable_manager() {
        let kb = demo_kb();
        let mutable = kb.sdd().memory_bytes();
        let frozen = Arc::new(kb.freeze());
        let slab = frozen.memory_bytes();
        assert!(slab > 0);
        // Freezing moves the slabs (exact-length allocations), so the
        // frozen report never exceeds the mutable one.
        assert!(
            slab <= mutable,
            "frozen slab {slab} vs mutable manager {mutable}"
        );
        let mut s = frozen.session();
        let _ = s.log_weight();
        assert_eq!(s.last_query().mem_bytes, slab);
        assert_eq!(s.last_query().apply, ApplyStats::default());
    }

    /// The memo-hit flag separates the memoized-marginals fast path from a
    /// real sweep — both report zero recomputation on a warm cache, but
    /// only the memo hit skips the sweep entirely.
    #[test]
    fn memo_hit_flag_distinguishes_the_fast_path() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut s = frozen.session();
        let _ = s.marginal(v(0)).unwrap();
        assert!(!s.last_query().memo_hit, "first marginal runs the sweep");
        let _ = s.marginal(v(1)).unwrap();
        assert!(s.last_query().memo_hit, "second marginal is a memo hit");
        s.set_probability(v(0), 0.5).unwrap();
        let _ = s.marginal(v(1)).unwrap();
        assert!(
            !s.last_query().memo_hit,
            "weight change invalidates the memo"
        );
        let _ = s.log_weight();
        assert!(!s.last_query().memo_hit, "non-marginal queries never hit");
    }

    /// An attached registry sees exact per-kind totals, the trace pipeline
    /// feeds the slow log, and answers stay bit-identical to an
    /// uninstrumented session.
    #[test]
    fn attached_obs_records_queries_and_slow_traces() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut plain = frozen.session();
        let mut s = frozen.session();
        let registry = Arc::new(obs::MetricsRegistry::new());
        let slow = Arc::new(obs::SlowLog::new(4));
        s.attach_obs(Arc::clone(&registry), Some(Arc::clone(&slow)));

        assert_eq!(s.log_weight().to_bits(), plain.log_weight().to_bits());
        for i in 0..3u32 {
            assert_eq!(
                s.marginal(v(i)).map(f64::to_bits),
                plain.marginal(v(i)).map(f64::to_bits)
            );
        }
        let _ = s.mpe().unwrap();

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("kb_queries_total", &[("kind", "logw")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("kb_queries_total", &[("kind", "marginal")]),
            Some(3)
        );
        assert_eq!(
            snap.counter_value("kb_queries_total", &[("kind", "mpe")]),
            Some(1)
        );
        // Two of the three marginals were memo hits.
        assert_eq!(
            snap.counter_value("kb_memo_hits_total", &[("kind", "marginal")]),
            Some(2)
        );
        let lat = snap
            .histogram_value("kb_query_us", &[("kind", "marginal")])
            .expect("latency histogram exists");
        assert_eq!(lat.count, 3);
        // Kernel families aggregate the same eval traffic.
        let lookups = snap
            .counter_value("sdd_eval_lookups_total", &[])
            .expect("kernel family exists");
        assert!(lookups > 0);

        // Every query was traced; the slow log retained the worst with
        // stage breakdowns and renders single-line JSON.
        assert!(!slow.is_empty());
        let worst = slow.worst();
        assert!(worst.len() <= slow.capacity());
        let rec = &worst[0];
        assert!(slow.get(rec.id).is_some());
        let json = rec.to_json();
        assert!(json.contains("\"label\":\"") && !json.contains('\n'));
        assert!(rec.notes.iter().any(|(k, _)| *k == "memo_hit"));
    }

    /// `query_batch` lane `l` must be bit-identical to `query` on lane
    /// `l`'s literals — including error lanes, repeated pins, and lanes
    /// whose conjunction has zero weight.
    #[test]
    fn query_batch_is_bit_identical_to_the_scalar_query_per_lane() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut s = frozen.session();
        s.condition(&[(v(2), true)]).unwrap();
        let queries: Vec<Vec<Lit>> = vec![
            vec![],
            vec![(v(0), true)],
            vec![(v(0), false), (v(1), true)],
            vec![(v(1), true), (v(1), false)], // contradictory pins: P = 0
            vec![(v(0), true), (v(0), true)],  // repeated pin
            vec![(v(7), true)],                // unknown variable lane
            vec![(v(2), false)],               // against the evidence: P = 0
        ];
        let batch = s.query_batch(&queries);
        assert_eq!(s.last_query().lanes, queries.len());
        for (l, q) in queries.iter().enumerate() {
            assert_eq!(
                batch[l].as_ref().map(|p| p.to_bits()),
                s.query(q).as_ref().map(|p| p.to_bits()),
                "lane {l} ({q:?})"
            );
        }
        assert_eq!(s.last_query().lanes, 1, "scalar queries report one lane");
        assert!(s.query_batch(&[]).is_empty());
    }

    /// Batched marginals lane `l` must be bit-identical to the scalar
    /// loop `condition(e_l); marginal(v)` on a fresh session — and leave
    /// the batching session's own evidence untouched.
    #[test]
    fn marginal_batches_are_bit_identical_to_the_scalar_loop_per_lane() {
        let frozen = Arc::new(demo_kb().freeze());
        let mut s = frozen.session();
        s.condition(&[(v(2), true)]).unwrap();
        let evidence: Vec<Vec<Lit>> = vec![
            vec![],
            vec![(v(0), true)],
            vec![(v(1), false)],
            vec![(v(0), false), (v(1), false)], // zero weight under x2
            vec![(v(9), true)],                 // unknown variable lane
            vec![(v(2), true)],                 // repeats the session pin
        ];
        let before = s.evidence().to_vec();
        let tables = s.all_marginals_batch(&evidence);
        assert_eq!(s.last_query().lanes, evidence.len());
        let singles = s.marginal_batch(v(1), &evidence);
        assert_eq!(s.evidence(), before, "batching leaves the session pins");
        for (l, e) in evidence.iter().enumerate() {
            // Scalar comparator: a fresh session with the same script.
            let mut f = frozen.session();
            f.condition(&[(v(2), true)]).unwrap();
            let scalar = match f.condition(e) {
                Ok(()) => f.all_marginals(),
                Err(err) => Err(err),
            };
            match (&tables[l], &scalar) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(got.len(), want.len());
                    for ((gv, gp), (wv, wp)) in got.iter().zip(want) {
                        assert_eq!(gv, wv);
                        assert_eq!(gp.to_bits(), wp.to_bits(), "lane {l} ({e:?}) var {gv}");
                    }
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "lane {l} ({e:?})"),
                (a, b) => panic!("lane {l} ({e:?}): batch {a:?} vs scalar {b:?}"),
            }
            assert_eq!(
                singles[l]
                    .as_ref()
                    .map(|p| p.to_bits())
                    .map_err(Clone::clone),
                tables[l]
                    .as_ref()
                    .map(|t| t.iter().find(|(var, _)| *var == v(1)).unwrap().1.to_bits())
                    .map_err(Clone::clone),
                "marginal_batch extracts the all_marginals_batch column"
            );
        }
        // Unknown target variable fails every lane.
        let bad = s.marginal_batch(v(42), &evidence);
        assert!(bad
            .iter()
            .all(|r| matches!(r, Err(KbError::UnknownVariable(x)) if *x == v(42))));
        assert!(s.all_marginals_batch(&[]).is_empty());
    }
}
