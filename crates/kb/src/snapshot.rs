//! Snapshot persistence for the serving tier: [`FrozenKb::save`] /
//! [`FrozenKb::load`].
//!
//! A KB snapshot is a `KIND_KB` container holding the frozen slab's four
//! sections (tags 1–4, written by [`sdd::FrozenSdd::write_sections`])
//! followed by nine KB sections:
//!
//! | tag | section  | payload |
//! |-----|----------|---------|
//! | 16  | kbmeta   | `root, cond_root` |
//! | 17  | vars     | the served [`VarId`]s, defining the dense index |
//! | 18  | weights  | per var in order: `(w⁻, w⁺)` as raw `f64::to_bits` — loads bit-identically |
//! | 19  | evidence | frozen `(var, polarity)` literals, in assertion order |
//! | 20  | pinned   | `(var, state)` pairs — state `0`/`1` = pinned to that polarity, `2` = contradicted |
//! | 21  | acmeta   | AC root, then per var the shared `(¬v, v)` leaf ids |
//! | 22  | ackinds  | one kind byte per AC gate |
//! | 23  | acgmeta  | per gate: leaf `(var, positive)` or child range `(start, end)` |
//! | 24  | acchild  | the flat AC child array |
//!
//! The arithmetic circuit is persisted rather than re-unfolded because the
//! unfold is a large share of freeze cost at serving scale, and its CSR
//! buffers load as three straight reads. Derived tables (`var_index`) are
//! rebuilt; provenance is [`KbProvenance::Raw`] — a compilation report is
//! about a compilation, and a load is not one.
//!
//! Loading validates every cross-reference before trusting it: roots in
//! the slab, variables known to the vtree and distinct, weights finite and
//! nonnegative (the invariant [`crate::KnowledgeBase::set_weights`]
//! enforces), evidence/pin variables served, AC gates topologically
//! ordered with in-bounds child ranges and leaves matching the dense
//! variable index. Anything else is a typed [`snap::SnapError`].

use crate::ac::{Ac, AcId, K_ADD, K_LEAF, K_MUL, K_ZERO};
use crate::{FrozenKb, KbProvenance, Lit};
use sdd::{FrozenSdd, SddId};
use snap::{
    bytes_to_u32_pairs, bytes_to_u32s, bytes_to_u64_pairs, put_u32, put_u64, Dec, Reader,
    SnapError, Writer, KIND_KB,
};
use std::io::{BufRead, Write};
use std::sync::Arc;
use vtree::fxhash::FxHashMap;
use vtree::VarId;

/// Section tag: the KB roots.
pub const TAG_KBMETA: u32 = 16;
/// Section tag: the served variables.
pub const TAG_VARS: u32 = 17;
/// Section tag: the dense weight table.
pub const TAG_WEIGHTS: u32 = 18;
/// Section tag: the frozen evidence.
pub const TAG_EVIDENCE: u32 = 19;
/// Section tag: the evidence pin table.
pub const TAG_PINNED: u32 = 20;
/// Section tag: AC root and literal-leaf ids.
pub const TAG_ACMETA: u32 = 21;
/// Section tag: AC gate kinds.
pub const TAG_ACKINDS: u32 = 22;
/// Section tag: AC gate metadata.
pub const TAG_ACGMETA: u32 = 23;
/// Section tag: the flat AC child array.
pub const TAG_ACCHILD: u32 = 24;

/// Sections in a KB container: the embedded slab's plus the KB's own.
pub const KB_SECTIONS: u32 = sdd::snapshot::SDD_SECTIONS + 9;

/// Pin states inside [`TAG_PINNED`].
const PIN_FALSE: u32 = 0;
const PIN_TRUE: u32 = 1;
const PIN_CONTRADICTED: u32 = 2;

impl FrozenKb {
    /// Persist this base as a `KIND_KB` container.
    pub fn save<W: Write>(&self, out: W) -> Result<(), SnapError> {
        let mut w = Writer::new(out, KIND_KB, KB_SECTIONS)?;
        self.sdd.write_sections(&mut w)?;

        let mut buf = Vec::with_capacity(8);
        put_u32(&mut buf, self.root.0);
        put_u32(&mut buf, self.cond_root.0);
        w.section(TAG_KBMETA, &buf)?;

        let mut buf = Vec::with_capacity(self.vars.len() * 4);
        for &v in &self.vars {
            put_u32(&mut buf, v.0);
        }
        w.section(TAG_VARS, &buf)?;

        let mut buf = Vec::with_capacity(self.vars.len() * 16);
        for &v in &self.vars {
            let (wn, wp) = self.weights.get(&v).copied().unwrap_or((1.0, 1.0));
            put_u64(&mut buf, wn.to_bits());
            put_u64(&mut buf, wp.to_bits());
        }
        w.section(TAG_WEIGHTS, &buf)?;

        let mut buf = Vec::with_capacity(self.evidence.len() * 8);
        for &(v, b) in &self.evidence {
            put_u32(&mut buf, v.0);
            put_u32(&mut buf, b as u32);
        }
        w.section(TAG_EVIDENCE, &buf)?;

        // Deterministic output: pin entries sorted by variable (the map's
        // iteration order is not).
        let mut pins: Vec<(VarId, Option<bool>)> =
            self.pinned.iter().map(|(&v, &s)| (v, s)).collect();
        pins.sort_unstable_by_key(|&(v, _)| v);
        let mut buf = Vec::with_capacity(pins.len() * 8);
        for (v, state) in pins {
            put_u32(&mut buf, v.0);
            put_u32(
                &mut buf,
                match state {
                    Some(false) => PIN_FALSE,
                    Some(true) => PIN_TRUE,
                    None => PIN_CONTRADICTED,
                },
            );
        }
        w.section(TAG_PINNED, &buf)?;

        let mut buf = Vec::with_capacity(4 + self.ac.leaves.len() * 8);
        put_u32(&mut buf, self.ac.root);
        for &(n, p) in &self.ac.leaves {
            put_u32(&mut buf, n);
            put_u32(&mut buf, p);
        }
        w.section(TAG_ACMETA, &buf)?;
        w.section(TAG_ACKINDS, &self.ac.kinds)?;
        let mut buf = Vec::with_capacity(self.ac.meta.len() * 8);
        for &(a, b) in &self.ac.meta {
            put_u32(&mut buf, a);
            put_u32(&mut buf, b);
        }
        w.section(TAG_ACGMETA, &buf)?;
        let mut buf = Vec::with_capacity(self.ac.children.len() * 4);
        for &c in &self.ac.children {
            put_u32(&mut buf, c);
        }
        w.section(TAG_ACCHILD, &buf)?;

        w.finish()?;
        Ok(())
    }

    /// Load a base back from a `KIND_KB` container, validating everything.
    /// The result answers every query bit-identically to the base that was
    /// saved.
    pub fn load<R: BufRead>(mut input: R) -> Result<FrozenKb, SnapError> {
        let mut r = Reader::new(&mut input, KIND_KB)?;
        let sdd = FrozenSdd::read_sections(&mut r)?;
        let num_nodes = sdd.num_allocated();

        let meta = r.take(TAG_KBMETA)?;
        let mut d = Dec::new(&meta, "kbmeta section");
        let root = SddId(d.u32()?);
        let cond_root = SddId(d.u32()?);
        d.done()?;
        if root.0 as usize >= num_nodes || cond_root.0 as usize >= num_nodes {
            return Err(SnapError::Invalid {
                what: "kb root out of bounds",
            });
        }

        let vars: Vec<VarId> = bytes_to_u32s(&r.take(TAG_VARS)?, "vars section ragged")?
            .into_iter()
            .map(VarId)
            .collect();
        let mut var_index: FxHashMap<VarId, usize> = FxHashMap::default();
        for (i, &v) in vars.iter().enumerate() {
            if sdd.vtree().leaf_of_var(v).is_none() {
                return Err(SnapError::Invalid {
                    what: "served variable not in the vtree",
                });
            }
            if var_index.insert(v, i).is_some() {
                return Err(SnapError::Invalid {
                    what: "duplicate served variable",
                });
            }
        }

        let pairs = bytes_to_u64_pairs(&r.take(TAG_WEIGHTS)?, "weight section ragged")?;
        if pairs.len() != vars.len() {
            return Err(SnapError::Invalid {
                what: "weight table length disagrees with the variable list",
            });
        }
        let mut weights: FxHashMap<VarId, (f64, f64)> = FxHashMap::default();
        for (&v, &(nb, pb)) in vars.iter().zip(pairs.iter()) {
            let (wn, wp) = (f64::from_bits(nb), f64::from_bits(pb));
            // The invariant KnowledgeBase::set_weights enforces.
            if !(wn >= 0.0 && wn.is_finite() && wp >= 0.0 && wp.is_finite()) {
                return Err(SnapError::Invalid {
                    what: "weight not finite and nonnegative",
                });
            }
            weights.insert(v, (wn, wp));
        }

        let mut evidence: Vec<Lit> = Vec::new();
        for (v, b) in bytes_to_u32_pairs(&r.take(TAG_EVIDENCE)?, "evidence section ragged")? {
            if !var_index.contains_key(&VarId(v)) || b > 1 {
                return Err(SnapError::Invalid {
                    what: "malformed evidence literal",
                });
            }
            evidence.push((VarId(v), b == 1));
        }

        let mut pinned: FxHashMap<VarId, Option<bool>> = FxHashMap::default();
        for (v, state) in bytes_to_u32_pairs(&r.take(TAG_PINNED)?, "pin section ragged")? {
            let v = VarId(v);
            if !var_index.contains_key(&v) {
                return Err(SnapError::Invalid {
                    what: "pinned variable not served",
                });
            }
            let state = match state {
                PIN_FALSE => Some(false),
                PIN_TRUE => Some(true),
                PIN_CONTRADICTED => None,
                _ => {
                    return Err(SnapError::Invalid {
                        what: "unknown pin state",
                    })
                }
            };
            if pinned.insert(v, state).is_some() {
                return Err(SnapError::Invalid {
                    what: "duplicate pin entry",
                });
            }
        }

        let ac = read_ac(&mut r, vars.clone())?;

        Ok(FrozenKb {
            sdd: Arc::new(sdd),
            root,
            cond_root,
            vars,
            var_index,
            weights,
            evidence,
            pinned,
            ac,
            provenance: KbProvenance::Raw,
        })
    }
}

/// Read and validate the four AC sections into a circuit over `vars`.
fn read_ac(r: &mut Reader, vars: Vec<VarId>) -> Result<Ac, SnapError> {
    let meta = r.take(TAG_ACMETA)?;
    let mut d = Dec::new(&meta, "acmeta section");
    let root = d.u32()?;
    let leaves: Vec<(AcId, AcId)> = bytes_to_u32s(d.rest(), "acmeta section ragged")?
        .chunks_exact(2)
        .map(|c| (c[0], c[1]))
        .collect();
    if leaves.len() != vars.len() {
        return Err(SnapError::Invalid {
            what: "ac leaf table length disagrees with the variable list",
        });
    }

    let kinds = r.take(TAG_ACKINDS)?;
    let gmeta = bytes_to_u32_pairs(&r.take(TAG_ACGMETA)?, "ac meta section ragged")?;
    let children = bytes_to_u32s(&r.take(TAG_ACCHILD)?, "ac child section ragged")?;
    if gmeta.len() != kinds.len() {
        return Err(SnapError::Invalid {
            what: "ac gate arrays disagree in length",
        });
    }
    if root as usize >= kinds.len() {
        return Err(SnapError::Invalid {
            what: "ac root out of bounds",
        });
    }
    for (id, (&kind, &(a, b))) in kinds.iter().zip(gmeta.iter()).enumerate() {
        match kind {
            K_ZERO => {}
            K_LEAF => {
                if a as usize >= vars.len() || b > 1 {
                    return Err(SnapError::Invalid {
                        what: "ac leaf gate out of bounds",
                    });
                }
            }
            K_ADD | K_MUL => {
                if a > b || b as usize > children.len() {
                    return Err(SnapError::Invalid {
                        what: "ac child range out of bounds",
                    });
                }
                // Topological order: children strictly below their gate —
                // the sweeps index forward/backward on that guarantee.
                if children[a as usize..b as usize]
                    .iter()
                    .any(|&c| c as usize >= id)
                {
                    return Err(SnapError::Invalid {
                        what: "ac child not below its gate",
                    });
                }
            }
            _ => {
                return Err(SnapError::Invalid {
                    what: "unknown ac gate kind",
                })
            }
        }
    }
    // The shared leaf pairs must be the dense variable index's own gates —
    // marginals multiply dr[leaf] by the variable's weight on that basis.
    for (i, &(n, p)) in leaves.iter().enumerate() {
        let ok = |id: AcId, positive: u32| {
            (id as usize) < kinds.len()
                && kinds[id as usize] == K_LEAF
                && gmeta[id as usize] == (i as u32, positive)
        };
        if !ok(n, 0) || !ok(p, 1) {
            return Err(SnapError::Invalid {
                what: "ac leaf table does not match its gates",
            });
        }
    }
    Ok(Ac {
        kinds,
        meta: gmeta,
        children,
        root,
        vars,
        leaves,
    })
}
