//! The knowledge-base serving layer: **compile once, answer many queries**.
//!
//! The point of paying for a treewidth-bounded SDD compilation (Bova &
//! Szeider, PODS'17) is that everything afterwards is polynomial in the
//! compiled size. Before this crate, the workspace could only exploit that
//! for one-shot counting; [`KnowledgeBase`] turns a compiled SDD into a
//! long-lived session answering the full classical query menu without ever
//! recompiling:
//!
//! * [`KnowledgeBase::condition`] — assert evidence literals (SDD
//!   restriction through the existing apply machinery, plus weight
//!   pinning), [`KnowledgeBase::retract`] to clear;
//! * [`KnowledgeBase::marginal`] / [`KnowledgeBase::all_marginals`] —
//!   posterior marginals of every variable from one two-pass (upward +
//!   downward) sweep of the unfolded arithmetic circuit;
//! * [`KnowledgeBase::mpe`] — the most probable explanation under the
//!   [`arith::MaxPlus`] semiring, with an argmax-decoded, *verified*
//!   witness assignment;
//! * [`KnowledgeBase::enumerate_models`] — the top-`k` models by weight;
//! * [`KnowledgeBase::entails`] — clause entailment by conditioning on the
//!   clause's negation;
//! * [`KnowledgeBase::query`] / [`KnowledgeBase::probability_of_evidence`]
//!   / [`KnowledgeBase::count_models`] — conditional probabilities and
//!   exact counts under the current evidence.
//!
//! Numeric queries run in log space ([`arith::LogF64`]) so 10k-variable
//! weighted counts cannot underflow. The weighted-count queries
//! ([`KnowledgeBase::log_weight`], [`KnowledgeBase::query`],
//! [`KnowledgeBase::probability_of_evidence`]) go through the epoch-tagged
//! [`sdd::eval::EvalCache`], so changing one variable's weight (or
//! asserting one literal of evidence) re-evaluates only the dirty cone of
//! the diagram; the two-pass queries (marginals, MPE, enumeration) sweep
//! the unfolded circuit, still linear in its size. Either way the
//! compilation is paid exactly once — `exp_kb` (E14) measures warm
//! marginal queries 20–77× faster than recompile-per-query.
//!
//! **Depth contract:** every engine under this session — compilation,
//! apply-based conditioning, the cached evaluators, and the circuit
//! sweeps — is worklist-iterative (explicit heap-allocated stacks), so
//! sessions over chain-deep diagrams run on a *default-size* thread
//! stack at any variable count; this crate's own stress test drives a
//! 100k-variable chain end to end on an ordinary test thread. For such
//! sizes, compile with `CompilerBuilder::exact_counts(false)`: the
//! up-front exact `BigUint` count is quadratic at chain scale, and the
//! serving layer answers counting queries on demand anyway.
//!
//! ```
//! use kb::KnowledgeBase;
//! use sentential_core::Compiler;
//! use vtree::VarId;
//!
//! let f = cnf::CnfFormula::from_dimacs("p cnf 3 2\n1 2 0\n-2 3 0\n").unwrap();
//! let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), &f).unwrap();
//! assert_eq!(kb.count_models().to_u128(), Some(4));
//!
//! // Condition on x2 and the model set shrinks — no recompilation.
//! kb.condition(&[(VarId(1), true)]).unwrap();
//! assert_eq!(kb.count_models().to_u128(), Some(2));
//! let m = kb.marginal(VarId(2)).unwrap();
//! assert!((m - 1.0).abs() < 1e-12, "x2 is forced by x2's clause");
//! ```

mod ac;
mod frozen;
mod snapshot;

pub use frozen::{FrozenKb, KbSession};

use crate::ac::Ac;
use arith::{log_sum_exp, BigUint, LogF64};
use boolfunc::Assignment;
use circuit::Circuit;
use cnf::CnfFormula;
use sdd::eval::{EvalCache, EvalCacheStats};
use sdd::{ApplyStats, SddId, SddManager, FALSE};
use sentential_core::compiler::Compilation;
use sentential_core::{CnfCompilation, CompileError, CompileReport, Compiler, CountReport};
use std::fmt;
use std::time::{Duration, Instant};
use vtree::fxhash::FxHashMap;
use vtree::VarId;

/// A literal: `(variable, polarity)` — the workspace-wide encoding shared
/// with `cnf::Lit` and `circuit::Clause`.
pub type Lit = (VarId, bool);

/// Failures of knowledge-base queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KbError {
    /// The knowledge base has no model of nonzero weight under the current
    /// evidence — the formula is unsatisfiable, the evidence contradicts
    /// it, or every consistent model has weight 0.
    Inconsistent,
    /// The variable is not covered by the compiled vtree.
    UnknownVariable(VarId),
    /// A weight is unusable by the log-space serving layer: negative, NaN,
    /// or (for [`KnowledgeBase::set_probability`]) outside `[0, 1]`.
    InvalidWeight(VarId),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Inconsistent => {
                write!(f, "no model of nonzero weight under the current evidence")
            }
            KbError::UnknownVariable(v) => {
                write!(f, "variable {v} is not part of the knowledge base")
            }
            KbError::InvalidWeight(v) => {
                write!(
                    f,
                    "variable {v} was given a weight the serving layer cannot \
                     carry (negative, non-finite, or a probability outside [0, 1])"
                )
            }
        }
    }
}

impl std::error::Error for KbError {}

/// Failures constructing a knowledge base from a formula or circuit.
#[derive(Debug)]
pub enum KbBuildError {
    /// The compilation itself failed.
    Compile(CompileError),
    /// The input carries a weight the serving layer cannot adopt
    /// (negative or NaN — see [`KbError::InvalidWeight`]).
    Weight(VarId),
}

impl fmt::Display for KbBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbBuildError::Compile(e) => write!(f, "compilation failed: {e}"),
            KbBuildError::Weight(v) => write!(
                f,
                "variable {v} carries a negative or non-finite weight; \
                 the log-space serving layer needs nonnegative weights"
            ),
        }
    }
}

impl std::error::Error for KbBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbBuildError::Compile(e) => Some(e),
            KbBuildError::Weight(_) => None,
        }
    }
}

impl From<CompileError> for KbBuildError {
    fn from(e: CompileError) -> Self {
        KbBuildError::Compile(e)
    }
}

/// Where a knowledge base's compiled SDD came from, carrying the original
/// compilation report for provenance.
#[derive(Debug)]
pub enum KbProvenance {
    /// Compiled from a circuit by [`Compiler::compile`].
    Circuit(CompileReport),
    /// Compiled from a CNF formula by [`Compiler::compile_cnf`].
    Cnf(CountReport),
    /// Adopted from a caller-supplied manager/root pair.
    Raw,
}

/// One model, as returned by [`KnowledgeBase::mpe`] and
/// [`KnowledgeBase::enumerate_models`]: a complete assignment over the
/// knowledge base's variables plus its log-weight.
#[must_use]
#[derive(Clone, Debug)]
pub struct Model {
    /// The assignment (covers every variable of the knowledge base).
    pub assignment: Assignment,
    /// `ln` of the model's weight (the product of its literal weights) —
    /// log space, so it is meaningful even where the plain weight would
    /// underflow `f64`.
    pub log_weight: f64,
}

impl Model {
    /// The model's weight, `exp(log_weight)` — may underflow to 0 for very
    /// large variable counts; prefer [`Model::log_weight`] there.
    pub fn weight(&self) -> f64 {
        self.log_weight.exp()
    }
}

/// What one knowledge-base query cost, snapshotted per query (counters are
/// deltas, not session lifetime totals).
#[must_use]
#[derive(Copy, Clone, Debug, Default)]
pub struct KbQueryStats {
    /// Apply/cache traffic of the query (conditioning and entailment run
    /// the apply machinery; weight-only queries leave this at zero).
    pub apply: ApplyStats,
    /// Evaluation-cache traffic of the query, over both the prior and the
    /// evidence-conditioned cache: `recomputed` is the dirty cone in nodes.
    pub eval: EvalCacheStats,
    /// Estimated resident bytes of the SDD manager *after* the query
    /// ([`sdd::SddManager::memory_bytes`]) — structural queries hash-cons
    /// new nodes and never reclaim them, so serving sessions watch this
    /// grow (the ROADMAP's manager-GC baseline).
    pub mem_bytes: usize,
    /// Wall-clock time of the query.
    pub duration: Duration,
    /// Whether the query was answered from the marginals memo. A memo hit
    /// reports zero eval traffic — without this flag it would be
    /// indistinguishable from a real sweep, and hit-rate telemetry would
    /// undercount cache effectiveness.
    pub memo_hit: bool,
    /// Batch width of the query: how many evidence/weight rows one sweep
    /// answered. Scalar queries report 1; the `*_batch` session queries
    /// report their lane count, so throughput telemetry can divide the
    /// duration into a per-lane latency.
    pub lanes: usize,
}

/// The query kinds telemetry labels per-query families with
/// (`kb_query_us{kind="marginal"}` and friends).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    Condition,
    Retract,
    Consistent,
    LogWeight,
    ProbEvidence,
    Query,
    Marginal,
    AllMarginals,
    Mpe,
    TopK,
    Entails,
    Count,
    QueryBatch,
    MarginalBatch,
    AllMarginalsBatch,
    MpeBatch,
}

impl QueryKind {
    /// Every kind, in [`QueryKind::index`] order.
    pub const ALL: [QueryKind; 16] = [
        QueryKind::Condition,
        QueryKind::Retract,
        QueryKind::Consistent,
        QueryKind::LogWeight,
        QueryKind::ProbEvidence,
        QueryKind::Query,
        QueryKind::Marginal,
        QueryKind::AllMarginals,
        QueryKind::Mpe,
        QueryKind::TopK,
        QueryKind::Entails,
        QueryKind::Count,
        QueryKind::QueryBatch,
        QueryKind::MarginalBatch,
        QueryKind::AllMarginalsBatch,
        QueryKind::MpeBatch,
    ];

    /// The `kind` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Condition => "condition",
            QueryKind::Retract => "retract",
            QueryKind::Consistent => "consistent",
            QueryKind::LogWeight => "logw",
            QueryKind::ProbEvidence => "pe",
            QueryKind::Query => "query",
            QueryKind::Marginal => "marginal",
            QueryKind::AllMarginals => "marginals",
            QueryKind::Mpe => "mpe",
            QueryKind::TopK => "topk",
            QueryKind::Entails => "entails",
            QueryKind::Count => "count",
            QueryKind::QueryBatch => "query_batch",
            QueryKind::MarginalBatch => "marginal_batch",
            QueryKind::AllMarginalsBatch => "marginals_batch",
            QueryKind::MpeBatch => "mpe_batch",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

fn stats_sum(a: EvalCacheStats, b: EvalCacheStats) -> EvalCacheStats {
    EvalCacheStats {
        lookups: a.lookups + b.lookups,
        hits: a.hits + b.hits,
        recomputed: a.recomputed + b.recomputed,
    }
}

/// A compiled knowledge base: one SDD, one weight table, many queries.
///
/// Construct from a finished compilation ([`KnowledgeBase::compile`],
/// [`KnowledgeBase::compile_cnf`], [`KnowledgeBase::from_compilation`],
/// [`KnowledgeBase::from_cnf_compilation`]) or adopt a raw manager/root
/// pair ([`KnowledgeBase::new`]). Weights default to `(1, 1)` per variable
/// — counting semantics, under which `marginal` is the fraction of models
/// and `mpe` an arbitrary model — and become probabilistic through
/// [`KnowledgeBase::set_probability`] / [`KnowledgeBase::set_weights`].
///
/// All query methods take `&mut self`: answers are cached (epoch-tagged
/// per-node values, memoized marginals) and every query snapshots its cost
/// into [`KnowledgeBase::last_query`].
pub struct KnowledgeBase {
    mgr: SddManager,
    root: SddId,
    /// `root` restricted by the current evidence (structural queries:
    /// entailment, counting, consistency).
    cond_root: SddId,
    vars: Vec<VarId>,
    var_index: FxHashMap<VarId, usize>,
    /// Linear-domain base weights `(w⁻, w⁺)` per variable.
    weights: FxHashMap<VarId, (f64, f64)>,
    /// Evidence in assertion order (duplicates skipped).
    evidence: Vec<Lit>,
    /// Pinned polarity per evidence variable; `None` = contradicted (both
    /// polarities asserted).
    pinned: FxHashMap<VarId, Option<bool>>,
    /// log W(F): the prior partition function, no evidence.
    prior: EvalCache<LogF64>,
    /// log W(F ∧ e): evidence-pinned weights.
    posterior: EvalCache<LogF64>,
    /// The unfolded arithmetic circuit (built on first two-pass query).
    ac: Option<Ac>,
    /// Marginals memo, keyed by the posterior cache's epoch. The
    /// [`KbError::Inconsistent`] verdict is memoized too — rediscovering
    /// it per variable would cost a full sweep each time.
    marginals_memo: Option<(u64, Result<Vec<f64>, KbError>)>,
    provenance: KbProvenance,
    last_query: KbQueryStats,
    /// Scratch flag queries raise inside [`KnowledgeBase::tracked`] when
    /// they answered from the marginals memo (feeds
    /// [`KbQueryStats::memo_hit`]).
    memo_hit_scratch: bool,
}

impl fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("vars", &self.vars.len())
            .field("sdd_size", &self.mgr.size(self.root))
            .field("evidence", &self.evidence)
            .finish_non_exhaustive()
    }
}

impl KnowledgeBase {
    /// Adopt a compiled SDD. Weights start at `(1, 1)` (counting
    /// semantics).
    pub fn new(mgr: SddManager, root: SddId) -> Self {
        let vars: Vec<VarId> = mgr.vtree().vars().to_vec();
        let var_index = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect::<FxHashMap<_, _>>();
        let weights: FxHashMap<VarId, (f64, f64)> = vars.iter().map(|&v| (v, (1.0, 1.0))).collect();
        let prior = EvalCache::new(&mgr, LogF64, |_, _| 0.0);
        let posterior = EvalCache::new(&mgr, LogF64, |_, _| 0.0);
        KnowledgeBase {
            mgr,
            root,
            cond_root: root,
            vars,
            var_index,
            weights,
            evidence: Vec::new(),
            pinned: FxHashMap::default(),
            prior,
            posterior,
            ac: None,
            marginals_memo: None,
            provenance: KbProvenance::Raw,
            last_query: KbQueryStats::default(),
            memo_hit_scratch: false,
        }
    }

    /// Adopt a circuit compilation (see [`Compiler::compile`]).
    pub fn from_compilation(c: Compilation) -> Self {
        let mut kb = KnowledgeBase::new(c.sdd, c.root);
        kb.provenance = KbProvenance::Circuit(c.report);
        kb
    }

    /// Adopt a CNF compilation, taking the literal weights of `f` (exact
    /// rationals, rounded to `f64` for the serving layer; unweighted
    /// variables keep `(1, 1)`). Errors with [`KbBuildError::Weight`] when
    /// `f` carries a weight the log-space layer cannot adopt (the DIMACS
    /// dialects accept negative rationals; this serving layer does not).
    pub fn from_cnf_compilation(c: CnfCompilation, f: &CnfFormula) -> Result<Self, KbBuildError> {
        let mut kb = KnowledgeBase::new(c.sdd, c.root);
        if f.is_weighted() {
            for (v, (wn, wp)) in f.weighted_vars() {
                if kb.var_index.contains_key(&v) {
                    kb.set_weights(v, wn.to_f64(), wp.to_f64())
                        .map_err(|_| KbBuildError::Weight(v))?;
                }
            }
        }
        kb.provenance = KbProvenance::Cnf(c.report);
        Ok(kb)
    }

    /// Compile `circuit` with `compiler` and serve it.
    pub fn compile(compiler: &Compiler, circuit: &Circuit) -> Result<Self, KbBuildError> {
        Ok(KnowledgeBase::from_compilation(compiler.compile(circuit)?))
    }

    /// Compile the CNF formula `f` with `compiler` and serve it, adopting
    /// `f`'s literal weights.
    pub fn compile_cnf(compiler: &Compiler, f: &CnfFormula) -> Result<Self, KbBuildError> {
        KnowledgeBase::from_cnf_compilation(compiler.compile_cnf(f)?, f)
    }

    /// The variables served by this knowledge base (the vtree's variables).
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The underlying SDD manager (read-only).
    pub fn sdd(&self) -> &SddManager {
        &self.mgr
    }

    /// The compiled (unconditioned) root.
    pub fn root(&self) -> SddId {
        self.root
    }

    /// Elements in the compiled SDD.
    pub fn sdd_size(&self) -> usize {
        self.mgr.size(self.root)
    }

    /// Gates in the unfolded arithmetic circuit the two-pass queries sweep
    /// (built on first use, hence `&mut`).
    pub fn unfolded_size(&mut self) -> usize {
        self.ensure_ac();
        self.ac.as_ref().expect("just ensured").size()
    }

    /// Where the SDD came from, with its compilation report.
    pub fn provenance(&self) -> &KbProvenance {
        &self.provenance
    }

    /// Cost of the most recent query (per-query snapshot, not a running
    /// total — see [`KbQueryStats`]).
    pub fn last_query(&self) -> KbQueryStats {
        self.last_query
    }

    // ------------------------------------------------------------------
    // Weights
    // ------------------------------------------------------------------

    /// Set `P(v = 1) = p` (weights `(1 - p, p)`). Errors with
    /// [`KbError::InvalidWeight`] when `p` is outside `[0, 1]` or NaN.
    pub fn set_probability(&mut self, v: VarId, p: f64) -> Result<(), KbError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(KbError::InvalidWeight(v));
        }
        self.set_weights(v, 1.0 - p, p)
    }

    /// Set the weight pair `(w⁻, w⁺)` of `v`. Weights must be nonnegative
    /// and finite-or-zero (the serving layer works in log space); anything
    /// else errors with [`KbError::InvalidWeight`].
    pub fn set_weights(&mut self, v: VarId, neg: f64, pos: f64) -> Result<(), KbError> {
        if !self.var_index.contains_key(&v) {
            return Err(KbError::UnknownVariable(v));
        }
        if !(neg >= 0.0 && neg.is_finite() && pos >= 0.0 && pos.is_finite()) {
            return Err(KbError::InvalidWeight(v));
        }
        self.weights.insert(v, (neg, pos));
        self.prior.set_weight(&self.mgr, v, neg.ln(), pos.ln());
        let (ln, lp) = self.pinned_log_pair(v);
        self.posterior.set_weight(&self.mgr, v, ln, lp);
        Ok(())
    }

    /// The current weight pair `(w⁻, w⁺)` of `v`.
    pub fn weights_of(&self, v: VarId) -> Option<(f64, f64)> {
        self.weights.get(&v).copied()
    }

    /// The evidence-adjusted log-weight pair of `v`.
    fn pinned_log_pair(&self, v: VarId) -> (f64, f64) {
        let (wn, wp) = self.weights[&v];
        match self.pinned.get(&v) {
            None => (wn.ln(), wp.ln()),
            Some(Some(true)) => (f64::NEG_INFINITY, wp.ln()),
            Some(Some(false)) => (wn.ln(), f64::NEG_INFINITY),
            Some(None) => (f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    // ------------------------------------------------------------------
    // Evidence
    // ------------------------------------------------------------------

    /// Assert evidence literals: each `(v, b)` pins `v := b`. The SDD is
    /// restricted through the apply machinery ([`SddManager::condition`])
    /// for the structural queries, and `v`'s opposing weight is zeroed for
    /// the numeric ones. Evidence accumulates across calls; asserting both
    /// polarities of a variable makes the base inconsistent (and the call
    /// returns [`KbError::Inconsistent`], with the evidence retained — use
    /// [`KnowledgeBase::retract`] to recover).
    pub fn condition(&mut self, lits: &[Lit]) -> Result<(), KbError> {
        for &(v, _) in lits {
            if !self.var_index.contains_key(&v) {
                return Err(KbError::UnknownVariable(v));
            }
        }
        self.tracked(|kb| {
            for &(v, b) in lits {
                match kb.pinned.get(&v).copied() {
                    Some(Some(prev)) if prev == b => continue, // already pinned
                    Some(Some(_)) => {
                        // Both polarities asserted: structurally false.
                        kb.pinned.insert(v, None);
                        kb.cond_root = FALSE;
                    }
                    Some(None) => continue, // already contradicted
                    None => {
                        kb.pinned.insert(v, Some(b));
                        kb.cond_root = kb.mgr.condition(kb.cond_root, v, b);
                    }
                }
                kb.evidence.push((v, b));
                let (ln, lp) = kb.pinned_log_pair(v);
                kb.posterior.set_weight(&kb.mgr, v, ln, lp);
            }
            if kb.is_consistent() {
                Ok(())
            } else {
                Err(KbError::Inconsistent)
            }
        })
    }

    /// Drop all evidence, restoring the unconditioned knowledge base.
    pub fn retract(&mut self) {
        self.tracked(|kb| {
            let pinned: Vec<VarId> = kb.pinned.keys().copied().collect();
            kb.pinned.clear();
            for v in pinned {
                let (ln, lp) = kb.pinned_log_pair(v);
                kb.posterior.set_weight(&kb.mgr, v, ln, lp);
            }
            kb.evidence.clear();
            kb.cond_root = kb.root;
        })
    }

    /// The asserted evidence literals, in assertion order.
    pub fn evidence(&self) -> &[Lit] {
        &self.evidence
    }

    /// Does the formula have a model consistent with the evidence?
    /// (Structural: ignores weights — a model whose weight is 0 still
    /// counts. The numeric queries additionally fail with
    /// [`KbError::Inconsistent`] when every such model weighs nothing.)
    pub fn is_consistent(&self) -> bool {
        self.cond_root != FALSE
    }

    // ------------------------------------------------------------------
    // Numeric queries (log-space, cached)
    // ------------------------------------------------------------------

    /// `ln W(F ∧ e)`: the log weighted model count under the current
    /// evidence (`-∞` when inconsistent). The underflow-safe primitive the
    /// probability queries are ratios of.
    pub fn log_weight(&mut self) -> f64 {
        self.tracked(|kb| kb.posterior.evaluate(&kb.mgr, kb.root))
    }

    /// `W(F ∧ e)` in the linear domain — underflows to 0 where
    /// [`KnowledgeBase::log_weight`] would not.
    pub fn weighted_count(&mut self) -> f64 {
        self.log_weight().exp()
    }

    /// `P(e) = W(F ∧ e) / W(F)`: how much of the prior weight the evidence
    /// retained. Errors when the formula itself carries no weight.
    pub fn probability_of_evidence(&mut self) -> Result<f64, KbError> {
        self.tracked(|kb| {
            let prior = kb.prior.evaluate(&kb.mgr, kb.root);
            if prior == f64::NEG_INFINITY {
                return Err(KbError::Inconsistent);
            }
            let post = kb.posterior.evaluate(&kb.mgr, kb.root);
            Ok((post - prior).exp())
        })
    }

    /// `P(⋀ lits | F ∧ e)`: the conditional probability of a conjunction
    /// of literals given the formula and current evidence. Computed by
    /// temporarily pinning the literals' weights — the epoch cache
    /// re-evaluates only the affected cones, twice (pin and restore).
    pub fn query(&mut self, lits: &[Lit]) -> Result<f64, KbError> {
        for &(v, _) in lits {
            if !self.var_index.contains_key(&v) {
                return Err(KbError::UnknownVariable(v));
            }
        }
        self.tracked(|kb| {
            let epoch_before = kb.posterior.epoch();
            let denom = kb.posterior.evaluate(&kb.mgr, kb.root);
            if denom == f64::NEG_INFINITY {
                return Err(KbError::Inconsistent);
            }
            let mut saved: Vec<(VarId, (f64, f64))> = Vec::with_capacity(lits.len());
            for &(v, b) in lits {
                let (ln, lp) = *kb.posterior.weight(v);
                saved.push((v, (ln, lp)));
                let pinned = if b {
                    (f64::NEG_INFINITY, lp)
                } else {
                    (ln, f64::NEG_INFINITY)
                };
                kb.posterior.set_weight(&kb.mgr, v, pinned.0, pinned.1);
            }
            let numer = kb.posterior.evaluate(&kb.mgr, kb.root);
            for (v, (ln, lp)) in saved.into_iter().rev() {
                kb.posterior.set_weight(&kb.mgr, v, ln, lp);
            }
            // The pin/restore advanced the epoch but left the weight table
            // bit-identical: carry a current marginals memo forward so the
            // next marginal() doesn't redo a full two-pass sweep for
            // nothing.
            if let Some((e, _)) = &mut kb.marginals_memo {
                if *e == epoch_before {
                    *e = kb.posterior.epoch();
                }
            }
            Ok((numer - denom).exp())
        })
    }

    /// `P(v = 1 | F ∧ e)`: one posterior marginal. The first marginal
    /// after a weight or evidence change runs the two-pass sweep and
    /// memoizes all of them, so a scan over variables costs one sweep.
    pub fn marginal(&mut self, v: VarId) -> Result<f64, KbError> {
        let i = *self.var_index.get(&v).ok_or(KbError::UnknownVariable(v))?;
        Ok(self.marginals_table()?[i])
    }

    /// All posterior marginals `P(v = 1 | F ∧ e)`, in vtree variable
    /// order, from one upward + downward sweep of the unfolded circuit.
    pub fn all_marginals(&mut self) -> Result<Vec<(VarId, f64)>, KbError> {
        let table = self.marginals_table()?.clone();
        Ok(self.vars.iter().copied().zip(table).collect())
    }

    fn marginals_table(&mut self) -> Result<&Vec<f64>, KbError> {
        self.ensure_ac();
        // The whole lookup runs inside tracked() so last_query() reflects
        // this query even on a memo hit (a hit is simply a cheap query).
        self.tracked(|kb| {
            let epoch = kb.posterior.epoch();
            if matches!(&kb.marginals_memo, Some((e, _)) if *e == epoch) {
                kb.memo_hit_scratch = true;
                return;
            }
            let weights = kb.posterior_log_weights();
            let ac = kb.ac.as_ref().expect("ensured above");
            let (total, pairs) = ac.marginals(&LogF64, &weights);
            let result = if total == f64::NEG_INFINITY {
                Err(KbError::Inconsistent)
            } else {
                Ok(pairs
                    .into_iter()
                    .map(|(mn, mp)| (mp - log_sum_exp(mn, mp)).exp())
                    .collect::<Vec<f64>>())
            };
            kb.marginals_memo = Some((epoch, result));
        });
        match &self.marginals_memo.as_ref().expect("just set").1 {
            Ok(table) => Ok(table),
            Err(e) => Err(e.clone()),
        }
    }

    /// The most probable explanation: the model of maximum weight
    /// consistent with the current evidence, found by a [`arith::MaxPlus`]
    /// sweep with argmax back-pointers. The witness is **verified** before
    /// it is returned: it satisfies the compiled SDD, agrees with the
    /// evidence, and its literal weights multiply to the reported maximum
    /// (any violation is a bug and panics).
    pub fn mpe(&mut self) -> Result<Model, KbError> {
        self.ensure_ac();
        self.tracked(|kb| {
            let weights = kb.posterior_log_weights();
            let ac = kb.ac.as_ref().expect("ensured above");
            let (best, polarity) = ac.mpe(&weights).ok_or(KbError::Inconsistent)?;
            let assignment =
                Assignment::from_pairs(kb.vars.iter().copied().zip(polarity.iter().copied()));
            // Verification: witness ⊨ F, witness ⊨ e, weight reproduces.
            assert!(
                kb.mgr.eval(kb.root, &assignment),
                "MPE witness must satisfy the compiled SDD"
            );
            for &(v, b) in &kb.evidence {
                assert_eq!(
                    assignment.get(v),
                    Some(b),
                    "MPE witness must agree with the evidence on {v}"
                );
            }
            let recomputed: f64 = kb
                .vars
                .iter()
                .zip(&polarity)
                .map(|(&v, &b)| {
                    let (ln, lp) = kb.pinned_log_pair(v);
                    if b {
                        lp
                    } else {
                        ln
                    }
                })
                .sum();
            assert!(
                (recomputed - best).abs() <= 1e-9 * best.abs().max(1.0),
                "MPE witness weight {recomputed} must reproduce the maximum {best}"
            );
            Ok(Model {
                assignment,
                log_weight: best,
            })
        })
    }

    /// The `k` heaviest models consistent with the current evidence,
    /// heaviest first (fewer than `k` when the model set is smaller; empty
    /// when inconsistent). Each returned model satisfies the SDD —
    /// determinism guarantees the list has no duplicates.
    pub fn enumerate_models(&mut self, k: usize) -> Vec<Model> {
        self.ensure_ac();
        self.tracked(|kb| {
            let weights = kb.posterior_log_weights();
            let ac = kb.ac.as_ref().expect("ensured above");
            ac.top_k(&weights, k)
                .into_iter()
                .map(|(log_weight, polarity)| {
                    let assignment = Assignment::from_pairs(
                        kb.vars.iter().copied().zip(polarity.iter().copied()),
                    );
                    debug_assert!(kb.mgr.eval(kb.root, &assignment));
                    Model {
                        assignment,
                        log_weight,
                    }
                })
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Structural queries (weight-free)
    // ------------------------------------------------------------------

    /// Does `F ∧ e` entail the clause `⋁ lits`? Decided by conditioning on
    /// the clause's negation (every literal flipped) and checking the
    /// restriction collapsed to ⊥ — pure apply machinery, no weights. An
    /// empty clause is entailed exactly when the base is inconsistent.
    ///
    /// Note: restriction hash-conses new nodes into the manager, and those
    /// nodes are never reclaimed (the manager has no garbage collection
    /// yet), so memory grows with the number of structurally *distinct*
    /// entailment/conditioning queries — repeated queries hit the apply
    /// cache and allocate nothing. Weight-based queries ([`KnowledgeBase::query`],
    /// marginals, MPE, enumeration) never allocate nodes.
    pub fn entails(&mut self, clause: &[Lit]) -> Result<bool, KbError> {
        for &(v, _) in clause {
            if !self.var_index.contains_key(&v) {
                return Err(KbError::UnknownVariable(v));
            }
        }
        self.tracked(|kb| {
            // Restriction on a variable the diagram no longer mentions is
            // a no-op, so two cases must be resolved *before* conditioning:
            // a clause literal the evidence satisfies (the pinned variable
            // was conditioned away), and a complementary pair within the
            // clause itself (the first restriction eliminates the variable,
            // silently skipping the second) — both make the clause hold in
            // every model of `F ∧ e`. Evidence-falsified literals and
            // duplicate literals contribute nothing.
            let mut seen: FxHashMap<VarId, bool> = FxHashMap::default();
            let mut r = kb.cond_root;
            for &(v, b) in clause {
                match kb.pinned.get(&v) {
                    Some(Some(pinned)) if *pinned == b => return Ok(true),
                    Some(_) => {} // falsified (or contradicted: r is ⊥ anyway)
                    None => match seen.get(&v) {
                        Some(&prev) if prev != b => return Ok(true), // v ∨ ¬v
                        Some(_) => {}                                // duplicate literal
                        None => {
                            seen.insert(v, b);
                            r = kb.mgr.condition(r, v, !b);
                        }
                    },
                }
            }
            Ok(r == FALSE)
        })
    }

    /// The exact number of models of `F ∧ e` over all variables
    /// ([`arith::BigUint`] — no overflow at any size).
    pub fn count_models(&mut self) -> BigUint {
        self.tracked(|kb| {
            // The restricted SDD no longer mentions the pinned variables,
            // so the smoothed count doubles once per pinned variable; shift
            // those back out. (A contradicted variable means ⊥ anyway.)
            let raw = kb.mgr.count_models_exact(kb.cond_root);
            raw.shr(kb.pinned.len())
        })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Unfold the arithmetic circuit on first use (the SDD root never
    /// changes — evidence enters through weights — so once is enough).
    fn ensure_ac(&mut self) {
        if self.ac.is_none() {
            self.ac = Some(Ac::build(&self.mgr, self.root));
        }
    }

    /// Dense evidence-adjusted log-weight table in vtree variable order.
    fn posterior_log_weights(&self) -> Vec<(f64, f64)> {
        self.vars.iter().map(|&v| self.pinned_log_pair(v)).collect()
    }

    /// Run a query body, snapshotting its apply/eval/wall-clock cost into
    /// [`KnowledgeBase::last_query`].
    fn tracked<T>(&mut self, body: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let apply0 = self.mgr.apply_stats();
        let eval0 = stats_sum(self.prior.stats(), self.posterior.stats());
        self.memo_hit_scratch = false;
        let out = body(self);
        self.last_query = KbQueryStats {
            apply: self.mgr.apply_stats().delta_since(apply0),
            eval: stats_sum(self.prior.stats(), self.posterior.stats()).delta_since(eval0),
            mem_bytes: self.mgr.memory_bytes(),
            duration: t0.elapsed(),
            memo_hit: self.memo_hit_scratch,
            lanes: 1,
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::VarSet;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// `(x0 ∨ x1) ∧ (¬x1 ∨ x2)` with distinct probabilities — small enough
    /// to cross-check every query by enumeration.
    fn demo_kb() -> (KnowledgeBase, CnfFormula, Vec<f64>) {
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![(v(0), true), (v(1), true)],
                vec![(v(1), false), (v(2), true)],
            ],
        );
        let probs = vec![0.3, 0.6, 0.8];
        let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), &f).unwrap();
        for (i, &p) in probs.iter().enumerate() {
            kb.set_probability(v(i as u32), p).unwrap();
        }
        (kb, f, probs)
    }

    /// Brute-force `Σ weight` over models of `f ∧ lits` under `probs`.
    fn brute_weight(f: &CnfFormula, probs: &[f64], lits: &[Lit]) -> f64 {
        let vars = VarSet::from_slice(&f.all_vars());
        (0..1u64 << probs.len())
            .map(|i| Assignment::from_index(&vars, i))
            .filter(|a| f.eval(a) && lits.iter().all(|&(v, b)| a.get(v) == Some(b)))
            .map(|a| {
                probs
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| {
                        if a.get(v(j as u32)) == Some(true) {
                            p
                        } else {
                            1.0 - p
                        }
                    })
                    .product::<f64>()
            })
            .sum()
    }

    #[test]
    fn weighted_count_and_evidence_probability_match_brute_force() {
        let (mut kb, f, probs) = demo_kb();
        let w = brute_weight(&f, &probs, &[]);
        assert!((kb.weighted_count() - w).abs() < 1e-12);

        kb.condition(&[(v(1), true)]).unwrap();
        let we = brute_weight(&f, &probs, &[(v(1), true)]);
        assert!((kb.weighted_count() - we).abs() < 1e-12);
        let pe = kb.probability_of_evidence().unwrap();
        assert!((pe - we / w).abs() < 1e-12);
        assert_eq!(kb.evidence(), &[(v(1), true)]);

        kb.retract();
        assert!((kb.weighted_count() - w).abs() < 1e-12);
        assert!(kb.evidence().is_empty());
    }

    #[test]
    fn marginals_match_brute_force_with_and_without_evidence() {
        let (mut kb, f, probs) = demo_kb();
        for &e in &[None, Some((v(0), false))] {
            let evidence: Vec<Lit> = e.into_iter().collect();
            if let Some(lit) = e {
                kb.condition(&[lit]).unwrap();
            }
            let denom = brute_weight(&f, &probs, &evidence);
            for i in 0..3u32 {
                let mut lits = evidence.clone();
                lits.push((v(i), true));
                let expect = brute_weight(&f, &probs, &lits) / denom;
                let got = kb.marginal(v(i)).unwrap();
                assert!(
                    (got - expect).abs() < 1e-12,
                    "marginal x{i} with evidence {evidence:?}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn conditional_query_is_a_ratio_of_brute_weights() {
        let (mut kb, f, probs) = demo_kb();
        kb.condition(&[(v(2), true)]).unwrap();
        let got = kb.query(&[(v(0), true), (v(1), false)]).unwrap();
        let expect = brute_weight(&f, &probs, &[(v(2), true), (v(0), true), (v(1), false)])
            / brute_weight(&f, &probs, &[(v(2), true)]);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
        // The temporary pinning restored the weights.
        let again = kb.query(&[(v(0), true), (v(1), false)]).unwrap();
        assert!((again - got).abs() < 1e-15);
    }

    #[test]
    fn mpe_is_the_heaviest_model_and_enumeration_is_sorted_and_complete() {
        let (mut kb, f, probs) = demo_kb();
        let count = f.count_models_brute() as usize;
        let models = kb.enumerate_models(count + 3);
        assert_eq!(models.len(), count, "every model, nothing else");
        for m in &models {
            assert!(f.eval(&m.assignment), "enumerated model satisfies f");
        }
        for w in models.windows(2) {
            assert!(w[0].log_weight >= w[1].log_weight, "sorted by weight");
        }
        let total: f64 = models.iter().map(Model::weight).sum();
        assert!((total - brute_weight(&f, &probs, &[])).abs() < 1e-12);

        let mpe = kb.mpe().unwrap();
        assert!((mpe.log_weight - models[0].log_weight).abs() < 1e-12);
        assert!(f.eval(&mpe.assignment));
    }

    #[test]
    fn mpe_respects_evidence() {
        let (mut kb, f, _) = demo_kb();
        // The globally best model has x1 = 1 (p = 0.6 > 0.4 and it frees
        // x0); force the other branch.
        kb.condition(&[(v(1), false)]).unwrap();
        let mpe = kb.mpe().unwrap();
        assert_eq!(mpe.assignment.get(v(1)), Some(false));
        assert!(f.eval(&mpe.assignment));
        assert_eq!(
            mpe.assignment.get(v(0)),
            Some(true),
            "x0 forced by clause 1"
        );
    }

    #[test]
    fn entailment_by_negation_conditioning() {
        let (mut kb, _, _) = demo_kb();
        // Neither clause variable alone is entailed …
        assert!(!kb.entails(&[(v(0), true)]).unwrap());
        // … but the clauses themselves are, as is any tautological clause
        // (a complementary pair must short-circuit: conditioning on the
        // first literal eliminates the variable, so the second restriction
        // alone would be a silent no-op).
        assert!(kb.entails(&[(v(0), true), (v(1), true)]).unwrap());
        assert!(kb.entails(&[(v(1), false), (v(2), true)]).unwrap());
        assert!(kb.entails(&[(v(0), true), (v(0), false)]).unwrap());
        assert!(kb
            .entails(&[(v(2), false), (v(0), true), (v(2), true)])
            .unwrap());
        // Duplicate literals don't change the answer.
        assert!(!kb.entails(&[(v(0), true), (v(0), true)]).unwrap());
        // Under evidence x1, the unit clause x2 becomes entailed.
        kb.condition(&[(v(1), true)]).unwrap();
        assert!(kb.entails(&[(v(2), true)]).unwrap());
        assert!(!kb.entails(&[(v(0), true)]).unwrap());
        // Clauses mentioning the evidence variable itself: the asserted
        // polarity is trivially entailed (the restricted SDD no longer
        // mentions x1, so this must come from the evidence table) …
        assert!(kb.entails(&[(v(1), true)]).unwrap());
        assert!(kb.entails(&[(v(1), true), (v(0), true)]).unwrap());
        // … and a falsified literal contributes nothing: ¬x1 ∨ x2 reduces
        // to x2 (entailed), ¬x1 ∨ x0 to x0 (not entailed).
        assert!(kb.entails(&[(v(1), false), (v(2), true)]).unwrap());
        assert!(!kb.entails(&[(v(1), false)]).unwrap());
        assert!(!kb.entails(&[(v(1), false), (v(0), true)]).unwrap());
        // The empty clause is entailed only by an inconsistent base.
        assert!(!kb.entails(&[]).unwrap());
        // An inconsistent base entails everything, evidence vars included.
        let _ = kb.condition(&[(v(1), false)]);
        assert!(kb.entails(&[(v(1), false)]).unwrap());
        assert!(kb.entails(&[]).unwrap());
    }

    #[test]
    fn counts_shift_under_evidence_and_contradiction_is_detected() {
        let (mut kb, f, _) = demo_kb();
        assert_eq!(
            kb.count_models().to_u128(),
            Some(f.count_models_brute() as u128)
        );
        kb.condition(&[(v(1), true)]).unwrap();
        let vars = VarSet::from_slice(&f.all_vars());
        let under_e = (0..8u64)
            .map(|i| Assignment::from_index(&vars, i))
            .filter(|a| f.eval(a) && a.get(v(1)) == Some(true))
            .count();
        assert_eq!(kb.count_models().to_u128(), Some(under_e as u128));
        // Contradictory evidence: structurally inconsistent, every numeric
        // query reports it, and retract() recovers.
        assert_eq!(kb.condition(&[(v(1), false)]), Err(KbError::Inconsistent));
        assert!(!kb.is_consistent());
        assert!(kb.count_models().is_zero());
        assert!(matches!(kb.mpe(), Err(KbError::Inconsistent)));
        assert!(kb.enumerate_models(5).is_empty());
        assert!(kb.entails(&[]).unwrap(), "⊥ entails everything");
        kb.retract();
        assert!(kb.is_consistent());
        assert_eq!(
            kb.count_models().to_u128(),
            Some(f.count_models_brute() as u128)
        );
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let (mut kb, _, _) = demo_kb();
        let ghost = v(17);
        assert_eq!(
            kb.condition(&[(ghost, true)]),
            Err(KbError::UnknownVariable(ghost))
        );
        assert_eq!(kb.marginal(ghost), Err(KbError::UnknownVariable(ghost)));
        assert_eq!(
            kb.entails(&[(ghost, true)]),
            Err(KbError::UnknownVariable(ghost))
        );
        assert_eq!(
            kb.set_probability(ghost, 0.5),
            Err(KbError::UnknownVariable(ghost))
        );
    }

    #[test]
    fn per_query_stats_do_not_accumulate() {
        let (mut kb, _, _) = demo_kb();
        let lifetime0 = kb.sdd().apply_stats();
        assert!(
            lifetime0.apply_calls > 0,
            "compilation itself ran the apply machinery"
        );
        kb.condition(&[(v(1), true)]).unwrap();
        let first = kb.last_query();
        assert!(
            first.apply.apply_calls < lifetime0.apply_calls,
            "per-query apply counters are deltas, not lifetime totals"
        );
        let _ = kb.weighted_count();
        let second = kb.last_query();
        assert_eq!(
            second.apply.apply_calls, 0,
            "a pure evaluation must not inherit the conditioning's applies"
        );
        assert!(second.eval.lookups >= second.eval.hits);
        assert!(second.eval.recomputed > 0, "first evaluation is cold");
        let _ = kb.weighted_count();
        assert_eq!(
            kb.last_query().eval.recomputed,
            0,
            "second evaluation with unchanged weights is all cache hits"
        );
    }

    #[test]
    fn unusable_weights_are_errors_not_panics() {
        // The DIMACS dialects happily parse negative rational weights; the
        // log-space serving layer must reject them with a typed error.
        let f = CnfFormula::from_dimacs("p cnf 2 1\nc p weight 1 -1/2 0\n1 2 0\n").unwrap();
        assert!(matches!(
            KnowledgeBase::compile_cnf(&Compiler::new(), &f),
            Err(KbBuildError::Weight(x)) if x == v(0)
        ));
        // Programmatic misuse is a typed error too.
        let (mut kb, _, _) = demo_kb();
        assert_eq!(
            kb.set_weights(v(0), -1.0, 0.5),
            Err(KbError::InvalidWeight(v(0)))
        );
        assert_eq!(
            kb.set_weights(v(0), f64::NAN, 0.5),
            Err(KbError::InvalidWeight(v(0)))
        );
        assert_eq!(
            kb.set_probability(v(0), 1.5),
            Err(KbError::InvalidWeight(v(0)))
        );
        // Zero weights are fine (hard evidence by weight).
        kb.set_weights(v(0), 0.0, 1.0).unwrap();
        assert!((kb.marginal(v(0)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_preserves_the_marginals_memo() {
        let (mut kb, _, _) = demo_kb();
        let before = kb.marginal(v(0)).unwrap();
        let _ = kb.query(&[(v(1), true)]).unwrap();
        // The pin/restore inside query() left the weights identical, so
        // this marginal must be a memo hit (no recomputation at all).
        let after = kb.marginal(v(0)).unwrap();
        assert_eq!(before, after);
        assert_eq!(
            kb.last_query().eval.recomputed,
            0,
            "memo carried across query()'s pin/restore"
        );
        // And a memo hit still snapshots per-query stats (cheap, but
        // *this* query's): no apply work, tiny duration.
        assert_eq!(kb.last_query().apply.apply_calls, 0);
    }

    #[test]
    fn counting_semantics_by_default() {
        // No weights set: marginal = fraction of models, count semantics.
        let f = CnfFormula::from_clauses(2, vec![vec![(v(0), true), (v(1), true)]]);
        let mut kb = KnowledgeBase::compile_cnf(&Compiler::new(), &f).unwrap();
        // 3 models; x0 true in 2 of them.
        let m = kb.marginal(v(0)).unwrap();
        assert!((m - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(kb.count_models().to_u128(), Some(3));
    }
}
