//! Structural graphs of a CNF formula.
//!
//! The **primal graph** has one vertex per variable and an edge between any
//! two variables sharing a clause; its treewidth is the CNF's primal
//! treewidth — the parameter the width-bounded model-counting literature
//! (and the paper's Lemma 1, applied to the clause-tree circuit) works
//! with. The **incidence graph** is the bipartite variable/clause graph;
//! its treewidth is never more than the primal treewidth + 1 and can be
//! arbitrarily smaller (long clauses blow up the primal graph but add one
//! incidence vertex).
//!
//! Both feed the same decomposition seam the circuit pipeline uses: a
//! `&Graph -> (width, EliminationOrder)` closure picked by the session's
//! `TwBackend` (see `sentential_core::vtree_from_graph_with`).

use crate::formula::CnfFormula;
use graphtw::Graph;
use vtree::VarId;

impl CnfFormula {
    /// The primal (variable-interaction) graph: vertex `i` is variable
    /// `VarId(i)`; every clause induces a clique on its variables.
    /// Variables in no clause are isolated vertices — they still occupy a
    /// vtree leaf (and double the model count each).
    pub fn primal_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_vars() as usize);
        for clause in self.clauses() {
            for (i, &(u, _)) in clause.iter().enumerate() {
                for &(v, _) in &clause[i + 1..] {
                    g.add_edge(u.0, v.0);
                }
            }
        }
        g
    }

    /// The incidence graph: vertices `0..num_vars` are variables, vertices
    /// `num_vars..num_vars + num_clauses` are clauses, and each clause is
    /// adjacent to exactly the variables it mentions. Returns the graph;
    /// clause `j`'s vertex is `num_vars + j`.
    pub fn incidence_graph(&self) -> Graph {
        let nv = self.num_vars() as usize;
        let mut g = Graph::new(nv + self.num_clauses());
        for (j, clause) in self.clauses().iter().enumerate() {
            let cv = (nv + j) as u32;
            for &(v, _) in clause {
                g.add_edge(v.0, cv);
            }
        }
        g
    }

    /// The variable each primal-graph vertex stands for — the map
    /// `vtree_from_graph_with` needs to hang vtree leaves off forget nodes.
    pub fn primal_vars(&self) -> Vec<Option<VarId>> {
        (0..self.num_vars()).map(|i| Some(VarId(i))).collect()
    }

    /// The variable each incidence-graph vertex stands for: the first
    /// `num_vars` vertices are variables, the clause vertices after them
    /// are auxiliary (`None`) — they shape the decomposition but get no
    /// vtree leaf.
    pub fn incidence_vars(&self) -> Vec<Option<VarId>> {
        (0..self.num_vars())
            .map(|i| Some(VarId(i)))
            .chain((0..self.num_clauses()).map(|_| None))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn primal_graph_of_chain_is_a_path() {
        let f = crate::families::chain_cnf(5);
        let g = f.primal_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        let (w, _) = graphtw::treewidth(&g, 10);
        assert_eq!(w, 1);
    }

    #[test]
    fn clauses_induce_cliques() {
        let f = CnfFormula::from_clauses(4, vec![vec![(v(0), true), (v(1), false), (v(2), true)]]);
        let g = f.primal_graph();
        assert_eq!(g.num_edges(), 3); // triangle on {0,1,2}
        assert!(!g.is_connected()); // 3 is isolated
    }

    #[test]
    fn incidence_graph_is_bipartite_star_per_clause() {
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![(v(0), true), (v(1), true)],
                vec![(v(1), false), (v(2), true)],
            ],
        );
        let g = f.incidence_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(3), 2); // clause 0
        assert_eq!(g.degree(1), 2); // var 1 in both clauses
    }

    #[test]
    fn incidence_beats_primal_on_long_clauses() {
        // One clause over all n variables: primal = K_n (tw n-1),
        // incidence = a star (tw 1).
        let n = 8u32;
        let f = CnfFormula::from_clauses(n, vec![(0..n).map(|i| (v(i), true)).collect()]);
        let (wp, _) = graphtw::treewidth(&f.primal_graph(), 10);
        let (wi, _) = graphtw::treewidth(&f.incidence_graph(), 10);
        assert_eq!(wp, n as usize - 1);
        assert_eq!(wi, 1);
    }
}
