//! Generated clause families for the model-counting experiments.
//!
//! The bounded-primal-treewidth families play the role `circuit::families`
//! plays for the compilation experiments: inputs whose counts are huge but
//! whose structure keeps compilation (and therefore exact counting) linear.

use crate::formula::CnfFormula;
use arith::BigUint;
use vtree::VarId;

/// The chain `⋀_{i<n-1} (x_i ∨ x_{i+1})`: primal graph a path (treewidth
/// 1), model count the Fibonacci-like [`chain_count`] — past `u128` from
/// roughly 185 variables on.
pub fn chain_cnf(n: u32) -> CnfFormula {
    let mut f = CnfFormula::new(n);
    for i in 0..n.saturating_sub(1) {
        f.add_clause(vec![(VarId(i), true), (VarId(i + 1), true)]);
    }
    f
}

/// Reference count for [`chain_cnf`]: models are binary strings of length
/// `n` with no two adjacent zeros, counted by the Fibonacci recurrence
/// `a(n) = a(n-1) + a(n-2)`, `a(0) = 1`, `a(1) = 2`.
pub fn chain_count(n: u32) -> BigUint {
    let (mut prev, mut cur) = (BigUint::one(), BigUint::from_u64(2));
    if n == 0 {
        return prev;
    }
    for _ in 1..n {
        let next = cur.add(&prev);
        prev = cur;
        cur = next;
    }
    cur
}

/// Sliding-window positive clauses `⋀_i (x_i ∨ … ∨ x_{i+w-1})`: the CNF
/// twin of `circuit::families::clause_chain`, primal treewidth `w - 1`.
pub fn band_cnf(n: u32, w: u32) -> CnfFormula {
    assert!(w >= 1 && w <= n);
    let mut f = CnfFormula::new(n);
    for i in 0..=(n - w) {
        f.add_clause((i..i + w).map(|j| (VarId(j), true)).collect());
    }
    f
}

/// A random `k`-CNF with `m` clauses over `n` variables (distinct
/// variables per clause, uniform polarities) — the unstructured baseline.
pub fn random_cnf<R: rand::Rng>(n: u32, m: usize, k: usize, rng: &mut R) -> CnfFormula {
    assert!(k as u32 <= n && n >= 1);
    let mut f = CnfFormula::new(n);
    for _ in 0..m {
        let mut vars: Vec<u32> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        f.add_clause(
            vars.into_iter()
                .map(|v| (VarId(v), rng.gen_bool(0.5)))
                .collect(),
        );
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_count_matches_brute_force() {
        for n in 0..12u32 {
            let f = chain_cnf(n);
            assert_eq!(
                BigUint::from_u64(f.count_models_brute()),
                chain_count(n),
                "n = {n}"
            );
        }
    }

    #[test]
    fn chain_count_exceeds_u128_by_200_vars() {
        assert!(chain_count(184).to_u128().is_some());
        assert!(chain_count(200).to_u128().is_none(), "past 2^128");
    }

    #[test]
    fn band_reduces_to_chain_at_w2() {
        assert_eq!(band_cnf(6, 2), chain_cnf(6));
        let f = band_cnf(8, 3);
        let (w, _) = graphtw::treewidth(&f.primal_graph(), 12);
        assert_eq!(w, 2);
    }

    #[test]
    fn random_cnf_shape() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let f = random_cnf(10, 20, 3, &mut rng);
        assert_eq!(f.num_clauses(), 20);
        assert!(f.clauses().iter().all(|c| c.len() == 3));
    }
}
