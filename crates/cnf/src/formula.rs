//! The CNF data model: clauses over `VarId`s plus optional exact literal
//! weights.

use arith::Rational;
use boolfunc::{Assignment, VarSet};
use circuit::{Circuit, CircuitBuilder, Clause, Cnf};
use std::fmt;
use vtree::VarId;

/// A literal: `(variable, polarity)` — the same encoding `circuit::Clause`
/// uses, so the two CNF representations bridge without translation.
pub type Lit = (VarId, bool);

/// A CNF formula over variables `0..num_vars`, with optional exact literal
/// weights for weighted model counting. Unweighted variables implicitly
/// carry `(1, 1)` (#SAT) — or `(1/2, 1/2)` under the uniform-probability
/// reading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    /// `weights[v] = (w⁻, w⁺)` for weighted variables.
    weights: Vec<Option<(Rational, Rational)>>,
}

impl CnfFormula {
    /// An empty formula (⊤) over `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
            weights: vec![None; num_vars as usize],
        }
    }

    /// Build from parts; panics on out-of-range literals.
    pub fn from_clauses(num_vars: u32, clauses: Vec<Vec<Lit>>) -> Self {
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(c);
        }
        f
    }

    /// Append a clause; panics on out-of-range literals.
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        for &(v, _) in &clause {
            assert!(
                v.index() < self.num_vars as usize,
                "literal {v} out of range (num_vars = {})",
                self.num_vars
            );
        }
        self.clauses.push(clause);
    }

    /// Set the weight pair `(w⁻, w⁺)` of a variable.
    pub fn set_weight(&mut self, v: VarId, neg: Rational, pos: Rational) {
        assert!(
            v.index() < self.num_vars as usize,
            "weight var out of range"
        );
        self.weights[v.index()] = Some((neg, pos));
    }

    /// The weight pair of `v`, defaulting to `(1, 1)`.
    pub fn weight(&self, v: VarId) -> (Rational, Rational) {
        self.weights
            .get(v.index())
            .and_then(|w| w.clone())
            .unwrap_or_else(|| (Rational::one(), Rational::one()))
    }

    /// The explicitly weighted variables, in index order.
    pub fn weighted_vars(&self) -> impl Iterator<Item = (VarId, &(Rational, Rational))> {
        self.weights
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|w| (VarId(i as u32), w)))
    }

    /// Does any variable carry an explicit weight?
    pub fn is_weighted(&self) -> bool {
        self.weights.iter().any(Option::is_some)
    }

    /// Number of variables (declared, not merely mentioned).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Does the formula contain an empty clause (and is thus ⊥)?
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Vec::is_empty)
    }

    /// The variables mentioned in some clause (⊆ `0..num_vars`).
    pub fn vars_used(&self) -> VarSet {
        VarSet::from_iter(self.clauses.iter().flatten().map(|&(v, _)| v))
    }

    /// All declared variables `0..num_vars`.
    pub fn all_vars(&self) -> Vec<VarId> {
        (0..self.num_vars).map(VarId).collect()
    }

    /// Evaluate under an assignment covering the mentioned variables.
    pub fn eval(&self, a: &Assignment) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|&(v, p)| a.get(v).expect("assignment covers clause vars") == p)
        })
    }

    /// Brute-force model count over all `num_vars` declared variables
    /// (testing reference; capped at 24 variables).
    pub fn count_models_brute(&self) -> u64 {
        assert!(self.num_vars <= 24, "brute force capped at 24 variables");
        let vars = VarSet::from_slice(&self.all_vars());
        (0..1u64 << self.num_vars)
            .filter(|&i| self.eval(&Assignment::from_index(&vars, i)))
            .count() as u64
    }

    /// **Direct route**: the clause tree — one ∨ gate per clause under one
    /// ∧ gate. Linear size, preserves the formula's primal structure (every
    /// clause becomes a gate adjacent to its variables).
    pub fn to_circuit(&self) -> Circuit {
        let mut b = CircuitBuilder::new();
        let clause_gates: Vec<_> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<_> = c.iter().map(|&(v, p)| b.literal(v, p)).collect();
                b.or_many(lits)
            })
            .collect();
        let out = b.and_many(clause_gates);
        b.build(out)
    }

    /// Bridge to the `circuit` crate's CNF type (used by its Tseitin
    /// transform).
    pub fn to_circuit_cnf(&self) -> Cnf {
        Cnf {
            clauses: self.clauses.iter().map(|c| Clause(c.clone())).collect(),
            num_fresh: 0,
        }
    }

    /// Bridge from the `circuit` crate's CNF type. `num_vars` is the
    /// maximum mentioned variable index + 1 (0 for the empty CNF).
    pub fn from_circuit_cnf(cnf: &Cnf) -> Self {
        let num_vars = cnf
            .clauses
            .iter()
            .flat_map(|c| c.0.iter())
            .map(|&(v, _)| v.0 + 1)
            .max()
            .unwrap_or(0);
        CnfFormula::from_clauses(num_vars, cnf.clauses.iter().map(|c| c.0.clone()).collect())
    }

    /// **Tseitin route**: an equisatisfiable CNF for an arbitrary circuit,
    /// one fresh selector variable per internal gate (`circuit`'s Eq. 3
    /// transform). Every model of the circuit extends to *exactly one*
    /// model of this CNF, so the model count over all variables (circuit
    /// inputs + selectors) equals the circuit's model count over its
    /// inputs — the property the round-trip tests pin down.
    pub fn from_circuit_tseitin(c: &Circuit) -> Self {
        let fresh_base = c.vars().iter().map(|v| v.0 + 1).max().unwrap_or(0);
        let cnf = c.tseitin(fresh_base);
        // Declare every circuit variable, even ones no clause mentions
        // (an unused input gate is a free variable in both counts).
        let mut f = CnfFormula::new(fresh_base + cnf.num_fresh);
        for clause in &cnf.clauses {
            f.add_clause(clause.0.clone());
        }
        f
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CnfFormula(vars={}, clauses={}, literals={}{})",
            self.num_vars,
            self.num_clauses(),
            self.num_literals(),
            if self.is_weighted() { ", weighted" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn eval_and_brute_count() {
        // (x0 ∨ ¬x1) ∧ x1  ≡  x0 ∧ x1
        let f = CnfFormula::from_clauses(
            2,
            vec![vec![(v(0), true), (v(1), false)], vec![(v(1), true)]],
        );
        assert_eq!(f.count_models_brute(), 1);
        assert!(f.eval(&Assignment::from_pairs([(v(0), true), (v(1), true)])));
        assert!(!f.eval(&Assignment::from_pairs([(v(0), false), (v(1), true)])));
    }

    #[test]
    fn direct_circuit_matches_brute_force() {
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![(v(0), true), (v(1), true)],
                vec![(v(1), false), (v(2), true)],
            ],
        );
        let c = f.to_circuit();
        // The circuit counts over mentioned vars only; all 3 are mentioned.
        assert_eq!(
            c.to_boolfn().unwrap().count_models(),
            f.count_models_brute()
        );
    }

    #[test]
    fn empty_and_contradictory_formulas() {
        let top = CnfFormula::new(3);
        assert_eq!(top.count_models_brute(), 8);
        assert!(!top.has_empty_clause());
        let mut bot = CnfFormula::new(3);
        bot.add_clause(vec![]);
        assert!(bot.has_empty_clause());
        assert_eq!(bot.count_models_brute(), 0);
    }

    #[test]
    fn tseitin_preserves_model_count() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..5 {
            let c = circuit::families::random_circuit(4, 8, &mut rng);
            let t = CnfFormula::from_circuit_tseitin(&c);
            // Count over ALL circuit variables (to_boolfn projects onto the
            // output's support): selectors extend each model uniquely, so
            // the Tseitin CNF preserves the count exactly.
            assert_eq!(
                t.count_models_brute(),
                c.to_boolfn().unwrap().count_models_over(&c.vars()),
                "unique selector extension per circuit model"
            );
        }
    }

    #[test]
    fn weights_default_and_roundtrip() {
        let mut f = CnfFormula::new(2);
        assert!(!f.is_weighted());
        assert_eq!(f.weight(v(0)), (Rational::one(), Rational::one()));
        f.set_weight(
            v(1),
            Rational::parse("1/4").unwrap(),
            Rational::parse("3/4").unwrap(),
        );
        assert!(f.is_weighted());
        assert_eq!(f.weighted_vars().count(), 1);
        assert_eq!(f.weight(v(1)).1, Rational::parse("3/4").unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        CnfFormula::new(2).add_clause(vec![(v(5), true)]);
    }
}
