//! DIMACS reading and writing.
//!
//! Accepted input dialects:
//!
//! * **classic** — `c` comments, a `p cnf <vars> <clauses>` header, then
//!   0-terminated clauses (which may span lines);
//! * **MC-competition weighted** — `c p weight <lit> <weight> 0` comment
//!   directives (other `c p …` directives, e.g. `c p show`, are ignored);
//! * **plain weighted literals** — Cachet-style `w <lit> <weight>` lines
//!   (optionally 0-terminated).
//!
//! Weights are parsed **exactly** into [`arith::Rational`]s — `0.25`,
//! `2.5e-1`, `1/4` all mean the same weight. A weight attached to literal
//! `ℓ` sets `w(ℓ)`; the complementary literal keeps its previous value
//! (default 1). The writer emits the canonical form (header, `c p weight`
//! directives, one clause per line), which the parser maps back to the
//! identical [`CnfFormula`] — the round-trip property the tests pin down.

use crate::formula::{CnfFormula, Lit};
use arith::Rational;
use std::fmt;
use std::io::BufRead;
use vtree::VarId;

/// A DIMACS syntax error, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: DimacsErrorKind,
}

/// The ways DIMACS input can be malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsErrorKind {
    /// The `p cnf` header is missing or malformed.
    BadHeader,
    /// A second `p cnf` header appeared.
    DuplicateHeader,
    /// Clause or weight data appeared before the header.
    DataBeforeHeader,
    /// A token was not an integer literal.
    BadToken(String),
    /// A literal's variable exceeds the header's variable count.
    VarOutOfRange(i64),
    /// A weight directive was malformed.
    BadWeight(String),
    /// The final clause was not 0-terminated.
    UnterminatedClause,
    /// The number of clauses does not match the header.
    ClauseCountMismatch { declared: usize, found: usize },
    /// The underlying reader failed ([`parse_dimacs_reader`] only; the
    /// message is the I/O error's, since `io::Error` itself carries no
    /// equality).
    Io(String),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            DimacsErrorKind::BadHeader => write!(f, "missing or malformed `p cnf` header"),
            DimacsErrorKind::DuplicateHeader => write!(f, "second `p cnf` header"),
            DimacsErrorKind::DataBeforeHeader => {
                write!(f, "clause data before the `p cnf` header")
            }
            DimacsErrorKind::BadToken(t) => write!(f, "expected an integer literal, got {t:?}"),
            DimacsErrorKind::VarOutOfRange(l) => {
                write!(f, "literal {l} exceeds the declared variable count")
            }
            DimacsErrorKind::BadWeight(w) => write!(f, "malformed weight {w:?}"),
            DimacsErrorKind::UnterminatedClause => write!(f, "final clause not 0-terminated"),
            DimacsErrorKind::ClauseCountMismatch { declared, found } => {
                write!(f, "header declares {declared} clauses, found {found}")
            }
            DimacsErrorKind::Io(msg) => write!(f, "read failed: {msg}"),
        }
    }
}

impl std::error::Error for DimacsError {}

impl CnfFormula {
    /// Parse DIMACS text (see the module docs for the accepted dialects).
    pub fn from_dimacs(input: &str) -> Result<Self, DimacsError> {
        parse_dimacs(input)
    }

    /// Parse DIMACS from any buffered reader, **streaming** line by line —
    /// a multi-gigabyte file never has to fit in memory. See
    /// [`parse_dimacs_reader`].
    pub fn from_dimacs_reader<R: BufRead>(reader: R) -> Result<Self, DimacsError> {
        parse_dimacs_reader(reader)
    }

    /// Render canonical DIMACS (header, `c p weight` directives, one
    /// 0-terminated clause per line). `from_dimacs ∘ to_dimacs` is the
    /// identity.
    pub fn to_dimacs(&self) -> String {
        write_dimacs(self)
    }
}

/// See [`CnfFormula::from_dimacs`]. A thin wrapper over the streaming
/// [`parse_dimacs_reader`] (a `&[u8]` is a `BufRead` that cannot fail).
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, DimacsError> {
    parse_dimacs_reader(input.as_bytes())
}

/// Parse DIMACS from a buffered reader, one line at a time. Only the
/// current line and the formula built so far are held in memory, so large
/// files stream from disk. I/O failures surface as
/// [`DimacsErrorKind::Io`] with the line they interrupted.
pub fn parse_dimacs_reader<R: BufRead>(mut reader: R) -> Result<CnfFormula, DimacsError> {
    let mut parser = LineParser::default();
    let mut lineno = 0usize;
    let mut buf = String::new();
    loop {
        lineno += 1;
        buf.clear();
        let n = reader.read_line(&mut buf).map_err(|e| DimacsError {
            line: lineno,
            kind: DimacsErrorKind::Io(e.to_string()),
        })?;
        if n == 0 {
            return parser.finish(lineno.saturating_sub(1));
        }
        parser.line(lineno, &buf)?;
    }
}

/// The line-at-a-time parser state behind both entry points.
#[derive(Default)]
struct LineParser {
    formula: Option<CnfFormula>,
    declared_clauses: usize,
    /// Literals of the clause currently being read (clauses span lines).
    pending: Vec<Lit>,
    found_clauses: usize,
}

impl LineParser {
    /// Consume one input line.
    fn line(&mut self, lineno: usize, raw: &str) -> Result<(), DimacsError> {
        let err = |kind: DimacsErrorKind| DimacsError { line: lineno, kind };
        let line = raw.trim();
        if line.is_empty() {
            return Ok(());
        }
        let mut tokens = line.split_ascii_whitespace();
        let first = tokens.next().expect("nonempty line");
        match first {
            "c" => {
                // `c p weight <lit> <weight> 0` is data; everything else
                // (including other `c p …` directives) is a comment.
                let rest: Vec<&str> = tokens.collect();
                if rest.first() == Some(&"p") && rest.get(1) == Some(&"weight") {
                    let f = self
                        .formula
                        .as_mut()
                        .ok_or_else(|| err(DimacsErrorKind::DataBeforeHeader))?;
                    apply_weight(f, rest.get(2).copied(), rest.get(3).copied(), lineno)?;
                }
            }
            "p" => {
                if self.formula.is_some() {
                    return Err(err(DimacsErrorKind::DuplicateHeader));
                }
                let kind = tokens.next();
                let nv = tokens.next().and_then(|t| t.parse::<u32>().ok());
                let nc = tokens.next().and_then(|t| t.parse::<usize>().ok());
                match (kind, nv, nc, tokens.next()) {
                    (Some("cnf"), Some(nv), Some(nc), None) => {
                        self.formula = Some(CnfFormula::new(nv));
                        self.declared_clauses = nc;
                    }
                    _ => return Err(err(DimacsErrorKind::BadHeader)),
                }
            }
            "w" => {
                // Cachet-style weighted literal; tolerate a trailing 0.
                let f = self
                    .formula
                    .as_mut()
                    .ok_or_else(|| err(DimacsErrorKind::DataBeforeHeader))?;
                let rest: Vec<&str> = tokens.collect();
                let (lit, weight) = match rest.as_slice() {
                    [l, w] | [l, w, "0"] => (*l, *w),
                    _ => return Err(err(DimacsErrorKind::BadWeight(line.to_string()))),
                };
                apply_weight(f, Some(lit), Some(weight), lineno)?;
            }
            _ => {
                let f = self
                    .formula
                    .as_mut()
                    .ok_or_else(|| err(DimacsErrorKind::DataBeforeHeader))?;
                for tok in std::iter::once(first).chain(tokens) {
                    let l: i64 = tok
                        .parse()
                        .map_err(|_| err(DimacsErrorKind::BadToken(tok.to_string())))?;
                    if l == 0 {
                        f.add_clause(std::mem::take(&mut self.pending));
                        self.found_clauses += 1;
                    } else {
                        self.pending.push(lit_of(l, f.num_vars()).map_err(err)?);
                    }
                }
            }
        }
        Ok(())
    }

    /// End of input: check the trailing invariants.
    fn finish(self, last_line: usize) -> Result<CnfFormula, DimacsError> {
        let err = |kind: DimacsErrorKind| DimacsError {
            line: last_line.max(1),
            kind,
        };
        let f = self
            .formula
            .ok_or_else(|| err(DimacsErrorKind::BadHeader))?;
        if !self.pending.is_empty() {
            return Err(err(DimacsErrorKind::UnterminatedClause));
        }
        if self.found_clauses != self.declared_clauses {
            return Err(err(DimacsErrorKind::ClauseCountMismatch {
                declared: self.declared_clauses,
                found: self.found_clauses,
            }));
        }
        Ok(f)
    }
}

/// DIMACS literal (1-based, sign = polarity) → `Lit`; checks the range.
fn lit_of(l: i64, num_vars: u32) -> Result<Lit, DimacsErrorKind> {
    let var = l.unsigned_abs();
    if var == 0 || var > num_vars as u64 {
        return Err(DimacsErrorKind::VarOutOfRange(l));
    }
    Ok((VarId(var as u32 - 1), l > 0))
}

/// Set `w(lit) = weight`, keeping the complementary literal's weight.
fn apply_weight(
    f: &mut CnfFormula,
    lit: Option<&str>,
    weight: Option<&str>,
    lineno: usize,
) -> Result<(), DimacsError> {
    let err = |kind| DimacsError { line: lineno, kind };
    let bad = || {
        err(DimacsErrorKind::BadWeight(format!(
            "{} {}",
            lit.unwrap_or(""),
            weight.unwrap_or("")
        )))
    };
    let l: i64 = lit.ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let w = Rational::parse(weight.ok_or_else(bad)?).map_err(|_| bad())?;
    let (v, positive) = lit_of(l, f.num_vars()).map_err(err)?;
    let (mut wn, mut wp) = f.weight(v);
    if positive {
        wp = w;
    } else {
        wn = w;
    }
    f.set_weight(v, wn, wp);
    Ok(())
}

/// See [`CnfFormula::to_dimacs`].
pub fn write_dimacs(f: &CnfFormula) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", f.num_vars(), f.num_clauses()));
    for (v, (wn, wp)) in f.weighted_vars() {
        let dimacs = v.0 as i64 + 1;
        out.push_str(&format!("c p weight {dimacs} {wp} 0\n"));
        out.push_str(&format!("c p weight {} {wn} 0\n", -dimacs));
    }
    for clause in f.clauses() {
        for &(v, p) in clause {
            let dimacs = v.0 as i64 + 1;
            out.push_str(&format!("{} ", if p { dimacs } else { -dimacs }));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_parse() {
        let f = CnfFormula::from_dimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0], vec![(VarId(0), true), (VarId(1), false)]);
    }

    #[test]
    fn clauses_may_span_lines() {
        let f = CnfFormula::from_dimacs("p cnf 3 2\n1 -2\n3 0 2\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
        assert_eq!(f.clauses()[1], vec![(VarId(1), true)]);
    }

    #[test]
    fn mc_competition_weights() {
        let f = CnfFormula::from_dimacs(
            "p cnf 2 1\nc p show 1 2 0\nc p weight 1 0.25 0\nc p weight -1 0.75 0\n1 2 0\n",
        )
        .unwrap();
        let (wn, wp) = f.weight(VarId(0));
        assert_eq!(wp, Rational::parse("1/4").unwrap());
        assert_eq!(wn, Rational::parse("3/4").unwrap());
        assert!(f.is_weighted());
        assert_eq!(f.weighted_vars().count(), 1);
    }

    #[test]
    fn cachet_weights() {
        let f = CnfFormula::from_dimacs("p cnf 2 1\nw 2 1/3\nw -2 2/3 0\n1 2 0\n").unwrap();
        let (wn, wp) = f.weight(VarId(1));
        assert_eq!(wp, Rational::parse("1/3").unwrap());
        assert_eq!(wn, Rational::parse("2/3").unwrap());
    }

    #[test]
    fn write_then_parse_is_identity() {
        let mut f = CnfFormula::from_clauses(
            4,
            vec![
                vec![(VarId(0), true), (VarId(3), false)],
                vec![],
                vec![(VarId(2), true)],
            ],
        );
        f.set_weight(
            VarId(2),
            Rational::parse("2/5").unwrap(),
            Rational::parse("3/5").unwrap(),
        );
        let text = f.to_dimacs();
        assert_eq!(CnfFormula::from_dimacs(&text).unwrap(), f);
    }

    #[test]
    fn reader_parse_agrees_with_string_parse_even_in_tiny_chunks() {
        // A 1-byte buffer forces read_line to reassemble every line from
        // many reads — the streaming path must not depend on chunking.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = 1.min(self.0.len()).min(buf.len());
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let text = "c chunked\np cnf 4 3\nc p weight 2 0.25 0\n1 -2\n3 0 2\n0\n-4 1 0";
        let via_str = CnfFormula::from_dimacs(text).unwrap();
        let via_reader =
            CnfFormula::from_dimacs_reader(std::io::BufReader::new(OneByte(text.as_bytes())))
                .unwrap();
        assert_eq!(via_reader, via_str);
        assert_eq!(via_reader.num_clauses(), 3);
    }

    #[test]
    fn reader_io_errors_carry_the_line_they_interrupted() {
        struct FailAfter(usize);
        impl std::io::Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("disk on fire"));
                }
                // One full line per read.
                let line = b"p cnf 2 0\n";
                buf[..line.len()].copy_from_slice(line);
                self.0 -= 1;
                Ok(line.len())
            }
        }
        let e = CnfFormula::from_dimacs_reader(std::io::BufReader::with_capacity(16, FailAfter(1)))
            .unwrap_err();
        assert!(
            matches!(&e.kind, DimacsErrorKind::Io(msg) if msg.contains("disk on fire")),
            "{e}"
        );
        assert_eq!(e.line, 2, "the read that failed was for line 2");
    }

    #[test]
    fn errors_are_typed_and_located() {
        type Check = fn(&DimacsErrorKind) -> bool;
        let cases: Vec<(&str, Check)> = vec![
            ("1 2 0\n", |k| {
                matches!(k, DimacsErrorKind::DataBeforeHeader)
            }),
            ("p cnf x 2\n", |k| matches!(k, DimacsErrorKind::BadHeader)),
            ("p cnf 2 1\n1 9 0\n", |k| {
                matches!(k, DimacsErrorKind::VarOutOfRange(9))
            }),
            ("p cnf 2 1\n1 z 0\n", |k| {
                matches!(k, DimacsErrorKind::BadToken(_))
            }),
            ("p cnf 2 1\n1 2\n", |k| {
                matches!(k, DimacsErrorKind::UnterminatedClause)
            }),
            ("p cnf 2 2\n1 0\n", |k| {
                matches!(
                    k,
                    DimacsErrorKind::ClauseCountMismatch {
                        declared: 2,
                        found: 1
                    }
                )
            }),
            ("p cnf 2 1\nw 1 oops\n1 0\n", |k| {
                matches!(k, DimacsErrorKind::BadWeight(_))
            }),
            // A second header must not silently reset the formula.
            ("p cnf 2 2\n1 0\np cnf 2 2\n2 0\n", |k| {
                matches!(k, DimacsErrorKind::DuplicateHeader)
            }),
            // An absurd weight exponent is rejected, not computed.
            ("p cnf 2 1\nc p weight 1 1e2000000 0\n1 0\n", |k| {
                matches!(k, DimacsErrorKind::BadWeight(_))
            }),
            ("", |k| matches!(k, DimacsErrorKind::BadHeader)),
        ];
        for (text, check) in cases {
            let e = CnfFormula::from_dimacs(text).unwrap_err();
            assert!(check(&e.kind), "{text:?} gave {e}");
            assert!(!e.to_string().is_empty());
        }
    }
}
