//! DIMACS reading and writing.
//!
//! Accepted input dialects:
//!
//! * **classic** — `c` comments, a `p cnf <vars> <clauses>` header, then
//!   0-terminated clauses (which may span lines);
//! * **MC-competition weighted** — `c p weight <lit> <weight> 0` comment
//!   directives (other `c p …` directives, e.g. `c p show`, are ignored);
//! * **plain weighted literals** — Cachet-style `w <lit> <weight>` lines
//!   (optionally 0-terminated).
//!
//! Weights are parsed **exactly** into [`arith::Rational`]s — `0.25`,
//! `2.5e-1`, `1/4` all mean the same weight. A weight attached to literal
//! `ℓ` sets `w(ℓ)`; the complementary literal keeps its previous value
//! (default 1). The writer emits the canonical form (header, `c p weight`
//! directives, one clause per line), which the parser maps back to the
//! identical [`CnfFormula`] — the round-trip property the tests pin down.

use crate::formula::{CnfFormula, Lit};
use arith::Rational;
use std::fmt;
use vtree::VarId;

/// A DIMACS syntax error, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: DimacsErrorKind,
}

/// The ways DIMACS input can be malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsErrorKind {
    /// The `p cnf` header is missing or malformed.
    BadHeader,
    /// A second `p cnf` header appeared.
    DuplicateHeader,
    /// Clause or weight data appeared before the header.
    DataBeforeHeader,
    /// A token was not an integer literal.
    BadToken(String),
    /// A literal's variable exceeds the header's variable count.
    VarOutOfRange(i64),
    /// A weight directive was malformed.
    BadWeight(String),
    /// The final clause was not 0-terminated.
    UnterminatedClause,
    /// The number of clauses does not match the header.
    ClauseCountMismatch { declared: usize, found: usize },
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            DimacsErrorKind::BadHeader => write!(f, "missing or malformed `p cnf` header"),
            DimacsErrorKind::DuplicateHeader => write!(f, "second `p cnf` header"),
            DimacsErrorKind::DataBeforeHeader => {
                write!(f, "clause data before the `p cnf` header")
            }
            DimacsErrorKind::BadToken(t) => write!(f, "expected an integer literal, got {t:?}"),
            DimacsErrorKind::VarOutOfRange(l) => {
                write!(f, "literal {l} exceeds the declared variable count")
            }
            DimacsErrorKind::BadWeight(w) => write!(f, "malformed weight {w:?}"),
            DimacsErrorKind::UnterminatedClause => write!(f, "final clause not 0-terminated"),
            DimacsErrorKind::ClauseCountMismatch { declared, found } => {
                write!(f, "header declares {declared} clauses, found {found}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

impl CnfFormula {
    /// Parse DIMACS text (see the module docs for the accepted dialects).
    pub fn from_dimacs(input: &str) -> Result<Self, DimacsError> {
        parse_dimacs(input)
    }

    /// Render canonical DIMACS (header, `c p weight` directives, one
    /// 0-terminated clause per line). `from_dimacs ∘ to_dimacs` is the
    /// identity.
    pub fn to_dimacs(&self) -> String {
        write_dimacs(self)
    }
}

/// See [`CnfFormula::from_dimacs`].
pub fn parse_dimacs(input: &str) -> Result<CnfFormula, DimacsError> {
    let err = |line: usize, kind: DimacsErrorKind| DimacsError { line, kind };
    let mut formula: Option<CnfFormula> = None;
    let mut declared_clauses = 0usize;
    let mut pending: Vec<Lit> = Vec::new();
    let mut found_clauses = 0usize;
    let mut last_line = 0usize;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        last_line = lineno;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_ascii_whitespace();
        let first = tokens.next().expect("nonempty line");
        match first {
            "c" => {
                // `c p weight <lit> <weight> 0` is data; everything else
                // (including other `c p …` directives) is a comment.
                let rest: Vec<&str> = tokens.collect();
                if rest.first() == Some(&"p") && rest.get(1) == Some(&"weight") {
                    let f = formula
                        .as_mut()
                        .ok_or_else(|| err(lineno, DimacsErrorKind::DataBeforeHeader))?;
                    apply_weight(f, rest.get(2).copied(), rest.get(3).copied(), lineno)?;
                }
            }
            "p" => {
                if formula.is_some() {
                    return Err(err(lineno, DimacsErrorKind::DuplicateHeader));
                }
                let kind = tokens.next();
                let nv = tokens.next().and_then(|t| t.parse::<u32>().ok());
                let nc = tokens.next().and_then(|t| t.parse::<usize>().ok());
                match (kind, nv, nc, tokens.next()) {
                    (Some("cnf"), Some(nv), Some(nc), None) => {
                        formula = Some(CnfFormula::new(nv));
                        declared_clauses = nc;
                    }
                    _ => return Err(err(lineno, DimacsErrorKind::BadHeader)),
                }
            }
            "w" => {
                // Cachet-style weighted literal; tolerate a trailing 0.
                let f = formula
                    .as_mut()
                    .ok_or_else(|| err(lineno, DimacsErrorKind::DataBeforeHeader))?;
                let rest: Vec<&str> = tokens.collect();
                let (lit, weight) = match rest.as_slice() {
                    [l, w] | [l, w, "0"] => (*l, *w),
                    _ => return Err(err(lineno, DimacsErrorKind::BadWeight(line.to_string()))),
                };
                apply_weight(f, Some(lit), Some(weight), lineno)?;
            }
            _ => {
                let f = formula
                    .as_mut()
                    .ok_or_else(|| err(lineno, DimacsErrorKind::DataBeforeHeader))?;
                for tok in std::iter::once(first).chain(tokens) {
                    let l: i64 = tok
                        .parse()
                        .map_err(|_| err(lineno, DimacsErrorKind::BadToken(tok.to_string())))?;
                    if l == 0 {
                        f.add_clause(std::mem::take(&mut pending));
                        found_clauses += 1;
                    } else {
                        pending.push(lit_of(l, f.num_vars()).map_err(|k| err(lineno, k))?);
                    }
                }
            }
        }
    }

    let f = formula.ok_or_else(|| err(last_line.max(1), DimacsErrorKind::BadHeader))?;
    if !pending.is_empty() {
        return Err(err(last_line, DimacsErrorKind::UnterminatedClause));
    }
    if found_clauses != declared_clauses {
        return Err(err(
            last_line,
            DimacsErrorKind::ClauseCountMismatch {
                declared: declared_clauses,
                found: found_clauses,
            },
        ));
    }
    Ok(f)
}

/// DIMACS literal (1-based, sign = polarity) → `Lit`; checks the range.
fn lit_of(l: i64, num_vars: u32) -> Result<Lit, DimacsErrorKind> {
    let var = l.unsigned_abs();
    if var == 0 || var > num_vars as u64 {
        return Err(DimacsErrorKind::VarOutOfRange(l));
    }
    Ok((VarId(var as u32 - 1), l > 0))
}

/// Set `w(lit) = weight`, keeping the complementary literal's weight.
fn apply_weight(
    f: &mut CnfFormula,
    lit: Option<&str>,
    weight: Option<&str>,
    lineno: usize,
) -> Result<(), DimacsError> {
    let err = |kind| DimacsError { line: lineno, kind };
    let bad = || {
        err(DimacsErrorKind::BadWeight(format!(
            "{} {}",
            lit.unwrap_or(""),
            weight.unwrap_or("")
        )))
    };
    let l: i64 = lit.ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let w = Rational::parse(weight.ok_or_else(bad)?).map_err(|_| bad())?;
    let (v, positive) = lit_of(l, f.num_vars()).map_err(err)?;
    let (mut wn, mut wp) = f.weight(v);
    if positive {
        wp = w;
    } else {
        wn = w;
    }
    f.set_weight(v, wn, wp);
    Ok(())
}

/// See [`CnfFormula::to_dimacs`].
pub fn write_dimacs(f: &CnfFormula) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", f.num_vars(), f.num_clauses()));
    for (v, (wn, wp)) in f.weighted_vars() {
        let dimacs = v.0 as i64 + 1;
        out.push_str(&format!("c p weight {dimacs} {wp} 0\n"));
        out.push_str(&format!("c p weight {} {wn} 0\n", -dimacs));
    }
    for clause in f.clauses() {
        for &(v, p) in clause {
            let dimacs = v.0 as i64 + 1;
            out.push_str(&format!("{} ", if p { dimacs } else { -dimacs }));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_parse() {
        let f = CnfFormula::from_dimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0], vec![(VarId(0), true), (VarId(1), false)]);
    }

    #[test]
    fn clauses_may_span_lines() {
        let f = CnfFormula::from_dimacs("p cnf 3 2\n1 -2\n3 0 2\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
        assert_eq!(f.clauses()[1], vec![(VarId(1), true)]);
    }

    #[test]
    fn mc_competition_weights() {
        let f = CnfFormula::from_dimacs(
            "p cnf 2 1\nc p show 1 2 0\nc p weight 1 0.25 0\nc p weight -1 0.75 0\n1 2 0\n",
        )
        .unwrap();
        let (wn, wp) = f.weight(VarId(0));
        assert_eq!(wp, Rational::parse("1/4").unwrap());
        assert_eq!(wn, Rational::parse("3/4").unwrap());
        assert!(f.is_weighted());
        assert_eq!(f.weighted_vars().count(), 1);
    }

    #[test]
    fn cachet_weights() {
        let f = CnfFormula::from_dimacs("p cnf 2 1\nw 2 1/3\nw -2 2/3 0\n1 2 0\n").unwrap();
        let (wn, wp) = f.weight(VarId(1));
        assert_eq!(wp, Rational::parse("1/3").unwrap());
        assert_eq!(wn, Rational::parse("2/3").unwrap());
    }

    #[test]
    fn write_then_parse_is_identity() {
        let mut f = CnfFormula::from_clauses(
            4,
            vec![
                vec![(VarId(0), true), (VarId(3), false)],
                vec![],
                vec![(VarId(2), true)],
            ],
        );
        f.set_weight(
            VarId(2),
            Rational::parse("2/5").unwrap(),
            Rational::parse("3/5").unwrap(),
        );
        let text = f.to_dimacs();
        assert_eq!(CnfFormula::from_dimacs(&text).unwrap(), f);
    }

    #[test]
    fn errors_are_typed_and_located() {
        type Check = fn(&DimacsErrorKind) -> bool;
        let cases: Vec<(&str, Check)> = vec![
            ("1 2 0\n", |k| {
                matches!(k, DimacsErrorKind::DataBeforeHeader)
            }),
            ("p cnf x 2\n", |k| matches!(k, DimacsErrorKind::BadHeader)),
            ("p cnf 2 1\n1 9 0\n", |k| {
                matches!(k, DimacsErrorKind::VarOutOfRange(9))
            }),
            ("p cnf 2 1\n1 z 0\n", |k| {
                matches!(k, DimacsErrorKind::BadToken(_))
            }),
            ("p cnf 2 1\n1 2\n", |k| {
                matches!(k, DimacsErrorKind::UnterminatedClause)
            }),
            ("p cnf 2 2\n1 0\n", |k| {
                matches!(
                    k,
                    DimacsErrorKind::ClauseCountMismatch {
                        declared: 2,
                        found: 1
                    }
                )
            }),
            ("p cnf 2 1\nw 1 oops\n1 0\n", |k| {
                matches!(k, DimacsErrorKind::BadWeight(_))
            }),
            // A second header must not silently reset the formula.
            ("p cnf 2 2\n1 0\np cnf 2 2\n2 0\n", |k| {
                matches!(k, DimacsErrorKind::DuplicateHeader)
            }),
            // An absurd weight exponent is rejected, not computed.
            ("p cnf 2 1\nc p weight 1 1e2000000 0\n1 0\n", |k| {
                matches!(k, DimacsErrorKind::BadWeight(_))
            }),
            ("", |k| matches!(k, DimacsErrorKind::BadHeader)),
        ];
        for (text, check) in cases {
            let e = CnfFormula::from_dimacs(text).unwrap_err();
            assert!(check(&e.kind), "{text:?} gave {e}");
            assert!(!e.to_string().is_empty());
        }
    }
}
