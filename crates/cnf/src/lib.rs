//! CNF frontend for the model-counting pipeline.
//!
//! The paper's route — treewidth → vtree → SDD — is exactly the route
//! modern #SAT/weighted-model-counting compilers take over CNF inputs; this
//! crate supplies the CNF side:
//!
//! * [`CnfFormula`] — clauses over `VarId`s with optional **exact rational
//!   literal weights** ([`arith::Rational`]);
//! * [`dimacs`] — a DIMACS parser/writer covering the classic `p cnf`
//!   dialect, MC-competition `c p weight` directives, and Cachet-style `w`
//!   lines, with typed, line-numbered errors;
//! * two CNF→circuit routes: the **direct clause tree**
//!   ([`CnfFormula::to_circuit`]) and the **Tseitin bridge**
//!   ([`CnfFormula::from_circuit_tseitin`]) to/from `circuit::Cnf`;
//! * [`graphs`] — primal and incidence graph builders feeding the same
//!   `TwBackend` decomposition seam the circuit pipeline uses, so CNF
//!   primal treewidth drives vtree extraction unchanged
//!   (`sentential_core::Compiler::compile_cnf`);
//! * [`families`] — generated clause families (chain, band, random k-CNF)
//!   with exact reference counts for the `exp_mc` experiments.

pub mod dimacs;
pub mod families;
pub mod formula;
pub mod graphs;

pub use dimacs::{parse_dimacs, write_dimacs, DimacsError, DimacsErrorKind};
pub use formula::{CnfFormula, Lit};
