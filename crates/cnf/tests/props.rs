//! Property tests for the CNF frontend (via the workspace proptest shim):
//! DIMACS round-trips are the identity, and both CNF→circuit routes agree
//! with brute-force model counting on small random formulas.

use arith::Rational;
use boolfunc::VarSet;
use cnf::{families, CnfFormula};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vtree::VarId;

/// A random formula, optionally weighted, driven by a seed.
fn random_formula(n: u32, m: usize, weighted: bool, seed: u64) -> CnfFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 1 + (seed as usize % 3).min(n as usize - 1);
    let mut f = families::random_cnf(n, m, k.max(1), &mut rng);
    if weighted {
        for i in 0..n {
            if rng.gen_bool(0.5) {
                let num = rng.gen_range(0u64..100);
                let den = rng.gen_range(1u64..100);
                let wp = Rational::from_ratio(num.into(), den.into());
                f.set_weight(VarId(i), Rational::one().sub(&wp), wp);
            }
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `parse ∘ write` is the identity on formulas, including exact weights.
    #[test]
    fn dimacs_roundtrip_is_identity(n in 1u32..=16, m in 0usize..24, weighted: bool, seed: u64) {
        let f = random_formula(n, m, weighted, seed);
        let text = f.to_dimacs();
        let back = CnfFormula::from_dimacs(&text).unwrap();
        prop_assert_eq!(&back, &f);
        // Idempotent: a second round trip writes byte-identical DIMACS.
        prop_assert_eq!(back.to_dimacs(), text);
    }

    /// The direct clause-tree circuit has exactly the formula's models
    /// (counted over all declared variables, vs. brute-force enumeration).
    #[test]
    fn direct_circuit_count_matches_brute_force(n in 1u32..=16, m in 0usize..20, seed: u64) {
        let f = random_formula(n, m, false, seed);
        let c = f.to_circuit();
        let scope = VarSet::from_slice(&f.all_vars());
        let via_circuit = c.to_boolfn().unwrap().count_models_over(&scope);
        prop_assert_eq!(via_circuit, f.count_models_brute());
    }

    /// The Tseitin route preserves the model count (selectors extend every
    /// model uniquely), counted over circuit variables + selectors. The
    /// clause-tree circuit only contains *mentioned* variables, so declared
    /// variables in no clause re-enter as a free factor of 2 each.
    #[test]
    fn tseitin_route_count_matches_direct(n in 1u32..=6, m in 1usize..8, seed: u64) {
        let f = random_formula(n, m, false, seed);
        // The circuit (and hence its Tseitin CNF) only sees mentioned
        // variables; keep the invariant sharp by requiring all of them.
        prop_assume!(f.vars_used().len() as u32 == n);
        let t = CnfFormula::from_circuit_tseitin(&f.to_circuit());
        prop_assume!(t.num_vars() <= 22); // keep brute force tractable
        prop_assert_eq!(t.count_models_brute(), f.count_models_brute());
    }
}
