//! Relational schemas and tuple-independent probabilistic databases.

use std::fmt;
use vtree::fxhash::FxHashMap;
use vtree::VarId;

/// Index of a relation in a [`Schema`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u32);

/// Index of a tuple in a [`Database`]; doubles as the tuple's lineage
/// variable (`VarId(t.0)`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The lineage variable of this tuple.
    #[inline]
    pub fn var(self) -> VarId {
        VarId(self.0)
    }
}

#[derive(Clone, Debug)]
struct RelSchema {
    name: String,
    arity: usize,
}

/// A relational vocabulary.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    rels: Vec<RelSchema>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Add a relation; names should be unique (not enforced).
    pub fn add_relation(&mut self, name: &str, arity: usize) -> RelId {
        self.rels.push(RelSchema {
            name: name.to_string(),
            arity,
        });
        RelId(self.rels.len() as u32 - 1)
    }

    /// Arity of a relation.
    pub fn arity(&self, r: RelId) -> usize {
        self.rels[r.0 as usize].arity
    }

    /// Name of a relation.
    pub fn name(&self, r: RelId) -> &str {
        &self.rels[r.0 as usize].name
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.rels.len()
    }

    /// Look up a relation by name.
    pub fn by_name(&self, name: &str) -> Option<RelId> {
        self.rels
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelId(i as u32))
    }
}

/// A ground tuple.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tuple {
    /// Relation symbol.
    pub rel: RelId,
    /// Constants.
    pub args: Vec<u64>,
}

/// A tuple-independent probabilistic database: every tuple `t` is present
/// independently with probability `p(t)`. Tuple insertion order fixes the
/// lineage variables: the `i`-th inserted tuple is variable `VarId(i)`.
#[derive(Clone, Debug)]
pub struct Database {
    schema: Schema,
    tuples: Vec<Tuple>,
    probs: Vec<f64>,
    by_rel: Vec<Vec<TupleId>>,
    index: FxHashMap<Tuple, TupleId>,
}

impl Database {
    /// Empty database over a schema.
    pub fn new(schema: Schema) -> Self {
        let nrels = schema.num_relations();
        Database {
            schema,
            tuples: Vec::new(),
            probs: Vec::new(),
            by_rel: vec![Vec::new(); nrels],
            index: FxHashMap::default(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a tuple with probability `p ∈ [0, 1]`; re-inserting an existing
    /// tuple updates its probability.
    pub fn insert(&mut self, rel: RelId, args: Vec<u64>, p: f64) -> TupleId {
        assert_eq!(
            args.len(),
            self.schema.arity(rel),
            "arity mismatch for {}",
            self.schema.name(rel)
        );
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let t = Tuple { rel, args };
        if let Some(&id) = self.index.get(&t) {
            self.probs[id.0 as usize] = p;
            return id;
        }
        let id = TupleId(self.tuples.len() as u32);
        self.by_rel[rel.0 as usize].push(id);
        self.index.insert(t.clone(), id);
        self.tuples.push(t);
        self.probs.push(p);
        id
    }

    /// Number of tuples (= lineage variables).
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// The tuple with a given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.0 as usize]
    }

    /// Marginal probability of a tuple.
    pub fn prob(&self, id: TupleId) -> f64 {
        self.probs[id.0 as usize]
    }

    /// Marginal probability by lineage variable.
    pub fn prob_of_var(&self, v: VarId) -> f64 {
        self.probs[v.index()]
    }

    /// Tuples of one relation.
    pub fn tuples_of(&self, rel: RelId) -> &[TupleId] {
        &self.by_rel[rel.0 as usize]
    }

    /// Look up a ground tuple.
    pub fn lookup(&self, rel: RelId, args: &[u64]) -> Option<TupleId> {
        self.index
            .get(&Tuple {
                rel,
                args: args.to_vec(),
            })
            .copied()
    }

    /// All constants appearing anywhere (the active domain).
    pub fn active_domain(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self
            .tuples
            .iter()
            .flat_map(|t| t.args.iter().copied())
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    }

    /// The lineage variables of all tuples, in insertion order.
    pub fn vars(&self) -> Vec<VarId> {
        (0..self.tuples.len() as u32).map(VarId).collect()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Database({} relations, {} tuples)",
            self.schema.num_relations(),
            self.num_tuples()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_insert() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let sx = s.add_relation("S", 2);
        assert_eq!(s.arity(r), 1);
        assert_eq!(s.by_name("S"), Some(sx));
        let mut db = Database::new(s);
        let t0 = db.insert(r, vec![1], 0.5);
        let t1 = db.insert(sx, vec![1, 2], 0.25);
        assert_eq!(t0, TupleId(0));
        assert_eq!(t1.var(), VarId(1));
        assert_eq!(db.num_tuples(), 2);
        assert_eq!(db.prob(t1), 0.25);
        assert_eq!(db.tuples_of(sx), &[t1]);
        assert_eq!(db.lookup(r, &[1]), Some(t0));
        assert_eq!(db.lookup(r, &[9]), None);
        assert_eq!(db.active_domain(), vec![1, 2]);
    }

    #[test]
    fn reinsert_updates_probability() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let mut db = Database::new(s);
        let t = db.insert(r, vec![7], 0.3);
        let t2 = db.insert(r, vec![7], 0.9);
        assert_eq!(t, t2);
        assert_eq!(db.num_tuples(), 1);
        assert!((db.prob(t) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2);
        let mut db = Database::new(s);
        db.insert(r, vec![1], 0.5);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn probability_checked() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let mut db = Database::new(s);
        db.insert(r, vec![1], 1.5);
    }
}
