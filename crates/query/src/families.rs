//! The query and database families of §4.
//!
//! The star is [`uh`]`(k)` — the unsafe UCQ chain
//!
//! ```text
//! uh(k) = R(x)S₁(x,y) ∨ S₁(x,y)S₂(x,y) ∨ … ∨ S_{k-1}(x,y)S_k(x,y) ∨ S_k(x,y)T(y)
//! ```
//!
//! whose lineage over the complete database on domain `[n]` is
//! `⋁ᵢ Hⁱ_{k,n}` with the tuple variables laid out exactly as in
//! [`boolfunc::families::HFamily`]; Lemma 7's cofactor property is then a
//! *checkable identity* ([`lemma7_restriction`]).

use crate::ast::{Atom, Cq, Term, Ucq};
use crate::schema::{Database, RelId, Schema};
use boolfunc::families::HFamily;
use boolfunc::Assignment;

/// `R(x), S(x, y)` — hierarchical, safe, constant-OBDD-width lineages.
pub fn two_atom_hierarchical() -> (Ucq, Schema) {
    let mut schema = Schema::new();
    let r = schema.add_relation("R", 1);
    let s = schema.add_relation("S", 2);
    let q = Ucq::single(Cq::new(
        vec![
            Atom {
                rel: r,
                args: vec![Term::Var(0)],
            },
            Atom {
                rel: s,
                args: vec![Term::Var(0), Term::Var(1)],
            },
        ],
        vec![],
    ));
    (q, schema)
}

/// `q_RST = R(x), S(x, y), T(y)` — the canonical non-hierarchical CQ;
/// inversion of length 1.
pub fn qrst() -> (Ucq, Schema) {
    let mut schema = Schema::new();
    let r = schema.add_relation("R", 1);
    let s = schema.add_relation("S", 2);
    let t = schema.add_relation("T", 1);
    let q = Ucq::single(Cq::new(
        vec![
            Atom {
                rel: r,
                args: vec![Term::Var(0)],
            },
            Atom {
                rel: s,
                args: vec![Term::Var(0), Term::Var(1)],
            },
            Atom {
                rel: t,
                args: vec![Term::Var(1)],
            },
        ],
        vec![],
    ));
    (q, schema)
}

/// The unsafe chain UCQ `uh(k)` with `k` middle relations (inversion length
/// `k`). Schema relations in order: `R, S₁, …, S_k, T`.
pub fn uh(k: usize) -> (Ucq, Schema) {
    assert!(k >= 1);
    let mut schema = Schema::new();
    let r = schema.add_relation("R", 1);
    let ss: Vec<RelId> = (1..=k)
        .map(|i| schema.add_relation(&format!("S{i}"), 2))
        .collect();
    let t = schema.add_relation("T", 1);
    let mut cqs = Vec::with_capacity(k + 1);
    // R(x) S1(x,y)
    cqs.push(Cq::new(
        vec![
            Atom {
                rel: r,
                args: vec![Term::Var(0)],
            },
            Atom {
                rel: ss[0],
                args: vec![Term::Var(0), Term::Var(1)],
            },
        ],
        vec![],
    ));
    // S_i(x,y) S_{i+1}(x,y)
    for i in 0..k - 1 {
        cqs.push(Cq::new(
            vec![
                Atom {
                    rel: ss[i],
                    args: vec![Term::Var(0), Term::Var(1)],
                },
                Atom {
                    rel: ss[i + 1],
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
            vec![],
        ));
    }
    // S_k(x,y) T(y)
    cqs.push(Cq::new(
        vec![
            Atom {
                rel: ss[k - 1],
                args: vec![Term::Var(0), Term::Var(1)],
            },
            Atom {
                rel: t,
                args: vec![Term::Var(1)],
            },
        ],
        vec![],
    ));
    (Ucq::new(cqs), schema)
}

/// `R(x)S(x,y) ∨ T(u)W(u,v)` — a union of two hierarchical disjuncts over
/// disjoint vocabularies; safe, no inversion.
pub fn disconnected_hierarchical_union() -> (Ucq, Schema) {
    let mut schema = Schema::new();
    let r = schema.add_relation("R", 1);
    let s = schema.add_relation("S", 2);
    let t = schema.add_relation("T", 1);
    let w = schema.add_relation("W", 2);
    let q = Ucq::new(vec![
        Cq::new(
            vec![
                Atom {
                    rel: r,
                    args: vec![Term::Var(0)],
                },
                Atom {
                    rel: s,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
            vec![],
        ),
        Cq::new(
            vec![
                Atom {
                    rel: t,
                    args: vec![Term::Var(0)],
                },
                Atom {
                    rel: w,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
            vec![],
        ),
    ]);
    (q, schema)
}

/// `S(x,y), S(x',y'), x ≠ x'` — a UCQ≠ with a self-join but no inversion
/// (Figure 3's inversion-free region: polynomial-size OBDDs).
pub fn sjoin_inequality_query() -> (Ucq, Schema) {
    let mut schema = Schema::new();
    let s = schema.add_relation("S", 2);
    let q = Ucq::single(Cq::new(
        vec![
            Atom {
                rel: s,
                args: vec![Term::Var(0), Term::Var(1)],
            },
            Atom {
                rel: s,
                args: vec![Term::Var(2), Term::Var(3)],
            },
        ],
        vec![(0, 2)],
    ));
    (q, schema)
}

/// The complete database for [`uh`]`(k)` on domain `[n]`, all probabilities
/// `p`: tuples are inserted so that the lineage variables coincide with the
/// [`HFamily`] layout — `R(l) ↦ x_l`, `T(m) ↦ y_m`, `S_i(l,m) ↦ zⁱ_{l,m}`.
pub fn uh_complete_db(schema: &Schema, k: usize, n: usize, p: f64) -> Database {
    let mut db = Database::new(schema.clone());
    let r = schema.by_name("R").expect("R");
    let t = schema.by_name("T").expect("T");
    for l in 1..=n as u64 {
        db.insert(r, vec![l], p);
    }
    for m in 1..=n as u64 {
        db.insert(t, vec![m], p);
    }
    for i in 1..=k {
        let s = schema.by_name(&format!("S{i}")).expect("S_i");
        for l in 1..=n as u64 {
            for m in 1..=n as u64 {
                db.insert(s, vec![l, m], p);
            }
        }
    }
    db
}

/// Lemma 7's restriction `bᵢ`: the partial assignment of the lineage of
/// `uh(k)` over [`uh_complete_db`] under which the cofactor is `Hⁱ_{k,n}`.
///
/// Zeroes every tuple except the layers `i` and `i+1` (with layer `0` = the
/// `R` tuples, layer `k+1` = the `T` tuples).
pub fn lemma7_restriction(k: usize, n: usize, i: usize) -> Assignment {
    assert!(i <= k);
    let h = HFamily::new(k, n);
    let mut b = Assignment::empty();
    if i != 0 {
        for &x in &h.xs {
            b.set(x, false);
        }
    }
    if i != k {
        for &y in &h.ys {
            b.set(y, false);
        }
    }
    for layer in 1..=k {
        if layer != i && layer != i + 1 {
            for &z in &h.zs[layer - 1] {
                b.set(z, false);
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::lineage_boolfn;

    /// The lineage of uh(k) over the complete database IS ⋁ᵢ Hⁱ with the
    /// HFamily variable layout.
    #[test]
    fn uh_lineage_is_union_of_h_functions() {
        let (k, n) = (2usize, 2usize);
        let (q, schema) = uh(k);
        let db = uh_complete_db(&schema, k, n, 0.5);
        let lin = lineage_boolfn(&q, &db).unwrap();
        let h = HFamily::new(k, n);
        let mut expect = h.func(0).unwrap();
        for i in 1..=k {
            expect = expect.or(&h.func(i).unwrap());
        }
        assert!(lin.equivalent(&expect), "lineage ≠ ⋁ H^i");
    }

    /// Lemma 7: restricting the lineage by bᵢ yields exactly Hⁱ_{k,n}.
    #[test]
    fn lemma7_cofactors_are_h_functions() {
        let (k, n) = (2usize, 2usize);
        let (q, schema) = uh(k);
        let db = uh_complete_db(&schema, k, n, 0.5);
        let lin = lineage_boolfn(&q, &db).unwrap();
        let h = HFamily::new(k, n);
        for i in 0..=k {
            let b = lemma7_restriction(k, n, i);
            let cof = lin.restrict_assignment(&b);
            let expect = h.func(i).unwrap();
            assert!(
                cof.equivalent(&expect),
                "Lemma 7 fails for i = {i}: cofactor ≠ H^{i}"
            );
        }
    }

    #[test]
    fn db_layout_matches_hfamily() {
        let (k, n) = (2usize, 3usize);
        let (_, schema) = uh(k);
        let db = uh_complete_db(&schema, k, n, 0.5);
        let h = HFamily::new(k, n);
        assert_eq!(db.num_tuples(), 2 * n + k * n * n);
        // R(2) is the second tuple → x_2.
        let r = schema.by_name("R").unwrap();
        assert_eq!(db.lookup(r, &[2]).unwrap().var(), h.xs[1]);
        // S_2(3,1) sits at z²_{3,1}.
        let s2 = schema.by_name("S2").unwrap();
        assert_eq!(db.lookup(s2, &[3, 1]).unwrap().var(), h.z(2, 3, 1));
    }

    #[test]
    fn all_family_queries_validate() {
        for (q, schema) in [
            two_atom_hierarchical(),
            qrst(),
            uh(3),
            disconnected_hierarchical_union(),
            sjoin_inequality_query(),
        ] {
            q.validate(&schema).unwrap();
        }
    }
}
