//! Query probability, seven ways.
//!
//! `P(Q)` over a tuple-independent database is the weighted model count of
//! the lineage (paper §1). Routes, from reference to paper:
//!
//! 1. [`brute_force_probability`] — enumerate subdatabases (reference);
//! 2. [`safe_probability`] — lifted independent-join/project plan for
//!    hierarchical self-join-free CQs (the PTIME side of the dichotomy);
//! 3. [`probability_via_obdd`] — compile the lineage to an OBDD, then WMC;
//! 4. [`probability_via_sdd`] — compile to an SDD over a balanced vtree;
//! 5. [`probability_via_pipeline`] — the paper's route: Lemma-1 vtree from a
//!    tree decomposition of the lineage circuit, then SDD;
//! 6. [`probability_via_cft`] — the `C_{F,T}` deterministic structured NNF
//!    with a single linear d-DNNF counting pass (no diagram manager);
//! 7. [`probability_via_sdd_exact`] — route 4 evaluated in the exact
//!    `Rational` semiring: tuple probabilities embed into `Rational`
//!    losslessly (`f64`s are dyadic), so the answer carries no rounding at
//!    all — the reference the `f64` routes are checked against.
//!
//! A Monte-Carlo estimator ([`monte_carlo_probability`]) rounds things out.

use crate::ast::{Cq, Ucq};
use crate::eval::ucq_holds;
use crate::lineage::lineage_circuit;
use crate::schema::{Database, TupleId};
use vtree::fxhash::FxHashMap;
use vtree::VarId;

/// Reference: enumerate all subdatabases (≤ 24 tuples).
pub fn brute_force_probability(q: &Ucq, db: &Database) -> f64 {
    let n = db.num_tuples();
    assert!(n <= 24, "brute force capped at 24 tuples");
    let mut total = 0.0;
    for mask in 0..(1u64 << n) {
        let present = |t: TupleId| mask >> t.0 & 1 == 1;
        if ucq_holds(q, db, &present) {
            let mut p = 1.0;
            for t in 0..n {
                let pt = db.prob(TupleId(t as u32));
                p *= if mask >> t & 1 == 1 { pt } else { 1.0 - pt };
            }
            total += p;
        }
    }
    total
}

/// OBDD route: lineage circuit → OBDD (tuple-insertion order) → WMC.
pub fn probability_via_obdd(q: &Ucq, db: &Database) -> f64 {
    let c = lineage_circuit(q, db);
    let order: Vec<VarId> = db.vars();
    if order.is_empty() {
        // No tuples: the query holds iff it matches the empty database.
        return if ucq_holds(q, db, &|_| false) {
            1.0
        } else {
            0.0
        };
    }
    let mut m = obdd::Obdd::new(order);
    let root = m.from_circuit(&c);
    m.probability(root, |v| db.prob_of_var(v))
}

/// The lineage compiled to an SDD over a balanced vtree — or the constant
/// truth value when the database has no tuples (the lineage mentions no
/// variables). Shared by the f64 and exact SDD routes.
enum CompiledLineage {
    Constant(bool),
    Sdd(Box<sdd::SddManager>, sdd::SddId),
}

fn lineage_sdd(q: &Ucq, db: &Database) -> CompiledLineage {
    let vars = db.vars();
    if vars.is_empty() {
        return CompiledLineage::Constant(ucq_holds(q, db, &|_| false));
    }
    let c = lineage_circuit(q, db);
    let vt = vtree::Vtree::balanced(&vars).expect("nonempty");
    let mut m = sdd::SddManager::new(vt);
    let root = m.from_circuit(&c);
    CompiledLineage::Sdd(Box::new(m), root)
}

/// SDD route with a balanced vtree over the tuple variables.
pub fn probability_via_sdd(q: &Ucq, db: &Database) -> f64 {
    match lineage_sdd(q, db) {
        CompiledLineage::Constant(holds) => {
            if holds {
                1.0
            } else {
                0.0
            }
        }
        CompiledLineage::Sdd(m, root) => m.probability(root, |v| db.prob_of_var(v)),
    }
}

/// The exact route: the same balanced-vtree SDD as
/// [`probability_via_sdd`], evaluated in the `Rational` semiring
/// (`sdd::SddManager::probability_exact`). Every `f64` tuple probability is
/// a dyadic rational, so `Rational::from_f64` embeds the database exactly
/// and the result is the *true* probability of the specified database —
/// no rounding anywhere on the route.
pub fn probability_via_sdd_exact(q: &Ucq, db: &Database) -> arith::Rational {
    use arith::Rational;
    match lineage_sdd(q, db) {
        CompiledLineage::Constant(holds) => {
            if holds {
                Rational::one()
            } else {
                Rational::zero()
            }
        }
        CompiledLineage::Sdd(m, root) => {
            m.probability_exact(root, |v| Rational::from_f64(db.prob_of_var(v)))
        }
    }
}

/// The paper's pipeline: lineage circuit → tree decomposition → Lemma-1
/// vtree → SDD → WMC, through the [`crate::QueryCompiler`] facade. Returns
/// the probability and the treewidth used (0 for constant lineages).
pub fn probability_via_pipeline(q: &Ucq, db: &Database) -> (f64, usize) {
    let answer = crate::QueryCompiler::new()
        .probability(q, db)
        .expect("query fits its own schema");
    (answer.probability, answer.treewidth().unwrap_or(0))
}

/// The d-DNNF route: the paper's `C_{F,T}` output is deterministic and
/// decomposable *by construction*, so its weighted model count is one linear
/// pass over the circuit — no diagram manager needed (paper §1's motivating
/// tractability). Returns `None` when the lineage exceeds the truth-table
/// kernel cap (the C_{F,T} construction is semantic).
pub fn probability_via_cft(q: &Ucq, db: &Database) -> Option<f64> {
    let c = lineage_circuit(q, db);
    if c.vars().is_empty() {
        return Some(if ucq_holds(q, db, &|_| false) {
            1.0
        } else {
            0.0
        });
    }
    let f = c.to_boolfn().ok()?;
    let (vt, _) = sentential_core::vtree_from_circuit(&c, 16).ok()?;
    let cft = sentential_core::cft(&f, &vt);
    let scope = boolfunc::VarSet::from_slice(&db.vars());
    Some(cft.circuit.wmc_ddnnf(&scope, |v| {
        let p = db.prob_of_var(v);
        (1.0 - p, p)
    }))
}

/// Monte-Carlo estimate with `samples` draws.
pub fn monte_carlo_probability<R: rand::Rng>(
    q: &Ucq,
    db: &Database,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let n = db.num_tuples();
    let mut hits = 0usize;
    for _ in 0..samples {
        let mut mask = 0u64;
        for t in 0..n {
            if rng.gen_bool(db.prob(TupleId(t as u32))) {
                mask |= 1 << t;
            }
        }
        if ucq_holds(q, db, &|t| mask >> t.0 & 1 == 1) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Lifted (extensional) evaluation for **hierarchical self-join-free CQs**:
/// independent join over connected components, independent project on root
/// variables. Returns `None` when no safe plan step applies (the query is
/// unsafe, or not self-join-free).
pub fn safe_probability(cq: &Cq, db: &Database) -> Option<f64> {
    if !cq.self_join_free() {
        return None;
    }
    let domain = db.active_domain();
    safe_rec(cq, db, &domain)
}

fn safe_rec(cq: &Cq, db: &Database, domain: &[u64]) -> Option<f64> {
    if !cq.neq.is_empty() {
        return None; // inequalities are outside this plan's scope
    }
    // Ground query: product over (distinct) matched tuples.
    let vars = cq.vars();
    if vars.is_empty() {
        let mut p = 1.0;
        let mut seen: Vec<TupleId> = Vec::new();
        for atom in &cq.atoms {
            let consts: Vec<u64> = atom
                .args
                .iter()
                .map(|t| match t {
                    crate::ast::Term::Const(c) => *c,
                    crate::ast::Term::Var(_) => unreachable!("ground query"),
                })
                .collect();
            match db.lookup(atom.rel, &consts) {
                None => return Some(0.0),
                Some(t) => {
                    if !seen.contains(&t) {
                        seen.push(t);
                        p *= db.prob(t);
                    }
                }
            }
        }
        return Some(p);
    }
    // Independent join: split into variable-connected components.
    let comps = components(cq);
    if comps.len() > 1 {
        let mut p = 1.0;
        for comp in comps {
            p *= safe_rec(&comp, db, domain)?;
        }
        return Some(p);
    }
    // Independent project on a root variable (occurs in every atom).
    let root = vars
        .iter()
        .copied()
        .find(|&v| cq.atoms.iter().all(|a| a.vars().contains(&v)))?;
    let mut q_miss = 1.0;
    for &c in domain {
        let grounded = substitute(cq, root, c);
        let pc = safe_rec(&grounded, db, domain)?;
        q_miss *= 1.0 - pc;
    }
    Some(1.0 - q_miss)
}

/// Variable-connected components of a CQ (atoms sharing variables).
fn components(cq: &Cq) -> Vec<Cq> {
    let n = cq.atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let vi = cq.atoms[i].vars();
            let vj = cq.atoms[j].vars();
            if vi.iter().any(|v| vj.contains(v)) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    groups
        .into_values()
        .map(|idxs| Cq {
            atoms: idxs.iter().map(|&i| cq.atoms[i].clone()).collect(),
            neq: Vec::new(),
        })
        .collect()
}

/// Substitute constant `c` for variable `v`.
fn substitute(cq: &Cq, v: u32, c: u64) -> Cq {
    use crate::ast::Term;
    Cq {
        atoms: cq
            .atoms
            .iter()
            .map(|a| crate::ast::Atom {
                rel: a.rel,
                args: a
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(u) if *u == v => Term::Const(c),
                        other => *other,
                    })
                    .collect(),
            })
            .collect(),
        neq: cq.neq.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn random_db_probs<R: rand::Rng>(db: &mut Database, rng: &mut R) {
        for t in 0..db.num_tuples() {
            let tuple = db.tuple(TupleId(t as u32)).clone();
            let p = rng.gen_range(0.05..0.95);
            db.insert(tuple.rel, tuple.args, p);
        }
    }

    #[test]
    fn all_routes_agree_on_hierarchical_query() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (q, schema) = families::two_atom_hierarchical();
        let r = schema.by_name("R").unwrap();
        let s = schema.by_name("S").unwrap();
        let mut db = Database::new(schema);
        for l in 1..=3u64 {
            db.insert(r, vec![l], 0.5);
            for m in 1..=2u64 {
                db.insert(s, vec![l, m], 0.5);
            }
        }
        random_db_probs(&mut db, &mut rng);
        let brute = brute_force_probability(&q, &db);
        let viao = probability_via_obdd(&q, &db);
        let vias = probability_via_sdd(&q, &db);
        let (viap, _) = probability_via_pipeline(&q, &db);
        let viac = probability_via_cft(&q, &db).expect("small lineage");
        let safe = safe_probability(&q.cqs[0], &db).expect("hierarchical is safe");
        for (label, p) in [
            ("obdd", viao),
            ("sdd", vias),
            ("pipeline", viap),
            ("cft-ddnnf", viac),
            ("safe", safe),
        ] {
            assert!((p - brute).abs() < 1e-10, "{label}: {p} vs brute {brute}");
        }
    }

    #[test]
    fn all_routes_agree_on_inversion_query() {
        let (q, schema) = families::uh(1);
        let db = families::uh_complete_db(&schema, 1, 2, 0.3);
        let brute = brute_force_probability(&q, &db);
        let viao = probability_via_obdd(&q, &db);
        let vias = probability_via_sdd(&q, &db);
        let (viap, _) = probability_via_pipeline(&q, &db);
        for (label, p) in [("obdd", viao), ("sdd", vias), ("pipeline", viap)] {
            assert!((p - brute).abs() < 1e-10, "{label}: {p} vs brute {brute}");
        }
        // uh(1) is not safe for the lifted plan.
        assert!(safe_probability(&q.cqs[0], &db).is_none() || q.cqs.len() > 1);
    }

    #[test]
    fn qrst_unsafe_for_lifted_plan() {
        let (q, schema) = families::qrst();
        let r = schema.by_name("R").unwrap();
        let s = schema.by_name("S").unwrap();
        let t = schema.by_name("T").unwrap();
        let mut db = Database::new(schema);
        for l in 1..=2u64 {
            db.insert(r, vec![l], 0.4);
            db.insert(t, vec![l], 0.6);
            for m in 1..=2u64 {
                db.insert(s, vec![l, m], 0.5);
            }
        }
        assert!(
            safe_probability(&q.cqs[0], &db).is_none(),
            "q_RST has no safe plan"
        );
        // But compilation still gets the right answer.
        let brute = brute_force_probability(&q, &db);
        let viao = probability_via_obdd(&q, &db);
        assert!((brute - viao).abs() < 1e-10);
    }

    /// The exact `Rational` route agrees with every `f64` route (within
    /// eps), and — the exactness guarantee — is *identical* as a rational
    /// no matter which vtree structured the SDD.
    #[test]
    fn exact_route_agrees_and_is_structure_independent() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (q, schema) = families::two_atom_hierarchical();
        let r = schema.by_name("R").unwrap();
        let s = schema.by_name("S").unwrap();
        let mut db = Database::new(schema);
        for l in 1..=3u64 {
            db.insert(r, vec![l], 0.5);
            for m in 1..=2u64 {
                db.insert(s, vec![l, m], 0.5);
            }
        }
        random_db_probs(&mut db, &mut rng);

        let exact = probability_via_sdd_exact(&q, &db);
        let brute = brute_force_probability(&q, &db);
        assert!(
            (exact.to_f64() - brute).abs() < 1e-10,
            "exact {exact} vs brute {brute}"
        );
        for (label, p) in [
            ("obdd", probability_via_obdd(&q, &db)),
            ("sdd", probability_via_sdd(&q, &db)),
            ("pipeline", probability_via_pipeline(&q, &db).0),
        ] {
            assert!(
                (p - exact.to_f64()).abs() < 1e-10,
                "{label}: {p} vs {exact}"
            );
        }

        // Recompute over the *pipeline's* Lemma-1 vtree: a different SDD,
        // the same exact rational — bit-for-bit.
        let c = lineage_circuit(&q, &db);
        let compiled = sentential_core::Compiler::new()
            .compile(&c)
            .expect("lineage compiles");
        let via_lemma1 = compiled.sdd.probability_exact(compiled.root, |v| {
            arith::Rational::from_f64(db.prob_of_var(v))
        });
        assert_eq!(via_lemma1, exact, "exact WMC is structure-independent");
    }

    #[test]
    fn empty_database_exact_route() {
        let (q, schema) = families::two_atom_hierarchical();
        let db = Database::new(schema);
        assert_eq!(probability_via_sdd_exact(&q, &db), arith::Rational::zero());
    }

    #[test]
    fn monte_carlo_in_the_ballpark() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (q, schema) = families::two_atom_hierarchical();
        let r = schema.by_name("R").unwrap();
        let s = schema.by_name("S").unwrap();
        let mut db = Database::new(schema);
        db.insert(r, vec![1], 0.7);
        db.insert(s, vec![1, 1], 0.8);
        let exact = brute_force_probability(&q, &db);
        let est = monte_carlo_probability(&q, &db, 20_000, &mut rng);
        assert!((est - exact).abs() < 0.02, "MC {est} vs exact {exact}");
    }

    #[test]
    fn empty_database_handled() {
        let (q, schema) = families::two_atom_hierarchical();
        let db = Database::new(schema);
        assert_eq!(probability_via_obdd(&q, &db), 0.0);
        assert_eq!(probability_via_sdd(&q, &db), 0.0);
        assert_eq!(probability_via_pipeline(&q, &db).0, 0.0);
    }
}
