//! Unions of conjunctive queries with and without inequalities (paper §4).

use crate::schema::{RelId, Schema};
use std::fmt;

/// A term in an atom: a query variable or a constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Query variable (scoped to its CQ).
    Var(u32),
    /// Constant.
    Const(u64),
}

/// An atom `R(t₁, …, t_m)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Relation symbol.
    pub rel: RelId,
    /// Terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// The variables of the atom (sorted, deduplicated).
    pub fn vars(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self
            .args
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// A conjunctive query with inequalities: an existentially closed
/// conjunction of atoms and disequalities `x ≠ y`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cq {
    /// The atoms.
    pub atoms: Vec<Atom>,
    /// Inequalities between query variables.
    pub neq: Vec<(u32, u32)>,
}

impl Cq {
    /// Build from parts.
    pub fn new(atoms: Vec<Atom>, neq: Vec<(u32, u32)>) -> Self {
        Cq { atoms, neq }
    }

    /// All variables (sorted, deduplicated).
    pub fn vars(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self.atoms.iter().flat_map(|a| a.vars()).collect();
        vs.extend(self.neq.iter().flat_map(|&(a, b)| [a, b]));
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Is the query self-join-free (no repeated relation symbol)?
    pub fn self_join_free(&self) -> bool {
        let mut rels: Vec<RelId> = self.atoms.iter().map(|a| a.rel).collect();
        rels.sort_unstable();
        rels.windows(2).all(|w| w[0] != w[1])
    }
}

/// A union of conjunctive queries (with inequalities if any disjunct has
/// them).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Ucq {
    /// The disjuncts.
    pub cqs: Vec<Cq>,
}

impl Ucq {
    /// A single-CQ query.
    pub fn single(cq: Cq) -> Self {
        Ucq { cqs: vec![cq] }
    }

    /// Build from disjuncts.
    pub fn new(cqs: Vec<Cq>) -> Self {
        Ucq { cqs }
    }

    /// Does any disjunct use inequalities?
    pub fn has_inequalities(&self) -> bool {
        self.cqs.iter().any(|c| !c.neq.is_empty())
    }

    /// Validate arities against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        for (ci, cq) in self.cqs.iter().enumerate() {
            if cq.atoms.is_empty() {
                return Err(QueryError::EmptyCq(ci));
            }
            for atom in &cq.atoms {
                if atom.rel.0 as usize >= schema.num_relations() {
                    return Err(QueryError::UnknownRelation(atom.rel));
                }
                if atom.args.len() != schema.arity(atom.rel) {
                    return Err(QueryError::ArityMismatch {
                        rel: atom.rel,
                        got: atom.args.len(),
                        want: schema.arity(atom.rel),
                    });
                }
            }
            // Inequality variables must occur in atoms (safe-range).
            let vs = {
                let mut vs: Vec<u32> = cq.atoms.iter().flat_map(|a| a.vars()).collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            };
            for &(a, b) in &cq.neq {
                if vs.binary_search(&a).is_err() || vs.binary_search(&b).is_err() {
                    return Err(QueryError::UnsafeInequality(a, b));
                }
            }
        }
        Ok(())
    }
}

/// Query well-formedness errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A disjunct has no atoms.
    EmptyCq(usize),
    /// Relation id out of schema range.
    UnknownRelation(RelId),
    /// Atom arity disagrees with the schema.
    ArityMismatch {
        /// Relation.
        rel: RelId,
        /// Arity used in the atom.
        got: usize,
        /// Arity declared by the schema.
        want: usize,
    },
    /// An inequality mentions a variable not bound by any atom.
    UnsafeInequality(u32, u32),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyCq(i) => write!(f, "disjunct {i} has no atoms"),
            QueryError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            QueryError::ArityMismatch { rel, got, want } => {
                write!(f, "relation {rel:?}: arity {got}, schema says {want}")
            }
            QueryError::UnsafeInequality(a, b) => {
                write!(f, "inequality ?{a} ≠ ?{b} uses unbound variables")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_rs() -> (Schema, RelId, RelId) {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let sx = s.add_relation("S", 2);
        (s, r, sx)
    }

    #[test]
    fn vars_and_sjf() {
        let (_, r, s) = schema_rs();
        let cq = Cq::new(
            vec![
                Atom {
                    rel: r,
                    args: vec![Term::Var(0)],
                },
                Atom {
                    rel: s,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
            vec![],
        );
        assert_eq!(cq.vars(), vec![0, 1]);
        assert!(cq.self_join_free());
        let cq2 = Cq::new(
            vec![
                Atom {
                    rel: s,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
                Atom {
                    rel: s,
                    args: vec![Term::Var(1), Term::Var(2)],
                },
            ],
            vec![],
        );
        assert!(!cq2.self_join_free());
    }

    #[test]
    fn validation() {
        let (schema, r, s) = schema_rs();
        let good = Ucq::single(Cq::new(
            vec![Atom {
                rel: s,
                args: vec![Term::Var(0), Term::Const(3)],
            }],
            vec![],
        ));
        good.validate(&schema).unwrap();
        let bad_arity = Ucq::single(Cq::new(
            vec![Atom {
                rel: r,
                args: vec![Term::Var(0), Term::Var(1)],
            }],
            vec![],
        ));
        assert!(matches!(
            bad_arity.validate(&schema),
            Err(QueryError::ArityMismatch { .. })
        ));
        let empty = Ucq::single(Cq::default());
        assert_eq!(empty.validate(&schema), Err(QueryError::EmptyCq(0)));
        let unsafe_neq = Ucq::single(Cq::new(
            vec![Atom {
                rel: r,
                args: vec![Term::Var(0)],
            }],
            vec![(0, 7)],
        ));
        assert_eq!(
            unsafe_neq.validate(&schema),
            Err(QueryError::UnsafeInequality(0, 7))
        );
    }

    #[test]
    fn inequality_flag() {
        let (_, r, _) = schema_rs();
        let plain = Ucq::single(Cq::new(
            vec![Atom {
                rel: r,
                args: vec![Term::Var(0)],
            }],
            vec![],
        ));
        assert!(!plain.has_inequalities());
    }
}
