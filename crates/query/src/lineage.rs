//! Lineage construction: `L(Q, D)` as a monotone circuit over tuple
//! variables (paper §4: `D' ⊨ Q  ⟺  b_{D'} ⊨ L(Q, D)`).

use crate::ast::Ucq;
use crate::eval::cq_matches;
use crate::schema::{Database, TupleId};
use boolfunc::{BoolFn, BoolFnError, VarSet};
use circuit::{Circuit, CircuitBuilder, GateId};
use vtree::fxhash::FxHashSet;

/// The lineage of `q` over `db` as a monotone NNF circuit: a disjunction
/// over homomorphisms of conjunctions of tuple variables. Gate sharing is by
/// hash-consing; duplicate homomorphism images are deduplicated.
///
/// The circuit's variables are exactly the tuple variables `VarId(t)` of the
/// tuples of `db` that participate in some match (plus none if `q` never
/// matches — the constant-⊥ circuit).
pub fn lineage_circuit(q: &Ucq, db: &Database) -> Circuit {
    let mut b = CircuitBuilder::new();
    let mut disjuncts: Vec<GateId> = Vec::new();
    let mut seen: FxHashSet<Vec<TupleId>> = FxHashSet::default();
    for cq in &q.cqs {
        for used in cq_matches(cq, db, &|_| true) {
            if !seen.insert(used.clone()) {
                continue;
            }
            let lits: Vec<GateId> = used.iter().map(|t| b.var(t.var())).collect();
            disjuncts.push(b.and_many(lits));
        }
    }
    let out = b.or_many(disjuncts);
    b.build(out)
}

/// The lineage as a truth table over *all* tuple variables of the database
/// (so restrictions à la Lemma 7 can mention any tuple).
pub fn lineage_boolfn(q: &Ucq, db: &Database) -> Result<BoolFn, BoolFnError> {
    let c = lineage_circuit(q, db);
    let f = c.to_boolfn()?;
    let all_vars = VarSet::from_slice(&db.vars());
    if all_vars.len() > boolfunc::MAX_VARS {
        return Err(BoolFnError::TooManyVars { n: all_vars.len() });
    }
    Ok(f.with_support(&all_vars))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Cq, Term};
    use crate::eval::ucq_holds;
    use crate::schema::Schema;
    use boolfunc::Assignment;

    fn setup() -> (Database, Ucq) {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let sx = s.add_relation("S", 2);
        let mut db = Database::new(s);
        db.insert(r, vec![1], 0.5);
        db.insert(r, vec![2], 0.5);
        db.insert(sx, vec![1, 10], 0.5);
        db.insert(sx, vec![2, 10], 0.5);
        let q = Ucq::single(Cq::new(
            vec![
                Atom {
                    rel: r,
                    args: vec![Term::Var(0)],
                },
                Atom {
                    rel: sx,
                    args: vec![Term::Var(0), Term::Var(1)],
                },
            ],
            vec![],
        ));
        (db, q)
    }

    /// The defining property: for every subdatabase D', D' ⊨ Q iff the
    /// lineage accepts the indicator assignment of D'.
    #[test]
    fn lineage_defining_property() {
        let (db, q) = setup();
        let f = lineage_boolfn(&q, &db).unwrap();
        let n = db.num_tuples();
        for mask in 0..(1u64 << n) {
            let present = |t: TupleId| mask >> t.0 & 1 == 1;
            let holds = ucq_holds(&q, &db, &present);
            let a = Assignment::from_index(f.vars(), mask);
            assert_eq!(holds, f.eval(&a), "subdatabase {mask:#b}");
        }
    }

    /// Lineages are monotone.
    #[test]
    fn lineage_monotone() {
        let (db, q) = setup();
        let f = lineage_boolfn(&q, &db).unwrap();
        let n = db.num_tuples();
        for mask in 0..(1u64 << n) {
            if f.eval_index(mask) {
                for extra in 0..n {
                    assert!(f.eval_index(mask | 1 << extra), "monotonicity");
                }
            }
        }
    }

    /// Duplicate homomorphism images are shared.
    #[test]
    fn duplicate_matches_deduplicated() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let mut db = Database::new(s);
        db.insert(r, vec![1], 0.5);
        // Two disjuncts matching the same tuple: one term in the circuit.
        let q = Ucq::new(vec![
            Cq::new(
                vec![Atom {
                    rel: r,
                    args: vec![Term::Var(0)],
                }],
                vec![],
            ),
            Cq::new(
                vec![Atom {
                    rel: r,
                    args: vec![Term::Const(1)],
                }],
                vec![],
            ),
        ]);
        let c = lineage_circuit(&q, &db);
        // var gate + (or of one = collapsed): just the var gate.
        assert!(c.size() <= 2);
    }

    /// Unsatisfied queries give the ⊥ lineage.
    #[test]
    fn empty_lineage() {
        let (db, _) = setup();
        let q = Ucq::single(Cq::new(
            vec![Atom {
                rel: crate::schema::RelId(0),
                args: vec![Term::Const(777)],
            }],
            vec![],
        ));
        let f = lineage_boolfn(&q, &db).unwrap();
        assert_eq!(f.count_models(), 0);
    }
}
