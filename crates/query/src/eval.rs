//! Homomorphism enumeration and Boolean query evaluation.

use crate::ast::{Atom, Cq, Term, Ucq};
use crate::schema::{Database, TupleId};
use vtree::fxhash::FxHashMap;

/// A valuation of query variables by constants.
type Valuation = FxHashMap<u32, u64>;

/// Enumerate the homomorphisms of `cq` into the sub-database given by
/// `present`; for each, report the (sorted, deduplicated) set of tuples used.
///
/// `present(t)` decides whether tuple `t` is in the sub-database.
pub fn cq_matches(cq: &Cq, db: &Database, present: &dyn Fn(TupleId) -> bool) -> Vec<Vec<TupleId>> {
    let mut out = Vec::new();
    let mut val: Valuation = FxHashMap::default();
    let mut used: Vec<TupleId> = Vec::with_capacity(cq.atoms.len());
    search(cq, db, present, 0, &mut val, &mut used, &mut |used| {
        let mut u = used.to_vec();
        u.sort_unstable();
        u.dedup();
        out.push(u);
    });
    out
}

/// Does `cq` hold on the sub-database?
pub fn cq_holds(cq: &Cq, db: &Database, present: &dyn Fn(TupleId) -> bool) -> bool {
    let mut found = false;
    let mut val: Valuation = FxHashMap::default();
    let mut used: Vec<TupleId> = Vec::new();
    search(cq, db, present, 0, &mut val, &mut used, &mut |_| {
        found = true;
    });
    found
}

/// Does the UCQ hold on the sub-database?
pub fn ucq_holds(q: &Ucq, db: &Database, present: &dyn Fn(TupleId) -> bool) -> bool {
    q.cqs.iter().any(|cq| cq_holds(cq, db, present))
}

fn search(
    cq: &Cq,
    db: &Database,
    present: &dyn Fn(TupleId) -> bool,
    atom_idx: usize,
    val: &mut Valuation,
    used: &mut Vec<TupleId>,
    emit: &mut dyn FnMut(&[TupleId]),
) {
    if atom_idx == cq.atoms.len() {
        // Check inequalities (all variables are bound by safe-range).
        if cq.neq.iter().all(|&(a, b)| val.get(&a) != val.get(&b)) {
            emit(used);
        }
        return;
    }
    let atom = &cq.atoms[atom_idx];
    for &t in db.tuples_of(atom.rel) {
        if !present(t) {
            continue;
        }
        if let Some(newly_bound) = try_bind(atom, db.tuple(t).args.as_slice(), val) {
            used.push(t);
            search(cq, db, present, atom_idx + 1, val, used, emit);
            used.pop();
            for v in newly_bound {
                val.remove(&v);
            }
        }
    }
}

/// Try to extend `val` so the atom maps onto the given constants. Returns the
/// list of variables newly bound (to undo), or `None` on mismatch.
fn try_bind(atom: &Atom, consts: &[u64], val: &mut Valuation) -> Option<Vec<u32>> {
    let mut newly = Vec::new();
    for (term, &c) in atom.args.iter().zip(consts) {
        match term {
            Term::Const(k) => {
                if *k != c {
                    for v in newly {
                        val.remove(&v);
                    }
                    return None;
                }
            }
            Term::Var(v) => match val.get(v) {
                Some(&bound) if bound != c => {
                    for v in newly {
                        val.remove(&v);
                    }
                    return None;
                }
                Some(_) => {}
                None => {
                    val.insert(*v, c);
                    newly.push(*v);
                }
            },
        }
    }
    Some(newly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn setup() -> (Database, crate::schema::RelId, crate::schema::RelId) {
        let mut s = Schema::new();
        let r = s.add_relation("R", 1);
        let sx = s.add_relation("S", 2);
        let mut db = Database::new(s);
        db.insert(r, vec![1], 0.5);
        db.insert(r, vec![2], 0.5);
        db.insert(sx, vec![1, 10], 0.5);
        db.insert(sx, vec![2, 10], 0.5);
        db.insert(sx, vec![2, 20], 0.5);
        (db, r, sx)
    }

    fn atom(rel: crate::schema::RelId, args: Vec<Term>) -> Atom {
        Atom { rel, args }
    }

    #[test]
    fn join_enumeration() {
        let (db, r, s) = setup();
        // R(x), S(x, y)
        let cq = Cq::new(
            vec![
                atom(r, vec![Term::Var(0)]),
                atom(s, vec![Term::Var(0), Term::Var(1)]),
            ],
            vec![],
        );
        let all = |_: TupleId| true;
        let matches = cq_matches(&cq, &db, &all);
        assert_eq!(matches.len(), 3); // (1,10), (2,10), (2,20)
        assert!(cq_holds(&cq, &db, &all));
    }

    #[test]
    fn subdatabase_respected() {
        let (db, r, s) = setup();
        let cq = Cq::new(
            vec![
                atom(r, vec![Term::Var(0)]),
                atom(s, vec![Term::Var(0), Term::Var(1)]),
            ],
            vec![],
        );
        // Remove both R tuples: query fails.
        let present = |t: TupleId| t.0 >= 2;
        assert!(!cq_holds(&cq, &db, &present));
    }

    #[test]
    fn constants_filter() {
        let (db, _, s) = setup();
        let cq = Cq::new(vec![atom(s, vec![Term::Var(0), Term::Const(20)])], vec![]);
        let all = |_: TupleId| true;
        let m = cq_matches(&cq, &db, &all);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn inequalities_enforced() {
        let (db, _, s) = setup();
        // S(x, y), S(x', y), x ≠ x': two different left-joins to the same y.
        let cq = Cq::new(
            vec![
                atom(s, vec![Term::Var(0), Term::Var(2)]),
                atom(s, vec![Term::Var(1), Term::Var(2)]),
            ],
            vec![(0, 1)],
        );
        let all = |_: TupleId| true;
        let m = cq_matches(&cq, &db, &all);
        // y=10 matches with (x,x') = (1,2) and (2,1).
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let (mut dbless, _, s) = setup();
        dbless.insert(s, vec![5, 5], 0.5);
        let cq = Cq::new(vec![atom(s, vec![Term::Var(0), Term::Var(0)])], vec![]);
        let all = |_: TupleId| true;
        let m = cq_matches(&cq, &dbless, &all);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn ucq_any_disjunct() {
        let (db, r, s) = setup();
        let q = Ucq::new(vec![
            Cq::new(vec![atom(r, vec![Term::Const(99)])], vec![]),
            Cq::new(vec![atom(s, vec![Term::Const(2), Term::Var(0)])], vec![]),
        ]);
        assert!(ucq_holds(&q, &db, &|_| true));
    }
}
