//! Hierarchical queries and inversion detection (paper §4, substitution S3).
//!
//! **Hierarchical CQs** (Dalvi–Suciu): a self-join-free CQ is hierarchical
//! iff for all variable pairs the atom sets `at(x)`, `at(y)` are nested or
//! disjoint; hierarchical ⟺ safe ⟺ constant-width OBDD lineages.
//!
//! **Inversions.** The paper uses only the *consequence* of the Dalvi–Suciu
//! inversion definition (Lemma 7). The finder here works on the
//! *unification/co-occurrence graph* over ordered variable-pair occurrences:
//!
//! * node: an atom of some disjunct together with an ordered pair of distinct
//!   variable positions `(x at pₓ, y at p_y)`;
//! * *unification edge* between occurrences of the same relation at the same
//!   positions (with compatible constants);
//! * *co-occurrence edge* between atoms of the same disjunct carrying the
//!   same ordered variable pair;
//! * a node has **left excess** if some atom of its disjunct contains `x`
//!   but not `y`, **right excess** symmetrically.
//!
//! An *inversion* is a path from a left-excess node to a right-excess node;
//! its *length* is the number of distinct relations on the path (`≥ 1`).
//! This covers the paper's chain families exactly: `uh(k)` has an inversion
//! of length `k`, `q_RST` one of length 1, and hierarchical or disconnected
//! unions have none.

use crate::ast::{Term, Ucq};
use crate::schema::RelId;
use std::collections::VecDeque;
use vtree::fxhash::{FxHashMap, FxHashSet};

/// A found inversion.
#[derive(Clone, Debug)]
pub struct InversionWitness {
    /// `(disjunct, atom)` indices along the chain, in order.
    pub chain: Vec<(usize, usize)>,
    /// Number of distinct relations along the chain.
    pub length: usize,
}

/// Is a self-join-free CQ hierarchical? (For CQs with self-joins the notion
/// is not applicable; the function only considers variables, so callers
/// should check [`crate::ast::Cq::self_join_free`] first.)
pub fn cq_hierarchical(cq: &crate::ast::Cq) -> bool {
    let vars = cq.vars();
    let at = |v: u32| -> FxHashSet<usize> {
        cq.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.vars().contains(&v))
            .map(|(i, _)| i)
            .collect()
    };
    for (i, &x) in vars.iter().enumerate() {
        for &y in &vars[i + 1..] {
            let ax = at(x);
            let ay = at(y);
            let nested_or_disjoint = ax.is_subset(&ay) || ay.is_subset(&ax) || ax.is_disjoint(&ay);
            if !nested_or_disjoint {
                return false;
            }
        }
    }
    true
}

/// One node of the inversion graph.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct Occ {
    cq: usize,
    atom: usize,
    px: usize,
    py: usize,
}

/// Find an inversion in a UCQ (with or without inequalities — inequalities
/// do not change the atom structure the finder inspects).
pub fn find_inversion(q: &Ucq) -> Option<InversionWitness> {
    // Collect occurrence nodes and classify excess.
    let mut nodes: Vec<Occ> = Vec::new();
    let mut left_excess: Vec<bool> = Vec::new();
    let mut right_excess: Vec<bool> = Vec::new();
    for (ci, cq) in q.cqs.iter().enumerate() {
        for (ai, atom) in cq.atoms.iter().enumerate() {
            for px in 0..atom.args.len() {
                for py in 0..atom.args.len() {
                    if px == py {
                        continue;
                    }
                    let (Term::Var(x), Term::Var(y)) = (atom.args[px], atom.args[py]) else {
                        continue;
                    };
                    if x == y {
                        continue;
                    }
                    let x_without_y = cq.atoms.iter().any(|a| {
                        let vs = a.vars();
                        vs.contains(&x) && !vs.contains(&y)
                    });
                    let y_without_x = cq.atoms.iter().any(|a| {
                        let vs = a.vars();
                        vs.contains(&y) && !vs.contains(&x)
                    });
                    nodes.push(Occ {
                        cq: ci,
                        atom: ai,
                        px,
                        py,
                    });
                    left_excess.push(x_without_y);
                    right_excess.push(y_without_x);
                }
            }
        }
    }
    if nodes.is_empty() {
        return None;
    }
    // Adjacency: unification edges (same relation, same positions, compatible
    // constants) and co-occurrence edges (same disjunct, same ordered pair).
    let rel_of = |o: &Occ| q.cqs[o.cq].atoms[o.atom].rel;
    let pair_of = |o: &Occ| -> (u32, u32) {
        let a = &q.cqs[o.cq].atoms[o.atom];
        let (Term::Var(x), Term::Var(y)) = (a.args[o.px], a.args[o.py]) else {
            unreachable!("nodes carry variable pairs")
        };
        (x, y)
    };
    let compatible = |a: &Occ, b: &Occ| -> bool {
        let aa = &q.cqs[a.cq].atoms[a.atom];
        let ab = &q.cqs[b.cq].atoms[b.atom];
        aa.args.iter().zip(&ab.args).all(|(ta, tb)| match (ta, tb) {
            (Term::Const(u), Term::Const(v)) => u == v,
            _ => true,
        })
    };
    let idx_of: FxHashMap<Occ, usize> = nodes.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, a) in nodes.iter().enumerate() {
        for (j, b) in nodes.iter().enumerate().skip(i + 1) {
            let unif = rel_of(a) == rel_of(b)
                && a.px == b.px
                && a.py == b.py
                && (a.cq, a.atom) != (b.cq, b.atom)
                && compatible(a, b);
            let cooc = a.cq == b.cq
                && (a.atom, a.px, a.py) != (b.atom, b.px, b.py)
                && pair_of(a) == pair_of(b);
            if unif || cooc {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let _ = idx_of;
    // BFS from every left-excess node to any right-excess node.
    let sources: Vec<usize> = (0..nodes.len()).filter(|&i| left_excess[i]).collect();
    let mut best: Option<Vec<usize>> = None;
    for s in sources {
        let mut prev: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut seen = vec![false; nodes.len()];
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            if right_excess[u] {
                // Reconstruct path.
                let mut path = vec![u];
                let mut cur = u;
                while let Some(p) = prev[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                    best = Some(path);
                }
                break;
            }
            for &w in &adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    prev[w] = Some(u);
                    queue.push_back(w);
                }
            }
        }
    }
    best.map(|path| {
        let chain: Vec<(usize, usize)> =
            path.iter().map(|&i| (nodes[i].cq, nodes[i].atom)).collect();
        let mut rels: Vec<RelId> = path.iter().map(|&i| rel_of(&nodes[i])).collect();
        rels.sort_unstable();
        rels.dedup();
        InversionWitness {
            chain,
            length: rels.len().max(1),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn hierarchical_query_has_no_inversion() {
        let (q, _schema) = families::two_atom_hierarchical();
        assert!(q.cqs.iter().all(cq_hierarchical));
        assert!(find_inversion(&q).is_none());
    }

    #[test]
    fn qrst_has_inversion_length_one() {
        let (q, _schema) = families::qrst();
        assert!(!cq_hierarchical(&q.cqs[0]));
        let w = find_inversion(&q).expect("q_RST has an inversion");
        assert_eq!(w.length, 1);
    }

    #[test]
    fn uh_k_has_inversion_length_k() {
        for k in 1..=4 {
            let (q, _schema) = families::uh(k);
            let w =
                find_inversion(&q).unwrap_or_else(|| panic!("uh({k}) must contain an inversion"));
            assert_eq!(w.length, k, "uh({k}) inversion length");
        }
    }

    #[test]
    fn disconnected_union_safe() {
        // R(x)S(x,y) ∨ T(u)W(u,v): two hierarchical disjuncts over disjoint
        // relations — no inversion.
        let (q, _schema) = families::disconnected_hierarchical_union();
        assert!(find_inversion(&q).is_none());
    }

    #[test]
    fn ineq_example_is_inversion_free() {
        let (q, _schema) = families::sjoin_inequality_query();
        assert!(q.has_inequalities());
        assert!(find_inversion(&q).is_none());
    }

    #[test]
    fn non_hierarchical_detected() {
        let (q, _) = families::qrst();
        assert!(!cq_hierarchical(&q.cqs[0]));
        let (q2, _) = families::two_atom_hierarchical();
        assert!(cq_hierarchical(&q2.cqs[0]));
    }
}
