//! Probabilistic-database substrate and query compilation (paper §4).
//!
//! Implements the paper's database layer end to end:
//!
//! * [`schema`] — relational schemas and **tuple-independent probabilistic
//!   databases**, each tuple carrying a marginal probability and a lineage
//!   variable;
//! * [`ast`] — unions of conjunctive queries with and without inequalities
//!   (UCQ / UCQ≠);
//! * [`eval`] — homomorphism enumeration and Boolean query evaluation on
//!   subdatabases;
//! * [`lineage`] — the lineage `L(Q, D)`: a monotone Boolean function over
//!   the tuples of `D` accepting exactly the subdatabases satisfying `Q`,
//!   materialized as a circuit (the input to query compilation);
//! * [`hierarchy`] — hierarchical-CQ test and an **inversion finder** on
//!   unification/co-occurrence chains (see DESIGN.md substitution S3);
//! * [`families`] — the query families of §4: hierarchical (safe) queries,
//!   `q_RST`, the inversion chains `uh(k)` whose lineages contain the
//!   `H^i_{k,n}` functions as cofactors (Lemma 7), and UCQ≠ examples;
//! * [`prob`] — probability evaluation six ways: brute force, lifted
//!   safe-plan, OBDD compilation, SDD compilation, the paper's Lemma-1
//!   pipeline, and a linear d-DNNF pass over `C_{F,T}`;
//! * [`mod@compiler`] — the [`QueryCompiler`] facade: UCQ + database →
//!   lineage → configured `sentential_core::Compiler` → SDD → probability,
//!   one call, with a timed compile report;
//! * [`parser`] — a textual surface syntax (`"R(x), S(x,y) | S(x,y), T(y)"`).

pub mod ast;
pub mod compiler;
pub mod eval;
pub mod families;
pub mod hierarchy;
pub mod lineage;
pub mod parser;
pub mod prob;
pub mod schema;

pub use ast::{Atom, Cq, Term, Ucq};
pub use compiler::{QueryAnswer, QueryCompileError, QueryCompiler};
pub use hierarchy::{cq_hierarchical, find_inversion, InversionWitness};
pub use lineage::{lineage_boolfn, lineage_circuit};
pub use schema::{Database, RelId, Schema, Tuple, TupleId};
