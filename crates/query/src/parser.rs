//! A small textual surface syntax for UCQs with inequalities.
//!
//! ```text
//! R(x), S(x,y) | S(x,y), T(y)        -- two disjuncts
//! S(x,y), S(u,v), x != u             -- self-join with an inequality
//! R(x), S(x, 3)                      -- integer literals are constants
//! ```
//!
//! Grammar: disjuncts split on `|`; each disjunct is a comma-separated list
//! of atoms `Name(term, …)` and inequalities `term != term`; identifiers are
//! variables, unsigned integers are constants. Relations are resolved (or
//! registered) against a [`Schema`], with arity consistency checked.

use crate::ast::{Atom, Cq, Term, Ucq};
use crate::schema::Schema;
use std::fmt;
use vtree::fxhash::FxHashMap;

/// Parse failures, with byte positions into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Something other than an atom or inequality at this position.
    Expected { what: &'static str, at: usize },
    /// A relation used with two different arities.
    ArityConflict {
        name: String,
        first: usize,
        second: usize,
    },
    /// An inequality between two constants (vacuous or absurd — rejected).
    ConstantInequality(usize),
    /// Trailing garbage.
    TrailingInput(usize),
    /// A disjunct with no atoms.
    EmptyDisjunct(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Expected { what, at } => write!(f, "expected {what} at byte {at}"),
            ParseError::ArityConflict {
                name,
                first,
                second,
            } => {
                write!(f, "relation {name} used with arities {first} and {second}")
            }
            ParseError::ConstantInequality(at) => {
                write!(f, "inequality between constants at byte {at}")
            }
            ParseError::TrailingInput(at) => write!(f, "unexpected input at byte {at}"),
            ParseError::EmptyDisjunct(i) => write!(f, "disjunct {i} is empty"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start || self.src[start].is_ascii_digit() {
            self.pos = start;
            None
        } else {
            Some(std::str::from_utf8(&self.src[start..self.pos]).expect("ascii"))
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii")
                .parse()
                .ok()
        }
    }
}

/// Parse a UCQ, resolving (and registering) relation names in `schema`.
pub fn parse_ucq(input: &str, schema: &mut Schema) -> Result<Ucq, ParseError> {
    let mut lex = Lexer::new(input);
    let mut cqs = Vec::new();
    let mut disjunct_index = 0;
    loop {
        let cq = parse_cq(&mut lex, schema, disjunct_index)?;
        cqs.push(cq);
        disjunct_index += 1;
        if !lex.eat(b'|') {
            break;
        }
    }
    lex.skip_ws();
    if lex.pos != lex.src.len() {
        return Err(ParseError::TrailingInput(lex.pos));
    }
    Ok(Ucq::new(cqs))
}

fn parse_cq(lex: &mut Lexer<'_>, schema: &mut Schema, index: usize) -> Result<Cq, ParseError> {
    let mut atoms = Vec::new();
    let mut neq = Vec::new();
    let mut varmap: FxHashMap<String, u32> = FxHashMap::default();
    loop {
        // Either `Ident(args)` (atom) or `term != term` (inequality).
        let save = lex.pos;
        if let Some(name) = lex.ident() {
            if lex.eat(b'(') {
                // Atom.
                let mut args = Vec::new();
                if !lex.eat(b')') {
                    loop {
                        args.push(parse_term(lex, &mut varmap)?);
                        if lex.eat(b')') {
                            break;
                        }
                        if !lex.eat(b',') {
                            return Err(ParseError::Expected {
                                what: "',' or ')'",
                                at: lex.pos,
                            });
                        }
                    }
                }
                let rel = match schema.by_name(name) {
                    Some(r) => {
                        if schema.arity(r) != args.len() {
                            return Err(ParseError::ArityConflict {
                                name: name.to_string(),
                                first: schema.arity(r),
                                second: args.len(),
                            });
                        }
                        r
                    }
                    None => schema.add_relation(name, args.len()),
                };
                atoms.push(Atom { rel, args });
            } else {
                // Must be an inequality starting with a variable.
                lex.pos = save;
                let a = parse_term(lex, &mut varmap)?;
                expect_neq(lex)?;
                let b = parse_term(lex, &mut varmap)?;
                push_neq(a, b, lex.pos, &mut neq)?;
            }
        } else if lex.peek().map(|b| b.is_ascii_digit()) == Some(true) {
            let a = parse_term(lex, &mut varmap)?;
            expect_neq(lex)?;
            let b = parse_term(lex, &mut varmap)?;
            push_neq(a, b, lex.pos, &mut neq)?;
        } else {
            return Err(ParseError::Expected {
                what: "atom or inequality",
                at: lex.pos,
            });
        }
        if !lex.eat(b',') {
            break;
        }
    }
    if atoms.is_empty() {
        return Err(ParseError::EmptyDisjunct(index));
    }
    Ok(Cq::new(atoms, neq))
}

fn expect_neq(lex: &mut Lexer<'_>) -> Result<(), ParseError> {
    if lex.eat(b'!') && lex.eat(b'=') {
        Ok(())
    } else {
        Err(ParseError::Expected {
            what: "'!='",
            at: lex.pos,
        })
    }
}

fn push_neq(a: Term, b: Term, at: usize, neq: &mut Vec<(u32, u32)>) -> Result<(), ParseError> {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => {
            neq.push((x, y));
            Ok(())
        }
        _ => Err(ParseError::ConstantInequality(at)),
    }
}

fn parse_term(
    lex: &mut Lexer<'_>,
    varmap: &mut FxHashMap<String, u32>,
) -> Result<Term, ParseError> {
    if let Some(n) = lex.number() {
        return Ok(Term::Const(n));
    }
    if let Some(name) = lex.ident() {
        let next = varmap.len() as u32;
        let id = *varmap.entry(name.to_string()).or_insert(next);
        return Ok(Term::Var(id));
    }
    Err(ParseError::Expected {
        what: "term",
        at: lex.pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_uh1() {
        let mut schema = Schema::new();
        let q = parse_ucq("R(x), S1(x,y) | S1(x,y), T(y)", &mut schema).unwrap();
        assert_eq!(q.cqs.len(), 2);
        assert_eq!(schema.num_relations(), 3);
        q.validate(&schema).unwrap();
        // Shape matches the builder family.
        let w = crate::hierarchy::find_inversion(&q).expect("inversion");
        assert_eq!(w.length, 1);
    }

    #[test]
    fn parses_inequalities_and_constants() {
        let mut schema = Schema::new();
        let q = parse_ucq("S(x,y), S(u,v), x != u, S(x, 3)", &mut schema).unwrap();
        assert_eq!(q.cqs.len(), 1);
        assert_eq!(q.cqs[0].neq.len(), 1);
        assert!(q.has_inequalities());
        assert!(q.cqs[0]
            .atoms
            .iter()
            .any(|a| a.args.contains(&Term::Const(3))));
    }

    #[test]
    fn variables_scoped_per_disjunct() {
        let mut schema = Schema::new();
        let q = parse_ucq("R(x) | R(x)", &mut schema).unwrap();
        // Each disjunct gets its own variable table; both are Var(0).
        assert_eq!(q.cqs[0].atoms[0].args, q.cqs[1].atoms[0].args);
    }

    #[test]
    fn arity_conflict_detected() {
        let mut schema = Schema::new();
        let err = parse_ucq("R(x), R(x,y)", &mut schema).unwrap_err();
        assert!(matches!(err, ParseError::ArityConflict { .. }));
    }

    #[test]
    fn garbage_rejected() {
        let mut schema = Schema::new();
        assert!(matches!(
            parse_ucq("R(x) extra", &mut schema),
            Err(ParseError::TrailingInput(_))
        ));
        assert!(matches!(
            parse_ucq("", &mut schema),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse_ucq("R(x), 3 != 4", &mut schema),
            Err(ParseError::ConstantInequality(_))
        ));
    }

    #[test]
    fn parsed_query_evaluates() {
        let mut schema = Schema::new();
        let q = parse_ucq("R(x), S(x,y)", &mut schema).unwrap();
        let r = schema.by_name("R").unwrap();
        let s = schema.by_name("S").unwrap();
        let mut db = crate::schema::Database::new(schema);
        db.insert(r, vec![1], 0.5);
        db.insert(s, vec![1, 2], 0.5);
        assert!(crate::eval::ucq_holds(&q, &db, &|_| true));
    }

    #[test]
    fn roundtrip_against_builder_family() {
        let mut schema = Schema::new();
        let parsed = parse_ucq(
            "R(x), S1(x,y) | S1(x,y), S2(x,y) | S2(x,y), T(y)",
            &mut schema,
        )
        .unwrap();
        let (built, _) = crate::families::uh(2);
        assert_eq!(parsed.cqs.len(), built.cqs.len());
        let wp = crate::hierarchy::find_inversion(&parsed).unwrap();
        let wb = crate::hierarchy::find_inversion(&built).unwrap();
        assert_eq!(wp.length, wb.length);
    }
}
