//! The end-to-end query-compilation facade: UCQ(≠) + database → lineage
//! circuit → [`sentential_core::Compiler`] → SDD → probability, one call,
//! with the same timed report the circuit pipeline produces.
//!
//! ```
//! use query::{families, QueryCompiler};
//!
//! let (q, schema) = families::two_atom_hierarchical();
//! let r = schema.by_name("R").unwrap();
//! let s = schema.by_name("S").unwrap();
//! let mut db = query::Database::new(schema);
//! db.insert(r, vec![1], 0.5);
//! db.insert(s, vec![1, 1], 0.5);
//!
//! let answer = QueryCompiler::new().probability(&q, &db).unwrap();
//! assert!((answer.probability - 0.25).abs() < 1e-12);
//! println!("{}", answer.report.unwrap());
//! ```

use crate::ast::{QueryError, Ucq};
use crate::eval::ucq_holds;
use crate::lineage::lineage_circuit;
use crate::schema::Database;
use sentential_core::{CompileError, CompileOptions, CompileReport, Compiler, Route};
use std::fmt;
use vtree::VarId;

/// Failures of the query-compilation facade.
#[derive(Debug)]
pub enum QueryCompileError {
    /// The query does not fit the database's schema.
    Query(QueryError),
    /// The lineage circuit failed to compile.
    Compile(CompileError),
    /// The lineage is constant — no tuple influences the query — so there
    /// is no SDD to serve ([`QueryCompiler::knowledge_base`] only;
    /// `probability` answers `holds as f64` directly).
    ConstantLineage {
        /// Whether the query holds regardless of the tuples.
        holds: bool,
    },
}

impl fmt::Display for QueryCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryCompileError::Query(e) => write!(f, "invalid query: {e}"),
            QueryCompileError::Compile(e) => write!(f, "lineage compilation failed: {e}"),
            QueryCompileError::ConstantLineage { holds } => {
                write!(
                    f,
                    "constant lineage (query {} regardless of tuples): nothing to serve",
                    if *holds { "holds" } else { "fails" }
                )
            }
        }
    }
}

impl std::error::Error for QueryCompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryCompileError::Query(e) => Some(e),
            QueryCompileError::Compile(e) => Some(e),
            QueryCompileError::ConstantLineage { .. } => None,
        }
    }
}

impl From<QueryError> for QueryCompileError {
    fn from(e: QueryError) -> Self {
        QueryCompileError::Query(e)
    }
}

impl From<CompileError> for QueryCompileError {
    fn from(e: CompileError) -> Self {
        QueryCompileError::Compile(e)
    }
}

/// What a query compilation produced: the probability plus everything the
/// pipeline measured along the way.
#[derive(Debug)]
pub struct QueryAnswer {
    /// `P(Q)` over the tuple-independent database.
    pub probability: f64,
    /// Gates in the lineage circuit.
    pub lineage_gates: usize,
    /// Tuple variables appearing in the lineage.
    pub lineage_vars: usize,
    /// The circuit-compilation report; `None` when the lineage is constant
    /// (no tuple variable influences the query) and compilation was skipped.
    pub report: Option<CompileReport>,
}

impl QueryAnswer {
    /// Width of the tree decomposition used on the lineage, when the
    /// Lemma-1 vtree strategy ran.
    pub fn treewidth(&self) -> Option<usize> {
        self.report.as_ref().and_then(|r| r.treewidth)
    }
}

/// A query-compilation session: a [`Compiler`] plus the lineage plumbing.
///
/// The default configuration uses the apply route (lineages routinely
/// exceed the truth-table kernel cap) over Lemma-1 vtrees; use
/// [`QueryCompiler::with_options`] or [`QueryCompiler::with_compiler`] for
/// anything else.
#[derive(Clone, Debug)]
pub struct QueryCompiler {
    compiler: Compiler,
}

impl Default for QueryCompiler {
    fn default() -> Self {
        QueryCompiler {
            compiler: Compiler::builder().route(Route::Apply).build(),
        }
    }
}

impl QueryCompiler {
    /// The default session (apply route, Lemma-1 vtrees).
    pub fn new() -> Self {
        Self::default()
    }

    /// A session with explicit circuit-compilation options.
    pub fn with_options(opts: CompileOptions) -> Self {
        QueryCompiler {
            compiler: Compiler::with_options(opts),
        }
    }

    /// A session around an existing configured [`Compiler`].
    pub fn with_compiler(compiler: Compiler) -> Self {
        QueryCompiler { compiler }
    }

    /// The underlying circuit compiler.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// `P(Q)` over `db`: validate the query, build the lineage circuit,
    /// compile it to an SDD, and weight-count it with the tuple marginals.
    pub fn probability(&self, q: &Ucq, db: &Database) -> Result<QueryAnswer, QueryCompileError> {
        q.validate(db.schema())?;
        let lineage = lineage_circuit(q, db);
        let lineage_vars = lineage.vars().len();
        if lineage_vars == 0 {
            // Constant lineage: the query's truth does not depend on any
            // tuple (e.g. the empty database).
            let p = if ucq_holds(q, db, &|_| false) {
                1.0
            } else {
                0.0
            };
            return Ok(QueryAnswer {
                probability: p,
                lineage_gates: lineage.size(),
                lineage_vars,
                report: None,
            });
        }
        let compiled = self.compiler.compile(&lineage)?;
        // The vtree covers only the variables appearing in the lineage;
        // tuples never used by any match do not affect the probability.
        let probability = compiled.probability(|v: VarId| db.prob_of_var(v));
        Ok(QueryAnswer {
            probability,
            lineage_gates: lineage.size(),
            lineage_vars,
            report: Some(compiled.report),
        })
    }

    /// Compile `q`'s lineage over `db` **once** and hand back a
    /// [`kb::KnowledgeBase`] serving it: each variable is one tuple,
    /// weighted by its marginal probability, so the probabilistic-database
    /// layer gets conditioning ("given that this tuple is (not) in the
    /// database…"), posterior tuple marginals, MPE ("the most probable
    /// world where the query holds"), and top-k world enumeration for free
    /// — repeated queries never recompile the lineage.
    ///
    /// The knowledge base's `log_weight` is `ln P(Q)`; conditioning on
    /// tuples and re-reading it answers `P(Q | evidence)` directly.
    ///
    /// Errors with [`QueryCompileError::ConstantLineage`] when no tuple
    /// influences the query (nothing to serve — the probability is 0 or 1).
    pub fn knowledge_base(
        &self,
        q: &Ucq,
        db: &Database,
    ) -> Result<kb::KnowledgeBase, QueryCompileError> {
        q.validate(db.schema())?;
        let lineage = lineage_circuit(q, db);
        if lineage.vars().is_empty() {
            let holds = ucq_holds(q, db, &|_| false);
            return Err(QueryCompileError::ConstantLineage { holds });
        }
        let compiled = self.compiler.compile(&lineage)?;
        let mut base = kb::KnowledgeBase::from_compilation(compiled);
        for v in base.vars().to_vec() {
            base.set_probability(v, db.prob_of_var(v))
                .expect("lineage vars are vtree vars");
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Cq, Term};
    use crate::families;
    use crate::prob;
    use crate::schema::Schema;
    use sentential_core::{ResolvedRoute, TwBackend, VtreeStrategy};

    fn hierarchical_db() -> (Ucq, Database) {
        let (q, schema) = families::two_atom_hierarchical();
        let r = schema.by_name("R").unwrap();
        let s = schema.by_name("S").unwrap();
        let mut db = Database::new(schema);
        for l in 1..=3u64 {
            db.insert(r, vec![l], 0.4 + 0.1 * l as f64);
            for m in 1..=2u64 {
                db.insert(s, vec![l, m], 0.3 + 0.1 * m as f64);
            }
        }
        (q, db)
    }

    #[test]
    fn matches_brute_force() {
        let (q, db) = hierarchical_db();
        let brute = prob::brute_force_probability(&q, &db);
        let answer = QueryCompiler::new().probability(&q, &db).unwrap();
        assert!((answer.probability - brute).abs() < 1e-10);
        let report = answer.report.unwrap();
        assert_eq!(report.route, ResolvedRoute::Apply);
        assert!(report.treewidth.is_some());
        assert_eq!(answer.lineage_vars, db.num_tuples());
    }

    #[test]
    fn empty_database_short_circuits() {
        let (q, schema) = families::two_atom_hierarchical();
        let db = Database::new(schema);
        let answer = QueryCompiler::new().probability(&q, &db).unwrap();
        assert_eq!(answer.probability, 0.0);
        assert!(answer.report.is_none());
    }

    #[test]
    fn rejects_schema_violations() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", 1);
        let db = Database::new(schema);
        let bad = Ucq::single(Cq::new(
            vec![Atom {
                rel: r,
                args: vec![Term::Var(0), Term::Var(1)],
            }],
            vec![],
        ));
        assert!(matches!(
            QueryCompiler::new().probability(&bad, &db),
            Err(QueryCompileError::Query(_))
        ));
    }

    #[test]
    fn knowledge_base_serves_the_lineage_without_recompiling() {
        let (q, db) = hierarchical_db();
        let brute = prob::brute_force_probability(&q, &db);
        let mut base = QueryCompiler::new().knowledge_base(&q, &db).unwrap();
        // ln W(lineage) = ln P(Q).
        assert!((base.weighted_count() - brute).abs() < 1e-10);

        // Condition on the first tuple being present: compare against the
        // brute-force P(Q ∧ t) over all worlds containing t.
        let t = base.vars()[0];
        let brute_with_t = {
            use crate::schema::TupleId;
            let n = db.num_tuples();
            let mut total = 0.0;
            for mask in 0..(1u64 << n) {
                if mask >> t.index() & 1 == 0 {
                    continue; // worlds without t
                }
                let present = |tid: TupleId| mask >> tid.0 & 1 == 1;
                if ucq_holds(&q, &db, &present) {
                    let mut p = 1.0;
                    for i in 0..n {
                        let pt = db.prob(TupleId(i as u32));
                        p *= if mask >> i & 1 == 1 { pt } else { 1.0 - pt };
                    }
                    total += p;
                }
            }
            total
        };
        base.condition(&[(t, true)]).unwrap();
        let conditional = base.probability_of_evidence().unwrap();
        // P(e) here is P(t) itself; P(Q | t) = W(Q ∧ t) / W(t)… the KB's
        // weighted count is W(Q ∧ t), so compare against P(Q ∧ t).
        assert!(
            (base.weighted_count() - brute_with_t).abs() < 1e-10,
            "{} vs {brute_with_t}",
            base.weighted_count()
        );
        assert!((conditional - brute_with_t / brute).abs() < 1e-10);

        // MPE: the most probable world where the query holds.
        let mpe = base.mpe().unwrap();
        assert_eq!(mpe.assignment.get(t), Some(true));

        base.retract();
        assert!((base.weighted_count() - brute).abs() < 1e-10);
    }

    #[test]
    fn knowledge_base_rejects_constant_lineages() {
        let (q, schema) = families::two_atom_hierarchical();
        let db = Database::new(schema);
        assert!(matches!(
            QueryCompiler::new().knowledge_base(&q, &db),
            Err(QueryCompileError::ConstantLineage { holds: false })
        ));
    }

    #[test]
    fn custom_strategies_reach_the_lineage() {
        let (q, db) = hierarchical_db();
        let brute = prob::brute_force_probability(&q, &db);
        let session = QueryCompiler::with_compiler(
            Compiler::builder()
                .tw_backend(TwBackend::MinFill)
                .vtree_strategy(VtreeStrategy::Balanced)
                .route(Route::Semantic)
                .build(),
        );
        let answer = session.probability(&q, &db).unwrap();
        assert!((answer.probability - brute).abs() < 1e-10);
        let report = answer.report.unwrap();
        assert_eq!(report.route, ResolvedRoute::Semantic);
        assert!(report.treewidth.is_none(), "balanced vtree: no Lemma 1");
        assert!(report.fw.is_some());
    }
}
