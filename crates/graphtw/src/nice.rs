//! Nice tree decompositions.
//!
//! A *nice* tree decomposition is rooted, has an empty root bag, and each
//! node is one of: **Leaf** (empty bag), **Introduce(v)** (bag = child bag
//! ∪ {v}), **Forget(v)** (bag = child bag ∖ {v}), or **Join** (two children
//! with the same bag). Because the occurrences of a vertex form a connected
//! subtree and the root bag is empty, *every vertex is forgotten exactly
//! once* — the property the paper's Lemma 1 uses to hang variable leaves off
//! the decomposition when extracting a vtree.

use crate::decomposition::TreeDecomposition;
use std::fmt;

/// Node kinds of a nice tree decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NiceNodeKind {
    /// A leaf with an empty bag.
    Leaf,
    /// Introduces vertex `v` above its single child.
    Introduce(u32),
    /// Forgets vertex `v` above its single child.
    Forget(u32),
    /// Joins two children with identical bags.
    Join,
}

#[derive(Clone, Debug)]
struct NiceNode {
    kind: NiceNodeKind,
    bag: Vec<u32>,
    children: Vec<usize>,
}

/// A nice tree decomposition with an empty root bag.
#[derive(Clone, Debug)]
pub struct NiceTd {
    nodes: Vec<NiceNode>,
    root: usize,
    /// `forget_of[v]` = the unique Forget node of vertex `v`.
    forget_of: Vec<usize>,
}

/// Errors from nice-TD validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NiceTdError {
    /// A node's bag is inconsistent with its kind/children.
    Inconsistent(usize),
    /// A vertex is forgotten zero or more than one time.
    BadForgetCount(u32, usize),
    /// Root bag is not empty.
    NonEmptyRoot,
}

impl fmt::Display for NiceTdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NiceTdError::Inconsistent(i) => write!(f, "node {i} inconsistent with its kind"),
            NiceTdError::BadForgetCount(v, c) => {
                write!(f, "vertex {v} forgotten {c} times (expected 1)")
            }
            NiceTdError::NonEmptyRoot => write!(f, "root bag not empty"),
        }
    }
}

impl std::error::Error for NiceTdError {}

impl NiceTd {
    /// Transform an arbitrary rooted tree decomposition into a nice one.
    ///
    /// The result decomposes the same graph with the same width (bags are a
    /// subset of the original bags' subsets).
    pub fn from_td(td: &TreeDecomposition, num_vertices: usize) -> Self {
        let children = td.children();
        let mut b = Builder {
            nodes: Vec::new(),
            children: &children,
            td,
        };
        let top = b.process_all();
        // Forget everything remaining in the root bag.
        let mut cur = top;
        let root_bag: Vec<u32> = b.nodes[top].bag.clone();
        for v in root_bag {
            cur = b.push_forget(cur, v);
        }
        let nodes = b.nodes;
        let mut forget_of = vec![usize::MAX; num_vertices];
        for (i, n) in nodes.iter().enumerate() {
            if let NiceNodeKind::Forget(v) = n.kind {
                forget_of[v as usize] = i;
            }
        }
        NiceTd {
            nodes,
            root: cur,
            forget_of,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Kind of node `i`.
    pub fn kind(&self, i: usize) -> &NiceNodeKind {
        &self.nodes[i].kind
    }

    /// Bag of node `i` (sorted).
    pub fn bag(&self, i: usize) -> &[u32] {
        &self.nodes[i].bag
    }

    /// Children of node `i` (0, 1 or 2 of them).
    pub fn children(&self, i: usize) -> &[usize] {
        &self.nodes[i].children
    }

    /// The unique Forget node of vertex `v`.
    pub fn forget_node_of(&self, v: u32) -> Option<usize> {
        let i = self.forget_of.get(v as usize).copied()?;
        (i != usize::MAX).then_some(i)
    }

    /// Width = max bag size − 1.
    pub fn width(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.bag.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Validate the nice-TD structural invariants; `num_vertices` is the
    /// vertex count of the decomposed graph.
    pub fn validate(&self, num_vertices: usize) -> Result<(), NiceTdError> {
        if !self.nodes[self.root].bag.is_empty() {
            return Err(NiceTdError::NonEmptyRoot);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let ok = match (&n.kind, n.children.as_slice()) {
                (NiceNodeKind::Leaf, []) => n.bag.is_empty(),
                (NiceNodeKind::Introduce(v), [c]) => {
                    let mut expect = self.nodes[*c].bag.clone();
                    match expect.binary_search(v) {
                        Ok(_) => false,
                        Err(pos) => {
                            expect.insert(pos, *v);
                            expect == n.bag
                        }
                    }
                }
                (NiceNodeKind::Forget(v), [c]) => {
                    let mut expect = self.nodes[*c].bag.clone();
                    match expect.binary_search(v) {
                        Ok(pos) => {
                            expect.remove(pos);
                            expect == n.bag
                        }
                        Err(_) => false,
                    }
                }
                (NiceNodeKind::Join, [a, b]) => {
                    self.nodes[*a].bag == n.bag && self.nodes[*b].bag == n.bag
                }
                _ => false,
            };
            if !ok {
                return Err(NiceTdError::Inconsistent(i));
            }
        }
        let mut counts = vec![0usize; num_vertices];
        for n in &self.nodes {
            if let NiceNodeKind::Forget(v) = n.kind {
                counts[v as usize] += 1;
            }
        }
        // A vertex in no bag is also never forgotten; only vertices that
        // occur anywhere must be forgotten exactly once.
        let mut occurs = vec![false; num_vertices];
        for n in &self.nodes {
            for &v in &n.bag {
                occurs[v as usize] = true;
            }
        }
        for v in 0..num_vertices {
            let expect = usize::from(occurs[v]);
            if counts[v] != expect {
                return Err(NiceTdError::BadForgetCount(v as u32, counts[v]));
            }
        }
        Ok(())
    }
}

struct Builder<'a> {
    nodes: Vec<NiceNode>,
    children: &'a [Vec<usize>],
    td: &'a TreeDecomposition,
}

impl Builder<'_> {
    fn push(&mut self, kind: NiceNodeKind, bag: Vec<u32>, children: Vec<usize>) -> usize {
        self.nodes.push(NiceNode {
            kind,
            bag,
            children,
        });
        self.nodes.len() - 1
    }

    fn push_forget(&mut self, child: usize, v: u32) -> usize {
        let mut bag = self.nodes[child].bag.clone();
        let pos = bag.binary_search(&v).expect("forgotten vertex in bag");
        bag.remove(pos);
        self.push(NiceNodeKind::Forget(v), bag, vec![child])
    }

    fn push_introduce(&mut self, child: usize, v: u32) -> usize {
        let mut bag = self.nodes[child].bag.clone();
        let pos = bag
            .binary_search(&v)
            .expect_err("introduced vertex not in bag");
        bag.insert(pos, v);
        self.push(NiceNodeKind::Introduce(v), bag, vec![child])
    }

    /// Build the nice subtree of every TD node bottom-up, returning the
    /// root's top index. Tree decompositions of chain-like graphs are as
    /// deep as the graph, so the traversal is an explicit post-order (a
    /// preorder DFS, reversed), never recursion.
    fn process_all(&mut self) -> usize {
        let root = self.td.root();
        let mut order = Vec::with_capacity(self.td.num_nodes());
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            order.push(t);
            stack.extend_from_slice(&self.children[t]);
        }
        let mut top: Vec<usize> = vec![usize::MAX; self.td.num_nodes()];
        for &t in order.iter().rev() {
            top[t] = self.process_node(t, &top);
        }
        top[root]
    }

    /// Produce a nice subtree whose top node has exactly the bag of TD node
    /// `t`; `top[c]` holds the already-built subtree of every child `c`.
    fn process_node(&mut self, t: usize, top: &[usize]) -> usize {
        let target: Vec<u32> = self.td.bag(t).to_vec();
        let kids = &self.children[t];
        if kids.is_empty() {
            // Leaf, then introduce the whole bag.
            let mut cur = self.push(NiceNodeKind::Leaf, Vec::new(), Vec::new());
            for &v in &target {
                cur = self.push_introduce(cur, v);
            }
            return cur;
        }
        // For each child: morph its (already built) bag into `target`.
        let mut tops = Vec::with_capacity(kids.len());
        for &c in kids {
            let mut cur = top[c];
            let child_bag = self.nodes[cur].bag.clone();
            for &v in &child_bag {
                if target.binary_search(&v).is_err() {
                    cur = self.push_forget(cur, v);
                }
            }
            for &v in &target {
                if child_bag.binary_search(&v).is_err() {
                    cur = self.push_introduce(cur, v);
                }
            }
            tops.push(cur);
        }
        // Binarize with Join nodes (all tops now share `target` as bag).
        let mut acc = tops[0];
        for &t2 in &tops[1..] {
            acc = self.push(NiceNodeKind::Join, target.clone(), vec![acc, t2]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::min_fill_order;
    use crate::graph::Graph;

    fn nice_of(g: &Graph) -> NiceTd {
        let order = min_fill_order(g);
        let td = TreeDecomposition::from_elimination_order(g, &order);
        td.validate(g).unwrap();
        NiceTd::from_td(&td, g.num_vertices())
    }

    #[test]
    fn nice_td_valid_for_standard_graphs() {
        for g in [
            Graph::path(6),
            Graph::cycle(7),
            Graph::grid(3, 3),
            Graph::complete(4),
            Graph::band(9, 2),
            Graph::complete_binary_tree(4),
        ] {
            let nt = nice_of(&g);
            nt.validate(g.num_vertices()).unwrap();
        }
    }

    #[test]
    fn nice_td_preserves_width() {
        let g = Graph::grid(3, 3);
        let order = min_fill_order(&g);
        let td = TreeDecomposition::from_elimination_order(&g, &order);
        let nt = NiceTd::from_td(&td, g.num_vertices());
        assert_eq!(nt.width(), td.width());
    }

    #[test]
    fn every_vertex_forgotten_once() {
        let g = Graph::cycle(8);
        let nt = nice_of(&g);
        for v in 0..8u32 {
            let f = nt.forget_node_of(v).expect("forgotten");
            assert!(matches!(nt.kind(f), NiceNodeKind::Forget(u) if *u == v));
        }
    }

    #[test]
    fn root_is_empty_and_reachable() {
        let g = Graph::path(5);
        let nt = nice_of(&g);
        assert!(nt.bag(nt.root()).is_empty());
        // All nodes reachable from root.
        let mut seen = vec![false; nt.num_nodes()];
        let mut stack = vec![nt.root()];
        while let Some(i) = stack.pop() {
            seen[i] = true;
            stack.extend_from_slice(nt.children(i));
        }
        assert!(seen.iter().all(|&s| s), "dangling nice-TD nodes");
    }

    #[test]
    fn disconnected_graph_handled() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let nt = nice_of(&g);
        nt.validate(6).unwrap();
    }
}
