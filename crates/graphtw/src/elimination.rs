//! Elimination orders: widths, heuristics, and lower bounds.
//!
//! Treewidth equals the minimum, over all vertex elimination orders, of the
//! maximum number of higher-ordered neighbors encountered when vertices are
//! eliminated in order (each elimination turning the neighborhood into a
//! clique). The heuristics below are the standard min-degree and min-fill
//! rules; the MMD bound is the classical degeneracy lower bound.

use crate::graph::Graph;
use vtree::fxhash::FxHashSet;

/// A permutation of the vertices `0..n`, eliminated left to right.
pub type EliminationOrder = Vec<u32>;

/// Dynamic adjacency structure for elimination simulations.
struct ElimState {
    adj: Vec<FxHashSet<u32>>,
    alive: Vec<bool>,
}

impl ElimState {
    fn new(g: &Graph) -> Self {
        let adj = (0..g.num_vertices() as u32)
            .map(|u| g.neighbors(u).iter().copied().collect())
            .collect();
        ElimState {
            adj,
            alive: vec![true; g.num_vertices()],
        }
    }

    /// Eliminate `v`: connect its surviving neighbors into a clique, remove it.
    /// Returns the degree of `v` at elimination time.
    fn eliminate(&mut self, v: u32) -> usize {
        let ns: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        let deg = ns.len();
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if self.adj[a as usize].insert(b) {
                    self.adj[b as usize].insert(a);
                }
            }
        }
        for &a in &ns {
            self.adj[a as usize].remove(&v);
        }
        self.adj[v as usize].clear();
        self.alive[v as usize] = false;
        deg
    }

    fn fill_count(&self, v: u32) -> usize {
        let ns: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        let mut fill = 0;
        for (i, &a) in ns.iter().enumerate() {
            for &b in &ns[i + 1..] {
                if !self.adj[a as usize].contains(&b) {
                    fill += 1;
                }
            }
        }
        fill
    }
}

/// The width of an elimination order: the maximum elimination-time degree.
pub fn width_of_order(g: &Graph, order: &[u32]) -> usize {
    assert_eq!(
        order.len(),
        g.num_vertices(),
        "order must cover all vertices"
    );
    let mut st = ElimState::new(g);
    let mut width = 0;
    for &v in order {
        width = width.max(st.eliminate(v));
    }
    width
}

/// Min-degree heuristic: always eliminate a vertex of minimum current degree.
pub fn min_degree_order(g: &Graph) -> EliminationOrder {
    greedy_order(g, |st, v| st.adj[v as usize].len())
}

/// Min-fill heuristic: always eliminate a vertex adding the fewest fill edges.
pub fn min_fill_order(g: &Graph) -> EliminationOrder {
    greedy_order(g, |st, v| st.fill_count(v))
}

/// Greedy elimination by minimum `(score, vertex)`, via a lazy binary heap:
/// stale entries (score changed since push) are skipped on pop, and after
/// each elimination only the vertices whose score can have changed — `N(v)`
/// and `N(N(v))`, since fill edges run between members of `N(v)` and a
/// score depends only on a vertex's own neighborhood — are re-scored and
/// re-pushed. The former full rescan per round was Θ(n²) even on paths,
/// which made 100k-variable chain decompositions infeasible; this is
/// near-linear on sparse graphs and picks the exact same orders (every
/// alive vertex always has an up-to-date heap entry, so the first valid pop
/// is the global minimum under the same tie-breaking).
fn greedy_order(g: &Graph, score: impl Fn(&ElimState, u32) -> usize) -> EliminationOrder {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut st = ElimState::new(g);
    let mut current: Vec<usize> = (0..n as u32).map(|v| score(&st, v)).collect();
    let mut heap: BinaryHeap<Reverse<(usize, u32)>> = (0..n as u32)
        .map(|v| Reverse((current[v as usize], v)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let Reverse((s, v)) = heap.pop().expect("an alive vertex remains");
        if !st.alive[v as usize] || s != current[v as usize] {
            continue; // dead or stale entry
        }
        let mut affected: Vec<u32> = Vec::new();
        for &a in &st.adj[v as usize] {
            affected.push(a);
            affected.extend(st.adj[a as usize].iter().copied());
        }
        st.eliminate(v);
        order.push(v);
        affected.sort_unstable();
        affected.dedup();
        for &u in &affected {
            if u == v || !st.alive[u as usize] {
                continue;
            }
            let s = score(&st, u);
            if s != current[u as usize] {
                current[u as usize] = s;
                heap.push(Reverse((s, u)));
            }
        }
    }
    order
}

/// Maximum-minimum-degree (degeneracy) lower bound on treewidth:
/// `tw(G) >= max over subgraphs H of (min degree of H)`, computed by
/// repeatedly deleting a minimum-degree vertex.
pub fn mmd_lower_bound(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut adj: Vec<FxHashSet<u32>> = (0..n as u32)
        .map(|u| g.neighbors(u).iter().copied().collect())
        .collect();
    let mut alive = vec![true; n];
    let mut bound = 0;
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| alive[v as usize])
            .min_by_key(|&v| adj[v as usize].len())
            .expect("some vertex alive");
        bound = bound.max(adj[v as usize].len());
        let ns: Vec<u32> = adj[v as usize].iter().copied().collect();
        for a in ns {
            adj[a as usize].remove(&v);
        }
        adj[v as usize].clear();
        alive[v as usize] = false;
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_has_width_one() {
        let g = Graph::path(8);
        let o = min_degree_order(&g);
        assert_eq!(width_of_order(&g, &o), 1);
        let o = min_fill_order(&g);
        assert_eq!(width_of_order(&g, &o), 1);
    }

    #[test]
    fn cycle_has_width_two() {
        let g = Graph::cycle(9);
        assert_eq!(width_of_order(&g, &min_fill_order(&g)), 2);
        assert_eq!(mmd_lower_bound(&g), 2);
    }

    #[test]
    fn complete_graph_width() {
        let g = Graph::complete(6);
        assert_eq!(width_of_order(&g, &min_degree_order(&g)), 5);
        assert_eq!(mmd_lower_bound(&g), 5);
    }

    #[test]
    fn grid_heuristics_reasonable() {
        let g = Graph::grid(4, 4);
        let w = width_of_order(&g, &min_fill_order(&g));
        assert!(w >= 4, "4x4 grid treewidth is 4, got {w}");
        assert!(w <= 6, "min-fill should be close to optimal, got {w}");
        assert!(mmd_lower_bound(&g) >= 2);
    }

    #[test]
    fn bad_order_still_measured() {
        // Eliminating the center of a star first yields width n-1.
        let mut g = Graph::new(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        assert_eq!(width_of_order(&g, &[0, 1, 2, 3, 4]), 4);
        assert_eq!(width_of_order(&g, &[1, 2, 3, 4, 0]), 1);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn partial_order_rejected() {
        let g = Graph::path(3);
        width_of_order(&g, &[0, 1]);
    }

    #[test]
    fn band_graph_width_equals_band() {
        let g = Graph::band(12, 3);
        let o: Vec<u32> = (0..12).collect();
        assert_eq!(width_of_order(&g, &o), 3);
    }
}
