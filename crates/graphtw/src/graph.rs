//! A compact undirected simple graph.

use std::fmt;

/// Undirected simple graph with vertices `0..n`, stored as sorted adjacency
/// lists. Parallel edges and self-loops are silently ignored on insertion.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Graph {
    /// Graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Add an undirected edge; ignores self-loops and duplicates.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let (ui, vi) = (u as usize, v as usize);
        assert!(
            ui < self.adj.len() && vi < self.adj.len(),
            "vertex out of range"
        );
        match self.adj[ui].binary_search(&v) {
            Ok(_) => {}
            Err(pos) => {
                self.adj[ui].insert(pos, v);
                let pos2 = self.adj[vi].binary_search(&u).unwrap_err();
                self.adj[vi].insert(pos2, u);
                self.num_edges += 1;
            }
        }
    }

    /// Append a fresh vertex; returns its index.
    pub fn add_vertex(&mut self) -> u32 {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as u32
    }

    /// Sorted neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Is `{u, v}` an edge?
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// All edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                if (u as u32) < v {
                    out.push((u as u32, v));
                }
            }
        }
        out
    }

    /// Adjacency as bitmasks — only valid for `n <= 64`.
    pub fn adjacency_masks(&self) -> Option<Vec<u64>> {
        if self.num_vertices() > 64 {
            return None;
        }
        let mut masks = vec![0u64; self.num_vertices()];
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                masks[u] |= 1u64 << v;
            }
        }
        Some(masks)
    }

    /// Connected components as vertex lists.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![s as u32];
            seen[s] = true;
            while let Some(u) = stack.pop() {
                comp.push(u);
                for &v in self.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Is the graph connected (vacuously true for n <= 1)?
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    // ---- generators -------------------------------------------------------

    /// Path graph `0 - 1 - … - (n-1)`.
    pub fn path(n: usize) -> Self {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge((i - 1) as u32, i as u32);
        }
        g
    }

    /// Cycle graph.
    pub fn cycle(n: usize) -> Self {
        let mut g = Graph::path(n);
        if n >= 3 {
            g.add_edge(0, (n - 1) as u32);
        }
        g
    }

    /// Complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// `r × c` grid graph (treewidth `min(r, c)`).
    pub fn grid(r: usize, c: usize) -> Self {
        let mut g = Graph::new(r * c);
        let id = |i: usize, j: usize| (i * c + j) as u32;
        for i in 0..r {
            for j in 0..c {
                if i + 1 < r {
                    g.add_edge(id(i, j), id(i + 1, j));
                }
                if j + 1 < c {
                    g.add_edge(id(i, j), id(i, j + 1));
                }
            }
        }
        g
    }

    /// Complete binary tree with `2^depth - 1` vertices (treewidth 1).
    pub fn complete_binary_tree(depth: usize) -> Self {
        let n = (1usize << depth) - 1;
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i as u32, ((i - 1) / 2) as u32);
        }
        g
    }

    /// Erdős–Rényi `G(n, p)`.
    pub fn random_gnp<R: rand::Rng>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// A "banded" graph: each vertex `i` is adjacent to `i+1 .. i+band`.
    /// Pathwidth (and treewidth) exactly `band` for `n > band`.
    pub fn band(n: usize, band: usize) -> Self {
        let mut g = Graph::new(n);
        for i in 0..n {
            for d in 1..=band {
                if i + d < n {
                    g.add_edge(i as u32, (i + d) as u32);
                }
            }
        }
        g
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={})",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_sorts() {
        let mut g = Graph::new(4);
        g.add_edge(2, 0);
        g.add_edge(0, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn generators_have_expected_sizes() {
        assert_eq!(Graph::path(5).num_edges(), 4);
        assert_eq!(Graph::cycle(5).num_edges(), 5);
        assert_eq!(Graph::complete(5).num_edges(), 10);
        assert_eq!(Graph::grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(Graph::complete_binary_tree(3).num_vertices(), 7);
        assert_eq!(Graph::complete_binary_tree(3).num_edges(), 6);
        assert_eq!(Graph::band(6, 2).num_edges(), 5 + 4);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert!(!g.is_connected());
        assert!(Graph::cycle(4).is_connected());
    }

    #[test]
    fn masks_match_adjacency() {
        let g = Graph::cycle(4);
        let m = g.adjacency_masks().unwrap();
        assert_eq!(m[0], 0b1010);
        assert_eq!(m[1], 0b0101);
    }

    #[test]
    fn two_vertex_cycle_is_single_edge_free() {
        // cycle(2) degenerates to one edge (self-loop-free, dedup'd)
        let g = Graph::cycle(2);
        assert_eq!(g.num_edges(), 1);
    }
}
