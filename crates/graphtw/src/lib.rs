//! Graphs, treewidth, pathwidth, and (nice) tree decompositions.
//!
//! This crate is the graph substrate behind the paper's Lemma 1: a circuit of
//! treewidth `k` is turned into a vtree by walking a **nice tree
//! decomposition** of the circuit's primal graph. It provides:
//!
//! * a compact undirected [`Graph`] with the generators used by tests and
//!   benchmarks;
//! * elimination-order machinery: width of an order, min-degree and min-fill
//!   heuristics ([`elimination`]);
//! * exact treewidth and pathwidth via subset dynamic programming for small
//!   graphs ([`exact`]), plus the MMD (degeneracy) lower bound;
//! * [`TreeDecomposition`] with full validation, built from elimination
//!   orders ([`decomposition`]);
//! * [`NiceTd`]: nice tree decompositions with explicit Leaf / Introduce /
//!   Forget / Join nodes, rooted at an empty bag so that every vertex is
//!   forgotten exactly once — the property Lemma 1 consumes ([`nice`]).

pub mod decomposition;
pub mod elimination;
pub mod exact;
pub mod graph;
pub mod nice;

pub use decomposition::{TdError, TreeDecomposition};
pub use elimination::{
    min_degree_order, min_fill_order, mmd_lower_bound, width_of_order, EliminationOrder,
};
pub use exact::{exact_pathwidth, exact_treewidth, ExactError};
pub use graph::Graph;
pub use nice::{NiceNodeKind, NiceTd};

/// Treewidth of a graph: exact when feasible, otherwise the best heuristic.
///
/// Returns `(width, order)` where `order` is an elimination order witnessing
/// `width`. Exact search (subset DP) is used when `g.num_vertices() <=
/// exact_limit`; otherwise the better of min-fill and min-degree.
pub fn treewidth(g: &Graph, exact_limit: usize) -> (usize, EliminationOrder) {
    if g.num_vertices() == 0 {
        return (0, Vec::new());
    }
    if g.num_vertices() <= exact_limit {
        if let Ok((w, order)) = exact_treewidth(g) {
            return (w, order);
        }
    }
    let o1 = min_fill_order(g);
    let w1 = width_of_order(g, &o1);
    let o2 = min_degree_order(g);
    let w2 = width_of_order(g, &o2);
    if w1 <= w2 {
        (w1, o1)
    } else {
        (w2, o2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treewidth_dispatch_small_exact() {
        let g = Graph::cycle(6);
        let (w, order) = treewidth(&g, 10);
        assert_eq!(w, 2);
        assert_eq!(width_of_order(&g, &order), 2);
    }

    #[test]
    fn treewidth_dispatch_heuristic() {
        let g = Graph::grid(3, 3);
        let (w, order) = treewidth(&g, 4); // force heuristic path
        assert!(w >= 3, "grid 3x3 has treewidth 3, heuristic found {w}");
        assert_eq!(width_of_order(&g, &order), w);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let (w, order) = treewidth(&g, 10);
        assert_eq!(w, 0);
        assert!(order.is_empty());
    }
}
