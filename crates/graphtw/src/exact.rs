//! Exact treewidth and pathwidth via subset dynamic programming.
//!
//! Treewidth: the Bodlaender–Fomin–Koster–Kratsch–Thilikos subset recurrence
//! over elimination prefixes. For `S ⊆ V` already eliminated and `v ∉ S`,
//! let `Q(S, v)` be the number of vertices outside `S ∪ {v}` reachable from
//! `v` through `S`; then
//!
//! ```text
//! tw(G) = dp[V],   dp[S] = min over v ∈ S of max(dp[S \ v], Q(S \ v, v))
//! ```
//!
//! Pathwidth: the vertex-separation subset DP: `pw(G) = vs(G)` where
//! `vs` minimizes, over orderings, the maximum boundary `|∂(prefix)|`.
//!
//! Both run in `O(2^n · n · n/64)` time and `O(2^n)` memory using bitmask
//! reachability; the crate caps `n` at [`MAX_EXACT_VERTICES`].

use crate::graph::Graph;
use std::fmt;

/// Largest vertex count accepted by the exact routines (2^n table).
pub const MAX_EXACT_VERTICES: usize = 24;

/// Errors from the exact algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactError {
    /// The graph exceeds [`MAX_EXACT_VERTICES`].
    TooLarge { vertices: usize },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::TooLarge { vertices } => write!(
                f,
                "graph has {vertices} vertices; exact subset DP capped at {MAX_EXACT_VERTICES}"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

/// `Q(S, v)`: vertices outside `S ∪ {v}` reachable from `v` via paths whose
/// internal vertices all lie in `S`.
#[inline]
fn q_reach(adj: &[u64], s: u64, v: usize) -> u32 {
    let mut seen = 1u64 << v;
    let mut result = 0u64;
    let mut frontier = adj[v];
    while frontier & !seen != 0 {
        let new = frontier & !seen;
        seen |= new;
        result |= new & !s;
        // Expand only through vertices of S.
        let mut expand = new & s;
        frontier = 0;
        while expand != 0 {
            let u = expand.trailing_zeros() as usize;
            expand &= expand - 1;
            frontier |= adj[u];
        }
    }
    (result & !(1u64 << v)).count_ones()
}

/// Exact treewidth with a witnessing elimination order.
pub fn exact_treewidth(g: &Graph) -> Result<(usize, Vec<u32>), ExactError> {
    let n = g.num_vertices();
    if n > MAX_EXACT_VERTICES {
        return Err(ExactError::TooLarge { vertices: n });
    }
    if n == 0 {
        return Ok((0, Vec::new()));
    }
    let adj = g.adjacency_masks().expect("n <= 64");
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    // dp[S] = minimal width of an elimination of exactly the vertices in S.
    let mut dp = vec![u8::MAX; 1usize << n];
    // choice[S] = last vertex eliminated in an optimal elimination of S.
    let mut choice = vec![u8::MAX; 1usize << n];
    dp[0] = 0;
    for s in 1..=(full as usize) {
        let mut best = u8::MAX;
        let mut best_v = u8::MAX;
        let mut rest = s as u64;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let prev = s & !(1usize << v);
            let sub = dp[prev];
            if sub >= best {
                continue; // cannot improve
            }
            let q = q_reach(&adj, prev as u64, v) as u8;
            let cand = sub.max(q);
            if cand < best {
                best = cand;
                best_v = v as u8;
            }
        }
        dp[s] = best;
        choice[s] = best_v;
    }
    // Reconstruct an optimal order by unwinding choices.
    let mut order = vec![0u32; n];
    let mut s = full as usize;
    for slot in (0..n).rev() {
        let v = choice[s] as u32;
        order[slot] = v;
        s &= !(1usize << v);
    }
    Ok((dp[full as usize] as usize, order))
}

/// Exact pathwidth via the vertex-separation subset DP, with a witnessing
/// vertex order (layout).
pub fn exact_pathwidth(g: &Graph) -> Result<(usize, Vec<u32>), ExactError> {
    let n = g.num_vertices();
    if n > MAX_EXACT_VERTICES {
        return Err(ExactError::TooLarge { vertices: n });
    }
    if n == 0 {
        return Ok((0, Vec::new()));
    }
    let adj = g.adjacency_masks().expect("n <= 64");
    let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    // boundary(S) = |{u in S : some neighbor outside S}|
    let boundary = |s: u64| -> u8 {
        let mut count = 0u8;
        let mut rest = s;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if adj[u] & !s != 0 {
                count += 1;
            }
        }
        count
    };
    let mut dp = vec![u8::MAX; 1usize << n];
    let mut choice = vec![u8::MAX; 1usize << n];
    dp[0] = 0;
    // Process subsets in increasing popcount via plain increasing order: each
    // S is derived from S \ {v} < S, so increasing integer order suffices.
    for s in 1..=(full as usize) {
        let b = boundary(s as u64);
        let mut best = u8::MAX;
        let mut best_v = u8::MAX;
        let mut rest = s as u64;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let prev = dp[s & !(1usize << v)];
            if prev < best {
                best = prev;
                best_v = v as u8;
            }
        }
        dp[s] = best.max(b);
        choice[s] = best_v;
    }
    let mut order = vec![0u32; n];
    let mut s = full as usize;
    for slot in (0..n).rev() {
        let v = choice[s] as u32;
        order[slot] = v;
        s &= !(1usize << v);
    }
    Ok((dp[full as usize] as usize, order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::width_of_order;

    #[test]
    fn exact_treewidth_known_graphs() {
        assert_eq!(exact_treewidth(&Graph::path(7)).unwrap().0, 1);
        assert_eq!(exact_treewidth(&Graph::cycle(7)).unwrap().0, 2);
        assert_eq!(exact_treewidth(&Graph::complete(6)).unwrap().0, 5);
        assert_eq!(exact_treewidth(&Graph::grid(3, 3)).unwrap().0, 3);
        assert_eq!(exact_treewidth(&Graph::grid(4, 4)).unwrap().0, 4);
        assert_eq!(
            exact_treewidth(&Graph::complete_binary_tree(3)).unwrap().0,
            1
        );
    }

    #[test]
    fn witness_order_achieves_width() {
        for g in [Graph::grid(3, 4), Graph::cycle(8), Graph::band(10, 3)] {
            let (w, order) = exact_treewidth(&g).unwrap();
            assert_eq!(width_of_order(&g, &order), w);
        }
    }

    #[test]
    fn exact_pathwidth_known_graphs() {
        assert_eq!(exact_pathwidth(&Graph::path(7)).unwrap().0, 1);
        assert_eq!(exact_pathwidth(&Graph::cycle(7)).unwrap().0, 2);
        assert_eq!(exact_pathwidth(&Graph::complete(5)).unwrap().0, 4);
        // Complete binary tree of depth d has pathwidth ceil(d/2) for d >= 2
        // (Scheffler): depth 4 (15 vertices) -> pathwidth 2.
        assert_eq!(
            exact_pathwidth(&Graph::complete_binary_tree(4)).unwrap().0,
            2
        );
    }

    #[test]
    fn pathwidth_at_least_treewidth() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = Graph::random_gnp(9, 0.3, &mut rng);
            let tw = exact_treewidth(&g).unwrap().0;
            let pw = exact_pathwidth(&g).unwrap().0;
            assert!(pw >= tw, "pw {pw} < tw {tw}");
        }
    }

    #[test]
    fn too_large_rejected() {
        let g = Graph::new(MAX_EXACT_VERTICES + 1);
        assert!(matches!(
            exact_treewidth(&g),
            Err(ExactError::TooLarge { .. })
        ));
        assert!(matches!(
            exact_pathwidth(&g),
            Err(ExactError::TooLarge { .. })
        ));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(exact_treewidth(&Graph::new(0)).unwrap().0, 0);
        assert_eq!(exact_treewidth(&Graph::new(1)).unwrap().0, 0);
        assert_eq!(exact_pathwidth(&Graph::new(1)).unwrap().0, 0);
    }
}
