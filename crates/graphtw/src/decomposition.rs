//! Tree decompositions, built from elimination orders and fully validated.

use crate::elimination::EliminationOrder;
use crate::graph::Graph;
use std::fmt;
use vtree::fxhash::FxHashSet;

/// A rooted tree decomposition: `bags[i]` is the vertex set of node `i`,
/// `parent[i]` its parent (`None` for the root).
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    bags: Vec<Vec<u32>>,
    parent: Vec<Option<usize>>,
    root: usize,
}

/// Violations of the tree-decomposition invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TdError {
    /// Some graph vertex appears in no bag.
    VertexNotCovered(u32),
    /// Some graph edge appears in no bag.
    EdgeNotCovered(u32, u32),
    /// The bags containing a vertex do not form a connected subtree.
    NotConnected(u32),
    /// Parent pointers do not form a tree rooted at `root`.
    MalformedTree,
}

impl fmt::Display for TdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdError::VertexNotCovered(v) => write!(f, "vertex {v} in no bag"),
            TdError::EdgeNotCovered(u, v) => write!(f, "edge ({u},{v}) in no bag"),
            TdError::NotConnected(v) => write!(f, "bags containing {v} are disconnected"),
            TdError::MalformedTree => write!(f, "parent pointers do not form a rooted tree"),
        }
    }
}

impl std::error::Error for TdError {}

impl TreeDecomposition {
    /// Construct directly (used by tests and by the nice-TD builder).
    pub fn from_parts(bags: Vec<Vec<u32>>, parent: Vec<Option<usize>>, root: usize) -> Self {
        let mut bags = bags;
        for b in &mut bags {
            b.sort_unstable();
            b.dedup();
        }
        TreeDecomposition { bags, parent, root }
    }

    /// The classical clique-tree construction from an elimination order:
    /// the bag of `v` is `{v} ∪ N(v)` at elimination time, attached to the
    /// bag of the earliest-eliminated higher neighbor.
    pub fn from_elimination_order(g: &Graph, order: &EliminationOrder) -> Self {
        let n = g.num_vertices();
        assert_eq!(order.len(), n, "order must cover all vertices");
        if n == 0 {
            return TreeDecomposition {
                bags: vec![Vec::new()],
                parent: vec![None],
                root: 0,
            };
        }
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        // Simulate elimination to collect bags.
        let mut adj: Vec<FxHashSet<u32>> = (0..n as u32)
            .map(|u| g.neighbors(u).iter().copied().collect())
            .collect();
        let mut bags: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &v in order {
            let ns: Vec<u32> = adj[v as usize].iter().copied().collect();
            let mut bag = ns.clone();
            bag.push(v);
            bag.sort_unstable();
            bags[pos[v as usize]] = bag;
            for (i, &a) in ns.iter().enumerate() {
                for &b in &ns[i + 1..] {
                    if adj[a as usize].insert(b) {
                        adj[b as usize].insert(a);
                    }
                }
            }
            for &a in &ns {
                adj[a as usize].remove(&v);
            }
            adj[v as usize].clear();
        }
        // Parent of bag i (vertex v): bag of the earliest-eliminated vertex in
        // bag_i \ {v}; roots (no later neighbor) chain to the last bag so the
        // result is a single tree even for disconnected graphs.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            let v = order[i];
            let next = bags[i]
                .iter()
                .copied()
                .filter(|&u| u != v)
                .map(|u| pos[u as usize])
                .min();
            parent[i] = match next {
                Some(j) => Some(j),
                None if i + 1 < n => Some(i + 1),
                None => None,
            };
        }
        TreeDecomposition {
            bags,
            parent,
            root: n - 1,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Bag of node `i` (sorted).
    pub fn bag(&self, i: usize) -> &[u32] {
        &self.bags[i]
    }

    /// Parent of node `i`.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Children lists (computed).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.bags.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(i);
            }
        }
        ch
    }

    /// Width = max bag size − 1.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Check all three tree-decomposition invariants against `g`.
    pub fn validate(&self, g: &Graph) -> Result<(), TdError> {
        let n = g.num_vertices();
        // Tree shape: exactly one root, parents acyclic.
        let mut seen_root = false;
        for (i, p) in self.parent.iter().enumerate() {
            match p {
                None => {
                    if i != self.root {
                        return Err(TdError::MalformedTree);
                    }
                    seen_root = true;
                }
                Some(p) => {
                    if *p >= self.bags.len() {
                        return Err(TdError::MalformedTree);
                    }
                }
            }
        }
        if !seen_root && !self.bags.is_empty() {
            return Err(TdError::MalformedTree);
        }
        // Acyclicity: walking parents from any node terminates at root.
        for mut i in 0..self.bags.len() {
            let mut steps = 0;
            while let Some(p) = self.parent[i] {
                i = p;
                steps += 1;
                if steps > self.bags.len() {
                    return Err(TdError::MalformedTree);
                }
            }
            if i != self.root {
                return Err(TdError::MalformedTree);
            }
        }
        // Vertex coverage.
        let mut covered = vec![false; n];
        for b in &self.bags {
            for &v in b {
                if (v as usize) < n {
                    covered[v as usize] = true;
                }
            }
        }
        if let Some(v) = covered.iter().position(|c| !c) {
            return Err(TdError::VertexNotCovered(v as u32));
        }
        // Edge coverage.
        for (u, v) in g.edges() {
            let ok = self
                .bags
                .iter()
                .any(|b| b.binary_search(&u).is_ok() && b.binary_search(&v).is_ok());
            if !ok {
                return Err(TdError::EdgeNotCovered(u, v));
            }
        }
        // Connectivity: for each vertex, the bags containing it must form a
        // connected subtree. Since each node has a single parent, it suffices
        // that the occurrences of v, minus the topmost one, each have a parent
        // that also contains v.
        for v in 0..n as u32 {
            let occs: Vec<usize> = (0..self.bags.len())
                .filter(|&i| self.bags[i].binary_search(&v).is_ok())
                .collect();
            if occs.is_empty() {
                continue;
            }
            let mut tops = 0;
            for &i in &occs {
                match self.parent[i] {
                    Some(p) if self.bags[p].binary_search(&v).is_ok() => {}
                    _ => tops += 1,
                }
            }
            if tops != 1 {
                return Err(TdError::NotConnected(v));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::{min_fill_order, width_of_order};
    use crate::exact::exact_treewidth;

    #[test]
    fn td_from_order_is_valid_and_matches_width() {
        for g in [
            Graph::path(6),
            Graph::cycle(7),
            Graph::grid(3, 3),
            Graph::complete(5),
            Graph::band(10, 2),
        ] {
            let order = min_fill_order(&g);
            let td = TreeDecomposition::from_elimination_order(&g, &order);
            td.validate(&g).unwrap();
            assert_eq!(td.width(), width_of_order(&g, &order));
        }
    }

    #[test]
    fn td_from_optimal_order_has_optimal_width() {
        let g = Graph::grid(3, 3);
        let (w, order) = exact_treewidth(&g).unwrap();
        let td = TreeDecomposition::from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), w);
    }

    #[test]
    fn disconnected_graph_still_single_tree() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let order = min_fill_order(&g);
        let td = TreeDecomposition::from_elimination_order(&g, &order);
        td.validate(&g).unwrap();
    }

    #[test]
    fn validation_catches_missing_edge() {
        let g = Graph::path(3); // edges (0,1),(1,2)
        let td = TreeDecomposition::from_parts(vec![vec![0, 1], vec![2]], vec![None, Some(0)], 0);
        assert_eq!(td.validate(&g), Err(TdError::EdgeNotCovered(1, 2)));
    }

    #[test]
    fn validation_catches_disconnected_occurrences() {
        let g = Graph::path(3);
        let td = TreeDecomposition::from_parts(
            vec![vec![0, 1], vec![1, 2], vec![0]],
            vec![None, Some(0), Some(1)],
            0,
        );
        assert_eq!(td.validate(&g), Err(TdError::NotConnected(0)));
    }

    #[test]
    fn validation_catches_cycle() {
        let g = Graph::path(2);
        let td =
            TreeDecomposition::from_parts(vec![vec![0, 1], vec![0, 1]], vec![Some(1), Some(0)], 0);
        assert_eq!(td.validate(&g), Err(TdError::MalformedTree));
    }
}
