//! Variable-order search for OBDDs.
//!
//! The paper's **OBDD width of a function** is the smallest width over *all*
//! variable orders. Exhaustive search is exact up to a small support;
//! adjacent-swap hill climbing (rebuild-based sifting) gives an upper bound
//! beyond that.

use crate::Obdd;
use boolfunc::BoolFn;
use vtree::VarId;

/// Which quantity to minimize.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// The paper's OBDD width (max nodes per level).
    Width,
    /// Node count.
    Size,
}

fn measure(f: &BoolFn, order: &[VarId], metric: Metric) -> usize {
    let mut m = Obdd::new(order.to_vec());
    let root = m.from_boolfn(f);
    match metric {
        Metric::Width => m.width(root),
        Metric::Size => m.size(root),
    }
}

/// Exhaustive search over all `n!` orders of the support. Exact; guarded by
/// `max_n` (8! = 40 320 rebuilds is the practical ceiling).
pub fn best_order_exhaustive(f: &BoolFn, metric: Metric, max_n: usize) -> (usize, Vec<VarId>) {
    let vars: Vec<VarId> = f.minimize_support().vars().iter().collect();
    assert!(
        vars.len() <= max_n,
        "refusing {}! order search (max_n = {max_n})",
        vars.len()
    );
    if vars.is_empty() {
        // Constant function: any order; width 0.
        let fallback: Vec<VarId> = f.vars().iter().collect();
        let order = if fallback.is_empty() {
            vec![VarId(0)]
        } else {
            fallback
        };
        return (measure(f, &order, metric), order);
    }
    let mut best: Option<(usize, Vec<VarId>)> = None;
    permute(vars.len(), &mut vars.clone(), &mut |perm| {
        let val = measure(f, perm, metric);
        if best.as_ref().is_none_or(|(b, _)| val < *b) {
            best = Some((val, perm.to_vec()));
        }
    });
    best.expect("at least one permutation")
}

/// Heap's algorithm.
fn permute(k: usize, arr: &mut [VarId], visit: &mut impl FnMut(&[VarId])) {
    if k <= 1 {
        visit(arr);
        return;
    }
    for i in 0..k {
        permute(k - 1, arr, visit);
        if k.is_multiple_of(2) {
            arr.swap(i, k - 1);
        } else {
            arr.swap(0, k - 1);
        }
    }
}

/// Adjacent-swap hill climbing from the natural (sorted) order: repeatedly
/// accept any adjacent transposition that improves the metric, until a full
/// pass makes no progress. An upper bound on the optimum.
pub fn best_order_sifting(f: &BoolFn, metric: Metric) -> (usize, Vec<VarId>) {
    let mut order: Vec<VarId> = f.vars().iter().collect();
    if order.is_empty() {
        order.push(VarId(0));
    }
    let mut best = measure(f, &order, metric);
    loop {
        let mut improved = false;
        for i in 0..order.len().saturating_sub(1) {
            order.swap(i, i + 1);
            let val = measure(f, &order, metric);
            if val < best {
                best = val;
                improved = true;
            } else {
                order.swap(i, i + 1);
            }
        }
        if !improved {
            return (best, order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;

    #[test]
    fn exhaustive_finds_interleaving_for_disjointness() {
        let (f, _, _) = families::disjointness(3);
        let (w, order) = best_order_exhaustive(&f, Metric::Width, 6);
        assert!(w <= 3, "optimal width for D_3 should be small, got {w}");
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn sifting_never_worse_than_natural() {
        let (f, _, _) = families::disjointness(3);
        let natural: Vec<VarId> = f.vars().iter().collect();
        let base = measure(&f, &natural, Metric::Width);
        let (w, _) = best_order_sifting(&f, Metric::Width);
        assert!(w <= base);
    }

    #[test]
    fn parity_already_optimal() {
        let vars: Vec<VarId> = (0..5).map(VarId).collect();
        let f = families::parity(&vars);
        let (w, _) = best_order_exhaustive(&f, Metric::Width, 5);
        assert_eq!(w, 2);
        let (s, _) = best_order_exhaustive(&f, Metric::Size, 5);
        assert_eq!(s, 2 * 5 - 1 + 2); // 2 nodes/level except 1 at top, +2 terminals
    }

    #[test]
    fn constant_function_handled() {
        let f = BoolFn::constant(boolfunc::VarSet::singleton(VarId(3)), true);
        let (w, _) = best_order_exhaustive(&f, Metric::Width, 4);
        assert_eq!(w, 0);
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn exhaustive_guard() {
        let vars: Vec<VarId> = (0..9).map(VarId).collect();
        let f = families::parity(&vars);
        let _ = best_order_exhaustive(&f, Metric::Width, 8);
    }
}
