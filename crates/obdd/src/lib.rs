//! Reduced ordered binary decision diagrams (Bryant 1986).
//!
//! The baseline compilation target of the paper: OBDDs are canonical SDDs
//! over *right-linear* vtrees (paper §3.2.2), and bounded OBDD width
//! characterizes bounded circuit **pathwidth** (Jha & Suciu; paper Eq. 2).
//! This crate provides a classic hash-consed manager:
//!
//! * apply with memoization ([`Obdd::and`], [`Obdd::or`], [`Obdd::xor`]),
//!   [`Obdd::not`], [`Obdd::ite`];
//! * compilation [`Obdd::from_boolfn`] (Shannon expansion against the
//!   truth-table kernel) and [`Obdd::from_circuit`] (bottom-up apply);
//! * model counting, weighted model counting, size and the paper's **OBDD
//!   width** (max nodes per level) — [`Obdd::width`];
//! * variable-order search: exhaustive for small supports, adjacent-swap
//!   hill climbing otherwise ([`order`]).

pub mod order;

use boolfunc::{BoolFn, VarSet};
use vtree::fxhash::{FxHashMap, FxHashSet};
use vtree::VarId;

/// Index of an OBDD node. `FALSE = 0`, `TRUE = 1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// The ⊥ terminal.
pub const FALSE: NodeId = NodeId(0);
/// The ⊤ terminal.
pub const TRUE: NodeId = NodeId(1);

impl NodeId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this a terminal?
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Copy, Clone, Debug)]
struct Node {
    level: u32,
    lo: NodeId,
    hi: NodeId,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A reduced ordered BDD manager over a fixed variable order.
pub struct Obdd {
    order: Vec<VarId>,
    level_of: FxHashMap<VarId, u32>,
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, NodeId, NodeId), NodeId>,
    cache: FxHashMap<(Op, NodeId, NodeId), NodeId>,
}

impl Obdd {
    /// Fresh manager respecting `order` (level 0 first / topmost).
    pub fn new(order: Vec<VarId>) -> Self {
        let level_of = order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let sentinel = order.len() as u32;
        Obdd {
            order,
            level_of,
            nodes: vec![
                Node {
                    level: sentinel,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    level: sentinel,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: FxHashMap::default(),
            cache: FxHashMap::default(),
        }
    }

    /// The variable order.
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// Number of levels (= variables in the order).
    pub fn num_levels(&self) -> u32 {
        self.order.len() as u32
    }

    /// Total nodes allocated in the manager (including both terminals).
    pub fn num_allocated(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn level(&self, n: NodeId) -> u32 {
        self.nodes[n.index()].level
    }

    /// Reduced node constructor.
    fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), id);
        id
    }

    /// The node for a positive literal.
    pub fn var(&mut self, v: VarId) -> NodeId {
        let level = self.level_of[&v];
        self.mk(level, FALSE, TRUE)
    }

    /// The node for a literal of either polarity.
    pub fn literal(&mut self, v: VarId, positive: bool) -> NodeId {
        let level = self.level_of[&v];
        if positive {
            self.mk(level, FALSE, TRUE)
        } else {
            self.mk(level, TRUE, FALSE)
        }
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        // Terminal / identity shortcuts.
        match op {
            Op::And => {
                if a == FALSE || b == FALSE {
                    return FALSE;
                }
                if a == TRUE {
                    return b;
                }
                if b == TRUE || a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == TRUE || b == TRUE {
                    return TRUE;
                }
                if a == FALSE {
                    return b;
                }
                if b == FALSE || a == b {
                    return a;
                }
            }
            Op::Xor => {
                if a == b {
                    return FALSE;
                }
                if a == FALSE {
                    return b;
                }
                if b == FALSE {
                    return a;
                }
                if a == TRUE && b == TRUE {
                    return FALSE;
                }
            }
        }
        // Commutative: normalize operand order for the cache.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (la, lb) = (self.level(a), self.level(b));
        let top = la.min(lb);
        let (a0, a1) = if la == top {
            (self.nodes[a.index()].lo, self.nodes[a.index()].hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if lb == top {
            (self.nodes[b.index()].lo, self.nodes[b.index()].hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(top, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Xor, a, b)
    }

    /// Negation.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.apply(Op::Xor, a, TRUE)
    }

    /// If-then-else.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// Existentially quantify one variable: `∃v. f = f|_{v=0} ∨ f|_{v=1}`.
    pub fn exists(&mut self, f: NodeId, v: VarId) -> NodeId {
        let level = self.level_of[&v];
        let f0 = self.restrict_node(f, level, false);
        let f1 = self.restrict_node(f, level, true);
        self.or(f0, f1)
    }

    /// Existentially quantify a set of variables (used by the Petke–Razgon
    /// route, paper Eq. 3: `C(X) ≡ ∃Z. D_T(X, Z)`).
    pub fn exists_many(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        let mut cur = f;
        for &v in vars {
            cur = self.exists(cur, v);
        }
        cur
    }

    /// Cofactor of a diagram on `level := value`.
    fn restrict_node(&mut self, f: NodeId, level: u32, value: bool) -> NodeId {
        // Iterative-friendly memoized recursion keyed by (node, level, value)
        // through the generic cache is not possible (different op shape), so
        // use a local memo.
        let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        self.restrict_rec(f, level, value, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        level: u32,
        value: bool,
        memo: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() || self.level(f) > level {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let node = self.nodes[f.index()];
        let r = if node.level == level {
            if value {
                node.hi
            } else {
                node.lo
            }
        } else {
            let lo = self.restrict_rec(node.lo, level, value, memo);
            let hi = self.restrict_rec(node.hi, level, value, memo);
            self.mk(node.level, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Compile a truth table by Shannon expansion along the order. The order
    /// must cover the support.
    pub fn from_boolfn(&mut self, f: &BoolFn) -> NodeId {
        assert!(
            f.vars().iter().all(|v| self.level_of.contains_key(&v)),
            "order must cover the support"
        );
        let mut memo: FxHashMap<BoolFn, NodeId> = FxHashMap::default();
        self.from_boolfn_rec(f, 0, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)] // recursive helper of from_boolfn
    fn from_boolfn_rec(
        &mut self,
        f: &BoolFn,
        level: u32,
        memo: &mut FxHashMap<BoolFn, NodeId>,
    ) -> NodeId {
        if let Some(c) = f.as_constant() {
            return if c { TRUE } else { FALSE };
        }
        if let Some(&n) = memo.get(f) {
            return n;
        }
        // Find the first order level whose variable is in the support.
        let mut l = level;
        loop {
            let v = self.order[l as usize];
            if f.vars().contains(v) && f.depends_on(v) {
                let f0 = f.restrict(v, false);
                let f1 = f.restrict(v, true);
                let lo = self.from_boolfn_rec(&f0, l + 1, memo);
                let hi = self.from_boolfn_rec(&f1, l + 1, memo);
                let n = self.mk(l, lo, hi);
                memo.insert(f.clone(), n);
                return n;
            }
            l += 1;
            debug_assert!(
                (l as usize) < self.order.len(),
                "non-constant function must depend on some ordered var"
            );
        }
    }

    /// Compile a circuit bottom-up with `apply`.
    pub fn from_circuit(&mut self, c: &circuit::Circuit) -> NodeId {
        use circuit::GateKind;
        let mut val: Vec<NodeId> = Vec::with_capacity(c.size());
        for (_, g) in c.iter() {
            let n = match g {
                GateKind::Var(v) => self.var(*v),
                GateKind::Const(b) => {
                    if *b {
                        TRUE
                    } else {
                        FALSE
                    }
                }
                GateKind::Not(x) => {
                    let x = val[x.index()];
                    self.not(x)
                }
                GateKind::And(xs) => {
                    let mut acc = TRUE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.and(acc, xv);
                    }
                    acc
                }
                GateKind::Or(xs) => {
                    let mut acc = FALSE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.or(acc, xv);
                    }
                    acc
                }
            };
            val.push(n);
        }
        val[c.output().index()]
    }

    /// Nodes reachable from `root`, excluding terminals.
    pub fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            out.push(n);
            stack.push(self.nodes[n.index()].lo);
            stack.push(self.nodes[n.index()].hi);
        }
        out
    }

    /// OBDD size: number of reachable decision nodes plus the two terminals.
    pub fn size(&self, root: NodeId) -> usize {
        self.reachable(root).len() + 2
    }

    /// Per-level node counts for the diagram rooted at `root`.
    pub fn level_profile(&self, root: NodeId) -> Vec<usize> {
        let mut counts = vec![0usize; self.order.len()];
        for n in self.reachable(root) {
            counts[self.level(n) as usize] += 1;
        }
        counts
    }

    /// The paper's **OBDD width**: the largest number of nodes labeled by the
    /// same variable.
    pub fn width(&self, root: NodeId) -> usize {
        self.level_profile(root).into_iter().max().unwrap_or(0)
    }

    /// Exact model count over all `num_levels()` ordered variables.
    pub fn count_models(&self, root: NodeId) -> u128 {
        let mut memo: FxHashMap<NodeId, u128> = FxHashMap::default();
        let l = self.count_rec(root, &mut memo);
        l << self.level(root).min(self.num_levels())
    }

    /// Models over the levels strictly below (and including) `n`'s level.
    fn count_rec(&self, n: NodeId, memo: &mut FxHashMap<NodeId, u128>) -> u128 {
        if n == FALSE {
            return 0;
        }
        if n == TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&n) {
            return c;
        }
        let node = self.nodes[n.index()];
        let lo = self.count_rec(node.lo, memo);
        let hi = self.count_rec(node.hi, memo);
        let c = (lo << (self.level(node.lo) - node.level - 1))
            + (hi << (self.level(node.hi) - node.level - 1));
        memo.insert(n, c);
        c
    }

    /// Weighted model count: `weight(v)` gives `(w⁻, w⁺)`. Skipped levels
    /// contribute the factor `w⁻ + w⁺` (so probabilities need no smoothing).
    pub fn weighted_count(&self, root: NodeId, weight: impl Fn(VarId) -> (f64, f64)) -> f64 {
        let w: Vec<(f64, f64)> = self.order.iter().map(|&v| weight(v)).collect();
        // skip_prod[i] = ∏_{l >= i} (w⁻ + w⁺): suffix products for level gaps.
        let mut suffix = vec![1.0; self.order.len() + 1];
        for i in (0..self.order.len()).rev() {
            suffix[i] = suffix[i + 1] * (w[i].0 + w[i].1);
        }
        let gap = |from: u32, to: u32| -> f64 {
            // product over levels in (from, to)
            suffix[(from + 1) as usize] / suffix[to as usize]
        };
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        fn rec(
            o: &Obdd,
            n: NodeId,
            w: &[(f64, f64)],
            gap: &dyn Fn(u32, u32) -> f64,
            memo: &mut FxHashMap<NodeId, f64>,
        ) -> f64 {
            if n == FALSE {
                return 0.0;
            }
            if n == TRUE {
                return 1.0;
            }
            if let Some(&x) = memo.get(&n) {
                return x;
            }
            let node = o.nodes[n.index()];
            let l = node.level as usize;
            let lo = rec(o, node.lo, w, gap, memo) * gap(node.level, o.level(node.lo));
            let hi = rec(o, node.hi, w, gap, memo) * gap(node.level, o.level(node.hi));
            let x = w[l].0 * lo + w[l].1 * hi;
            memo.insert(n, x);
            x
        }
        let top_gap = suffix[0] / suffix[self.level(root) as usize];
        rec(self, root, &w, &gap, &mut memo) * top_gap
    }

    /// Probability under independent `P(v=1) = prob(v)`.
    pub fn probability(&self, root: NodeId, prob: impl Fn(VarId) -> f64) -> f64 {
        self.weighted_count(root, |v| {
            let p = prob(v);
            (1.0 - p, p)
        })
    }

    /// Read back the function (over the ordered vars seen from `root`).
    pub fn to_boolfn(&self, root: NodeId) -> BoolFn {
        let vars = VarSet::from_slice(&self.order);
        let order = &self.order;
        BoolFn::from_fn(vars.clone(), |idx| {
            let mut n = root;
            while !n.is_terminal() {
                let node = self.nodes[n.index()];
                let v = order[node.level as usize];
                let bit = idx >> vars.position(v).expect("ordered var") & 1;
                n = if bit == 1 { node.hi } else { node.lo };
            }
            n == TRUE
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn order(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn literals_and_apply() {
        let mut m = Obdd::new(order(2));
        let x = m.var(v(0));
        let y = m.var(v(1));
        let a = m.and(x, y);
        assert_eq!(m.count_models(a), 1);
        let o = m.or(x, y);
        assert_eq!(m.count_models(o), 3);
        let n = m.not(x);
        assert_eq!(m.count_models(n), 2);
        let xo = m.xor(x, y);
        assert_eq!(m.count_models(xo), 2);
    }

    #[test]
    fn reduction_shares_nodes() {
        let mut m = Obdd::new(order(2));
        let x = m.var(v(0));
        let x2 = m.var(v(0));
        assert_eq!(x, x2);
        let t = m.or(x, x);
        assert_eq!(t, x);
    }

    #[test]
    fn from_boolfn_parity_has_width_two() {
        let vars = order(8);
        let f = families::parity(&vars);
        let mut m = Obdd::new(vars);
        let root = m.from_boolfn(&f);
        assert_eq!(m.width(root), 2);
        assert_eq!(m.count_models(root), 128);
        assert!(m.to_boolfn(root).equivalent(&f));
    }

    #[test]
    fn from_circuit_matches_from_boolfn() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let c = circuit::families::random_circuit(5, 14, &mut rng);
            let f = c.to_boolfn().unwrap();
            let mut m = Obdd::new(order(5));
            let r1 = m.from_circuit(&c);
            let r2 = m.from_boolfn(&f);
            assert_eq!(r1, r2, "canonicity: same function, same node");
        }
    }

    #[test]
    fn model_count_with_level_jumps() {
        // f = x0 ∧ x3 over 4 levels: jumps across levels 1, 2.
        let mut m = Obdd::new(order(4));
        let x0 = m.var(v(0));
        let x3 = m.var(v(3));
        let f = m.and(x0, x3);
        assert_eq!(m.count_models(f), 4);
    }

    #[test]
    fn top_gap_counted() {
        // f = x2 over 3 levels: root at level 2; two free vars above.
        let mut m = Obdd::new(order(3));
        let x2 = m.var(v(2));
        assert_eq!(m.count_models(x2), 4);
    }

    #[test]
    fn weighted_count_matches_kernel() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let vars = order(7);
        let f = boolfunc::BoolFn::random(boolfunc::VarSet::from_slice(&vars), &mut rng);
        let mut m = Obdd::new(vars);
        let root = m.from_boolfn(&f);
        let probs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        let a = m.probability(root, |u| probs[u.index()]);
        let b = f.probability(|u| probs[u.index()]);
        assert!((a - b).abs() < 1e-12, "obdd {a} vs kernel {b}");
    }

    #[test]
    fn disjointness_interleaved_vs_separated_width() {
        // D_n has constant width under the interleaved order x1 y1 x2 y2 …
        // and exponential width under x1..xn y1..yn.
        let n = 5;
        let (f, xs, ys) = families::disjointness(n);
        let mut interleaved = Vec::new();
        for i in 0..n {
            interleaved.push(xs[i]);
            interleaved.push(ys[i]);
        }
        let mut m1 = Obdd::new(interleaved);
        let r1 = m1.from_boolfn(&f);
        let w1 = m1.width(r1);
        let mut separated = Vec::new();
        separated.extend_from_slice(&xs);
        separated.extend_from_slice(&ys);
        let mut m2 = Obdd::new(separated);
        let r2 = m2.from_boolfn(&f);
        let w2 = m2.width(r2);
        assert!(w1 <= 3, "interleaved width {w1}");
        assert!(w2 >= 1 << (n - 1), "separated width {w2} should be ~2^n");
    }

    #[test]
    fn ite_consistency() {
        let mut m = Obdd::new(order(3));
        let x = m.var(v(0));
        let y = m.var(v(1));
        let z = m.var(v(2));
        let a = m.ite(x, y, z);
        // ite(x,y,z) has 4 models: x&y (2 z-free... enumerated = 4).
        let f = m.to_boolfn(a);
        let expect = boolfunc::BoolFn::from_fn(boolfunc::VarSet::from_slice(&order(3)), |i| {
            if i & 1 == 1 {
                i >> 1 & 1 == 1
            } else {
                i >> 2 & 1 == 1
            }
        });
        assert!(f.equivalent(&expect));
    }
}
