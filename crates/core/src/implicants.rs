//! Factorized implicants (paper §3.2.1, Definition 3) and their disjoint
//! rectangle covers (Lemmas 2, 3, 5).
//!
//! Fix a function `F` and a vtree `T`. At an internal node `v` with children
//! `w, w'`, every pair `(G, G')` of factors of `F` relative to `(Y_w, Y_w')`
//! spans a rectangle `sat(G) × sat(G')` that is either **contained in** or
//! **disjoint from** each factor `H` of `F` relative to `Y_v` (Lemma 2) — so
//! each pair belongs to exactly one `H`, and the pairs belonging to `H` form
//! a disjoint rectangle cover of `H` (Lemma 3). [`ImplicantTable`] registers
//! this classification; the `C_{F,T}` and `S_{F,T}` constructions read
//! decompositions straight out of it.

use boolfunc::{factors, Assignment, BoolFn, Factor, Rectangle, RectangleCover, VarSet};
use vtree::{Vtree, VtreeNodeId};

/// Factors of `F` relative to `Y_v` for every node `v` of a vtree.
pub struct VtreeFactors<'a> {
    /// The function being decomposed.
    pub f: &'a BoolFn,
    /// The vtree.
    pub vtree: &'a Vtree,
    /// `per_node[v] = factors(F, Y_v)`, indexed by vtree node id.
    pub per_node: Vec<Vec<Factor>>,
}

impl<'a> VtreeFactors<'a> {
    /// Compute factors at every vtree node. The vtree may contain variables
    /// outside the support (Eq. 9) and need not cover the support (callers
    /// normally ensure it does).
    pub fn compute(f: &'a BoolFn, vtree: &'a Vtree) -> Self {
        let per_node = vtree
            .node_ids()
            .map(|v| factors(f, &VarSet::from_slice(vtree.vars_below(v))))
            .collect();
        VtreeFactors { f, vtree, per_node }
    }

    /// Factors at node `v`.
    pub fn at(&self, v: VtreeNodeId) -> &[Factor] {
        &self.per_node[v.index()]
    }

    /// `fw(F, T)` — the maximum factor count over all nodes (Definition 2).
    pub fn width(&self) -> usize {
        self.per_node.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Index of the factor at `v` whose guard accepts the combined
    /// assignment of one guard model from the left child and one from the
    /// right child.
    fn classify_pair(&self, v: VtreeNodeId, left: &Factor, right: &Factor) -> usize {
        let bl = left.guard.any_model().expect("factor guards are nonempty");
        let br = right.guard.any_model().expect("factor guards are nonempty");
        let al = Assignment::from_index(left.guard.vars(), bl);
        let ar = Assignment::from_index(right.guard.vars(), br);
        let combined = al.union(&ar);
        self.at(v)
            .iter()
            .position(|h| {
                // Guard of h is over Y_v ∩ X = (Y_w ∪ Y_w') ∩ X.
                h.guard.eval(&combined.restrict_to(h.guard.vars()))
            })
            .expect("factors partition the assignment space (Eq. 10)")
    }
}

/// The classification of factor pairs at an internal vtree node: Lemma 2
/// guarantees each `(left factor, right factor)` pair lies in exactly one
/// parent factor.
pub struct ImplicantTable {
    /// `class[i][j]` = index (into `factors(F, Y_v)`) of the parent factor
    /// containing `sat(G_i) × sat(G'_j)`.
    pub class: Vec<Vec<usize>>,
}

impl ImplicantTable {
    /// Build the table for internal node `v`.
    pub fn build(ctx: &VtreeFactors<'_>, v: VtreeNodeId) -> Self {
        let (w, w2) = ctx
            .vtree
            .children(v)
            .expect("implicant table needs an internal node");
        let left = ctx.at(w);
        let right = ctx.at(w2);
        let class = left
            .iter()
            .map(|g| right.iter().map(|g2| ctx.classify_pair(v, g, g2)).collect())
            .collect();
        ImplicantTable { class }
    }

    /// `impl(F, H, Y_w, Y_w')` — the factorized implicants of parent factor
    /// `h` (by index): the `(left, right)` factor index pairs contained in it.
    pub fn implicants_of(&self, h: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, row) in self.class.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c == h {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Total number of pairs (= ∧-gates contributed at this node by the
    /// `C_{F,T}` construction).
    pub fn num_pairs(&self) -> usize {
        self.class.iter().map(Vec::len).sum()
    }
}

/// Lemma 3 as data: the disjoint rectangle cover of parent factor `h` at
/// node `v`, made of the guard rectangles of its factorized implicants.
pub fn rectangle_cover_of_factor(
    ctx: &VtreeFactors<'_>,
    v: VtreeNodeId,
    h: usize,
) -> RectangleCover {
    let table = ImplicantTable::build(ctx, v);
    let (w, w2) = ctx.vtree.children(v).expect("internal node");
    let rects = table
        .implicants_of(h)
        .into_iter()
        .map(|(i, j)| Rectangle::new(ctx.at(w)[i].guard.clone(), ctx.at(w2)[j].guard.clone()))
        .collect();
    RectangleCover { rects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    /// Lemma 2: every pair of child factors is contained in or disjoint from
    /// each parent factor — verified exhaustively, not just via the
    /// representative-point shortcut the implementation uses.
    #[test]
    fn lemma2_containment_or_disjointness() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
            let vt = Vtree::random(&vars(6), &mut rng).unwrap();
            let ctx = VtreeFactors::compute(&f, &vt);
            for v in vt.internal_nodes() {
                let (w, w2) = vt.children(v).unwrap();
                for g in ctx.at(w) {
                    for g2 in ctx.at(w2) {
                        let rect = g.guard.and(&g2.guard);
                        for h in ctx.at(v) {
                            let inter = rect.and(&h.guard).count_models();
                            assert!(
                                inter == 0 || inter == rect.count_models(),
                                "rectangle neither contained nor disjoint"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Lemma 3: the implicants of each parent factor form a disjoint
    /// rectangle cover of it.
    #[test]
    fn lemma3_disjoint_rectangle_cover() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
            let vt = Vtree::random(&vars(5), &mut rng).unwrap();
            let ctx = VtreeFactors::compute(&f, &vt);
            for v in vt.internal_nodes() {
                for (h_idx, h) in ctx.at(v).iter().enumerate() {
                    let cover = rectangle_cover_of_factor(&ctx, v, h_idx);
                    cover.check_disjoint_cover_of(&h.guard).unwrap_or_else(|e| {
                        panic!("Lemma 3 violated at {v:?} factor {h_idx}: {e}")
                    });
                }
            }
        }
    }

    /// Every pair belongs to exactly one parent factor, so the pair count
    /// decomposes.
    #[test]
    fn pairs_partition() {
        let (f, xs, ys) = families::disjointness(3);
        let mut interleaved = Vec::new();
        for i in 0..3 {
            interleaved.push(xs[i]);
            interleaved.push(ys[i]);
        }
        let vt = Vtree::balanced(&interleaved).unwrap();
        let ctx = VtreeFactors::compute(&f, &vt);
        for v in vt.internal_nodes() {
            let t = ImplicantTable::build(&ctx, v);
            let total: usize = (0..ctx.at(v).len()).map(|h| t.implicants_of(h).len()).sum();
            assert_eq!(total, t.num_pairs());
        }
    }

    /// fw of parity is 2 on every vtree; the implicant table at each node is
    /// the XOR pairing.
    #[test]
    fn parity_implicant_structure() {
        let f = families::parity(&vars(4));
        let vt = Vtree::balanced(&vars(4)).unwrap();
        let ctx = VtreeFactors::compute(&f, &vt);
        assert_eq!(ctx.width(), 2);
        let root = vt.root();
        let t = ImplicantTable::build(&ctx, root);
        // 2x2 pairs, two per parent factor.
        assert_eq!(t.num_pairs(), 4);
        assert_eq!(t.implicants_of(0).len(), 2);
        assert_eq!(t.implicants_of(1).len(), 2);
    }
}
