//! Result 1 end to end: compile a circuit into a canonical deterministic
//! structured NNF and a canonical SDD of size `O(f(k)·n)`.
//!
//! The free functions here are the workspace's original entry points, kept
//! as thin **deprecated** wrappers so downstream code keeps compiling; new
//! code should configure a [`crate::Compiler`] session instead, which
//! exposes the strategy choices these wrappers hard-code and returns a
//! timed [`crate::CompileReport`].

use crate::cft::CftResult;
use crate::compiler::{CompileError, Compiler, Route, Validation};
use crate::sft::SftResult;
use crate::vtree_extract::{ExtractError, ExtractStats};
use boolfunc::BoolFnError;
use circuit::Circuit;
use sdd::{SddId, SddManager};
use std::fmt;
use vtree::Vtree;

/// Everything the Result 1 pipeline produces for a circuit.
pub struct CompiledCircuit {
    /// The Lemma-1 vtree.
    pub vtree: Vtree,
    /// Tree-decomposition statistics (treewidth used, etc.).
    pub stats: ExtractStats,
    /// `fw(F, T)` (Definition 2).
    pub fw: usize,
    /// The `C_{F,T}` construction (Theorem 3).
    pub nnf: CftResult,
    /// The `S_{F,T}` construction (Theorem 4).
    pub sdd: SftResult,
}

/// Pipeline failures (superseded by [`CompileError`], which absorbs this
/// type via `From`).
#[derive(Debug)]
pub enum CompilationError {
    /// Constant circuit — nothing to hang a vtree on.
    NoVariables,
    /// The semantic route needs a truth table that exceeds the kernel cap.
    TooManyVars(BoolFnError),
}

impl fmt::Display for CompilationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilationError::NoVariables => write!(f, "circuit has no variables"),
            CompilationError::TooManyVars(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompilationError {}

impl From<ExtractError> for CompilationError {
    fn from(_: ExtractError) -> Self {
        CompilationError::NoVariables
    }
}

/// Map the unified error back onto the legacy enum for the wrappers below.
/// The wrapped option sets (`Lemma1` + `Auto`/`Semantic`/`Apply`, no
/// validation) can only fail in these two ways.
fn legacy_error(e: CompileError) -> CompilationError {
    match e {
        CompileError::NoVariables => CompilationError::NoVariables,
        CompileError::TooManyVars(b) => CompilationError::TooManyVars(b),
        other => unreachable!("legacy pipeline cannot fail with {other}"),
    }
}

fn legacy_stats(report: &crate::CompileReport) -> ExtractStats {
    ExtractStats {
        treewidth: report.treewidth.expect("Lemma-1 vtree"),
        nice_nodes: report.nice_nodes.expect("Lemma-1 vtree"),
        primal_vertices: report.primal_vertices.expect("Lemma-1 vtree"),
    }
}

/// The full semantic pipeline (Result 1): circuit → tree decomposition →
/// vtree (Lemma 1) → `C_{F,T}` (Theorem 3) + `S_{F,T}` (Theorem 4).
///
/// Requires the circuit's variable count to fit the truth-table kernel;
/// use [`compile_circuit_apply`] beyond that.
#[deprecated(note = "configure a `sentential_core::Compiler` session instead")]
pub fn compile_circuit(
    c: &Circuit,
    exact_tw_limit: usize,
) -> Result<CompiledCircuit, CompilationError> {
    let compiled = Compiler::builder()
        .route(Route::Semantic)
        .exact_tw_limit(exact_tw_limit)
        .validation(Validation::None)
        .build()
        .compile(c)
        .map_err(legacy_error)?;
    let fw = compiled.report.fw.expect("semantic route");
    let stats = legacy_stats(&compiled.report);
    Ok(CompiledCircuit {
        stats,
        fw,
        nnf: compiled.nnf.expect("semantic route"),
        sdd: SftResult {
            manager: compiled.sdd,
            root: compiled.root,
            sdw: compiled.report.sdw,
            fw,
        },
        vtree: compiled.vtree,
    })
}

/// The apply-based pipeline for circuits too large for truth tables: the
/// Lemma-1 vtree still guides the compilation, but the SDD is built by
/// bottom-up `apply` instead of factor enumeration. Returns the manager,
/// the root, and the extraction stats.
#[deprecated(note = "configure a `sentential_core::Compiler` session instead")]
pub fn compile_circuit_apply(
    c: &Circuit,
    exact_tw_limit: usize,
) -> Result<(SddManager, SddId, ExtractStats), CompilationError> {
    let compiled = Compiler::builder()
        .route(Route::Apply)
        .exact_tw_limit(exact_tw_limit)
        .validation(Validation::None)
        .build()
        .compile(c)
        .map_err(legacy_error)?;
    let stats = legacy_stats(&compiled.report);
    Ok((compiled.sdd, compiled.root, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::ResolvedRoute;
    use circuit::families;
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn compile(c: &Circuit) -> crate::Compilation {
        Compiler::builder()
            .route(Route::Semantic)
            .exact_tw_limit(18)
            .build()
            .compile(c)
            .unwrap()
    }

    #[test]
    fn pipeline_on_bounded_tw_families() {
        for c in [
            families::and_or_chain(&vars(8)),
            families::clause_chain(&vars(8), 3),
            families::parity_chain(&vars(7)),
            families::and_or_tree(&vars(8)),
        ] {
            let f = c.to_boolfn().unwrap();
            let r = compile(&c);
            let nnf = r.nnf.as_ref().unwrap();
            // Semantics through both routes.
            assert!(nnf.circuit.to_boolfn().unwrap().equivalent(&f));
            assert!(r.sdd.to_boolfn(r.root).equivalent(&f));
            // Structure.
            nnf.circuit.check_deterministic().unwrap();
            nnf.circuit.check_structured_by(&r.vtree).unwrap();
            r.sdd.validate(r.root).unwrap();
            // Theorem 3 / 4 size bounds.
            let n = f.vars().len();
            assert!(nnf.circuit.reachable_size() <= crate::bounds::thm3_size(nnf.fiw, n));
            assert!(r.sdd.size(r.root) <= crate::bounds::thm4_size(r.report.sdw, n));
        }
    }

    #[test]
    fn apply_route_agrees_with_semantic_route() {
        let c = families::clause_chain(&vars(9), 2);
        let f = c.to_boolfn().unwrap();
        let r = compile(&c);
        let r2 = Compiler::builder()
            .route(Route::Apply)
            .exact_tw_limit(18)
            .build()
            .compile(&c)
            .unwrap();
        assert_eq!(r2.report.route, ResolvedRoute::Apply);
        assert_eq!(r.count_models(), r2.count_models());
        assert!(r2.sdd.to_boolfn(r2.root).equivalent(&f));
    }

    #[test]
    fn linear_size_in_n_at_fixed_width() {
        // Result 1's shape: for the clause-chain family (fixed window), SDD
        // size grows linearly in n.
        let sizes: Vec<usize> = [6u32, 9, 12]
            .iter()
            .map(|&n| {
                let c = families::clause_chain(&vars(n), 2);
                compile(&c).sdd_size()
            })
            .collect();
        // Ratio between consecutive sizes stays bounded (no blow-up).
        assert!(sizes[2] < sizes[0] * 6, "sizes {sizes:?} not linear-ish");
    }

    #[test]
    fn errors_are_typed() {
        let mut b = circuit::CircuitBuilder::new();
        let t = b.constant(true);
        let c = b.build(t);
        assert!(matches!(
            Compiler::new().compile(&c),
            Err(CompileError::NoVariables)
        ));
    }

    /// The deprecated wrappers still work and agree with the session API.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_sessions() {
        let c = families::clause_chain(&vars(8), 2);
        let old = compile_circuit(&c, 18).unwrap();
        let new = compile(&c);
        assert_eq!(old.fw, new.report.fw.unwrap());
        assert_eq!(old.sdd.sdw, new.report.sdw);
        assert_eq!(old.stats.treewidth, new.report.treewidth.unwrap());
        assert_eq!(
            old.sdd.manager.count_models(old.sdd.root),
            new.count_models()
        );

        let (mgr, root, stats) = compile_circuit_apply(&c, 18).unwrap();
        assert_eq!(stats.treewidth, new.report.treewidth.unwrap());
        assert_eq!(mgr.count_models(root), new.count_models());
    }
}
