//! Result 1 end to end: compile a circuit into a canonical deterministic
//! structured NNF and a canonical SDD of size `O(f(k)·n)`.

use crate::cft::{cft, CftResult};
use crate::sft::{sft, SftResult};
use crate::vtree_extract::{vtree_from_circuit, ExtractError, ExtractStats};
use boolfunc::BoolFnError;
use circuit::Circuit;
use sdd::{SddId, SddManager};
use std::fmt;
use vtree::Vtree;

/// Everything the Result 1 pipeline produces for a circuit.
pub struct CompiledCircuit {
    /// The Lemma-1 vtree.
    pub vtree: Vtree,
    /// Tree-decomposition statistics (treewidth used, etc.).
    pub stats: ExtractStats,
    /// `fw(F, T)` (Definition 2).
    pub fw: usize,
    /// The `C_{F,T}` construction (Theorem 3).
    pub nnf: CftResult,
    /// The `S_{F,T}` construction (Theorem 4).
    pub sdd: SftResult,
}

/// Pipeline failures.
#[derive(Debug)]
pub enum CompilationError {
    /// Constant circuit — nothing to hang a vtree on.
    NoVariables,
    /// The semantic route needs a truth table that exceeds the kernel cap.
    TooManyVars(BoolFnError),
}

impl fmt::Display for CompilationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilationError::NoVariables => write!(f, "circuit has no variables"),
            CompilationError::TooManyVars(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompilationError {}

impl From<ExtractError> for CompilationError {
    fn from(_: ExtractError) -> Self {
        CompilationError::NoVariables
    }
}

/// The full semantic pipeline (Result 1): circuit → tree decomposition →
/// vtree (Lemma 1) → `C_{F,T}` (Theorem 3) + `S_{F,T}` (Theorem 4).
///
/// Requires the circuit's variable count to fit the truth-table kernel;
/// use [`compile_circuit_apply`] beyond that.
pub fn compile_circuit(
    c: &Circuit,
    exact_tw_limit: usize,
) -> Result<CompiledCircuit, CompilationError> {
    let f = c.to_boolfn().map_err(CompilationError::TooManyVars)?;
    let (vtree, stats) = vtree_from_circuit(c, exact_tw_limit)?;
    let nnf = cft(&f, &vtree);
    let fw = nnf.fw;
    let sdd = sft(&f, &vtree);
    Ok(CompiledCircuit {
        vtree,
        stats,
        fw,
        nnf,
        sdd,
    })
}

/// The apply-based pipeline for circuits too large for truth tables: the
/// Lemma-1 vtree still guides the compilation, but the SDD is built by
/// bottom-up `apply` instead of factor enumeration. Returns the manager,
/// the root, and the extraction stats.
pub fn compile_circuit_apply(
    c: &Circuit,
    exact_tw_limit: usize,
) -> Result<(SddManager, SddId, ExtractStats), CompilationError> {
    let (vtree, stats) = vtree_from_circuit(c, exact_tw_limit)?;
    let mut mgr = SddManager::new(vtree);
    let root = mgr.from_circuit(c);
    Ok((mgr, root, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::families;
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn pipeline_on_bounded_tw_families() {
        for c in [
            families::and_or_chain(&vars(8)),
            families::clause_chain(&vars(8), 3),
            families::parity_chain(&vars(7)),
            families::and_or_tree(&vars(8)),
        ] {
            let f = c.to_boolfn().unwrap();
            let r = compile_circuit(&c, 18).unwrap();
            // Semantics through both routes.
            assert!(r.nnf.circuit.to_boolfn().unwrap().equivalent(&f));
            assert!(r.sdd.manager.to_boolfn(r.sdd.root).equivalent(&f));
            // Structure.
            r.nnf.circuit.check_deterministic().unwrap();
            r.nnf.circuit.check_structured_by(&r.vtree).unwrap();
            r.sdd.manager.validate(r.sdd.root).unwrap();
            // Theorem 3 / 4 size bounds.
            let n = f.vars().len();
            assert!(r.nnf.circuit.reachable_size() <= crate::bounds::thm3_size(r.nnf.fiw, n));
            assert!(r.sdd.manager.size(r.sdd.root) <= crate::bounds::thm4_size(r.sdd.sdw, n));
        }
    }

    #[test]
    fn apply_route_agrees_with_semantic_route() {
        let c = families::clause_chain(&vars(9), 2);
        let f = c.to_boolfn().unwrap();
        let r = compile_circuit(&c, 18).unwrap();
        let (mgr2, root2, _) = compile_circuit_apply(&c, 18).unwrap();
        assert_eq!(
            r.sdd.manager.count_models(r.sdd.root),
            mgr2.count_models(root2)
        );
        assert!(mgr2.to_boolfn(root2).equivalent(&f));
    }

    #[test]
    fn linear_size_in_n_at_fixed_width() {
        // Result 1's shape: for the clause-chain family (fixed window), SDD
        // size grows linearly in n.
        let sizes: Vec<usize> = [6u32, 9, 12]
            .iter()
            .map(|&n| {
                let c = families::clause_chain(&vars(n), 2);
                let r = compile_circuit(&c, 18).unwrap();
                r.sdd.manager.size(r.sdd.root)
            })
            .collect();
        // Ratio between consecutive sizes stays bounded (no blow-up).
        assert!(sizes[2] < sizes[0] * 6, "sizes {sizes:?} not linear-ish");
    }

    #[test]
    fn errors_are_typed() {
        let mut b = circuit::CircuitBuilder::new();
        let t = b.constant(true);
        let c = b.build(t);
        assert!(matches!(
            compile_circuit(&c, 10),
            Err(CompilationError::NoVariables)
        ));
    }
}
