//! Result 1 end to end, as tests: compile a circuit into a canonical
//! deterministic structured NNF and a canonical SDD of size `O(f(k)·n)`
//! through a configured [`crate::Compiler`] session.
//!
//! This module once carried the workspace's original free-function entry
//! points (`compile_circuit` / `compile_circuit_apply`); those wrappers
//! hard-coded the strategy choices the [`crate::CompilerBuilder`] now
//! exposes and have been removed. What remains is the end-to-end
//! pipeline coverage that used to certify them, rephrased against the
//! session API.

use crate::compiler::{CompileError, Compiler, ResolvedRoute, Route};
use circuit::families;
use circuit::Circuit;
use vtree::VarId;

fn vars(n: u32) -> Vec<VarId> {
    (0..n).map(VarId).collect()
}

fn compile(c: &Circuit) -> crate::Compilation {
    Compiler::builder()
        .route(Route::Semantic)
        .exact_tw_limit(18)
        .build()
        .compile(c)
        .unwrap()
}

#[test]
fn pipeline_on_bounded_tw_families() {
    for c in [
        families::and_or_chain(&vars(8)),
        families::clause_chain(&vars(8), 3),
        families::parity_chain(&vars(7)),
        families::and_or_tree(&vars(8)),
    ] {
        let f = c.to_boolfn().unwrap();
        let r = compile(&c);
        let nnf = r.nnf.as_ref().unwrap();
        // Semantics through both routes.
        assert!(nnf.circuit.to_boolfn().unwrap().equivalent(&f));
        assert!(r.sdd.to_boolfn(r.root).equivalent(&f));
        // Structure.
        nnf.circuit.check_deterministic().unwrap();
        nnf.circuit.check_structured_by(&r.vtree).unwrap();
        r.sdd.validate(r.root).unwrap();
        // Theorem 3 / 4 size bounds.
        let n = f.vars().len();
        assert!(nnf.circuit.reachable_size() <= crate::bounds::thm3_size(nnf.fiw, n));
        assert!(r.sdd.size(r.root) <= crate::bounds::thm4_size(r.report.sdw, n));
    }
}

#[test]
fn apply_route_agrees_with_semantic_route() {
    let c = families::clause_chain(&vars(9), 2);
    let f = c.to_boolfn().unwrap();
    let r = compile(&c);
    let r2 = Compiler::builder()
        .route(Route::Apply)
        .exact_tw_limit(18)
        .build()
        .compile(&c)
        .unwrap();
    assert_eq!(r2.report.route, ResolvedRoute::Apply);
    assert_eq!(r.count_models(), r2.count_models());
    assert!(r2.sdd.to_boolfn(r2.root).equivalent(&f));
}

#[test]
fn linear_size_in_n_at_fixed_width() {
    // Result 1's shape: for the clause-chain family (fixed window), SDD
    // size grows linearly in n.
    let sizes: Vec<usize> = [6u32, 9, 12]
        .iter()
        .map(|&n| {
            let c = families::clause_chain(&vars(n), 2);
            compile(&c).sdd_size()
        })
        .collect();
    // Ratio between consecutive sizes stays bounded (no blow-up).
    assert!(sizes[2] < sizes[0] * 6, "sizes {sizes:?} not linear-ish");
}

#[test]
fn errors_are_typed() {
    let mut b = circuit::CircuitBuilder::new();
    let t = b.constant(true);
    let c = b.build(t);
    assert!(matches!(
        Compiler::new().compile(&c),
        Err(CompileError::NoVariables)
    ));
}
