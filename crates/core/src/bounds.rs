//! Every numeric bound of the paper, as checkable functions.
//!
//! The bounds are doubly/triply exponential, so each is exposed both as an
//! exact saturating `u128` (when it fits) and as a `log₂` value in `f64`
//! (always). Experiment E6/E7 compares these against measured widths.

/// A bound that may exceed `u128`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Bound {
    /// `log₂` of the bound.
    pub log2: f64,
}

impl Bound {
    fn from_log2(log2: f64) -> Self {
        Bound { log2 }
    }

    /// The bound as an integer, if it fits in `u128`.
    pub fn as_u128(self) -> Option<u128> {
        if self.log2 < 127.0 {
            Some((self.log2.exp2()).round() as u128)
        } else {
            None
        }
    }

    /// Does `value` respect the bound?
    pub fn admits(self, value: u128) -> bool {
        (value as f64).log2() <= self.log2 + 1e-9
    }
}

/// Lemma 1: `fw(F) ≤ 2^{(k+2)·2^{k+1}}` for `k = ctw(F)`.
pub fn lemma1_fw_bound(k: usize) -> Bound {
    Bound::from_log2((k as f64 + 2.0) * (k as f64 + 1.0).exp2())
}

/// Eq. (22): `fiw(F) ≤ fw(F)²`.
pub fn eq22_fiw_from_fw(fw: usize) -> u128 {
    (fw as u128).saturating_mul(fw as u128)
}

/// Eq. (22) chained through Lemma 1: `fiw(F) ≤ 2^{(k+2)·2^{k+2}}`.
pub fn eq22_fiw_bound(k: usize) -> Bound {
    Bound::from_log2((k as f64 + 2.0) * (k as f64 + 2.0).exp2())
}

/// Eq. (29), first inequality: `sdw(F) ≤ 2^{2·fw(F)+1}`.
pub fn eq29_sdw_from_fw(fw: usize) -> Bound {
    Bound::from_log2(2.0 * fw as f64 + 1.0)
}

/// Eq. (29) chained through Lemma 1:
/// `sdw(F) ≤ 2^{2^{(k+2)·2^{k+1}+1}+1}`.
pub fn eq29_sdw_bound(k: usize) -> Bound {
    let inner = (k as f64 + 2.0) * (k as f64 + 1.0).exp2() + 1.0;
    Bound::from_log2(inner.exp2() + 1.0)
}

/// Proposition 2 / Eq. (23): `ctw(F) ≤ 3·fiw(F)`.
pub fn prop2_ctw_from_fiw(fiw: usize) -> usize {
    3 * fiw
}

/// Eq. (30): `ctw(F) ≤ 3·sdw(F)`.
pub fn eq30_ctw_from_sdw(sdw: usize) -> usize {
    3 * sdw
}

/// Theorem 3's gate count: `|C_{F,T}| ≤ 2n + 1 + 3·k·(n−1)` for `k = fiw`.
pub fn thm3_size(fiw: usize, n: usize) -> usize {
    2 * n + 1 + 3 * fiw * n.saturating_sub(1)
}

/// Theorem 4's gate count: `|S_{F,T}| ≤ 2(n+1) + 3·k·(n−1)` for `k = sdw`.
/// (We compare against element counts, which the same bound dominates.)
pub fn thm4_size(sdw: usize, n: usize) -> usize {
    2 * (n + 1) + 3 * sdw * n.saturating_sub(1)
}

/// Eq. (4) / Result 1: SDD size `O(f(k)·n)` — the linear-in-n form with the
/// Lemma-1 constant.
pub fn result1_size_bound(k: usize, n: usize) -> Bound {
    let width = eq29_sdw_bound(k);
    Bound::from_log2(width.log2 + (n.max(1) as f64).log2() + 2.0)
}

/// Eq. (1), Jha–Suciu: OBDD size `n^{O(f(k))}` with `f` double exponential —
/// returned as the exponent `f(k) = 2^{(k+2)·2^{k+1}}` so experiments can
/// report `n^{f(k)}` vs the paper's linear bound.
pub fn eq1_obdd_exponent(k: usize) -> Bound {
    lemma1_fw_bound(k)
}

/// Eq. (3), Petke–Razgon: decomposable (non-deterministic) forms of size
/// `O(g(k)·m)` with `g` single exponential; `m` = circuit size.
pub fn eq3_petke_razgon(k: usize, m: usize) -> Bound {
    Bound::from_log2(k as f64 + (m.max(1) as f64).log2())
}

/// Theorem 5: deterministic structured NNF size of an inversion-`k` lineage
/// on `Θ(n²)` variables is at least `2^{n/(5k)} − 1` (from the proof's
/// Claims 3–4).
pub fn thm5_lower(n: usize, k: usize) -> Bound {
    Bound::from_log2(n as f64 / (5.0 * k.max(1) as f64))
}

/// Proposition 3: `ISA_n` has SDD size `O(n^{13/5})`.
pub fn prop3_isa_sdd_size(n: usize) -> Bound {
    Bound::from_log2(2.6 * (n.max(2) as f64).log2() + 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_values() {
        // k = 0: 2^(2·2) = 16; k = 1: 2^(3·4) = 4096; k = 2: 2^(4·8) = 2^32.
        assert_eq!(lemma1_fw_bound(0).as_u128(), Some(16));
        assert_eq!(lemma1_fw_bound(1).as_u128(), Some(4096));
        assert_eq!(lemma1_fw_bound(2).as_u128(), Some(1 << 32));
        // k = 5: 2^(7·64) = 2^448 — beyond u128 but log2 is finite.
        assert_eq!(lemma1_fw_bound(5).as_u128(), None);
        assert!((lemma1_fw_bound(5).log2 - 448.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_are_monotone() {
        for k in 0..6 {
            assert!(lemma1_fw_bound(k).log2 < lemma1_fw_bound(k + 1).log2);
            assert!(eq22_fiw_bound(k).log2 < eq22_fiw_bound(k + 1).log2);
            assert!(eq29_sdw_bound(k).log2 < eq29_sdw_bound(k + 1).log2);
        }
    }

    #[test]
    fn fiw_is_fw_squared() {
        assert_eq!(eq22_fiw_from_fw(7), 49);
        // Chained: fiw bound = (fw bound)^2 in log2 terms.
        for k in 0..4 {
            let a = 2.0 * lemma1_fw_bound(k).log2;
            let b = eq22_fiw_bound(k).log2;
            assert!((a - b).abs() < 1e-9, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn admits_behaviour() {
        let b = lemma1_fw_bound(1); // 4096
        assert!(b.admits(4096));
        assert!(b.admits(2));
        assert!(!b.admits(5000));
    }

    #[test]
    fn linear_sizes() {
        assert_eq!(thm3_size(4, 10), 20 + 1 + 3 * 4 * 9);
        assert_eq!(thm4_size(4, 10), 22 + 3 * 4 * 9);
    }

    #[test]
    fn thm5_growth() {
        // Doubling n doubles the exponent; growing k shrinks it.
        assert!(thm5_lower(100, 1).log2 > thm5_lower(50, 1).log2);
        assert!(thm5_lower(100, 2).log2 < thm5_lower(100, 1).log2);
        assert!((thm5_lower(100, 1).log2 - 20.0).abs() < 1e-9);
    }
}
