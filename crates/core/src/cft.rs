//! The canonical deterministic structured NNF `C_{F,T}` (paper §3.2.1,
//! Eqs. 17–21, Lemma 4, Theorem 3) and factorized implicant width
//! (Definition 4).
//!
//! For every vtree node `v` and factor `H` of `F` relative to `Y_v`, the
//! construction produces a circuit `C_{v,H}` computing the *guard* of `H`:
//!
//! * leaf `v = {x}`: `⊤`, `x` or `¬x`, depending on the guard (Eqs. 17–19);
//! * internal `v`: `⋁_{(G,G') ∈ impl(F,H,Y_w,Y_w')} (C_{w,G} ∧ C_{w',G'})`
//!   (Eq. 20) — deterministic by Lemma 3, structured by `v`.
//!
//! `C_{F,T} = C_{r,F}` where at the root the factor whose cofactor is the
//! constant-1 function over `∅` *is* `F` (Eq. 21).

use crate::implicants::{ImplicantTable, VtreeFactors};
use boolfunc::BoolFn;
use circuit::{Circuit, CircuitBuilder, GateId};
use vtree::Vtree;

/// Output of the `C_{F,T}` construction.
pub struct CftResult {
    /// The canonical deterministic structured NNF computing `F`.
    pub circuit: Circuit,
    /// ∧-gates structured by each vtree node (Definition 4's per-node count).
    pub and_gates_per_node: Vec<usize>,
    /// `fiw(F, T) = max_v` of the above.
    pub fiw: usize,
    /// `fw(F, T)` measured along the way (Definition 2).
    pub fw: usize,
}

/// Build `C_{F,T}`.
///
/// The vtree must cover the support of `f`; extra (dummy) leaves are allowed
/// and produce `⊤`-guard leaves exactly as in the paper's Lemma 1 vtrees.
pub fn cft(f: &BoolFn, t: &Vtree) -> CftResult {
    assert!(
        f.vars().iter().all(|v| t.contains_var(v)),
        "vtree must cover the support"
    );
    let ctx = VtreeFactors::compute(f, t);
    let mut b = CircuitBuilder::new();
    // gate[v][h] = gate computing the guard of factor h at node v.
    let mut gate: Vec<Vec<GateId>> = vec![Vec::new(); t.num_nodes()];
    let mut and_gates_per_node = vec![0usize; t.num_nodes()];
    // Vtree arenas store children before parents: one bottom-up pass.
    for v in t.node_ids() {
        if t.is_leaf(v) {
            gate[v.index()] = ctx
                .at(v)
                .iter()
                .map(|fac| guard_leaf_gate(&mut b, &fac.guard))
                .collect();
        } else {
            let (w, w2) = t.children(v).expect("internal");
            let table = ImplicantTable::build(&ctx, v);
            and_gates_per_node[v.index()] = table.num_pairs();
            gate[v.index()] = (0..ctx.at(v).len())
                .map(|h| {
                    let terms: Vec<GateId> = table
                        .implicants_of(h)
                        .into_iter()
                        .map(|(i, j)| {
                            let gl = gate[w.index()][i];
                            let gr = gate[w2.index()][j];
                            b.and2(gl, gr)
                        })
                        .collect();
                    b.or_fold(&terms)
                })
                .collect();
        }
    }
    // Root: the factor inducing the constant-1 cofactor over ∅ is F itself.
    let root = t.root();
    let out = ctx
        .at(root)
        .iter()
        .position(|fac| fac.cofactor.as_constant() == Some(true))
        .map(|h| gate[root.index()][h])
        .unwrap_or_else(|| b.constant(false)); // F unsatisfiable
    let circuit = b.build(out);
    CftResult {
        circuit,
        fiw: and_gates_per_node.iter().copied().max().unwrap_or(0),
        and_gates_per_node,
        fw: ctx.width(),
    }
}

/// Leaf cases (Eqs. 17–19): the guard over at most one variable is `⊤`, `x`
/// or `¬x`.
fn guard_leaf_gate(b: &mut CircuitBuilder, guard: &BoolFn) -> GateId {
    match guard.num_vars() {
        0 => b.constant(true), // dummy leaf or inessential variable
        1 => {
            let v = guard.vars().iter().next().expect("one var");
            match (guard.eval_index(0), guard.eval_index(1)) {
                (true, true) => b.constant(true),
                (false, true) => b.literal(v, true),
                (true, false) => b.literal(v, false),
                (false, false) => unreachable!("factor guards are nonempty"),
            }
        }
        _ => unreachable!("leaf guards have at most one variable"),
    }
}

/// `fiw(F) = min_T fiw(F, T)` by exhaustive vtree enumeration over the
/// essential support (guarded by `max_n`; `(2n−3)!!` vtrees).
pub fn min_fiw(f: &BoolFn, max_n: usize) -> (usize, Vtree) {
    let ess = f.minimize_support();
    let vars: Vec<_> = ess.vars().iter().collect();
    if vars.is_empty() {
        let v = f.vars().iter().next().unwrap_or(vtree::VarId(0));
        let t = Vtree::right_linear(&[v]).expect("single leaf");
        return (cft(&ess, &t).fiw, t);
    }
    let mut best: Option<(usize, Vtree)> = None;
    for t in vtree::all_vtrees(&vars, max_n) {
        let w = cft(&ess, &t).fiw;
        if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
            best = Some((w, t));
        }
    }
    best.expect("at least one vtree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::{families, VarSet};
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    /// Lemma 4: `C_{F,T}` computes `F`, is deterministic, and is structured
    /// by `T` — on random functions and random vtrees.
    #[test]
    fn lemma4_all_properties() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..15 {
            let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
            let t = Vtree::random(&vars(5), &mut rng).unwrap();
            let r = cft(&f, &t);
            let g = r.circuit.to_boolfn().unwrap();
            assert!(g.equivalent(&f), "trial {trial}: C_F,T ≢ F");
            r.circuit.check_nnf().unwrap();
            r.circuit.check_decomposable().unwrap();
            r.circuit.check_deterministic().unwrap();
            r.circuit.check_structured_by(&t).unwrap();
        }
    }

    /// Theorem 3: |C_{F,T}| ≤ 2n + 1 + 3·fiw·(n−1) (the paper's gate count).
    #[test]
    fn theorem3_size_bound() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 6usize;
            let f = BoolFn::random(VarSet::from_slice(&vars(n as u32)), &mut rng);
            let t = Vtree::balanced(&vars(n as u32)).unwrap();
            let r = cft(&f, &t);
            let bound = crate::bounds::thm3_size(r.fiw, n);
            assert!(
                r.circuit.reachable_size() <= bound,
                "size {} exceeds O(kn) bound {bound}",
                r.circuit.reachable_size()
            );
        }
    }

    /// Parity: fiw = 4 (2 factors on each side, all pairs used), size O(n).
    #[test]
    fn parity_linear_size() {
        for n in [4u32, 6, 8, 10] {
            let f = families::parity(&vars(n));
            let t = Vtree::balanced(&vars(n)).unwrap();
            let r = cft(&f, &t);
            assert_eq!(r.fw, 2);
            assert_eq!(r.fiw, 4);
            assert!(
                r.circuit.reachable_size() <= 13 * n as usize,
                "n={n}: size {}",
                r.circuit.reachable_size()
            );
            assert!(r.circuit.to_boolfn().unwrap().equivalent(&f));
        }
    }

    /// Constants and unsatisfiable functions.
    #[test]
    fn degenerate_functions() {
        let t = Vtree::balanced(&vars(3)).unwrap();
        let bot = BoolFn::constant(VarSet::from_slice(&vars(3)), false);
        let r = cft(&bot, &t);
        assert_eq!(r.circuit.to_boolfn().unwrap().as_constant(), Some(false));
        let top = BoolFn::constant(VarSet::from_slice(&vars(3)), true);
        let r = cft(&top, &t);
        assert_eq!(r.circuit.to_boolfn().unwrap().as_constant(), Some(true));
    }

    /// Dummy vtree leaves (variables outside the support) are handled as ⊤
    /// guards — the shape Lemma 1 vtrees produce.
    #[test]
    fn dummy_leaves_ok() {
        let f = BoolFn::literal(VarId(0), true).and(&BoolFn::literal(VarId(2), true));
        let t = Vtree::balanced(&vars(4)).unwrap(); // x1, x3 are dummies
        let r = cft(&f, &t);
        assert!(r.circuit.to_boolfn().unwrap().equivalent(&f));
        r.circuit.check_structured_by(&t).unwrap();
    }

    /// fiw minimization beats bad vtrees on the pair-matching function.
    #[test]
    fn min_fiw_finds_good_tree() {
        let eq02 = BoolFn::literal(VarId(0), true)
            .xor(&BoolFn::literal(VarId(2), true))
            .not();
        let eq13 = BoolFn::literal(VarId(1), true)
            .xor(&BoolFn::literal(VarId(3), true))
            .not();
        let f = eq02.and(&eq13);
        let bad = Vtree::balanced(&vars(4)).unwrap();
        let w_bad = cft(&f, &bad).fiw;
        let (w_min, t_min) = min_fiw(&f, 4);
        assert!(w_min < w_bad, "min {w_min} !< bad {w_bad}");
        assert!(cft(&f, &t_min).circuit.to_boolfn().unwrap().equivalent(&f));
    }

    /// On a right-linear (OBDD) vtree, C_{F,T} is an OBDD in circuit form:
    /// its per-node ∧-gate count relates to OBDD width (§1, Eq. 2 discussion:
    /// the construction "compiles a circuit of pathwidth k into an OBDD").
    #[test]
    fn right_linear_vtree_tracks_obdd_width() {
        let f = families::parity(&vars(6));
        let t = Vtree::right_linear(&vars(6)).unwrap();
        let r = cft(&f, &t);
        let mut m = obdd::Obdd::new(vars(6));
        let root = m.from_boolfn(&f);
        let w = m.width(root);
        // Each OBDD node at a level yields at most 2 implicant pairs.
        assert!(r.fiw <= 2 * (w + 1), "fiw {} vs OBDD width {w}", r.fiw);
    }
}
