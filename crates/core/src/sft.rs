//! The canonical SDD construction `S_{F,T}` (paper §3.2.2, Eqs. 24–28,
//! Lemmas 5–6, Theorem 4) and SDD width (Definition 5).
//!
//! The construction generalizes `C_{F,T}` from single factors to **sets of
//! factors** `H ⊆ factors(F, Y_v)`, computing `⋁_{H ∈ H} H`. At an internal
//! node, each left factor `G` determines the set `S_G` of right factors it
//! can be completed with (Lemma 5); grouping left factors by equal `S_G`
//! yields the sentential decision `⋁ (P_i ∧ S_i)` satisfying the SDD
//! conditions (SD1)–(SD3) — built here directly into an [`SddManager`], so
//! canonicity can be *checked by node identity* against apply-based
//! compilation.

use crate::implicants::{ImplicantTable, VtreeFactors};
use boolfunc::BoolFn;
use sdd::{SddId, SddManager, FALSE, TRUE};
use vtree::fxhash::FxHashMap;
use vtree::{Vtree, VtreeNodeId};

/// Output of the `S_{F,T}` construction.
pub struct SftResult {
    /// Manager holding the SDD (over the input vtree).
    pub manager: SddManager,
    /// Root node of `S_{F,T}`.
    pub root: SddId,
    /// `sdw(F, T)` (Definition 5): max ∧-gates structured by one vtree node.
    pub sdw: usize,
    /// `fw(F, T)` measured along the way.
    pub fw: usize,
}

/// Build the canonical SDD `S_{F,T}` by the paper's direct construction.
pub fn sft(f: &BoolFn, t: &Vtree) -> SftResult {
    assert!(
        f.vars().iter().all(|v| t.contains_var(v)),
        "vtree must cover the support"
    );
    let ctx = VtreeFactors::compute(f, t);
    let fw = ctx.width();
    // Implicant tables for every internal node, computed once.
    let tables: FxHashMap<VtreeNodeId, ImplicantTable> = t
        .internal_nodes()
        .map(|v| (v, ImplicantTable::build(&ctx, v)))
        .collect();
    let mut mgr = SddManager::new(t.clone());
    let mut memo: FxHashMap<(VtreeNodeId, Vec<usize>), SddId> = FxHashMap::default();
    let root_node = t.root();
    let target = ctx
        .at(root_node)
        .iter()
        .position(|fac| fac.cofactor.as_constant() == Some(true));
    let root = match target {
        Some(h) => build(&ctx, &tables, &mut mgr, t, root_node, &[h], &mut memo),
        None => FALSE,
    };
    let sdw = mgr.width(root);
    SftResult {
        manager: mgr,
        root,
        sdw,
        fw,
    }
}

/// `C_{v,H}` for a sorted set `hs` of factor indices at `v` (Eq. 27 / the
/// leaf cases of §3.2.2).
fn build(
    ctx: &VtreeFactors<'_>,
    tables: &FxHashMap<VtreeNodeId, ImplicantTable>,
    mgr: &mut SddManager,
    t: &Vtree,
    v: VtreeNodeId,
    hs: &[usize],
    memo: &mut FxHashMap<(VtreeNodeId, Vec<usize>), SddId>,
) -> SddId {
    if hs.is_empty() {
        return FALSE;
    }
    if hs.len() == ctx.at(v).len() {
        // ⋁ over all factors = ⊤ (Eq. 10: factors partition the space).
        return TRUE;
    }
    if let Some(&id) = memo.get(&(v, hs.to_vec())) {
        return id;
    }
    let id = if t.is_leaf(v) {
        // At most two factors at a leaf; a proper nonempty subset is a
        // single factor whose guard is a literal (⊤/⊥ handled above).
        debug_assert_eq!(hs.len(), 1);
        let guard = &ctx.at(v)[hs[0]].guard;
        debug_assert_eq!(guard.num_vars(), 1, "proper subset implies 2 factors");
        let var = guard.vars().iter().next().expect("one var");
        let positive = guard.eval_index(1);
        mgr.literal(var, positive)
    } else {
        let (w, w2) = t.children(v).expect("internal");
        let table = &tables[&v];
        // S_G for each left factor, grouped by equality (Eq. 25 → Eq. 26).
        let mut groups: FxHashMap<Vec<usize>, Vec<usize>> = FxHashMap::default();
        for (i, row) in table.class.iter().enumerate() {
            let s_g: Vec<usize> = (0..row.len()).filter(|&j| hs.contains(&row[j])).collect();
            groups.entry(s_g).or_default().push(i);
        }
        let mut elems = Vec::with_capacity(groups.len());
        // Deterministic iteration order for reproducibility.
        let mut entries: Vec<(Vec<usize>, Vec<usize>)> = groups.into_iter().collect();
        entries.sort();
        for (s_set, p_set) in entries {
            let prime = build(ctx, tables, mgr, t, w, &p_set, memo);
            let sub = build(ctx, tables, mgr, t, w2, &s_set, memo);
            elems.push((prime, sub));
        }
        mgr.decision(v, elems)
    };
    memo.insert((v, hs.to_vec()), id);
    id
}

/// `sdw(F) = min_T sdw(F, T)` by exhaustive vtree enumeration (guarded).
pub fn min_sdw(f: &BoolFn, max_n: usize) -> (usize, Vtree) {
    let ess = f.minimize_support();
    let vars: Vec<_> = ess.vars().iter().collect();
    if vars.is_empty() {
        let v = f.vars().iter().next().unwrap_or(vtree::VarId(0));
        let t = Vtree::right_linear(&[v]).expect("single leaf");
        return (sft(&ess, &t).sdw, t);
    }
    let mut best: Option<(usize, Vtree)> = None;
    for t in vtree::all_vtrees(&vars, max_n) {
        let w = sft(&ess, &t).sdw;
        if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
            best = Some((w, t));
        }
    }
    best.expect("at least one vtree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::{families, VarSet};
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    /// Lemma 6 + canonicity: S_{F,T} computes F, satisfies the SDD
    /// invariants, and — being canonical — is the *same node* the manager's
    /// apply-based compiler produces.
    #[test]
    fn sft_is_the_canonical_sdd() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..15 {
            let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
            let t = Vtree::random(&vars(5), &mut rng).unwrap();
            let mut r = sft(&f, &t);
            assert!(
                r.manager.to_boolfn(r.root).equivalent(&f),
                "trial {trial}: semantics"
            );
            r.manager.validate(r.root).unwrap();
            let applied = r.manager.from_boolfn(&f);
            assert_eq!(
                r.root, applied,
                "trial {trial}: S_F,T differs from the canonical apply-compiled SDD"
            );
        }
    }

    /// Theorem 4: canonical SDD size O(sdw · n).
    #[test]
    fn theorem4_size_bound() {
        for n in [4u32, 6, 8] {
            let f = families::parity(&vars(n));
            let t = Vtree::balanced(&vars(n)).unwrap();
            let r = sft(&f, &t);
            let size = r.manager.size(r.root);
            let bound = crate::bounds::thm4_size(r.sdw, n as usize);
            assert!(size <= bound, "n={n}: SDD size {size} > bound {bound}");
            assert_eq!(r.sdw, 4, "parity sdw");
        }
    }

    /// Degenerate cases.
    #[test]
    fn constants() {
        let t = Vtree::balanced(&vars(3)).unwrap();
        let bot = BoolFn::constant(VarSet::from_slice(&vars(3)), false);
        let r = sft(&bot, &t);
        assert_eq!(r.root, FALSE);
        let top = BoolFn::constant(VarSet::from_slice(&vars(3)), true);
        let r = sft(&top, &t);
        assert_eq!(r.root, TRUE);
    }

    /// A single literal compiles to the literal node.
    #[test]
    fn literal_compiles_to_literal() {
        let f = BoolFn::literal(VarId(1), false);
        let t = Vtree::balanced(&vars(3)).unwrap();
        let mut r = sft(&f, &t);
        let lit = r.manager.literal(VarId(1), false);
        assert_eq!(r.root, lit);
    }

    /// OBDD special case: on right-linear vtrees, sdw coincides (up to the
    /// ⊥-sub element) with OBDD width behaviour — checked via counts.
    #[test]
    fn right_linear_matches_obdd_counts() {
        let f = families::majority(&vars(5));
        let t = Vtree::right_linear(&vars(5)).unwrap();
        let r = sft(&f, &t);
        assert_eq!(r.manager.count_models(r.root) as u64, f.count_models());
    }

    /// Eq. 29 (first inequality): sdw(F,T) ≤ 2^{2·fw(F,T)+1}.
    #[test]
    fn eq29_width_bound() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
            let t = Vtree::random(&vars(5), &mut rng).unwrap();
            let r = sft(&f, &t);
            let bound = 1usize << (2 * r.fw + 1).min(30);
            assert!(r.sdw <= bound, "sdw {} > 2^(2·{}+1)", r.sdw, r.fw);
        }
    }

    /// min_sdw is never larger than any fixed-vtree sdw.
    #[test]
    fn min_sdw_minimizes() {
        let (f, xs, ys) = families::disjointness(2);
        let (w_min, _) = min_sdw(&f, 4);
        let mut separated = Vec::new();
        separated.extend_from_slice(&xs);
        separated.extend_from_slice(&ys);
        let t = Vtree::right_linear(&separated).unwrap();
        let w_sep = sft(&f, &t).sdw;
        assert!(w_min <= w_sep);
    }
}
