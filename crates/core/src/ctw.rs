//! Circuit treewidth tooling (Result 2 / Proposition 1, constructive
//! substitute — see DESIGN.md substitution S2).
//!
//! Proposition 1 proves `ctw(F)` computable via Seese's decidability of MSO
//! on bounded-treewidth graphs — a result with no implementable algorithm.
//! This module replaces it by *constructive* two-sided bounds that decide
//! `ctw(F) ≤ k` whenever they meet:
//!
//! * **upper bounds**: exact treewidth of concrete circuits computing `F`
//!   (its minterm DNF; the paper's own `C_{F,T}` over a good vtree, which by
//!   Proposition 2 has treewidth ≤ 3·fiw(F));
//! * **lower bounds**: Lemma 1 read contrapositively — if
//!   `fw(F) > 2^{(k+2)·2^{k+1}}` then `ctw(F) > k` (weak but sound, as the
//!   bound is triple exponential), plus the trivial edge bound.

use crate::bounds;
use boolfunc::{min_factor_width, BoolFn};
use circuit::Circuit;

/// The treewidth of a given circuit (exact when the primal graph is small).
pub fn treewidth_of_circuit(c: &Circuit, exact_limit: usize) -> usize {
    let (g, _) = c.primal_graph();
    graphtw::treewidth(&g, exact_limit).0
}

/// Constructive upper bound on `ctw(F)`: the best treewidth among candidate
/// circuits computing `F`. Returns `(bound, witness circuit)`.
///
/// `enum_limit` guards the vtree enumerations (`min_fiw`), `exact_tw_limit`
/// the exact treewidth computations.
pub fn ctw_upper(f: &BoolFn, enum_limit: usize, exact_tw_limit: usize) -> (usize, Circuit) {
    let mut candidates: Vec<Circuit> = Vec::new();
    // Minterm DNF (Proposition 1's starting point for the search cap).
    candidates.push(circuit::families::dnf_of(f));
    // The paper's own compilation: C_{F,T} over a balanced vtree.
    let ess = f.minimize_support();
    if !ess.vars().is_empty() {
        let vars: Vec<_> = ess.vars().iter().collect();
        let t = vtree::Vtree::balanced(&vars).expect("nonempty");
        candidates.push(crate::cft::cft(&ess, &t).circuit);
        // And over the fiw-minimizing vtree when enumeration is feasible.
        if vars.len() <= enum_limit {
            let (_, t_best) = crate::cft::min_fiw(&ess, enum_limit);
            candidates.push(crate::cft::cft(&ess, &t_best).circuit);
        }
    }
    candidates
        .into_iter()
        .map(|c| (treewidth_of_circuit(&c, exact_tw_limit), c))
        .min_by_key(|(w, _)| *w)
        .expect("at least one candidate")
}

/// Sound lower bound on `ctw(F)` via Lemma 1's contrapositive. Requires the
/// exact factor width, hence the vtree enumeration guard.
pub fn ctw_lower(f: &BoolFn, enum_limit: usize) -> usize {
    let ess = f.minimize_support();
    if ess.vars().is_empty() {
        return 0;
    }
    let (fw, _) = min_factor_width(&ess, enum_limit);
    // Smallest k with fw ≤ lemma1_fw_bound(k); ctw ≥ that k.
    let mut k = 0;
    while !bounds::lemma1_fw_bound(k).admits(fw as u128) {
        k += 1;
    }
    k
}

/// Decide `ctw(F) ≤ k` when the constructive bounds suffice; `None` when
/// they do not meet (the honest outcome of replacing Seese's theorem).
pub fn decide_ctw_le(
    f: &BoolFn,
    k: usize,
    enum_limit: usize,
    exact_tw_limit: usize,
) -> Option<bool> {
    let (upper, _) = ctw_upper(f, enum_limit, exact_tw_limit);
    if upper <= k {
        return Some(true);
    }
    if ctw_lower(f, enum_limit) > k {
        return Some(false);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::{families, VarSet};
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn literal_has_ctw_zero() {
        let f = BoolFn::literal(VarId(0), true);
        let (u, _) = ctw_upper(&f, 4, 12);
        assert_eq!(u, 0);
        assert_eq!(decide_ctw_le(&f, 0, 4, 12), Some(true));
    }

    #[test]
    fn parity_has_small_ctw_upper() {
        let f = families::parity(&vars(4));
        let (u, witness) = ctw_upper(&f, 4, 14);
        assert!(u <= 4, "parity ctw upper {u}");
        assert!(witness.to_boolfn().unwrap().equivalent(&f));
    }

    #[test]
    fn lower_bound_sound() {
        // Lemma 1's bound at k=0 is 16, so any function with fw ≤ 16 gets
        // lower bound 0 — sound, if weak.
        let f = families::majority(&vars(5));
        let l = ctw_lower(&f, 5);
        let (u, _) = ctw_upper(&f, 5, 14);
        assert!(l <= u, "lower {l} > upper {u}");
    }

    #[test]
    fn decide_is_consistent() {
        let f = families::parity(&vars(4));
        let (u, _) = ctw_upper(&f, 4, 14);
        assert_eq!(decide_ctw_le(&f, u, 4, 14), Some(true));
        // Below the lower bound, must say false (here lower is likely 0, so
        // only check that the API does not contradict itself).
        if let Some(ans) = decide_ctw_le(&f, 0, 4, 14) {
            if ans {
                assert!(u <= 3);
            }
        }
    }

    /// Proposition 2 in action: ctw(F) ≤ 3·fiw(F), verified by measuring the
    /// treewidth of the C_{F,T} witness.
    #[test]
    fn prop2_via_witness() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for _ in 0..5 {
            let f = BoolFn::random(VarSet::from_slice(&vars(4)), &mut rng);
            let (fiw, t) = crate::cft::min_fiw(&f, 4);
            let witness = crate::cft::cft(&f.minimize_support(), &t).circuit;
            let tw = treewidth_of_circuit(&witness, 18);
            assert!(
                tw <= crate::bounds::prop2_ctw_from_fiw(fiw).max(1),
                "tw {tw} > 3·fiw = {}",
                3 * fiw
            );
        }
    }
}
