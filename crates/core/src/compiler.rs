//! The unified compilation session API: [`Compiler`], configured through
//! [`CompilerBuilder`], turning circuits into canonical SDDs (and, on the
//! semantic route, `C_{F,T}` NNFs) with every strategy choice of the
//! pipeline exposed as an enum instead of hard-coded:
//!
//! * [`TwBackend`] — how the primal graph is decomposed (exact subset DP,
//!   min-fill, min-degree, or the size-dispatched `Auto`);
//! * [`VtreeStrategy`] — where the vtree comes from (the paper's Lemma 1,
//!   SDD-size search, or a balanced baseline);
//! * [`Route`] — how the SDD is built (the paper's semantic `S_{F,T}`
//!   construction, bottom-up apply, or `Auto`, which picks apply exactly
//!   when the variable count exceeds the truth-table kernel cap);
//! * [`Validation`] — how much of the result is re-checked.
//!
//! Every compilation returns a [`Compilation`] carrying a [`CompileReport`]
//! with per-stage wall-clock timings and all the widths the paper defines
//! (`tw`, `fw`, `fiw`, `sdw`), and fails with the unified [`CompileError`].
//!
//! ```
//! use sentential_core::{Compiler, Route, TwBackend};
//! use vtree::VarId;
//!
//! let vars: Vec<VarId> = (0..8).map(VarId).collect();
//! let c = circuit::families::clause_chain(&vars, 2);
//! let compiled = Compiler::builder()
//!     .tw_backend(TwBackend::Exact)
//!     .route(Route::Semantic)
//!     .build()
//!     .compile(&c)
//!     .unwrap();
//! assert_eq!(
//!     compiled.count_models() as u64,
//!     c.to_boolfn().unwrap().count_models(),
//! );
//! println!("{}", compiled.report);
//! ```

use crate::cft::{cft, CftResult};
use crate::sft::sft;
use crate::vtree_extract::{vtree_from_circuit_with, ExtractError, ExtractStats};
use crate::vtree_search;
use boolfunc::{BoolFn, BoolFnError};
use circuit::{Circuit, StructureError};
use graphtw::ExactError;
use rand::SeedableRng;
use sdd::{ApplyStats, SddId, SddManager};
use std::fmt;
use std::time::{Duration, Instant};
use vtree::{VarId, Vtree};

/// How to decompose the circuit's primal graph (the Lemma-1 ingredient).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum TwBackend {
    /// Exact subset dynamic programming ([`graphtw::exact_treewidth`]);
    /// fails with [`CompileError::ExactTreewidthIntractable`] beyond
    /// [`graphtw::exact::MAX_EXACT_VERTICES`] vertices.
    Exact,
    /// The min-fill elimination heuristic.
    MinFill,
    /// The min-degree elimination heuristic.
    MinDegree,
    /// Exact when the graph is within the session's `exact_tw_limit`,
    /// otherwise the better of min-fill and min-degree.
    #[default]
    Auto,
}

impl fmt::Display for TwBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TwBackend::Exact => "exact",
            TwBackend::MinFill => "min-fill",
            TwBackend::MinDegree => "min-degree",
            TwBackend::Auto => "auto",
        })
    }
}

/// Where the vtree guiding the compilation comes from.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum VtreeStrategy {
    /// The paper's Lemma 1: hang variable leaves off the forget nodes of a
    /// nice tree decomposition. Comes with the `fw ≤ 2^{(k+2)·2^{k+1}}`
    /// guarantee.
    #[default]
    Lemma1,
    /// Random-restart search minimizing SDD size
    /// ([`vtree_search::best_vtree_sampled`]); semantic, so it requires the
    /// truth-table kernel.
    Search,
    /// A balanced vtree over the circuit's variables — the baseline SDD
    /// compilers start from.
    Balanced,
}

impl fmt::Display for VtreeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VtreeStrategy::Lemma1 => "lemma1",
            VtreeStrategy::Search => "search",
            VtreeStrategy::Balanced => "balanced",
        })
    }
}

/// Which structural graph of a CNF formula drives the Lemma-1
/// decomposition in [`Compiler::compile_cnf`](crate::Compiler::compile_cnf).
///
/// The primal graph cliques every clause (a single `n`-literal clause costs
/// treewidth `n - 1`); the incidence graph replaces each clique by a star
/// through a clause vertex (its treewidth never exceeds primal + 1 and can
/// be arbitrarily smaller on long clauses). [`GraphKind::Auto`] decomposes
/// both and keeps whichever reported the smaller width.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// The variable-interaction graph (one vertex per variable, cliques
    /// per clause) — the classical primal-treewidth route.
    #[default]
    Primal,
    /// The bipartite variable/clause graph; clause vertices enter the
    /// decomposition as auxiliary (variable-free) vertices.
    Incidence,
    /// Decompose both graphs with the session's backend and take the one
    /// with the smaller reported width.
    Auto,
}

impl fmt::Display for GraphKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphKind::Primal => "primal",
            GraphKind::Incidence => "incidence",
            GraphKind::Auto => "auto",
        })
    }
}

/// The graph a CNF compilation actually decomposed after resolving
/// [`GraphKind::Auto`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ResolvedGraph {
    /// The primal (variable-interaction) graph.
    Primal,
    /// The incidence (variable/clause) graph.
    Incidence,
}

impl fmt::Display for ResolvedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResolvedGraph::Primal => "primal",
            ResolvedGraph::Incidence => "incidence",
        })
    }
}

/// One decomposition probe a CNF compilation actually ran (recorded in
/// `CountReport::probes`): which graph was decomposed and the width it
/// reported. Under [`GraphKind::Auto`] this shows whether the second
/// probe was skipped — a primal width ≤ 1 is already minimal (the
/// incidence width can only tie on a nonempty formula), so Auto stops
/// after the first probe instead of decomposing both graphs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GraphProbe {
    /// The graph that was decomposed.
    pub graph: ResolvedGraph,
    /// The width its decomposition reported.
    pub width: usize,
}

/// How the SDD is built once the vtree is fixed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Route {
    /// The paper's `S_{F,T}` construction (Theorem 4) plus the `C_{F,T}`
    /// NNF (Theorem 3). Requires the truth-table kernel
    /// (≤ [`boolfunc::MAX_VARS`] variables).
    Semantic,
    /// Bottom-up apply over the circuit — no kernel cap, no NNF output.
    Apply,
    /// [`Route::Semantic`] when the variable count fits the kernel,
    /// [`Route::Apply`] beyond it.
    #[default]
    Auto,
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Route::Semantic => "semantic",
            Route::Apply => "apply",
            Route::Auto => "auto",
        })
    }
}

/// The route a compilation actually took after resolving [`Route::Auto`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ResolvedRoute {
    Semantic,
    Apply,
}

impl fmt::Display for ResolvedRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResolvedRoute::Semantic => "semantic",
            ResolvedRoute::Apply => "apply",
        })
    }
}

/// How much of the output is re-checked before it is returned.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Validation {
    /// Trust the constructions.
    None,
    /// Validate the SDD's structural invariants (placement, compression,
    /// ⊥-primes) — linear in the SDD, safe at any size.
    #[default]
    Basic,
    /// [`Validation::Basic`] plus the semantic partition checks, the NNF's
    /// determinism/structuredness checks (semantic route), and — on any
    /// route whose variable count fits the truth-table kernel — semantic
    /// equivalence of every output against the input circuit.
    Full,
}

impl fmt::Display for Validation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Validation::None => "none",
            Validation::Basic => "basic",
            Validation::Full => "full",
        })
    }
}

/// A [`Compiler`]'s configuration. Build one with [`Compiler::builder`];
/// the `Default` matches the former free-function behavior
/// (`Auto`/`Lemma1`/`Auto`, exact-treewidth limit 16).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Decomposition backend for [`VtreeStrategy::Lemma1`].
    pub tw_backend: TwBackend,
    /// Vtree provenance.
    pub vtree_strategy: VtreeStrategy,
    /// SDD construction route.
    pub route: Route,
    /// Which CNF graph drives [`Compiler::compile_cnf`]'s decomposition
    /// (ignored by the circuit pipeline, which always uses the circuit's
    /// own primal graph).
    pub graph_kind: GraphKind,
    /// Largest primal graph handed to exact treewidth under
    /// [`TwBackend::Auto`].
    pub exact_tw_limit: usize,
    /// Whether [`Compiler::compile_cnf`] runs the exact counting stage
    /// (`BigUint` model count, `Rational` weighted count) after compiling.
    /// Exact bignum arithmetic is quadratic in the variable count on
    /// chain-scale inputs, so serving sessions that only need the compiled
    /// SDD (e.g. `kb::KnowledgeBase`) turn it off and query counts on
    /// demand instead.
    pub exact_counts: bool,
    /// Output checking level.
    pub validation: Validation,
    /// Random restarts for [`VtreeStrategy::Search`].
    pub search_samples: usize,
    /// Seed for [`VtreeStrategy::Search`] (search is deterministic per seed).
    pub search_seed: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            tw_backend: TwBackend::Auto,
            vtree_strategy: VtreeStrategy::Lemma1,
            route: Route::Auto,
            graph_kind: GraphKind::Primal,
            exact_tw_limit: 16,
            exact_counts: true,
            validation: Validation::Basic,
            search_samples: 64,
            search_seed: 0xC0FFEE,
        }
    }
}

/// Builder for [`Compiler`] sessions.
///
/// ```
/// use sentential_core::{Compiler, Route, TwBackend, Validation, VtreeStrategy};
///
/// let compiler = Compiler::builder()
///     .tw_backend(TwBackend::MinFill)
///     .vtree_strategy(VtreeStrategy::Lemma1)
///     .route(Route::Apply)
///     .exact_tw_limit(20)
///     .validation(Validation::Full)
///     .build();
/// # let _ = compiler;
/// ```
#[derive(Clone, Debug, Default)]
pub struct CompilerBuilder {
    opts: CompileOptions,
}

impl CompilerBuilder {
    /// Start from the default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Choose the tree-decomposition backend.
    pub fn tw_backend(mut self, backend: TwBackend) -> Self {
        self.opts.tw_backend = backend;
        self
    }

    /// Choose the vtree strategy.
    pub fn vtree_strategy(mut self, strategy: VtreeStrategy) -> Self {
        self.opts.vtree_strategy = strategy;
        self
    }

    /// Choose the SDD construction route.
    pub fn route(mut self, route: Route) -> Self {
        self.opts.route = route;
        self
    }

    /// Choose which CNF graph [`Compiler::compile_cnf`] decomposes.
    pub fn graph_kind(mut self, kind: GraphKind) -> Self {
        self.opts.graph_kind = kind;
        self
    }

    /// Bound the exact-treewidth computation under [`TwBackend::Auto`].
    pub fn exact_tw_limit(mut self, limit: usize) -> Self {
        self.opts.exact_tw_limit = limit;
        self
    }

    /// Enable or disable [`Compiler::compile_cnf`]'s exact counting stage
    /// (on by default; serving sessions turn it off).
    pub fn exact_counts(mut self, on: bool) -> Self {
        self.opts.exact_counts = on;
        self
    }

    /// Choose the output checking level.
    pub fn validation(mut self, level: Validation) -> Self {
        self.opts.validation = level;
        self
    }

    /// Random restarts for [`VtreeStrategy::Search`].
    pub fn search_samples(mut self, samples: usize) -> Self {
        self.opts.search_samples = samples;
        self
    }

    /// Seed for [`VtreeStrategy::Search`].
    pub fn search_seed(mut self, seed: u64) -> Self {
        self.opts.search_seed = seed;
        self
    }

    /// Finish the session.
    pub fn build(self) -> Compiler {
        Compiler { opts: self.opts }
    }
}

/// A configured compilation session: circuit in, canonical SDD (plus report,
/// plus `C_{F,T}` on the semantic route) out. Sessions are cheap, immutable,
/// and reusable across circuits.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    opts: CompileOptions,
}

/// Unified error for the whole pipeline. Absorbs the per-stage errors
/// (`ExtractError`, `BoolFnError`, `SddError`, `StructureError`) through
/// `From` impls.
#[derive(Debug)]
pub enum CompileError {
    /// Constant circuit — nothing to hang a vtree on.
    NoVariables,
    /// A semantic stage (the `Semantic` route or `Search` vtrees) needs a
    /// truth table exceeding the kernel cap.
    TooManyVars(BoolFnError),
    /// [`TwBackend::Exact`] was forced on a primal graph beyond the exact
    /// solver's hard cap.
    ExactTreewidthIntractable(ExactError),
    /// The compiled SDD failed validation.
    Validation(sdd::SddError),
    /// The compiled NNF failed a structure check.
    Structure(StructureError),
    /// Full validation found an output not equivalent to the input.
    NotEquivalent {
        /// Which output disagreed ("nnf" or "sdd").
        output: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoVariables => write!(f, "circuit has no variables"),
            CompileError::TooManyVars(e) => write!(f, "semantic route unavailable: {e}"),
            CompileError::ExactTreewidthIntractable(e) => {
                write!(f, "exact treewidth backend unavailable: {e}")
            }
            CompileError::Validation(e) => write!(f, "SDD validation failed: {e}"),
            CompileError::Structure(e) => write!(f, "NNF structure check failed: {e}"),
            CompileError::NotEquivalent { output } => {
                write!(
                    f,
                    "compiled {output} is not equivalent to the input circuit"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::TooManyVars(e) => Some(e),
            CompileError::ExactTreewidthIntractable(e) => Some(e),
            CompileError::Validation(e) => Some(e),
            CompileError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExtractError> for CompileError {
    fn from(_: ExtractError) -> Self {
        CompileError::NoVariables
    }
}

impl From<BoolFnError> for CompileError {
    fn from(e: BoolFnError) -> Self {
        CompileError::TooManyVars(e)
    }
}

impl From<ExactError> for CompileError {
    fn from(e: ExactError) -> Self {
        CompileError::ExactTreewidthIntractable(e)
    }
}

impl From<sdd::SddError> for CompileError {
    fn from(e: sdd::SddError) -> Self {
        CompileError::Validation(e)
    }
}

impl From<StructureError> for CompileError {
    fn from(e: StructureError) -> Self {
        CompileError::Structure(e)
    }
}

/// Wall-clock time spent in each pipeline stage.
#[derive(Copy, Clone, Debug, Default)]
pub struct StageTimings {
    /// Truth-table construction (semantic route / search vtrees only).
    pub kernel: Duration,
    /// Decomposition + vtree extraction (or search / balancing).
    pub vtree: Duration,
    /// The `C_{F,T}` construction (semantic route only).
    pub nnf: Duration,
    /// SDD construction (`S_{F,T}` or apply).
    pub sdd: Duration,
    /// Output checking.
    pub validate: Duration,
    /// End-to-end, including bookkeeping.
    pub total: Duration,
}

/// Everything a compilation measured: strategy resolution, widths, sizes,
/// and per-stage timings. `Display` renders a human-readable block.
#[must_use]
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// The options the session ran with.
    pub options: CompileOptions,
    /// Route taken after resolving [`Route::Auto`].
    pub route: ResolvedRoute,
    /// Variables in the input circuit.
    pub num_vars: usize,
    /// Gates in the input circuit.
    pub circuit_size: usize,
    /// Width of the tree decomposition used (Lemma-1 vtrees only).
    pub treewidth: Option<usize>,
    /// Nodes in the nice tree decomposition (Lemma-1 vtrees only).
    pub nice_nodes: Option<usize>,
    /// Vertices of the primal graph (Lemma-1 vtrees only).
    pub primal_vertices: Option<usize>,
    /// `fw(F, T)` (Definition 2; semantic route only).
    pub fw: Option<usize>,
    /// `fiw(F, T)` (Definition 4; semantic route only).
    pub fiw: Option<usize>,
    /// `sdw(F, T)` (Definition 5).
    pub sdw: usize,
    /// Gates in the `C_{F,T}` NNF (semantic route only).
    pub nnf_size: Option<usize>,
    /// Elements in the compiled SDD.
    pub sdd_size: usize,
    /// Nodes allocated by the SDD manager.
    pub sdd_nodes: usize,
    /// Apply/cache counters from the SDD manager (nonzero on the apply
    /// route; the semantic construction bypasses apply).
    pub apply: ApplyStats,
    /// Estimated resident bytes of the SDD manager — node table, element
    /// arena, unique table and caches ([`SddManager::memory_bytes`]).
    pub mem_bytes: usize,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl CompileReport {
    /// Publish the run into telemetry: one `compile_runs_total{lane="circuit"}`
    /// tick, stage wall-clock into `compile_stage_us{lane,stage}` histograms,
    /// the paper's width parameters into `compile_width{param}` histograms
    /// (and `compile_last_width{param}` gauges for at-a-glance dashboards),
    /// and the kernel's apply counters via [`ApplyStats::publish`].
    pub fn publish(&self, reg: &obs::MetricsRegistry) {
        let lane = [("lane", "circuit")];
        reg.counter("compile_runs_total", &lane).inc();
        for (stage, d) in [
            ("kernel", self.timings.kernel),
            ("vtree", self.timings.vtree),
            ("nnf", self.timings.nnf),
            ("sdd", self.timings.sdd),
            ("validate", self.timings.validate),
            ("total", self.timings.total),
        ] {
            reg.histogram("compile_stage_us", &[("lane", "circuit"), ("stage", stage)])
                .record_duration_us(d);
        }
        let widths = [
            ("tw", self.treewidth),
            ("fw", self.fw),
            ("fiw", self.fiw),
            ("sdw", Some(self.sdw)),
        ];
        for (param, w) in widths {
            if let Some(w) = w {
                reg.histogram("compile_width", &[("param", param)])
                    .record(w as u64);
                reg.gauge("compile_last_width", &[("param", param)])
                    .set(w as f64);
            }
        }
        self.apply.publish(reg);
        reg.gauge("sdd_mem_bytes", &[]).set(self.mem_bytes as f64);
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compiled {} vars, {} gates via {}/{}/{} in {:.2?}",
            self.num_vars,
            self.circuit_size,
            self.options.vtree_strategy,
            self.options.tw_backend,
            self.route,
            self.timings.total,
        )?;
        if let Some(tw) = self.treewidth {
            writeln!(f, "  treewidth {tw}")?;
        }
        match (self.fw, self.fiw) {
            (Some(fw), Some(fiw)) => writeln!(f, "  fw {fw}  fiw {fiw}  sdw {}", self.sdw)?,
            _ => writeln!(f, "  sdw {}", self.sdw)?,
        }
        if let Some(n) = self.nnf_size {
            writeln!(f, "  C_F,T {n} gates")?;
        }
        writeln!(
            f,
            "  SDD {} elements ({} nodes allocated, ~{} KiB, {} applies, {} cache hits)",
            self.sdd_size,
            self.sdd_nodes,
            self.mem_bytes / 1024,
            self.apply.apply_calls,
            self.apply.cache_hits
        )?;
        write!(
            f,
            "  stages: kernel {:.2?} | vtree {:.2?} | nnf {:.2?} | sdd {:.2?} | validate {:.2?}",
            self.timings.kernel,
            self.timings.vtree,
            self.timings.nnf,
            self.timings.sdd,
            self.timings.validate,
        )
    }
}

/// A compiled circuit: the canonical SDD, the vtree that shaped it, the
/// `C_{F,T}` NNF when the semantic route ran, and the session report.
pub struct Compilation {
    /// The vtree the compilation was structured by.
    pub vtree: Vtree,
    /// Manager holding the compiled SDD.
    pub sdd: SddManager,
    /// Root of the compiled SDD.
    pub root: SddId,
    /// The `C_{F,T}` construction (semantic route only).
    pub nnf: Option<CftResult>,
    /// Strategy resolution, widths, sizes, timings.
    pub report: CompileReport,
}

impl fmt::Debug for Compilation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Compilation")
            .field("root", &self.root)
            .field("nnf", &self.nnf.as_ref().map(|_| "CftResult"))
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl Compilation {
    /// Models of the compiled function over the vtree's variables.
    ///
    /// Panics when the count exceeds `u128` (see
    /// [`sdd::SddManager::count_models`]); use
    /// [`Compilation::count_models_exact`] or
    /// [`Compilation::count_models_checked`] on inputs with more than 128
    /// variables.
    pub fn count_models(&self) -> u128 {
        self.sdd.count_models(self.root)
    }

    /// Exact model count at any size (`arith::BigUint` — never overflows).
    pub fn count_models_exact(&self) -> arith::BigUint {
        self.sdd.count_models_exact(self.root)
    }

    /// Exact model count as `u128`, `None` when it needs more than 128
    /// bits — the typed-overflow alternative to [`Compilation::count_models`].
    pub fn count_models_checked(&self) -> Option<u128> {
        self.sdd.count_models_checked(self.root)
    }

    /// Weighted model count under independent `P(v = 1) = prob(v)`.
    pub fn probability(&self, prob: impl Fn(VarId) -> f64) -> f64 {
        self.sdd.probability(self.root, prob)
    }

    /// Elements in the compiled SDD.
    pub fn sdd_size(&self) -> usize {
        self.sdd.size(self.root)
    }
}

impl Compiler {
    /// A session with [`CompileOptions::default`].
    pub fn new() -> Self {
        Compiler::default()
    }

    /// Start configuring a session.
    pub fn builder() -> CompilerBuilder {
        CompilerBuilder::new()
    }

    /// A session with explicit options.
    pub fn with_options(opts: CompileOptions) -> Self {
        Compiler { opts }
    }

    /// The session's configuration.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Compile a circuit end to end: vtree (per [`VtreeStrategy`]) → SDD
    /// (per [`Route`]), validated per [`Validation`], everything timed.
    pub fn compile(&self, c: &Circuit) -> Result<Compilation, CompileError> {
        let t_total = Instant::now();
        let opts = &self.opts;
        let circuit_vars = c.vars();
        let num_vars = circuit_vars.len();
        if num_vars == 0 {
            return Err(CompileError::NoVariables);
        }

        let route = match opts.route {
            Route::Semantic => ResolvedRoute::Semantic,
            Route::Apply => ResolvedRoute::Apply,
            Route::Auto => {
                if num_vars <= boolfunc::MAX_VARS {
                    ResolvedRoute::Semantic
                } else {
                    ResolvedRoute::Apply
                }
            }
        };

        // Kernel stage: the truth table, wherever a semantic stage needs it
        // (Full validation takes it opportunistically — apply-route outputs
        // can only be equivalence-checked while the kernel cap holds).
        let t_kernel = Instant::now();
        let needs_kernel = route == ResolvedRoute::Semantic
            || opts.vtree_strategy == VtreeStrategy::Search
            || (opts.validation == Validation::Full && num_vars <= boolfunc::MAX_VARS);
        let f: Option<BoolFn> = if needs_kernel {
            Some(c.to_boolfn()?)
        } else {
            None
        };
        let kernel_time = t_kernel.elapsed();

        // Vtree stage.
        let t_vtree = Instant::now();
        let (vtree, stats): (Vtree, Option<ExtractStats>) = match opts.vtree_strategy {
            VtreeStrategy::Lemma1 => {
                let (vt, st) = self.lemma1_vtree(c)?;
                (vt, Some(st))
            }
            VtreeStrategy::Balanced => {
                let vars: Vec<VarId> = circuit_vars.iter().collect();
                (Vtree::balanced(&vars).expect("nonempty"), None)
            }
            VtreeStrategy::Search => {
                let f = f.as_ref().expect("search is semantic");
                let mut rng = rand::rngs::StdRng::seed_from_u64(opts.search_seed);
                let (_, vt) = vtree_search::best_vtree_sampled(
                    f,
                    vtree_search::Objective::Size,
                    opts.search_samples,
                    &mut rng,
                );
                (vt, None)
            }
        };
        let vtree_time = t_vtree.elapsed();

        // NNF + SDD stages.
        let mut nnf: Option<CftResult> = None;
        let mut nnf_time = Duration::ZERO;
        let (manager, root, fw, sdw) = match route {
            ResolvedRoute::Semantic => {
                let f = f.as_ref().expect("semantic route");
                let t_nnf = Instant::now();
                nnf = Some(cft(f, &vtree));
                nnf_time = t_nnf.elapsed();
                let t_sdd = Instant::now();
                let r = sft(f, &vtree);
                let sdd_time = t_sdd.elapsed();
                (r.manager, r.root, Some(r.fw), (r.sdw, sdd_time))
            }
            ResolvedRoute::Apply => {
                let t_sdd = Instant::now();
                let mut mgr = SddManager::new(vtree.clone());
                let root = mgr.from_circuit(c);
                let sdw = mgr.width(root);
                let sdd_time = t_sdd.elapsed();
                (mgr, root, None, (sdw, sdd_time))
            }
        };
        let (sdw, sdd_time) = sdw;

        // Validation stage.
        let t_validate = Instant::now();
        match opts.validation {
            Validation::None => {}
            Validation::Basic => manager.validate_structure(root)?,
            Validation::Full => manager.validate(root)?,
        }
        if opts.validation == Validation::Full {
            if let Some(nnf) = &nnf {
                nnf.circuit.check_deterministic()?;
                nnf.circuit.check_structured_by(&vtree)?;
            }
            if let Some(f) = &f {
                if let Some(nnf) = &nnf {
                    let computed = nnf.circuit.to_boolfn()?;
                    if !computed.equivalent(f) {
                        return Err(CompileError::NotEquivalent { output: "nnf" });
                    }
                }
                if !manager.to_boolfn(root).equivalent(f) {
                    return Err(CompileError::NotEquivalent { output: "sdd" });
                }
            }
        }
        let validate_time = t_validate.elapsed();

        let report = CompileReport {
            options: opts.clone(),
            route,
            num_vars,
            circuit_size: c.size(),
            treewidth: stats.as_ref().map(|s| s.treewidth),
            nice_nodes: stats.as_ref().map(|s| s.nice_nodes),
            primal_vertices: stats.as_ref().map(|s| s.primal_vertices),
            fw,
            fiw: nnf.as_ref().map(|r| r.fiw),
            sdw,
            nnf_size: nnf.as_ref().map(|r| r.circuit.reachable_size()),
            sdd_size: manager.size(root),
            sdd_nodes: manager.num_allocated(),
            apply: manager.apply_stats(),
            mem_bytes: manager.memory_bytes(),
            timings: StageTimings {
                kernel: kernel_time,
                vtree: vtree_time,
                nnf: nnf_time,
                sdd: sdd_time,
                validate: validate_time,
                total: t_total.elapsed(),
            },
        };

        Ok(Compilation {
            vtree,
            sdd: manager,
            root,
            nnf,
            report,
        })
    }

    /// The Lemma-1 vtree under the session's [`TwBackend`].
    fn lemma1_vtree(&self, c: &Circuit) -> Result<(Vtree, ExtractStats), CompileError> {
        if self.opts.tw_backend == TwBackend::Exact {
            let (g, _) = c.primal_graph();
            self.ensure_exact_feasible(&g)?;
        }
        let (vt, st) = vtree_from_circuit_with(c, |g| self.decompose_graph(g))?;
        Ok((vt, st))
    }

    /// Can the exact subset-DP backend afford this graph? The single
    /// source of truth for the cap — [`Compiler::ensure_exact_feasible`]
    /// and `GraphKind::Auto`'s probe both consult it.
    pub(crate) fn exact_feasible(&self, g: &graphtw::Graph) -> bool {
        g.num_vertices() <= graphtw::exact::MAX_EXACT_VERTICES
    }

    /// Fail eagerly (and typed) when [`TwBackend::Exact`] is forced on a
    /// graph beyond the subset-DP cap, instead of panicking inside
    /// [`Compiler::decompose_graph`].
    pub(crate) fn ensure_exact_feasible(&self, g: &graphtw::Graph) -> Result<(), CompileError> {
        if !self.exact_feasible(g) {
            return Err(CompileError::ExactTreewidthIntractable(
                ExactError::TooLarge {
                    vertices: g.num_vertices(),
                },
            ));
        }
        Ok(())
    }

    /// The session's `(width, elimination order)` decomposition — the
    /// [`TwBackend`] seam shared by the circuit pipeline (gate-level primal
    /// graphs) and the CNF pipeline (variable-level primal graphs,
    /// [`Compiler::compile_cnf`]).
    pub(crate) fn decompose_graph(&self, g: &graphtw::Graph) -> (usize, graphtw::EliminationOrder) {
        match self.opts.tw_backend {
            TwBackend::Auto => graphtw::treewidth(g, self.opts.exact_tw_limit),
            TwBackend::Exact => {
                graphtw::exact_treewidth(g).expect("checked via ensure_exact_feasible")
            }
            TwBackend::MinFill => {
                let order = graphtw::min_fill_order(g);
                (graphtw::width_of_order(g, &order), order)
            }
            TwBackend::MinDegree => {
                let order = graphtw::min_degree_order(g);
                (graphtw::width_of_order(g, &order), order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::families;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn defaults_match_former_pipeline() {
        let c = families::clause_chain(&vars(8), 2);
        let compiled = Compiler::new().compile(&c).unwrap();
        assert_eq!(compiled.report.route, ResolvedRoute::Semantic);
        assert!(compiled.nnf.is_some());
        let f = c.to_boolfn().unwrap();
        assert_eq!(compiled.count_models() as u64, f.count_models());
        assert!(compiled.sdd.to_boolfn(compiled.root).equivalent(&f));
    }

    #[test]
    fn builder_sets_every_knob() {
        let compiler = Compiler::builder()
            .tw_backend(TwBackend::MinDegree)
            .vtree_strategy(VtreeStrategy::Balanced)
            .route(Route::Apply)
            .graph_kind(GraphKind::Auto)
            .exact_tw_limit(4)
            .validation(Validation::None)
            .search_samples(7)
            .search_seed(99)
            .build();
        let o = compiler.options();
        assert_eq!(o.tw_backend, TwBackend::MinDegree);
        assert_eq!(o.vtree_strategy, VtreeStrategy::Balanced);
        assert_eq!(o.route, Route::Apply);
        assert_eq!(o.graph_kind, GraphKind::Auto);
        assert_eq!(o.exact_tw_limit, 4);
        assert_eq!(o.validation, Validation::None);
        assert_eq!(o.search_samples, 7);
        assert_eq!(o.search_seed, 99);
    }

    #[test]
    fn apply_route_reports_apply_stats() {
        let c = families::clause_chain(&vars(9), 3);
        let compiled = Compiler::builder()
            .route(Route::Apply)
            .build()
            .compile(&c)
            .unwrap();
        assert_eq!(compiled.report.route, ResolvedRoute::Apply);
        assert!(compiled.nnf.is_none());
        assert!(compiled.report.apply.apply_calls > 0);
        assert_eq!(
            compiled.count_models() as u64,
            c.to_boolfn().unwrap().count_models()
        );
    }

    #[test]
    fn exact_backend_rejects_large_primal_graphs() {
        // A clause chain over 30 variables has > 24 primal vertices.
        let c = families::clause_chain(&vars(30), 2);
        let err = Compiler::builder()
            .tw_backend(TwBackend::Exact)
            .route(Route::Apply)
            .build()
            .compile(&c)
            .unwrap_err();
        assert!(matches!(err, CompileError::ExactTreewidthIntractable(_)));
    }

    #[test]
    fn semantic_route_rejects_beyond_kernel_cap() {
        let c = families::clause_chain(&vars(boolfunc::MAX_VARS as u32 + 1), 2);
        let err = Compiler::builder()
            .route(Route::Semantic)
            .build()
            .compile(&c)
            .unwrap_err();
        assert!(matches!(err, CompileError::TooManyVars(_)));
    }

    #[test]
    fn auto_route_switches_on_kernel_cap() {
        let small = families::and_or_chain(&vars(6));
        let compiled = Compiler::new().compile(&small).unwrap();
        assert_eq!(compiled.report.route, ResolvedRoute::Semantic);

        let big = families::and_or_chain(&vars(boolfunc::MAX_VARS as u32 + 4));
        let compiled = Compiler::new().compile(&big).unwrap();
        assert_eq!(compiled.report.route, ResolvedRoute::Apply);
        assert_eq!(
            compiled.count_models(),
            // and_or_chain is satisfiable; spot-check against the OBDD.
            {
                let mut ob = obdd::Obdd::new(vars(boolfunc::MAX_VARS as u32 + 4));
                let root = ob.from_circuit(&big);
                ob.count_models(root)
            }
        );
    }

    #[test]
    fn search_and_balanced_vtrees_agree_with_lemma1() {
        let c = families::parity_chain(&vars(7));
        let expect = c.to_boolfn().unwrap().count_models();
        for strategy in [
            VtreeStrategy::Lemma1,
            VtreeStrategy::Search,
            VtreeStrategy::Balanced,
        ] {
            let compiled = Compiler::builder()
                .vtree_strategy(strategy)
                .validation(Validation::Full)
                .build()
                .compile(&c)
                .unwrap();
            assert_eq!(compiled.count_models() as u64, expect, "{strategy}");
        }
    }

    #[test]
    fn full_validation_covers_apply_route() {
        // Within the kernel cap, Full validation equivalence-checks the
        // apply route too (the kernel is built just for the check) …
        let c = families::clause_chain(&vars(8), 2);
        let compiled = Compiler::builder()
            .route(Route::Apply)
            .validation(Validation::Full)
            .build()
            .compile(&c)
            .unwrap();
        assert_eq!(compiled.report.route, ResolvedRoute::Apply);
        assert!(compiled.nnf.is_none());
        // … and beyond the cap it degrades gracefully instead of erroring.
        let big = families::and_or_chain(&vars(boolfunc::MAX_VARS as u32 + 2));
        Compiler::builder()
            .route(Route::Apply)
            .validation(Validation::Full)
            .build()
            .compile(&big)
            .unwrap();
    }

    #[test]
    fn constant_circuit_rejected() {
        let mut b = circuit::CircuitBuilder::new();
        let t = b.constant(true);
        let c = b.build(t);
        assert!(matches!(
            Compiler::new().compile(&c),
            Err(CompileError::NoVariables)
        ));
    }

    #[test]
    fn report_displays_and_times() {
        let c = families::clause_chain(&vars(8), 2);
        let compiled = Compiler::new().compile(&c).unwrap();
        let shown = compiled.report.to_string();
        assert!(shown.contains("sdw"), "report: {shown}");
        assert!(compiled.report.timings.total >= compiled.report.timings.sdd);
        assert!(compiled.report.treewidth.is_some());
    }

    #[test]
    fn errors_compose_via_from() {
        fn api() -> Result<(), CompileError> {
            Err(ExtractError::NoVariables)?;
            Ok(())
        }
        assert!(matches!(api(), Err(CompileError::NoVariables)));
    }
}
