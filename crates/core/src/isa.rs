//! Appendix A: `ISA_n` has SDD size `O(n^{13/5})`.
//!
//! Two artifacts:
//!
//! * [`isa_vtree`] — the witness vtree `T_n` (the paper's Figure 4):
//!   right-linear over the address variables `Y_k`, whose unique right leaf
//!   is replaced by a *left-linear* subtree over the storage variables `Z_m`;
//! * [`appendix_a_circuit`] — the paper's **explicit construction**
//!   (Claims 5–6): a deterministic NNF structured by `T_n` whose upper part
//!   is an OBDD over `Y_k` with `2^k` sources, each source a sentential
//!   decision at the node `v_{2^m}` whose primes are *small terms* on `Z_m`
//!   (at most `m+1` variables, folded into ∧-chains along the left-linear
//!   subtree). Its size is `O(n^{13/5})` while OBDDs for `ISA_n` grow
//!   exponentially — the separation OBDD(nᴼ⁽¹⁾) ⊊ SDD(nᴼ⁽¹⁾) of Figure 1.
//!
//! The *canonical* SDD for `(ISA_n, T_n)` (built by [`compile_isa`]) is a
//! different object: compression can make it larger than the explicit form
//! (Van den Broeck & Darwiche 2015); the benchmark reports both.

use boolfunc::families::IsaLayout;
use circuit::{Circuit, CircuitBuilder, GateId};
use sdd::{SddId, SddManager};
use vtree::{Vtree, VtreeShape};

/// The Appendix-A vtree `T_n = T(Y_k, Z_m)` for an ISA layout.
pub fn isa_vtree(layout: &IsaLayout) -> Vtree {
    // Left-linear over Z: (((z1 z2) z3) …).
    let mut z_shape = VtreeShape::Leaf(layout.zs[0]);
    for &z in &layout.zs[1..] {
        z_shape = VtreeShape::node(z_shape, VtreeShape::Leaf(z));
    }
    // Right-linear over Y with the Z-subtree as the final right child.
    let mut shape = z_shape;
    for &y in layout.ys.iter().rev() {
        shape = VtreeShape::node(VtreeShape::Leaf(y), shape);
    }
    Vtree::from_shape(&shape).expect("distinct ISA variables")
}

/// A *small term* (Appendix A): a conjunction of at most `m + 1` literals on
/// `Z_m`, kept sorted by variable index. `lits[(j, b)]` means `z_{j+1} = b`.
type SmallTerm = Vec<(usize, bool)>;

/// The paper's explicit Appendix-A construction, as a deterministic NNF
/// structured by `T_n`.
///
/// Layout of one source `g_i` (register `i` selected): a sentential decision
/// at `v_{2^m}` — primes are small terms over `z_1 … z_{2^m−1}`, subs are
/// `⊥ / ⊤ / z_{2^m} / ¬z_{2^m}`. Register `i < 2^k−1` occupies left-side
/// storage only, so the selected index `j` is fixed by the register bits and
/// the prime splits once more on `z_j` (the proof's second case); register
/// `i = 2^k−1` contains `z_{2^m}` itself, so `j` depends on the right side
/// and the prime splits on the two candidate cells (the proof's first case,
/// "orbits"). Small terms are realized as ∧-chains in increasing variable
/// order, which structures every gate by some `v_j` of the left-linear
/// subtree; hash-consing shares common prefixes across sources.
pub fn appendix_a_circuit(layout: &IsaLayout) -> Circuit {
    let k = layout.k;
    let m = layout.m;
    let cells = 1usize << m;
    let mut b = CircuitBuilder::new();

    // One source per register index i (paper: i−1 ranges over 0..2^k−1;
    // here `i` IS the zero-based register index).
    let sources: Vec<GateId> = (0..(1usize << k))
        .map(|i| build_source(&mut b, layout, i))
        .collect();

    // Upper part: OBDD (complete decision tree with sharing) over y_1..y_k,
    // y_1 the most significant address bit.
    let mut level: Vec<GateId> = sources;
    for t in (0..k).rev() {
        let y = layout.ys[t];
        let pos = b.literal(y, true);
        let neg = b.literal(y, false);
        let next: Vec<GateId> = level
            .chunks(2)
            .map(|pair| {
                let lo = pair[0]; // y_t = 0 selects the even half
                let hi = pair[1];
                let a1 = b.and2(neg, lo);
                let a2 = b.and2(pos, hi);
                b.or2(a1, a2)
            })
            .collect();
        level = next;
    }
    debug_assert_eq!(level.len(), 1);
    let _ = cells;
    b.build(level[0])
}

/// The source `g_i`: `ISA(i, Z)` as a decision at `v_{2^m}`.
fn build_source(b: &mut CircuitBuilder, layout: &IsaLayout, i: usize) -> GateId {
    let m = layout.m;
    let cells = 1usize << m;
    let last = cells - 1; // zero-based index of z_{2^m}
    let reg_base = i * m; // zero-based indices of register i's bits
    let reg_has_last = reg_base + m > last; // true only for i = 2^k − 1
    let mut elems: Vec<GateId> = Vec::new();

    // Enumerate assignments `c` of the *left-side* register bits.
    let left_bits: Vec<usize> = (0..m)
        .map(|t| reg_base + t)
        .filter(|&z| z != last)
        .collect();
    for c in 0..(1usize << left_bits.len()) {
        let mut term: SmallTerm = left_bits
            .iter()
            .enumerate()
            .map(|(t, &z)| (z, c >> (left_bits.len() - 1 - t) & 1 == 1))
            .collect();
        term.sort_unstable();
        let bit_of = |term: &SmallTerm, z: usize| -> Option<bool> {
            term.iter().find(|&&(zz, _)| zz == z).map(|&(_, v)| v)
        };
        // The register value j (zero-based cell index) as a function of the
        // right-side variable z_{2^m} (only when the register contains it).
        let value_with = |zlast: bool| -> usize {
            let mut v = 0usize;
            for t in 0..m {
                let z = reg_base + t;
                let bit = if z == last {
                    zlast
                } else {
                    bit_of(&term, z).expect("left register bit in term")
                };
                v = v << 1 | usize::from(bit);
            }
            v
        };
        if !reg_has_last {
            // Selected cell j is fixed; accept iff z_{j+1} = 1.
            let j = value_with(false);
            if j == last {
                // Sub is the right-side literal itself.
                let prime = term_gate(b, layout, &term);
                let sub = b.literal(layout.zs[last], true);
                elems.push(b.and2(prime, sub));
            } else if let Some(v) = bit_of(&term, j) {
                // Cell inside the register: value forced by c.
                if v {
                    let prime = term_gate(b, layout, &term);
                    let t_gate = b.constant(true);
                    elems.push(b.and2(prime, t_gate));
                }
                // v = 0: the element is (prime ∧ ⊥) — omitted.
            } else {
                // Split the prime on z_{j+1}.
                for v in [false, true] {
                    if !v {
                        continue; // (prime ∧ ⊥) omitted
                    }
                    let mut t2 = term.clone();
                    t2.push((j, v));
                    t2.sort_unstable();
                    let prime = term_gate(b, layout, &t2);
                    let t_gate = b.constant(true);
                    elems.push(b.and2(prime, t_gate));
                }
            }
        } else {
            // Register contains z_{2^m}: two candidate cells (the "orbit").
            let j0 = value_with(false);
            let j1 = value_with(true);
            // Accept ⟺ (¬z_last ∧ z_{j0+1}) ∨ (z_last ∧ z_{j1+1}).
            // Case-split the prime on the left-side cells among {j0, j1}.
            let mut split_vars: Vec<usize> = [j0, j1]
                .into_iter()
                .filter(|&j| j != last && bit_of(&term, j).is_none())
                .collect();
            split_vars.sort_unstable();
            split_vars.dedup();
            for mask in 0..(1usize << split_vars.len()) {
                let mut t2 = term.clone();
                for (t, &z) in split_vars.iter().enumerate() {
                    t2.push((z, mask >> t & 1 == 1));
                }
                t2.sort_unstable();
                let bit = |j: usize| -> Option<bool> {
                    if j == last {
                        None // depends on the right side
                    } else {
                        Some(
                            t2.iter()
                                .find(|&&(zz, _)| zz == j)
                                .map(|&(_, v)| v)
                                .expect("split covers candidate cells"),
                        )
                    }
                };
                // sub(z_last) = if z_last { cell j1 } else { cell j0 }.
                let lo = bit(j0); // value of the accepting cell when z_last=0
                let hi = bit(j1);
                let sub = match (lo, hi) {
                    (Some(false), Some(false)) => continue, // ⊥ element
                    (Some(true), Some(true)) => b.constant(true),
                    (Some(false), Some(true)) => b.literal(layout.zs[last], true),
                    (Some(true), Some(false)) => b.literal(layout.zs[last], false),
                    // j1 = last: when z_last = 1 the cell IS z_last = 1.
                    (Some(false), None) => b.literal(layout.zs[last], true),
                    (Some(true), None) => b.constant(true),
                    (None, _) => unreachable!("j0 is odd, hence never 2^m−1"),
                };
                let prime = term_gate(b, layout, &t2);
                elems.push(b.and2(prime, sub));
            }
        }
    }
    b.or_fold(&elems)
}

/// A small term as an ∧-chain in increasing variable order: each gate is
/// structured by the `v_j` of its largest variable (left-linear subtree).
/// Hash-consing in the builder shares common prefixes.
fn term_gate(b: &mut CircuitBuilder, layout: &IsaLayout, term: &SmallTerm) -> GateId {
    debug_assert!(term.windows(2).all(|w| w[0].0 < w[1].0), "sorted term");
    let mut acc: Option<GateId> = None;
    for &(z, v) in term {
        let lit = b.literal(layout.zs[z], v);
        acc = Some(match acc {
            None => lit,
            Some(a) => b.and2(a, lit),
        });
    }
    acc.unwrap_or_else(|| b.constant(true))
}

/// Compile `ISA_n` to the **canonical** SDD over the Appendix-A vtree (for
/// comparison with the explicit construction). Levels 1 and 2 only — the
/// canonical form is not what Proposition 3 bounds.
pub fn compile_isa(level: usize) -> (SddManager, SddId, usize) {
    let (k, m) = IsaLayout::params_for_level(level);
    let layout = IsaLayout::new(k, m);
    let n = layout.num_vars();
    let c = circuit::families::isa_circuit(&layout);
    let vt = isa_vtree(&layout);
    let mut mgr = SddManager::new(vt);
    let root = mgr.from_circuit(&c);
    (mgr, root, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families::isa_self;

    #[test]
    fn vtree_shape_matches_figure_4() {
        let layout = IsaLayout::new(1, 2);
        let vt = isa_vtree(&layout);
        assert_eq!(vt.num_vars(), 5);
        let (l, r) = vt.children(vt.root()).unwrap();
        assert_eq!(vt.leaf_var(l), Some(layout.ys[0]));
        let (_, rr) = vt.children(r).unwrap();
        assert_eq!(vt.leaf_var(rr), Some(layout.zs[3]));
        assert_eq!(vt.to_string(), "(x0 (((x1 x2) x3) x4))");
    }

    #[test]
    fn explicit_construction_correct_isa5() {
        let layout = IsaLayout::new(1, 2);
        let c = appendix_a_circuit(&layout);
        let (f, _) = isa_self(1, 2);
        assert!(
            c.to_boolfn().unwrap().equivalent(&f),
            "Appendix A circuit ≠ ISA_5"
        );
        // Deterministic and structured by T_n (the SDD syntax, Claims 5–6).
        c.check_decomposable().unwrap();
        c.check_deterministic().unwrap();
        c.check_structured_by(&isa_vtree(&layout)).unwrap();
    }

    #[test]
    fn explicit_construction_correct_isa18() {
        let layout = IsaLayout::new(2, 4);
        let c = appendix_a_circuit(&layout);
        let (f, _) = isa_self(2, 4);
        assert!(
            c.to_boolfn().unwrap().equivalent(&f),
            "Appendix A circuit ≠ ISA_18"
        );
        c.check_decomposable().unwrap();
        c.check_structured_by(&isa_vtree(&layout)).unwrap();
    }

    /// Proposition 3's shape: the explicit construction is polynomial —
    /// compare against O(n^{13/5}) and against the OBDD.
    #[test]
    fn prop3_sizes() {
        let layout = IsaLayout::new(2, 4);
        let c = appendix_a_circuit(&layout);
        let n = layout.num_vars();
        let size = c.reachable_size();
        let bound = crate::bounds::prop3_isa_sdd_size(n);
        assert!(
            bound.admits(size as u128),
            "explicit ISA_18 size {size} vs O(n^13/5) ≈ {:?}",
            bound.as_u128()
        );
        // The OBDD under the natural order is already bigger at n = 18.
        let (f, layout) = isa_self(2, 4);
        let mut order = layout.ys.clone();
        order.extend_from_slice(&layout.zs);
        let mut ob = obdd::Obdd::new(order);
        let oroot = ob.from_boolfn(&f);
        assert!(
            ob.size(oroot) > size,
            "OBDD {} vs explicit SDD {size}",
            ob.size(oroot)
        );
    }

    /// The explicit construction scales to ISA_261 — the instance no OBDD or
    /// truth table can touch — in milliseconds, with polynomial size.
    #[test]
    fn explicit_isa261_buildable() {
        let layout = IsaLayout::new(5, 8);
        let c = appendix_a_circuit(&layout);
        let n = layout.num_vars() as u128;
        let size = c.reachable_size() as u128;
        assert!(
            crate::bounds::prop3_isa_sdd_size(n as usize).admits(size),
            "ISA_261 explicit size {size}"
        );
        // Structured by T_261 (no semantic check possible at this size).
        c.check_decomposable().unwrap();
        c.check_structured_by(&isa_vtree(&layout)).unwrap();
    }

    #[test]
    fn canonical_sdd_isa5_still_correct() {
        let (mgr, root, n) = compile_isa(1);
        assert_eq!(n, 5);
        let (f, _) = isa_self(1, 2);
        assert!(mgr.to_boolfn(root).equivalent(&f));
    }
}
