//! Vtree search: minimizing SDD size / width over vtrees.
//!
//! The paper (§1) notes that practical SDD compilers owe their edge over
//! OBDD packages to the freedom of choosing *vtrees* rather than variable
//! orders (Choi & Darwiche 2013; Oztok & Darwiche 2015). This module
//! provides that freedom three ways:
//!
//! * [`best_vtree_exhaustive`] — exact over all `(2n−3)!!` vtrees (small n);
//! * [`best_vtree_sampled`] — random restarts (any n the kernel handles);
//! * [`best_vtree_local`] — stochastic hill climbing with subtree swaps.
//!
//! These complement the paper's Lemma-1 vtree (which comes with a *bound*);
//! search often finds smaller SDDs in practice, and the E4 ablation compares
//! the two.

use crate::sft::sft;
use boolfunc::BoolFn;
use rand::Rng;
use vtree::{VarId, Vtree, VtreeShape};

/// What to minimize.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Total SDD elements.
    Size,
    /// The paper's SDD width (Definition 5).
    Width,
}

fn score(f: &BoolFn, t: &Vtree, obj: Objective) -> usize {
    let r = sft(f, t);
    match obj {
        Objective::Size => r.manager.size(r.root),
        Objective::Width => r.sdw,
    }
}

/// Exact minimization by vtree enumeration (guarded by `max_n`).
pub fn best_vtree_exhaustive(f: &BoolFn, obj: Objective, max_n: usize) -> (usize, Vtree) {
    let ess = f.minimize_support();
    let vars: Vec<VarId> = ess.vars().iter().collect();
    if vars.is_empty() {
        let v = f.vars().iter().next().unwrap_or(VarId(0));
        let t = Vtree::right_linear(&[v]).expect("single leaf");
        return (score(&ess, &t, obj), t);
    }
    vtree::all_vtrees(&vars, max_n)
        .into_iter()
        .map(|t| (score(&ess, &t, obj), t))
        .min_by_key(|(s, _)| *s)
        .expect("at least one vtree")
}

/// Random-restart search: `samples` random vtrees plus the balanced and
/// right-linear baselines.
pub fn best_vtree_sampled<R: Rng>(
    f: &BoolFn,
    obj: Objective,
    samples: usize,
    rng: &mut R,
) -> (usize, Vtree) {
    let vars: Vec<VarId> = f.vars().iter().collect();
    assert!(!vars.is_empty(), "need at least one variable");
    let mut best = {
        let t = Vtree::balanced(&vars).expect("nonempty");
        (score(f, &t, obj), t)
    };
    let rl = Vtree::right_linear(&vars).expect("nonempty");
    let s = score(f, &rl, obj);
    if s < best.0 {
        best = (s, rl);
    }
    for _ in 0..samples {
        let t = Vtree::random(&vars, rng).expect("nonempty");
        let s = score(f, &t, obj);
        if s < best.0 {
            best = (s, t);
        }
    }
    best
}

/// Stochastic hill climbing: start from the balanced vtree, propose random
/// *leaf swaps* (exchange two variables' leaves) and *subtree rotations*
/// (re-balance a random split), accept improvements, stop after
/// `stall_limit` consecutive rejections.
pub fn best_vtree_local<R: Rng>(
    f: &BoolFn,
    obj: Objective,
    stall_limit: usize,
    rng: &mut R,
) -> (usize, Vtree) {
    let vars: Vec<VarId> = f.vars().iter().collect();
    assert!(!vars.is_empty(), "need at least one variable");
    let mut current = Vtree::balanced(&vars).expect("nonempty");
    let mut best_score = score(f, &current, obj);
    let mut stall = 0;
    while stall < stall_limit {
        let candidate = mutate(&current, rng);
        let s = score(f, &candidate, obj);
        if s < best_score {
            best_score = s;
            current = candidate;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    (best_score, current)
}

/// A random structural mutation of a vtree.
fn mutate<R: Rng>(t: &Vtree, rng: &mut R) -> Vtree {
    let mut order = t.leaf_order();
    if order.len() >= 2 && rng.gen_bool(0.5) {
        // Leaf swap, preserving shape.
        let i = rng.gen_range(0..order.len());
        let j = rng.gen_range(0..order.len());
        order.swap(i, j);
        let shape = reshape(&t.to_shape(), &mut order.into_iter());
        Vtree::from_shape(&shape).expect("distinct leaves preserved")
    } else {
        // Random re-split of the leaf order.
        fn rec<R: Rng>(vars: &[VarId], rng: &mut R) -> VtreeShape {
            if vars.len() == 1 {
                VtreeShape::Leaf(vars[0])
            } else {
                let cut = rng.gen_range(1..vars.len());
                VtreeShape::node(rec(&vars[..cut], rng), rec(&vars[cut..], rng))
            }
        }
        let shape = rec(&order, rng);
        Vtree::from_shape(&shape).expect("distinct leaves")
    }
}

/// Rebuild a shape with leaves replaced, in order, from an iterator.
fn reshape(s: &VtreeShape, leaves: &mut impl Iterator<Item = VarId>) -> VtreeShape {
    match s {
        VtreeShape::Leaf(_) => VtreeShape::Leaf(leaves.next().expect("enough leaves")),
        VtreeShape::Node(l, r) => {
            let nl = reshape(l, leaves);
            let nr = reshape(r, leaves);
            VtreeShape::node(nl, nr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;
    use rand::SeedableRng;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn exhaustive_beats_or_ties_balanced() {
        let (f, _, _) = families::disjointness(2);
        let t = Vtree::balanced(&f.vars().iter().collect::<Vec<_>>()).unwrap();
        let base = score(&f, &t, Objective::Size);
        let (best, _) = best_vtree_exhaustive(&f, Objective::Size, 4);
        assert!(best <= base);
    }

    #[test]
    fn sampled_improves_on_separated_disjointness() {
        // For D_n, pairing (x_i, y_i) is much better than separated blocks;
        // random search should find something at least as good as balanced
        // over the natural (separated) order.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (f, _, _) = families::disjointness(3);
        let ids: Vec<VarId> = f.vars().iter().collect();
        let separated = Vtree::balanced(&ids).unwrap();
        let sep_size = score(&f, &separated, Objective::Size);
        let (best, _) = best_vtree_sampled(&f, Objective::Size, 60, &mut rng);
        assert!(best <= sep_size, "search {best} vs separated {sep_size}");
    }

    #[test]
    fn local_search_terminates_and_is_sane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let f = families::majority(&vars(5));
        let (s, t) = best_vtree_local(&f, Objective::Width, 20, &mut rng);
        // Result must be a real vtree over the support with a consistent score.
        assert_eq!(t.num_vars(), 5);
        assert_eq!(score(&f, &t, Objective::Width), s);
    }

    #[test]
    fn mutation_preserves_leaf_set() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = Vtree::balanced(&vars(6)).unwrap();
        for _ in 0..20 {
            let m = mutate(&t, &mut rng);
            assert_eq!(m.vars(), t.vars());
        }
    }
}
