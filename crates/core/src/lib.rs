//! The paper's contribution: factor-based compilation of bounded-treewidth
//! circuits into canonical deterministic structured NNFs and SDDs.
//!
//! Bova & Szeider, *Circuit Treewidth, Sentential Decision, and Query
//! Compilation* (PODS 2017). The pipeline is:
//!
//! ```text
//! circuit C (treewidth k)
//!   └─ primal graph → (nice) tree decomposition        [graphtw]
//!        └─ vtree T with fw(F, T) ≤ 2^{(k+2)·2^{k+1}}  [Lemma 1, vtree_extract]
//!             ├─ C_{F,T}: canonical det. structured NNF, size O(fiw·n)  [Thm 3, cft]
//!             └─ S_{F,T}: canonical SDD, size O(sdw·n)                  [Thm 4, sft]
//! ```
//!
//! Modules:
//! * [`implicants`] — factorized implicants (Definition 3) and the induced
//!   disjoint rectangle covers (Lemmas 2, 3, 5);
//! * [`mod@cft`] — the `C_{F,T}` construction and factorized implicant width
//!   (Definition 4, Theorem 3);
//! * [`mod@sft`] — the `S_{F,T}` canonical SDD construction and SDD width
//!   (Definition 5, Theorem 4, Lemma 6);
//! * [`vtree_extract`] — Lemma 1: vtrees from nice tree decompositions, at
//!   the circuit level and at the raw graph level
//!   ([`vtree_from_graph_with`]), the seam the CNF pipeline enters with
//!   primal graphs of formulas;
//! * [`mod@mc`] — exact CNF model counting
//!   ([`Compiler::compile_cnf`](compiler::Compiler::compile_cnf)):
//!   primal treewidth → vtree → SDD → `BigUint`/`Rational` semiring counts;
//! * [`mod@compiler`] — the unified [`Compiler`] session API: configurable
//!   strategies ([`TwBackend`], [`VtreeStrategy`], [`Route`]), a unified
//!   [`CompileError`], and timed [`CompileReport`]s;
//! * [`pipeline`] — the end-to-end Result 1 compilation (deprecated
//!   wrappers over [`Compiler`]);
//! * [`bounds`] — every numeric bound in the paper, as checkable functions;
//! * [`ctw`] — circuit-treewidth tooling (Result 2, constructive substitute);
//! * [`isa`] — Appendix A: the `ISA_n` vtree and its polynomial SDD;
//! * [`vtree_search`] — practical vtree minimization (the flexibility the
//!   paper credits for SDD compilers beating OBDD packages).

pub mod bounds;
pub mod cft;
pub mod compiler;
pub mod ctw;
pub mod implicants;
pub mod isa;
pub mod mc;
#[cfg(test)]
mod pipeline;
pub mod sft;
pub mod vtree_extract;
pub mod vtree_search;

pub use cft::{cft, min_fiw, CftResult};
pub use compiler::{
    Compilation, CompileError, CompileOptions, CompileReport, Compiler, CompilerBuilder, GraphKind,
    GraphProbe, ResolvedGraph, ResolvedRoute, Route, StageTimings, TwBackend, Validation,
    VtreeStrategy,
};
pub use implicants::VtreeFactors;
pub use mc::{CnfCompilation, CountReport, CountTimings};
pub use sft::{min_sdw, sft, SftResult};
pub use vtree_extract::{vtree_from_circuit, vtree_from_circuit_with, vtree_from_graph_with};
