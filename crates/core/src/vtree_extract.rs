//! Lemma 1: from a (nice) tree decomposition of a circuit to a vtree along
//! which the computed function has few factors.
//!
//! Given a circuit `C` of treewidth `k` computing `F(X)`, take a nice tree
//! decomposition `S` of `C`'s primal graph with empty root bag, so each
//! input gate (variable) is **forgotten exactly once**. Hang a leaf labelled
//! `x` off the node of `S` forgetting `x`; the resulting tree — binarized,
//! with variable-free subtrees pruned — is a vtree `T` for `X` with
//! `fw(F, T) ≤ 2^{(k+2)·2^{k+1}}` (Lemma 1; the paper keeps dummy leaves,
//! we prune them, which can only reduce factor counts, see Eq. 9).

use circuit::{Circuit, GateKind};
use graphtw::{EliminationOrder, Graph, NiceTd, TreeDecomposition};
use std::fmt;
use vtree::{VarId, Vtree, VtreeShape};

/// Statistics of the extraction.
#[derive(Clone, Debug)]
pub struct ExtractStats {
    /// Width of the tree decomposition actually used (exact if the primal
    /// graph was small enough, heuristic otherwise).
    pub treewidth: usize,
    /// Nodes in the nice tree decomposition.
    pub nice_nodes: usize,
    /// Vertices of the primal graph (reachable gates).
    pub primal_vertices: usize,
}

/// Extraction failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtractError {
    /// The circuit mentions no variables (constant circuit).
    NoVariables,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::NoVariables => write!(f, "circuit has no variable inputs"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Lemma 1: build a vtree for the circuit's variables from a nice tree
/// decomposition of its primal graph. `exact_tw_limit` bounds the exact
/// treewidth computation (larger graphs fall back to min-fill/min-degree).
pub fn vtree_from_circuit(
    c: &Circuit,
    exact_tw_limit: usize,
) -> Result<(Vtree, ExtractStats), ExtractError> {
    vtree_from_circuit_with(c, |g| graphtw::treewidth(g, exact_tw_limit))
}

/// Lemma 1 with a caller-chosen decomposition backend: `decompose` maps the
/// primal graph to `(width, elimination order)`. This is the seam the
/// [`crate::Compiler`] strategies plug into ([`crate::TwBackend`]); the
/// fixed-strategy [`vtree_from_circuit`] delegates here, as does the
/// graph-level [`vtree_from_graph_with`] that the CNF pipeline
/// ([`crate::Compiler::compile_cnf`]) enters with the *formula's* primal
/// graph (variables only, no gate vertices).
pub fn vtree_from_circuit_with(
    c: &Circuit,
    decompose: impl FnOnce(&Graph) -> (usize, EliminationOrder),
) -> Result<(Vtree, ExtractStats), ExtractError> {
    let (g, vertex_of_gate) = c.primal_graph();
    // Gate → variable map for reachable Var gates; unreachable variable
    // gates are attached at the top at the end (they do not affect F).
    let mut var_of_vertex: Vec<Option<VarId>> = vec![None; g.num_vertices()];
    let mut orphans: Vec<VarId> = Vec::new();
    for (id, kind) in c.iter() {
        if let GateKind::Var(v) = kind {
            match vertex_of_gate[id.index()] {
                Some(vx) => var_of_vertex[vx as usize] = Some(*v),
                None => orphans.push(*v),
            }
        }
    }
    vtree_from_graph_with(&g, &var_of_vertex, orphans, decompose)
}

/// The graph-level core of Lemma 1: decompose *any* graph whose vertices
/// (partially) stand for variables, take a nice tree decomposition, and
/// hang each variable's leaf off the node forgetting its vertex.
///
/// `var_of_vertex[v]` names the variable vertex `v` stands for (`None` for
/// auxiliary vertices — internal gates in the circuit pipeline, clause
/// vertices in a CNF incidence graph). `orphans` are variables with no
/// vertex at all; they are attached above the extracted shape.
///
/// This is the decomposition seam shared by every front end: circuits
/// enter via [`vtree_from_circuit_with`] with their gate-level primal
/// graph, CNF formulas via [`crate::Compiler::compile_cnf`] with their
/// variable-level primal graph — the `TwBackend` closures apply unchanged.
pub fn vtree_from_graph_with(
    g: &Graph,
    var_of_vertex: &[Option<VarId>],
    orphans: Vec<VarId>,
    decompose: impl FnOnce(&Graph) -> (usize, EliminationOrder),
) -> Result<(Vtree, ExtractStats), ExtractError> {
    assert_eq!(
        var_of_vertex.len(),
        g.num_vertices(),
        "one (optional) variable per vertex"
    );
    let any_reachable_var = var_of_vertex.iter().any(Option::is_some);
    if !any_reachable_var && orphans.is_empty() {
        return Err(ExtractError::NoVariables);
    }

    let (shape_opt, stats) = if any_reachable_var {
        let (tw, order) = decompose(g);
        let td = TreeDecomposition::from_elimination_order(g, &order);
        let nice = NiceTd::from_td(&td, g.num_vertices());
        let stats = ExtractStats {
            treewidth: tw,
            nice_nodes: nice.num_nodes(),
            primal_vertices: g.num_vertices(),
        };
        (build_shape(&nice, var_of_vertex), stats)
    } else {
        (
            None,
            ExtractStats {
                treewidth: 0,
                nice_nodes: 0,
                primal_vertices: g.num_vertices(),
            },
        )
    };

    // Attach orphan variables above the extracted shape.
    let mut parts: Vec<VtreeShape> = Vec::new();
    if let Some(s) = shape_opt {
        parts.push(s);
    }
    parts.extend(orphans.into_iter().map(VtreeShape::Leaf));
    let shape = VtreeShape::combine(parts).ok_or(ExtractError::NoVariables)?;
    let vtree = Vtree::from_shape(&shape).expect("distinct circuit variables");
    Ok((vtree, stats))
}

/// Bottom-up (iterative) shape construction over the nice TD: a node's shape
/// combines its children's shapes plus a leaf for the variable it forgets.
fn build_shape(nice: &NiceTd, var_of_vertex: &[Option<VarId>]) -> Option<VtreeShape> {
    use graphtw::NiceNodeKind;
    // Post-order over the nice TD without recursion (nice TDs are deep).
    let mut order = Vec::with_capacity(nice.num_nodes());
    let mut stack = vec![nice.root()];
    while let Some(n) = stack.pop() {
        order.push(n);
        stack.extend_from_slice(nice.children(n));
    }
    let mut shape: Vec<Option<VtreeShape>> = vec![None; nice.num_nodes()];
    for &n in order.iter().rev() {
        let mut parts: Vec<VtreeShape> = nice
            .children(n)
            .iter()
            .filter_map(|&ch| shape[ch].take())
            .collect();
        if let NiceNodeKind::Forget(vx) = nice.kind(n) {
            if let Some(var) = var_of_vertex[*vx as usize] {
                parts.push(VtreeShape::Leaf(var));
            }
        }
        shape[n] = VtreeShape::combine(parts);
    }
    shape[nice.root()].take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::factor_width;
    use boolfunc::VarSet;
    use circuit::families;
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn extracted_vtree_covers_vars() {
        let c = families::clause_chain(&vars(8), 3);
        let (vt, stats) = vtree_from_circuit(&c, 18).unwrap();
        assert_eq!(
            VarSet::from_slice(vt.vars()),
            c.vars(),
            "vtree must cover exactly the circuit variables"
        );
        assert!(stats.treewidth >= 1);
        assert!(stats.nice_nodes > 0);
    }

    /// Lemma 1's bound: fw(F, T) ≤ 2^{(k+2)·2^{k+1}} for the extracted T.
    #[test]
    fn lemma1_bound_holds() {
        for (c, label) in [
            (families::and_or_chain(&vars(7)), "chain"),
            (families::parity_chain(&vars(6)), "parity"),
            (families::clause_chain(&vars(7), 2), "clauses"),
            (families::and_or_tree(&vars(8)), "tree"),
        ] {
            let f = c.to_boolfn().unwrap();
            let (vt, stats) = vtree_from_circuit(&c, 18).unwrap();
            let fw = factor_width(&f, &vt);
            let bound = crate::bounds::lemma1_fw_bound(stats.treewidth);
            let bound_u = bound.as_u128().unwrap_or(u128::MAX);
            assert!(
                (fw as u128) <= bound_u,
                "{label}: fw {fw} > bound {bound_u} at tw {}",
                stats.treewidth
            );
        }
    }

    /// The extracted vtree actually supports the compilation pipeline: fw is
    /// *small* (not just within the triple-exponential bound) on
    /// bounded-treewidth families, independent of n.
    #[test]
    fn fw_stays_constant_as_n_grows() {
        let mut widths = Vec::new();
        for n in [6u32, 8, 10] {
            let c = families::clause_chain(&vars(n), 2);
            let f = c.to_boolfn().unwrap();
            let (vt, _) = vtree_from_circuit(&c, 18).unwrap();
            widths.push(factor_width(&f, &vt));
        }
        let max = *widths.iter().max().unwrap();
        assert!(max <= 8, "fw should stay small: {widths:?}");
    }

    #[test]
    fn constant_circuit_rejected() {
        let mut b = circuit::CircuitBuilder::new();
        let t = b.constant(true);
        let c = b.build(t);
        assert_eq!(
            vtree_from_circuit(&c, 10).unwrap_err(),
            ExtractError::NoVariables
        );
    }

    #[test]
    fn unreachable_vars_attached_as_orphans() {
        let mut b = circuit::CircuitBuilder::new();
        let x = b.var(VarId(0));
        let _dead = b.var(VarId(7));
        let nx = b.not(x);
        let c = b.build(nx);
        let (vt, _) = vtree_from_circuit(&c, 10).unwrap();
        assert!(vt.contains_var(VarId(0)));
        assert!(vt.contains_var(VarId(7)));
    }
}
