//! Exact model counting over CNF inputs: [`Compiler::compile_cnf`].
//!
//! The workload "Compilation and Fast Model Counting beyond CNF" frames as
//! canonical for width-bounded compilation: a DIMACS formula comes in, its
//! **primal treewidth** drives the same Lemma-1 vtree extraction the
//! circuit pipeline uses (via [`vtree_from_graph_with`] — the session's
//! [`TwBackend`](crate::TwBackend) applies unchanged), the clause-tree
//! circuit compiles bottom-up into a canonical SDD, and the semiring engine
//! reads off the **exact** model count ([`arith::BigUint`] — no `u128`
//! overflow) and, for weighted inputs, the exact weighted count
//! ([`arith::Rational`]).
//!
//! ```
//! use sentential_core::Compiler;
//!
//! let f = cnf::CnfFormula::from_dimacs("p cnf 3 2\n1 2 0\n-2 3 0\n").unwrap();
//! let counted = Compiler::new().compile_cnf(&f).unwrap();
//! assert_eq!(counted.count().unwrap().to_u128(), Some(4));
//! println!("{}", counted.report);
//! ```

use crate::compiler::{
    CompileError, Compiler, GraphKind, GraphProbe, ResolvedGraph, TwBackend, Validation,
};
use crate::vtree_extract::{vtree_from_graph_with, ExtractStats};
use arith::{BigUint, Rational};
use boolfunc::{Assignment, BoolFn, VarSet};
use cnf::CnfFormula;
use sdd::{ApplyStats, SddId, SddManager};
use std::fmt;
use std::time::{Duration, Instant};
use vtree::Vtree;

/// Variable-count cap under which the report also carries the semantic
/// widths `fw`/`fiw` (they need the truth-table kernel; the counting
/// pipeline itself has no such cap).
pub const SEMANTIC_WIDTHS_MAX_VARS: usize = 16;

/// Wall-clock time per counting-pipeline stage.
#[derive(Copy, Clone, Debug, Default)]
pub struct CountTimings {
    /// Primal graph, decomposition, vtree extraction.
    pub vtree: Duration,
    /// Clause-tree circuit + bottom-up SDD compilation.
    pub sdd: Duration,
    /// Semiring evaluation (exact count, exact weighted count).
    pub count: Duration,
    /// Output checking (per the session's `Validation`).
    pub validate: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// Everything a CNF counting run measured: the formula's shape, the
/// decomposition actually used, the paper's widths, the compiled SDD's
/// size, and the exact results. `Display` renders a human-readable block.
#[must_use]
#[derive(Clone, Debug)]
pub struct CountReport {
    /// Declared variables.
    pub num_vars: usize,
    /// Clauses.
    pub num_clauses: usize,
    /// The graph actually decomposed (after resolving
    /// [`GraphKind::Auto`]).
    pub graph: ResolvedGraph,
    /// Every decomposition probe the run actually performed, in order.
    /// Explicit graph kinds record one entry; [`GraphKind::Auto`] records
    /// which graphs it really decomposed — when the primal probe reports
    /// width ≤ 1 (already minimal), the incidence probe is skipped and
    /// does not appear here.
    pub probes: Vec<GraphProbe>,
    /// Width of the decomposition of [`CountReport::graph`] (exact under
    /// small / `Exact` backends, heuristic otherwise) — the treewidth
    /// upper bound the run certified for that graph.
    pub treewidth: usize,
    /// Nodes in the nice tree decomposition.
    pub nice_nodes: usize,
    /// `fw(F, T)` (Definition 2) — kernel-sized formulas only.
    pub fw: Option<usize>,
    /// `fiw(F, T)` (Definition 4) — kernel-sized formulas only.
    pub fiw: Option<usize>,
    /// `sdw(F, T)` (Definition 5) of the compiled SDD.
    pub sdw: usize,
    /// Elements in the compiled SDD.
    pub sdd_size: usize,
    /// Nodes allocated by the SDD manager.
    pub sdd_nodes: usize,
    /// Apply/cache counters from the bottom-up compilation.
    pub apply: ApplyStats,
    /// Estimated resident bytes of the SDD manager — node table, element
    /// arena, unique table and caches ([`SddManager::memory_bytes`]); the
    /// committed perf trajectory for the upcoming manager-GC work.
    pub mem_bytes: usize,
    /// The exact model count over all declared variables — `None` when
    /// the session disabled the counting stage
    /// (`CompilerBuilder::exact_counts(false)`; serving sessions count on
    /// demand instead). Always exact when present: the counting paths run
    /// on `BigUint`, never on a saturating machine integer.
    pub count: Option<BigUint>,
    /// The exact weighted count, when the formula carries weights and the
    /// counting stage ran.
    pub weighted: Option<Rational>,
    /// Per-stage wall-clock timings.
    pub timings: CountTimings,
}

impl CountReport {
    /// Publish the run into telemetry: one `compile_runs_total{lane="cnf"}`
    /// tick, stage wall-clock into `compile_stage_us{lane,stage}` histograms,
    /// the certified widths into `compile_width{param}` histograms (and
    /// `compile_last_width{param}` gauges), and the kernel's apply counters
    /// via [`ApplyStats::publish`]. This is what long-running servers scrape
    /// to notice a workload drifting into a width regime the paper's bounds
    /// say will blow up.
    pub fn publish(&self, reg: &obs::MetricsRegistry) {
        let lane = [("lane", "cnf")];
        reg.counter("compile_runs_total", &lane).inc();
        for (stage, d) in [
            ("vtree", self.timings.vtree),
            ("sdd", self.timings.sdd),
            ("count", self.timings.count),
            ("validate", self.timings.validate),
            ("total", self.timings.total),
        ] {
            reg.histogram("compile_stage_us", &[("lane", "cnf"), ("stage", stage)])
                .record_duration_us(d);
        }
        let widths = [
            ("tw", Some(self.treewidth)),
            ("fw", self.fw),
            ("fiw", self.fiw),
            ("sdw", Some(self.sdw)),
        ];
        for (param, w) in widths {
            if let Some(w) = w {
                reg.histogram("compile_width", &[("param", param)])
                    .record(w as u64);
                reg.gauge("compile_last_width", &[("param", param)])
                    .set(w as f64);
            }
        }
        self.apply.publish(reg);
        reg.gauge("sdd_mem_bytes", &[]).set(self.mem_bytes as f64);
    }
}

impl fmt::Display for CountReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.count {
            Some(c) => writeln!(
                f,
                "counted {} vars, {} clauses in {:.2?}: {} models",
                self.num_vars, self.num_clauses, self.timings.total, c,
            )?,
            None => writeln!(
                f,
                "compiled {} vars, {} clauses in {:.2?} (counting stage disabled)",
                self.num_vars, self.num_clauses, self.timings.total,
            )?,
        }
        if let Some(w) = &self.weighted {
            writeln!(f, "  weighted count {w}")?;
        }
        write!(f, "  {} tw {}", self.graph, self.treewidth)?;
        match (self.fw, self.fiw) {
            (Some(fw), Some(fiw)) => writeln!(f, "  fw {fw}  fiw {fiw}  sdw {}", self.sdw)?,
            _ => writeln!(f, "  sdw {}", self.sdw)?,
        }
        writeln!(
            f,
            "  SDD {} elements ({} nodes allocated, ~{} KiB, {} applies, {} cache hits)",
            self.sdd_size,
            self.sdd_nodes,
            self.mem_bytes / 1024,
            self.apply.apply_calls,
            self.apply.cache_hits
        )?;
        write!(
            f,
            "  stages: vtree {:.2?} | sdd {:.2?} | count {:.2?} | validate {:.2?}",
            self.timings.vtree, self.timings.sdd, self.timings.count, self.timings.validate,
        )
    }
}

/// A counted CNF formula: the vtree shaped by its primal treewidth, the
/// canonical SDD, and the [`CountReport`]. The manager is kept alive so
/// callers can run further queries (conditioning, other semirings) against
/// the compiled form.
pub struct CnfCompilation {
    /// The vtree the compilation was structured by.
    pub vtree: Vtree,
    /// Manager holding the compiled SDD.
    pub sdd: SddManager,
    /// Root of the compiled SDD.
    pub root: SddId,
    /// Shape, widths, sizes, counts, timings.
    pub report: CountReport,
}

impl fmt::Debug for CnfCompilation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CnfCompilation")
            .field("root", &self.root)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl CnfCompilation {
    /// The exact model count over all declared variables (`None` when the
    /// session disabled the counting stage).
    pub fn count(&self) -> Option<&BigUint> {
        self.report.count.as_ref()
    }

    /// The exact weighted count (`None` for unweighted formulas).
    pub fn weighted(&self) -> Option<&Rational> {
        self.report.weighted.as_ref()
    }
}

impl Compiler {
    /// Count a CNF formula exactly: primal graph → [`TwBackend`]
    /// decomposition → Lemma-1 vtree → bottom-up SDD → semiring counts,
    /// validated per the session's [`Validation`](crate::Validation) level,
    /// everything timed.
    ///
    /// The count is over all `num_vars` declared variables (DIMACS
    /// semantics: a declared variable in no clause doubles the count). For
    /// weighted formulas the report additionally carries the exact
    /// [`Rational`] weighted count.
    pub fn compile_cnf(&self, f: &CnfFormula) -> Result<CnfCompilation, CompileError> {
        let t_total = Instant::now();
        if f.num_vars() == 0 {
            return Err(CompileError::NoVariables);
        }

        // Vtree stage: the formula's primal or incidence graph through the
        // session's decomposition backend — the same seam the circuit
        // pipeline uses (clause vertices ride along as auxiliary vertices).
        let t_vtree = Instant::now();
        let (vtree, stats, graph, probes) = self.cnf_vtree(f)?;
        let vtree_time = t_vtree.elapsed();

        // SDD stage: bottom-up apply over the direct clause-tree circuit.
        let t_sdd = Instant::now();
        let circuit = f.to_circuit();
        let mut mgr = SddManager::new(vtree.clone());
        let root = mgr.from_circuit(&circuit);
        let sdw = mgr.width(root);
        let sdd_time = t_sdd.elapsed();

        // Counting stage: the semiring engine, exactly (skippable — exact
        // bignum arithmetic is quadratic at chain scale, and serving
        // sessions count on demand).
        let t_count = Instant::now();
        let exact_counts = self.options().exact_counts;
        let count = exact_counts.then(|| mgr.count_models_exact(root));
        let weighted = (exact_counts && f.is_weighted())
            .then(|| mgr.weighted_count_exact(root, |v| f.weight(v)));
        let count_time = t_count.elapsed();

        // Validation stage (same levels as the circuit pipeline).
        let t_validate = Instant::now();
        match self.options().validation {
            Validation::None => {}
            Validation::Basic => mgr.validate_structure(root)?,
            Validation::Full => mgr.validate(root)?,
        }
        let validate_time = t_validate.elapsed();

        // Semantic widths for the report, where the kernel is cheap.
        let (fw, fiw) = if f.num_vars() as usize <= SEMANTIC_WIDTHS_MAX_VARS {
            let vars = VarSet::from_slice(&f.all_vars());
            let kernel =
                BoolFn::from_fn(vars.clone(), |i| f.eval(&Assignment::from_index(&vars, i)));
            let cft = crate::cft::cft(&kernel, &vtree);
            (Some(boolfunc::factor_width(&kernel, &vtree)), Some(cft.fiw))
        } else {
            (None, None)
        };

        let report = CountReport {
            num_vars: f.num_vars() as usize,
            num_clauses: f.num_clauses(),
            graph,
            probes,
            treewidth: stats.treewidth,
            nice_nodes: stats.nice_nodes,
            fw,
            fiw,
            sdw,
            sdd_size: mgr.size(root),
            sdd_nodes: mgr.num_allocated(),
            apply: mgr.apply_stats(),
            mem_bytes: mgr.memory_bytes(),
            count,
            weighted,
            timings: CountTimings {
                vtree: vtree_time,
                sdd: sdd_time,
                count: count_time,
                validate: validate_time,
                total: t_total.elapsed(),
            },
        };

        Ok(CnfCompilation {
            vtree,
            sdd: mgr,
            root,
            report,
        })
    }

    /// Resolve the session's [`GraphKind`] and extract the Lemma-1 vtree
    /// from the chosen graph, recording every decomposition probe that
    /// actually ran. Under [`GraphKind::Auto`] the primal graph is probed
    /// first; a primal width ≤ 1 is already minimal (the incidence width
    /// cannot beat it on a nonempty formula), so the incidence probe is
    /// **skipped** there instead of decomposing both graphs. Otherwise the
    /// smaller reported width wins (ties go to primal — fewer vertices, no
    /// auxiliary clause nodes); when the `Exact` backend cannot afford one
    /// of the graphs, the other is used alone.
    fn cnf_vtree(
        &self,
        f: &CnfFormula,
    ) -> Result<(Vtree, ExtractStats, ResolvedGraph, Vec<GraphProbe>), CompileError> {
        let exact = self.options().tw_backend == TwBackend::Exact;
        match self.options().graph_kind {
            GraphKind::Primal => {
                let g = f.primal_graph();
                if exact {
                    self.ensure_exact_feasible(&g)?;
                }
                let (vt, st) = vtree_from_graph_with(&g, &f.primal_vars(), Vec::new(), |g| {
                    self.decompose_graph(g)
                })?;
                let probes = vec![GraphProbe {
                    graph: ResolvedGraph::Primal,
                    width: st.treewidth,
                }];
                Ok((vt, st, ResolvedGraph::Primal, probes))
            }
            GraphKind::Incidence => {
                let g = f.incidence_graph();
                if exact {
                    self.ensure_exact_feasible(&g)?;
                }
                let (vt, st) = vtree_from_graph_with(&g, &f.incidence_vars(), Vec::new(), |g| {
                    self.decompose_graph(g)
                })?;
                let probes = vec![GraphProbe {
                    graph: ResolvedGraph::Incidence,
                    width: st.treewidth,
                }];
                Ok((vt, st, ResolvedGraph::Incidence, probes))
            }
            GraphKind::Auto => {
                let gp = f.primal_graph();
                let p_ok = !exact || self.exact_feasible(&gp);
                let dp = p_ok.then(|| self.decompose_graph(&gp));
                let mut probes = Vec::new();
                if let Some((wp, _)) = &dp {
                    probes.push(GraphProbe {
                        graph: ResolvedGraph::Primal,
                        width: *wp,
                    });
                }
                // Width ≤ 1 cannot be improved on: the incidence graph of
                // a formula with at least one edge-inducing clause has
                // width ≥ 1 itself, so skip its decomposition entirely.
                let primal_is_minimal = matches!(&dp, Some((wp, _)) if *wp <= 1);
                let mut di = None;
                if !primal_is_minimal {
                    let gi = f.incidence_graph();
                    let i_ok = !exact || self.exact_feasible(&gi);
                    if !p_ok && !i_ok {
                        self.ensure_exact_feasible(&gp)?;
                    }
                    if i_ok {
                        let d = self.decompose_graph(&gi);
                        probes.push(GraphProbe {
                            graph: ResolvedGraph::Incidence,
                            width: d.0,
                        });
                        di = Some((gi, d));
                    }
                }
                let use_incidence = match (&dp, &di) {
                    (Some((wp, _)), Some((_, (wi, _)))) => wi < wp,
                    (None, Some(_)) => true,
                    _ => false,
                };
                if use_incidence {
                    let (gi, d) = di.expect("incidence chosen");
                    let (vt, st) =
                        vtree_from_graph_with(&gi, &f.incidence_vars(), Vec::new(), move |_| d)?;
                    Ok((vt, st, ResolvedGraph::Incidence, probes))
                } else {
                    let d = dp.expect("primal chosen");
                    let (vt, st) =
                        vtree_from_graph_with(&gp, &f.primal_vars(), Vec::new(), move |_| d)?;
                    Ok((vt, st, ResolvedGraph::Primal, probes))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::families;

    #[test]
    fn counts_the_chain_exactly() {
        for n in [1u32, 2, 5, 12] {
            let f = families::chain_cnf(n);
            let counted = Compiler::new().compile_cnf(&f).unwrap();
            assert_eq!(
                *counted.count().unwrap(),
                families::chain_count(n),
                "n = {n}"
            );
            assert_eq!(counted.report.treewidth, usize::from(n > 1));
            assert_eq!(counted.report.graph, ResolvedGraph::Primal);
        }
    }

    #[test]
    fn beyond_u128_chain_counts_exactly() {
        let n = 200u32;
        let counted = Compiler::new()
            .compile_cnf(&families::chain_cnf(n))
            .unwrap();
        assert_eq!(*counted.count().unwrap(), families::chain_count(n));
        assert_eq!(
            counted.count().unwrap().to_u128(),
            None,
            "the whole point: past 2^128"
        );
        assert!(counted.report.fw.is_none(), "no kernel at 200 vars");
    }

    #[test]
    fn declared_but_unused_variables_double_the_count() {
        let f = CnfFormula::from_clauses(4, vec![vec![(vtree::VarId(0), true)]]);
        let counted = Compiler::new().compile_cnf(&f).unwrap();
        assert_eq!(counted.count().unwrap().to_u128(), Some(8)); // 1 × 2^3
    }

    #[test]
    fn contradiction_and_tautology() {
        let mut bot = CnfFormula::new(3);
        bot.add_clause(vec![]);
        let counted = Compiler::new().compile_cnf(&bot).unwrap();
        assert!(counted.count().unwrap().is_zero());

        let top = CnfFormula::new(3);
        let counted = Compiler::new().compile_cnf(&top).unwrap();
        assert_eq!(counted.count().unwrap().to_u128(), Some(8));

        assert!(matches!(
            Compiler::new().compile_cnf(&CnfFormula::new(0)),
            Err(CompileError::NoVariables)
        ));
    }

    #[test]
    fn weighted_count_is_exact() {
        // chain over 3 vars, every literal weight 1/2: weighted count =
        // count / 2^3 = 5/8.
        let mut f = families::chain_cnf(3);
        let half = Rational::parse("1/2").unwrap();
        for v in f.all_vars() {
            f.set_weight(v, half.clone(), half.clone());
        }
        let counted = Compiler::new().compile_cnf(&f).unwrap();
        assert_eq!(counted.weighted(), Some(&Rational::parse("5/8").unwrap()));
    }

    #[test]
    fn semantic_widths_appear_on_kernel_sized_inputs() {
        let f = families::band_cnf(8, 3);
        let counted = Compiler::new().compile_cnf(&f).unwrap();
        let r = &counted.report;
        assert!(r.fw.is_some() && r.fiw.is_some());
        assert!(r.sdw >= 1);
        let shown = r.to_string();
        assert!(shown.contains("primal tw"), "{shown}");
        assert!(shown.contains("models"), "{shown}");
    }

    #[test]
    fn every_backend_counts_the_same() {
        use crate::compiler::TwBackend;
        let f = families::band_cnf(10, 3);
        let expect = BigUint::from_u64(f.count_models_brute());
        for backend in [
            TwBackend::Exact,
            TwBackend::MinFill,
            TwBackend::MinDegree,
            TwBackend::Auto,
        ] {
            let counted = Compiler::builder()
                .tw_backend(backend)
                .build()
                .compile_cnf(&f)
                .unwrap();
            assert_eq!(*counted.count().unwrap(), expect, "{backend}");
        }
    }

    #[test]
    fn every_graph_kind_counts_the_same() {
        use crate::compiler::GraphKind;
        // One long clause plus a chain — long clauses are where the
        // incidence graph beats the primal clique.
        let mut f = families::chain_cnf(10);
        f.add_clause((0..10).map(|i| (vtree::VarId(i), true)).collect());
        let expect = BigUint::from_u64(f.count_models_brute());
        for kind in [GraphKind::Primal, GraphKind::Incidence, GraphKind::Auto] {
            let counted = Compiler::builder()
                .graph_kind(kind)
                .build()
                .compile_cnf(&f)
                .unwrap();
            assert_eq!(*counted.count().unwrap(), expect, "{kind}");
        }
    }

    #[test]
    fn auto_graph_kind_picks_the_smaller_width() {
        use crate::compiler::GraphKind;
        // A single clause over all variables: primal = K_n (width n-1),
        // incidence = a star (width 1). Auto must take the star.
        let n = 9u32;
        let f =
            CnfFormula::from_clauses(n, vec![(0..n).map(|i| (vtree::VarId(i), true)).collect()]);
        let counted = Compiler::builder()
            .graph_kind(GraphKind::Auto)
            .build()
            .compile_cnf(&f)
            .unwrap();
        assert_eq!(counted.report.graph, ResolvedGraph::Incidence);
        assert!(
            counted.report.treewidth < n as usize - 1,
            "incidence width {} must beat the primal clique",
            counted.report.treewidth
        );
        assert_eq!(counted.count().unwrap().to_u128(), Some((1 << n) - 1));
        let shown = counted.report.to_string();
        assert!(shown.contains("incidence tw"), "{shown}");
        // Both probes ran (primal width > 1), in primal-first order.
        assert_eq!(counted.report.probes.len(), 2);
        assert_eq!(counted.report.probes[0].graph, ResolvedGraph::Primal);
        assert_eq!(counted.report.probes[0].width, n as usize - 1);
        assert_eq!(counted.report.probes[1].graph, ResolvedGraph::Incidence);
        assert_eq!(
            counted.report.probes[1].width, counted.report.treewidth,
            "the chosen probe's width is the certified one"
        );

        // On the chain (treewidth 1 already) Auto keeps the primal graph.
        let counted = Compiler::builder()
            .graph_kind(GraphKind::Auto)
            .build()
            .compile_cnf(&families::chain_cnf(12))
            .unwrap();
        assert_eq!(counted.report.graph, ResolvedGraph::Primal);
    }

    #[test]
    fn auto_skips_the_incidence_probe_when_primal_width_is_minimal() {
        use crate::compiler::GraphKind;
        // Chain: primal width 1 — already minimal, so Auto must decompose
        // only the primal graph (the ROADMAP's width-probe item) …
        let counted = Compiler::builder()
            .graph_kind(GraphKind::Auto)
            .build()
            .compile_cnf(&families::chain_cnf(12))
            .unwrap();
        assert_eq!(
            counted.report.probes,
            vec![GraphProbe {
                graph: ResolvedGraph::Primal,
                width: 1
            }],
            "one probe only: the incidence decomposition was skipped"
        );
        assert_eq!(*counted.count().unwrap(), families::chain_count(12));
        // … and explicit graph kinds record exactly their one probe.
        let counted = Compiler::new()
            .compile_cnf(&families::chain_cnf(8))
            .unwrap();
        assert_eq!(counted.report.probes.len(), 1);
        assert_eq!(counted.report.probes[0].graph, ResolvedGraph::Primal);
    }

    #[test]
    fn counting_stage_can_be_disabled() {
        let f = families::chain_cnf(10);
        let compiled = Compiler::builder()
            .exact_counts(false)
            .build()
            .compile_cnf(&f)
            .unwrap();
        assert!(compiled.count().is_none());
        assert!(compiled.weighted().is_none());
        let shown = compiled.report.to_string();
        assert!(shown.contains("counting stage disabled"), "{shown}");
        // The compiled SDD still answers counting queries on demand.
        assert_eq!(
            compiled.sdd.count_models_exact(compiled.root),
            families::chain_count(10)
        );
    }

    #[test]
    fn incidence_route_respects_exact_backend_caps() {
        use crate::compiler::GraphKind;
        // 20 vars + 19 clauses = 39 incidence vertices > the exact cap,
        // while the primal graph (20 vertices) is fine: explicit Incidence
        // errors, Auto falls back to primal.
        let f = families::chain_cnf(20);
        let err = Compiler::builder()
            .tw_backend(TwBackend::Exact)
            .graph_kind(GraphKind::Incidence)
            .build()
            .compile_cnf(&f)
            .unwrap_err();
        assert!(matches!(err, CompileError::ExactTreewidthIntractable(_)));
        let counted = Compiler::builder()
            .tw_backend(TwBackend::Exact)
            .graph_kind(GraphKind::Auto)
            .build()
            .compile_cnf(&f)
            .unwrap();
        assert_eq!(counted.report.graph, ResolvedGraph::Primal);
        assert_eq!(*counted.count().unwrap(), families::chain_count(20));
    }
}
