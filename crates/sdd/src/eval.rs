//! The generic bottom-up evaluation engine.
//!
//! An SDD is deterministic (primes are pairwise disjoint, so ∨ is a disjoint
//! union of models) and decomposable (primes and subs have disjoint scopes,
//! so ∧ is a cartesian product). That makes *every* counting query one and
//! the same traversal over a commutative semiring: `⊥ ↦ 0`, `⊤ ↦ 1`, a
//! literal ↦ its weight, a decision ↦ `⊕ᵢ (Pᵢ ⊗ Sᵢ)` — plus **gap
//! smoothing**: a variable of the enclosing vtree scope that a node does not
//! mention contributes the factor `w(¬v) ⊕ w(v)`.
//!
//! [`SddManager::evaluate`] implements that engine once, division-free
//! (smoothing factors come from walking the vtree, never from dividing them
//! back out, so it works in any semiring). The former `count_models` /
//! `weighted_count` / `probability` triplet of near-duplicate traversals are
//! now instantiations:
//!
//! * [`SddManager::count_models_exact`] — `arith::Nat` (`BigUint`): exact
//!   #SAT, no overflow at any size;
//! * [`SddManager::weighted_count_exact`] / [`SddManager::probability_exact`]
//!   — `arith::Rat` (`Rational`): exact WMC, no rounding;
//! * [`SddManager::weighted_count`] / [`SddManager::probability`] —
//!   `arith::F64`: the fast approximate path.

use crate::{SddId, SddManager, SddNode};
use arith::{BigUint, Nat, Rat, Rational, Semiring, F64};
use vtree::fxhash::FxHashMap;
use vtree::{Side, VarId, VtreeNodeId};

impl SddManager {
    /// Evaluate `root` over all vtree variables in an arbitrary commutative
    /// semiring. `weight(v, polarity)` is the weight of the literal `v` /
    /// `¬v`; variables absent from a subfunction contribute
    /// `weight(v, false) ⊕ weight(v, true)` (smoothing).
    ///
    /// Counting is `evaluate(root, &Nat, |_, _| BigUint::one())`; weighted
    /// counting plugs in the literal weights. The traversal is memoized per
    /// node, so it is linear in the SDD size (times the cost of semiring
    /// operations and vtree-path walks).
    pub fn evaluate<S: Semiring>(
        &self,
        root: SddId,
        semiring: &S,
        weight: impl Fn(VarId, bool) -> S::Elem,
    ) -> S::Elem {
        // Literal weights per variable.
        let mut wmap: FxHashMap<VarId, (S::Elem, S::Elem)> = FxHashMap::default();
        for &v in self.vtree.vars() {
            wmap.insert(v, (weight(v, false), weight(v, true)));
        }
        // gap[t] = ⊗_{v below t} (w⁻(v) ⊕ w⁺(v)), bottom-up over the vtree
        // (reverse preorder puts every child before its parent).
        let mut preorder = Vec::with_capacity(self.vtree.num_nodes());
        let mut stack = vec![self.vtree.root()];
        while let Some(n) = stack.pop() {
            preorder.push(n);
            if let Some((l, r)) = self.vtree.children(n) {
                stack.push(l);
                stack.push(r);
            }
        }
        let mut gap: Vec<Option<S::Elem>> = vec![None; self.vtree.num_nodes()];
        for &n in preorder.iter().rev() {
            let g = match self.vtree.children(n) {
                None => {
                    let v = self.vtree.leaf_var(n).expect("leaf");
                    let (wn, wp) = &wmap[&v];
                    semiring.add(wn, wp)
                }
                Some((l, r)) => semiring.mul(
                    gap[l.index()].as_ref().expect("child gap computed"),
                    gap[r.index()].as_ref().expect("child gap computed"),
                ),
            };
            gap[n.index()] = Some(g);
        }
        let gap: Vec<S::Elem> = gap.into_iter().map(|g| g.expect("all nodes")).collect();

        let mut ev = Evaluator {
            mgr: self,
            semiring,
            wmap,
            gap,
            memo: FxHashMap::default(),
        };
        ev.scoped(root, self.vtree.root())
    }

    /// Exact model count over all vtree variables — the `BigUint` semiring,
    /// valid at any variable count.
    pub fn count_models_exact(&self, root: SddId) -> BigUint {
        self.evaluate(root, &Nat, |_, _| BigUint::one())
    }

    /// Exact model count as `u128`, `None` when the count needs more than
    /// 128 bits.
    pub fn count_models_checked(&self, root: SddId) -> Option<u128> {
        self.count_models_exact(root).to_u128()
    }

    /// Exact model count over all vtree variables.
    ///
    /// Saturates at `u128::MAX` (with a debug assertion) when the true count
    /// exceeds 128 bits — the pre-semiring implementation silently wrapped
    /// there. Prefer [`SddManager::count_models_exact`] (never overflows) or
    /// [`SddManager::count_models_checked`] (typed overflow) on inputs with
    /// more than 128 variables.
    pub fn count_models(&self, root: SddId) -> u128 {
        match self.count_models_checked(root) {
            Some(c) => c,
            None => {
                debug_assert!(
                    false,
                    "model count exceeds u128; use count_models_exact/count_models_checked"
                );
                u128::MAX
            }
        }
    }

    /// Weighted model count over all vtree variables: `weight(v) = (w⁻, w⁺)`.
    /// Variables skipped between a node and its vtree scope contribute the
    /// smoothing factor `w⁻ + w⁺`. The fast `f64` path of the semiring
    /// engine; see [`SddManager::weighted_count_exact`] for the exact one.
    pub fn weighted_count(&self, root: SddId, weight: impl Fn(VarId) -> (f64, f64)) -> f64 {
        self.evaluate(root, &F64, |v, positive| {
            let (wn, wp) = weight(v);
            if positive {
                wp
            } else {
                wn
            }
        })
    }

    /// Exact weighted model count — the `Rational` semiring.
    pub fn weighted_count_exact(
        &self,
        root: SddId,
        weight: impl Fn(VarId) -> (Rational, Rational),
    ) -> Rational {
        self.evaluate(root, &Rat, |v, positive| {
            let (wn, wp) = weight(v);
            if positive {
                wp
            } else {
                wn
            }
        })
    }

    /// Probability under independent `P(v=1) = prob(v)`.
    pub fn probability(&self, root: SddId, prob: impl Fn(VarId) -> f64) -> f64 {
        self.weighted_count(root, |v| {
            let p = prob(v);
            (1.0 - p, p)
        })
    }

    /// Exact probability under independent `P(v=1) = prob(v)`.
    pub fn probability_exact(&self, root: SddId, prob: impl Fn(VarId) -> Rational) -> Rational {
        self.weighted_count_exact(root, |v| {
            let p = prob(v);
            (Rational::one().sub(&p), p)
        })
    }
}

/// One evaluation pass: semiring, literal weights, per-vtree-node smoothing
/// products, and the per-node memo table.
struct Evaluator<'a, S: Semiring> {
    mgr: &'a SddManager,
    semiring: &'a S,
    wmap: FxHashMap<VarId, (S::Elem, S::Elem)>,
    gap: Vec<S::Elem>,
    memo: FxHashMap<SddId, S::Elem>,
}

impl<S: Semiring> Evaluator<'_, S> {
    /// Value of `a` over the scope of vtree node `scope` (⊇ `a`'s own scope).
    fn scoped(&mut self, a: SddId, scope: VtreeNodeId) -> S::Elem {
        match self.mgr.node(a) {
            SddNode::False => self.semiring.zero(),
            SddNode::True => self.gap[scope.index()].clone(),
            SddNode::Literal { var, positive } => {
                let (wn, wp) = &self.wmap[var];
                let lit = if *positive { wp.clone() } else { wn.clone() };
                let leaf = self.mgr.vtree.leaf_of_var(*var).expect("var in vtree");
                let smooth = self.smoothing(scope, leaf);
                self.semiring.mul(&lit, &smooth)
            }
            SddNode::Decision { vnode, .. } => {
                let vnode = *vnode;
                let raw = self.raw(a, vnode);
                let smooth = self.smoothing(scope, vnode);
                self.semiring.mul(&raw, &smooth)
            }
        }
    }

    /// Value of decision `a` over exactly its own vtree node's variables
    /// (memoized — decision nodes always normalize for the same vnode).
    fn raw(&mut self, a: SddId, vnode: VtreeNodeId) -> S::Elem {
        if let Some(c) = self.memo.get(&a) {
            return c.clone();
        }
        let SddNode::Decision { elems, .. } = self.mgr.node(a) else {
            unreachable!("raw on non-decision");
        };
        let elems = elems.clone();
        let (lv, rv) = self.mgr.vtree.children(vnode).expect("internal vnode");
        let mut total = self.semiring.zero();
        for &(p, s) in elems.iter() {
            let pc = self.scoped(p, lv);
            let sc = self.scoped(s, rv);
            total = self.semiring.add(&total, &self.semiring.mul(&pc, &sc));
        }
        self.memo.insert(a, total.clone());
        total
    }

    /// `⊗ (w⁻ ⊕ w⁺)` over the variables below `scope` but not below
    /// `target`: walk down from `scope` to `target`, multiplying the gap of
    /// every subtree branched away from. Division-free, so it is valid in
    /// any semiring (the old `f64` engine divided smoothing products back
    /// out, which has no rational/BigUint analogue at zero weights).
    fn smoothing(&self, scope: VtreeNodeId, target: VtreeNodeId) -> S::Elem {
        let mut acc = self.semiring.one();
        let mut cur = scope;
        while cur != target {
            let (l, r) = self
                .mgr
                .vtree
                .children(cur)
                .expect("target strictly below scope");
            match self.mgr.vtree.side_of(cur, target) {
                Some(Side::Left) => {
                    acc = self.semiring.mul(&acc, &self.gap[r.index()]);
                    cur = l;
                }
                Some(Side::Right) => {
                    acc = self.semiring.mul(&acc, &self.gap[l.index()]);
                    cur = r;
                }
                None => unreachable!("scoped callers keep target below scope"),
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FALSE, TRUE};
    use boolfunc::{BoolFn, VarSet};
    use vtree::Vtree;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn exact_checked_and_saturating_counts_agree_small() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let f = BoolFn::random(VarSet::from_slice(&vars(7)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(7)).unwrap());
        let r = m.from_boolfn(&f);
        let expect = f.count_models() as u128;
        assert_eq!(m.count_models(r), expect);
        assert_eq!(m.count_models_checked(r), Some(expect));
        assert_eq!(m.count_models_exact(r), BigUint::from_u128(expect));
    }

    #[test]
    fn beyond_u128_is_exact_not_wrapped() {
        // ⊤ over 200 variables: 2^200 models, far past u128.
        let vt = Vtree::balanced(&vars(200)).unwrap();
        let m = SddManager::new(vt);
        assert_eq!(m.count_models_exact(TRUE), BigUint::pow2(200));
        assert_eq!(m.count_models_checked(TRUE), None);
        // A single literal still pins one variable: 2^199.
        let mut m = SddManager::new(Vtree::balanced(&vars(200)).unwrap());
        let x = m.literal(VarId(7), true);
        assert_eq!(m.count_models_exact(x), BigUint::pow2(199));
        assert_eq!(m.count_models_exact(FALSE), BigUint::zero());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn saturating_count_in_release() {
        let m = SddManager::new(Vtree::balanced(&vars(130)).unwrap());
        assert_eq!(m.count_models(TRUE), u128::MAX);
    }

    #[test]
    fn rational_and_f64_weighted_counts_agree() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(6)).unwrap());
        let r = m.from_boolfn(&f);
        let probs = [0.5, 0.25, 0.125, 0.75, 0.375, 0.0625]; // dyadic: exact in f64
        let approx = m.probability(r, |v| probs[v.index()]);
        let exact = m.probability_exact(r, |v| Rational::from_f64(probs[v.index()]));
        assert!(
            (exact.to_f64() - approx).abs() < 1e-12,
            "exact {exact} vs f64 {approx}"
        );
        let kernel = f.probability(|v| probs[v.index()]);
        assert!((approx - kernel).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_are_handled_without_division() {
        // The old engine divided by smoothing products and special-cased 0;
        // the semiring engine must get w⁻ = w⁺ = 0 right structurally.
        let mut m = SddManager::new(Vtree::balanced(&vars(3)).unwrap());
        let x0 = m.literal(VarId(0), true);
        let x2 = m.literal(VarId(2), true);
        let g = m.or(x0, x2);
        // Var 1 dead (weight 0 both ways): whole count collapses to 0.
        let wc = m.weighted_count(g, |v| {
            if v.index() == 1 {
                (0.0, 0.0)
            } else {
                (1.0, 1.0)
            }
        });
        assert_eq!(wc, 0.0);
        // Var 1 pinned to true only: count halves instead.
        let wc = m.weighted_count(g, |v| {
            if v.index() == 1 {
                (0.0, 1.0)
            } else {
                (1.0, 1.0)
            }
        });
        assert_eq!(wc, 3.0);
    }

    #[test]
    fn counting_semiring_matches_generic_evaluate() {
        let mut m = SddManager::new(Vtree::right_linear(&vars(5)).unwrap());
        let x0 = m.literal(VarId(0), true);
        let x3 = m.literal(VarId(3), false);
        let g = m.and(x0, x3);
        let via_engine = m.evaluate(g, &Nat, |_, _| BigUint::one());
        assert_eq!(via_engine, BigUint::from_u64(8)); // 2 pinned, 3 free
        assert_eq!(m.count_models(g), 8);
    }
}
