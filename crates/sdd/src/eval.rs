//! The generic bottom-up evaluation engine.
//!
//! An SDD is deterministic (primes are pairwise disjoint, so ∨ is a disjoint
//! union of models) and decomposable (primes and subs have disjoint scopes,
//! so ∧ is a cartesian product). That makes *every* counting query one and
//! the same traversal over a commutative semiring: `⊥ ↦ 0`, `⊤ ↦ 1`, a
//! literal ↦ its weight, a decision ↦ `⊕ᵢ (Pᵢ ⊗ Sᵢ)` — plus **gap
//! smoothing**: a variable of the enclosing vtree scope that a node does not
//! mention contributes the factor `w(¬v) ⊕ w(v)`.
//!
//! [`SddManager::evaluate`] implements that engine once, division-free
//! (smoothing factors come from walking the vtree, never from dividing them
//! back out, so it works in any semiring). The former `count_models` /
//! `weighted_count` / `probability` triplet of near-duplicate traversals are
//! now instantiations:
//!
//! * [`SddManager::count_models_exact`] — `arith::Nat` (`BigUint`): exact
//!   #SAT, no overflow at any size;
//! * [`SddManager::weighted_count_exact`] / [`SddManager::probability_exact`]
//!   — `arith::Rat` (`Rational`): exact WMC, no rounding;
//! * [`SddManager::weighted_count`] / [`SddManager::probability`] —
//!   `arith::F64`: the fast approximate path.
//!
//! For the compile-once/serve-many regime (`kb::KnowledgeBase`), the
//! one-shot traversal is the wrong shape: every query re-walks the whole
//! diagram even when only one variable's weight moved. [`EvalCache`] is the
//! incremental form of the same engine — per-node values carry **epoch
//! stamps**, each vtree node remembers the last epoch a weight below it
//! changed, and a re-evaluation recomputes exactly the *dirty cone* (the
//! vtree ancestors of the changed leaves and the SDD nodes structured by
//! them), answering everything else from cache.

use crate::{FrozenSdd, SddId, SddManager, SddNode, SddRead};
use arith::{BigUint, LaneSemiring, Nat, Rat, Rational, Semiring, F64};
use vtree::fxhash::FxHashMap;
use vtree::{VarId, VtreeNodeId};

/// Semiring evaluation over any read-only SDD store: the blanket
/// extension of [`SddRead`], implemented once and served by both the
/// mutable [`SddManager`] and the immutable [`FrozenSdd`] slab (which
/// also re-export the methods inherently, so callers rarely need this
/// trait in scope).
pub trait SddEval: SddRead {
    /// Evaluate `root` over all vtree variables in an arbitrary commutative
    /// semiring. `weight(v, polarity)` is the weight of the literal `v` /
    /// `¬v`; variables absent from a subfunction contribute
    /// `weight(v, false) ⊕ weight(v, true)` (smoothing).
    ///
    /// Counting is `evaluate(root, &Nat, |_, _| BigUint::one())`; weighted
    /// counting plugs in the literal weights. The traversal is memoized per
    /// node, so it is linear in the SDD size (times the cost of semiring
    /// operations and vtree-path walks).
    fn evaluate<S: Semiring>(
        &self,
        root: SddId,
        semiring: &S,
        weight: impl Fn(VarId, bool) -> S::Elem,
    ) -> S::Elem {
        let vtree = self.vtree();
        // Literal weights per variable.
        let mut wmap: FxHashMap<VarId, (S::Elem, S::Elem)> = FxHashMap::default();
        for &v in vtree.vars() {
            wmap.insert(v, (weight(v, false), weight(v, true)));
        }
        // gap[t] = ⊗_{v below t} (w⁻(v) ⊕ w⁺(v)), bottom-up over the vtree.
        let mut gap: Vec<Option<S::Elem>> = vec![None; vtree.num_nodes()];
        for n in vtree.bottom_up_order() {
            let g = match vtree.children(n) {
                None => {
                    let v = vtree.leaf_var(n).expect("leaf");
                    let (wn, wp) = &wmap[&v];
                    semiring.add(wn, wp)
                }
                Some((l, r)) => semiring.mul(
                    gap[l.index()].as_ref().expect("child gap computed"),
                    gap[r.index()].as_ref().expect("child gap computed"),
                ),
            };
            gap[n.index()] = Some(g);
        }
        let gap: Vec<S::Elem> = gap.into_iter().map(|g| g.expect("all nodes")).collect();

        let mut ev = Evaluator {
            mgr: self,
            semiring,
            wmap,
            gap,
            raw: FxHashMap::default(),
        };
        ev.run(root)
    }

    /// Exact model count over all vtree variables — the `BigUint` semiring,
    /// valid at any variable count.
    fn count_models_exact(&self, root: SddId) -> BigUint {
        self.evaluate(root, &Nat, |_, _| BigUint::one())
    }

    /// Exact model count as `u128`, `None` when the count needs more than
    /// 128 bits.
    fn count_models_checked(&self, root: SddId) -> Option<u128> {
        self.count_models_exact(root).to_u128()
    }

    /// Exact model count over all vtree variables; panics past 128 bits
    /// (see [`SddManager::count_models`]).
    fn count_models(&self, root: SddId) -> u128 {
        self.count_models_checked(root)
            .expect("model count exceeds u128; use count_models_exact/count_models_checked")
    }

    /// Weighted model count (`f64` path; see
    /// [`SddManager::weighted_count`]).
    fn weighted_count(&self, root: SddId, weight: impl Fn(VarId) -> (f64, f64)) -> f64 {
        self.evaluate(root, &F64, |v, positive| {
            let (wn, wp) = weight(v);
            if positive {
                wp
            } else {
                wn
            }
        })
    }

    /// Exact weighted model count — the `Rational` semiring.
    fn weighted_count_exact(
        &self,
        root: SddId,
        weight: impl Fn(VarId) -> (Rational, Rational),
    ) -> Rational {
        self.evaluate(root, &Rat, |v, positive| {
            let (wn, wp) = weight(v);
            if positive {
                wp
            } else {
                wn
            }
        })
    }

    /// Probability under independent `P(v=1) = prob(v)`.
    fn probability(&self, root: SddId, prob: impl Fn(VarId) -> f64) -> f64 {
        self.weighted_count(root, |v| {
            let p = prob(v);
            (1.0 - p, p)
        })
    }

    /// Exact probability under independent `P(v=1) = prob(v)`.
    fn probability_exact(&self, root: SddId, prob: impl Fn(VarId) -> Rational) -> Rational {
        self.weighted_count_exact(root, |v| {
            let p = prob(v);
            (Rational::one().sub(&p), p)
        })
    }
}

impl<T: SddRead> SddEval for T {}

impl SddManager {
    /// Evaluate `root` in an arbitrary commutative semiring (see
    /// [`SddEval::evaluate`] — this inherent form keeps existing callers
    /// working without the trait in scope).
    pub fn evaluate<S: Semiring>(
        &self,
        root: SddId,
        semiring: &S,
        weight: impl Fn(VarId, bool) -> S::Elem,
    ) -> S::Elem {
        SddEval::evaluate(self, root, semiring, weight)
    }

    /// Exact model count over all vtree variables — the `BigUint` semiring,
    /// valid at any variable count.
    pub fn count_models_exact(&self, root: SddId) -> BigUint {
        SddEval::count_models_exact(self, root)
    }

    /// Exact model count as `u128`, `None` when the count needs more than
    /// 128 bits.
    pub fn count_models_checked(&self, root: SddId) -> Option<u128> {
        SddEval::count_models_checked(self, root)
    }

    /// Exact model count over all vtree variables.
    ///
    /// Panics — in every build profile — when the true count exceeds 128
    /// bits. The pre-semiring implementation silently wrapped there, and
    /// the first semiring version saturated at `u128::MAX` behind a
    /// debug-only assertion, so release builds could hand a saturated
    /// count to reports; no counting path may do that. Prefer
    /// [`SddManager::count_models_exact`] (never overflows) or
    /// [`SddManager::count_models_checked`] (typed overflow) on inputs
    /// with more than 128 variables.
    pub fn count_models(&self, root: SddId) -> u128 {
        SddEval::count_models(self, root)
    }

    /// Weighted model count over all vtree variables: `weight(v) = (w⁻, w⁺)`.
    /// Variables skipped between a node and its vtree scope contribute the
    /// smoothing factor `w⁻ + w⁺`. The fast `f64` path of the semiring
    /// engine; see [`SddManager::weighted_count_exact`] for the exact one.
    pub fn weighted_count(&self, root: SddId, weight: impl Fn(VarId) -> (f64, f64)) -> f64 {
        SddEval::weighted_count(self, root, weight)
    }

    /// Exact weighted model count — the `Rational` semiring.
    pub fn weighted_count_exact(
        &self,
        root: SddId,
        weight: impl Fn(VarId) -> (Rational, Rational),
    ) -> Rational {
        SddEval::weighted_count_exact(self, root, weight)
    }

    /// Probability under independent `P(v=1) = prob(v)`.
    pub fn probability(&self, root: SddId, prob: impl Fn(VarId) -> f64) -> f64 {
        SddEval::probability(self, root, prob)
    }

    /// Exact probability under independent `P(v=1) = prob(v)`.
    pub fn probability_exact(&self, root: SddId, prob: impl Fn(VarId) -> Rational) -> Rational {
        SddEval::probability_exact(self, root, prob)
    }
}

impl FrozenSdd {
    /// Evaluate `root` in an arbitrary commutative semiring (see
    /// [`SddEval::evaluate`]).
    pub fn evaluate<S: Semiring>(
        &self,
        root: SddId,
        semiring: &S,
        weight: impl Fn(VarId, bool) -> S::Elem,
    ) -> S::Elem {
        SddEval::evaluate(self, root, semiring, weight)
    }

    /// Exact model count — the `BigUint` semiring.
    pub fn count_models_exact(&self, root: SddId) -> BigUint {
        SddEval::count_models_exact(self, root)
    }

    /// Exact model count as `u128`, `None` past 128 bits.
    pub fn count_models_checked(&self, root: SddId) -> Option<u128> {
        SddEval::count_models_checked(self, root)
    }

    /// Weighted model count (`f64` path).
    pub fn weighted_count(&self, root: SddId, weight: impl Fn(VarId) -> (f64, f64)) -> f64 {
        SddEval::weighted_count(self, root, weight)
    }

    /// Probability under independent `P(v=1) = prob(v)`.
    pub fn probability(&self, root: SddId, prob: impl Fn(VarId) -> f64) -> f64 {
        SddEval::probability(self, root, prob)
    }
}

/// One evaluation pass: semiring, literal weights, per-vtree-node smoothing
/// products, and the per-node raw-value table. Generic over the store
/// ([`SddRead`]) so the identical pass serves managers and frozen slabs.
struct Evaluator<'a, M: SddRead + ?Sized, S: Semiring> {
    mgr: &'a M,
    semiring: &'a S,
    wmap: FxHashMap<VarId, (S::Elem, S::Elem)>,
    gap: Vec<S::Elem>,
    raw: FxHashMap<SddId, S::Elem>,
}

impl<M: SddRead + ?Sized, S: Semiring> Evaluator<'_, M, S> {
    /// One bottom-up sweep over the reachable decisions in interning order
    /// (children are always interned before their parents, so ascending
    /// [`SddId`] is a topological order), then the root read-off. Each
    /// decision's raw value is computed exactly once, as with the former
    /// recursive memoization, but the sweep's depth is constant — the
    /// recursion descended to vtree depth, Θ(n) on chains.
    fn run(&mut self, root: SddId) -> S::Elem {
        let mut decisions = self.mgr.reachable_decisions(root);
        decisions.sort_unstable();
        // Copy out the reference so the element slices (borrowed from the
        // arena, never cloned) don't pin `self` while `raw` is written.
        let mgr = self.mgr;
        for a in decisions {
            let SddNode::Decision { vnode, .. } = mgr.node(a) else {
                unreachable!("reachable_decisions returns decisions");
            };
            let vnode = *vnode;
            let (lv, rv) = mgr.vtree().children(vnode).expect("internal vnode");
            let mut total = self.semiring.zero();
            for &(p, s) in mgr.elements_of(a) {
                let pc = self.scoped(p, lv);
                let sc = self.scoped(s, rv);
                total = self.semiring.add(&total, &self.semiring.mul(&pc, &sc));
            }
            self.raw.insert(a, total);
        }
        self.scoped(root, self.mgr.vtree().root())
    }

    /// Value of `a` over the scope of vtree node `scope` (⊇ `a`'s own
    /// scope) — a pure lookup (terminal, literal weight, or the
    /// already-swept raw value) times the smoothing factor.
    fn scoped(&self, a: SddId, scope: VtreeNodeId) -> S::Elem {
        match self.mgr.node(a) {
            SddNode::False => self.semiring.zero(),
            SddNode::True => self.gap[scope.index()].clone(),
            SddNode::Literal { var, positive } => {
                let (wn, wp) = &self.wmap[var];
                let lit = if *positive { wp.clone() } else { wn.clone() };
                let leaf = self.mgr.vtree().leaf_of_var(*var).expect("var in vtree");
                let smooth = self.smoothing(scope, leaf);
                self.semiring.mul(&lit, &smooth)
            }
            SddNode::Decision { vnode, .. } => {
                let raw = &self.raw[&a];
                let smooth = self.smoothing(scope, *vnode);
                self.semiring.mul(raw, &smooth)
            }
        }
    }

    /// `⊗ (w⁻ ⊕ w⁺)` over the variables below `scope` but not below
    /// `target`: the vtree's [`Vtree::branched_away`] walk, multiplying
    /// the gap of every subtree branched away from. Division-free, so it
    /// is valid in any semiring (the old `f64` engine divided smoothing
    /// products back out, which has no rational/BigUint analogue at zero
    /// weights).
    fn smoothing(&self, scope: VtreeNodeId, target: VtreeNodeId) -> S::Elem {
        let mut acc = self.semiring.one();
        self.mgr.vtree().branched_away(scope, target, |t| {
            acc = self.semiring.mul(&acc, &self.gap[t.index()]);
        });
        acc
    }
}

/// What a suspended [`RawFrame`] is waiting for.
enum RawWait<E> {
    /// Just pushed, or between elements.
    Idle,
    /// The current element's prime value.
    Prime,
    /// The current element's sub value; the prime's value rides along.
    Sub(E),
}

/// Outcome of advancing the top [`RawFrame`] in place.
enum EvalStep<E> {
    /// The frame recorded what it waits for and requests the value of
    /// this node under this scope.
    Request(SddId, VtreeNodeId),
    /// The frame finished; pop it and deliver its scoped value.
    Complete(E),
}

/// One suspended raw-value computation of the incremental engine: a
/// decision node whose stamp was stale, part-way through summing its
/// elements' prime ⊗ sub products. The frame stack replaces the former
/// recursion (vtree-depth-deep, Θ(n) on chains) with heap storage.
struct RawFrame<E> {
    a: SddId,
    /// The scope the requester wanted `a` under (for the final smoothing).
    scope: VtreeNodeId,
    vnode: VtreeNodeId,
    lv: VtreeNodeId,
    rv: VtreeNodeId,
    /// The decision's element-arena range (immutable once interned, so the
    /// frame holds indices instead of a cloned element list).
    elems: std::ops::Range<u32>,
    i: u32,
    wait: RawWait<E>,
    total: E,
}

impl<E> RawFrame<E> {
    /// The current element `(prime, sub)` pair.
    fn cur(&self, mgr: &(impl SddRead + ?Sized)) -> (SddId, SddId) {
        mgr.elements(self.elems.clone())[self.i as usize]
    }

    fn done(&self) -> bool {
        self.elems.start + self.i >= self.elems.end
    }
}

/// Cache-traffic counters of an [`EvalCache`], reported per evaluation run
/// so serving layers can show how small the dirty cone actually was.
#[must_use]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Decision-node value lookups.
    pub lookups: u64,
    /// Lookups answered by a still-valid cached value.
    pub hits: u64,
    /// Decision-node values recomputed (the dirty cone, in nodes).
    pub recomputed: u64,
}

impl EvalCacheStats {
    /// Counter increments since `earlier` (a snapshot of the same cache).
    pub fn delta_since(&self, earlier: EvalCacheStats) -> EvalCacheStats {
        EvalCacheStats {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            hits: self.hits.saturating_sub(earlier.hits),
            recomputed: self.recomputed.saturating_sub(earlier.recomputed),
        }
    }

    /// Publish these counters (typically a [`delta_since`](Self::delta_since)
    /// delta) into the kernel's telemetry families: `sdd_eval_lookups_total`,
    /// `sdd_eval_hits_total`, `sdd_eval_recomputed_total`.
    pub fn publish(&self, reg: &obs::MetricsRegistry) {
        reg.counter("sdd_eval_lookups_total", &[]).add(self.lookups);
        reg.counter("sdd_eval_hits_total", &[]).add(self.hits);
        reg.counter("sdd_eval_recomputed_total", &[])
            .add(self.recomputed);
    }
}

/// An **epoch-tagged incremental evaluator**: the semiring engine of
/// [`SddManager::evaluate`], restructured so repeated evaluations under
/// changing literal weights only redo the work the changes invalidated.
///
/// Every weight update bumps a global epoch and stamps it onto the vtree
/// path from the variable's leaf to the root (`vnode_epoch`). A cached
/// value — a decision node's raw value, or a vtree node's smoothing gap —
/// is valid exactly when its stamp is at least the `vnode_epoch` of the
/// vtree node it is scoped to: weights enter a value only through the
/// variables below that node. Changing one variable therefore dirties one
/// root-to-leaf cone; everything outside it is answered from cache.
///
/// The cache is bound to the manager it was created with (values are keyed
/// by that manager's node and vtree ids); handing any other manager —
/// same-shaped vtree or not — panics ([`SddManager::uid`]).
pub struct EvalCache<S: Semiring> {
    /// The [`SddManager::uid`] this cache is bound to.
    mgr_uid: u64,
    semiring: S,
    /// Bumped on every weight change.
    epoch: u64,
    /// Literal weights per variable.
    weights: FxHashMap<VarId, (S::Elem, S::Elem)>,
    /// Per vtree node: the last epoch any weight below it changed.
    vnode_epoch: Vec<u64>,
    /// Per vtree node: stamped smoothing product `⊗ (w⁻ ⊕ w⁺)`.
    gap: Vec<Option<(u64, S::Elem)>>,
    /// Per decision node: stamped raw (unsmoothed) value.
    raw: FxHashMap<SddId, (u64, S::Elem)>,
    /// Reverse-preorder vtree traversal, computed once.
    vtree_postorder: Vec<VtreeNodeId>,
    stats: EvalCacheStats,
}

impl<S: Semiring> EvalCache<S> {
    /// A fresh cache over `mgr`'s vtree with initial literal weights
    /// `weight(v, polarity)`. The store may be a [`SddManager`] or a
    /// [`FrozenSdd`] (a serving thread creates its private cache directly
    /// against the shared slab).
    pub fn new(
        mgr: &(impl SddRead + ?Sized),
        semiring: S,
        weight: impl Fn(VarId, bool) -> S::Elem,
    ) -> Self {
        let mut weights = FxHashMap::default();
        for &v in mgr.vtree().vars() {
            weights.insert(v, (weight(v, false), weight(v, true)));
        }
        EvalCache {
            mgr_uid: mgr.uid(),
            semiring,
            epoch: 0,
            weights,
            vnode_epoch: vec![0; mgr.vtree().num_nodes()],
            gap: vec![None; mgr.vtree().num_nodes()],
            raw: FxHashMap::default(),
            vtree_postorder: mgr.vtree().bottom_up_order(),
            stats: EvalCacheStats::default(),
        }
    }

    /// The carrier descriptor.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// The current epoch: bumped by every [`EvalCache::set_weight`], so it
    /// doubles as a cheap invalidation token for values derived from the
    /// weights (a serving layer memoizes marginals against it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current weight pair `(w⁻, w⁺)` of `v`.
    pub fn weight(&self, v: VarId) -> &(S::Elem, S::Elem) {
        &self.weights[&v]
    }

    /// Lifetime cache-traffic counters (snapshot before a query and
    /// [`EvalCacheStats::delta_since`] after it for per-query numbers).
    pub fn stats(&self) -> EvalCacheStats {
        self.stats
    }

    /// Update `v`'s weight pair, dirtying exactly the vtree cone above its
    /// leaf: the next [`EvalCache::evaluate`] recomputes only values scoped
    /// to an ancestor of `v`.
    pub fn set_weight(
        &mut self,
        mgr: &(impl SddRead + ?Sized),
        v: VarId,
        neg: S::Elem,
        pos: S::Elem,
    ) {
        self.check_binding(mgr);
        let leaf = mgr.vtree().leaf_of_var(v).expect("weight var in the vtree");
        self.epoch += 1;
        self.weights.insert(v, (neg, pos));
        let mut cur = Some(leaf);
        while let Some(n) = cur {
            self.vnode_epoch[n.index()] = self.epoch;
            cur = mgr.vtree().parent(n);
        }
    }

    /// Evaluate `root` over all vtree variables under the current weights,
    /// reusing every cached value the weight changes since the last call
    /// did not invalidate. The dirty-cone traversal runs on an explicit
    /// frame stack (the former recursion descended to vtree depth — Θ(n)
    /// on chains — which is exactly where serving sessions get deep), so
    /// any diagram evaluates on a default-size stack.
    pub fn evaluate(&mut self, mgr: &(impl SddRead + ?Sized), root: SddId) -> S::Elem {
        self.check_binding(mgr);
        self.refresh_gaps(mgr);
        let mut frames: Vec<RawFrame<S::Elem>> = Vec::new();
        let mut ret = self.scoped(mgr, root, mgr.vtree().root(), &mut frames);
        loop {
            if frames.is_empty() {
                return ret.expect("the worklist terminates with the root value");
            }
            // Frames advance in place — only completions pop, only stale
            // children push (same encoding as the apply engine: re-pushing
            // the whole frame per element taxes the hot path for nothing).
            let step = {
                let f = frames.last_mut().expect("nonempty");
                self.advance(mgr, f, ret.take())
            };
            match step {
                EvalStep::Request(a, scope) => ret = self.scoped(mgr, a, scope, &mut frames),
                EvalStep::Complete(v) => {
                    frames.pop();
                    ret = Some(v);
                }
            }
        }
    }

    /// Advance one suspended raw-value computation in place: consume `ret`
    /// into the slot its `wait` state names, then either request the next
    /// child value or complete (stamping the raw cache and returning the
    /// scoped value its requester asked for).
    fn advance(
        &mut self,
        mgr: &(impl SddRead + ?Sized),
        f: &mut RawFrame<S::Elem>,
        ret: Option<S::Elem>,
    ) -> EvalStep<S::Elem> {
        match std::mem::replace(&mut f.wait, RawWait::Idle) {
            RawWait::Idle => {}
            RawWait::Prime => {
                let pc = ret.expect("prime value");
                f.wait = RawWait::Sub(pc);
                return EvalStep::Request(f.cur(mgr).1, f.rv);
            }
            RawWait::Sub(pc) => {
                let sc = ret.expect("sub value");
                f.total = self.semiring.add(&f.total, &self.semiring.mul(&pc, &sc));
                f.i += 1;
            }
        }
        if !f.done() {
            f.wait = RawWait::Prime;
            EvalStep::Request(f.cur(mgr).0, f.lv)
        } else {
            self.raw.insert(f.a, (self.epoch, f.total.clone()));
            EvalStep::Complete(
                self.semiring
                    .mul(&f.total, &self.smoothing(mgr, f.scope, f.vnode)),
            )
        }
    }

    /// Cached values are keyed by `SddId`s, which are per-manager indices:
    /// serving them for another manager — even one over an identical vtree
    /// — would silently return another formula's numbers.
    fn check_binding(&self, mgr: &(impl SddRead + ?Sized)) {
        assert_eq!(
            self.mgr_uid,
            mgr.uid(),
            "EvalCache is bound to the manager it was created with"
        );
    }

    /// Recompute the smoothing gaps whose subtree saw a weight change
    /// (linear sweep over the vtree — the SDD is the expensive side).
    fn refresh_gaps(&mut self, mgr: &(impl SddRead + ?Sized)) {
        for i in 0..self.vtree_postorder.len() {
            let n = self.vtree_postorder[i];
            let need = self.vnode_epoch[n.index()];
            if matches!(&self.gap[n.index()], Some((stamp, _)) if *stamp >= need) {
                continue;
            }
            let g = match mgr.vtree().children(n) {
                None => {
                    let v = mgr.vtree().leaf_var(n).expect("leaf");
                    let (wn, wp) = &self.weights[&v];
                    self.semiring.add(wn, wp)
                }
                Some((l, r)) => {
                    let gl = &self.gap[l.index()].as_ref().expect("postorder").1;
                    let gr = &self.gap[r.index()].as_ref().expect("postorder").1;
                    self.semiring.mul(gl, gr)
                }
            };
            self.gap[n.index()] = Some((self.epoch, g));
        }
    }

    fn gap_of(&self, t: VtreeNodeId) -> &S::Elem {
        &self.gap[t.index()].as_ref().expect("gaps refreshed").1
    }

    /// Value of `a` over the scope of vtree node `scope` (⊇ `a`'s own
    /// scope): answered immediately for terminals, literals, and decisions
    /// whose stamped raw value is still valid; a stale decision pushes a
    /// [`RawFrame`] and returns `None` (the requester resumes once the
    /// frame completes).
    fn scoped(
        &mut self,
        mgr: &(impl SddRead + ?Sized),
        a: SddId,
        scope: VtreeNodeId,
        frames: &mut Vec<RawFrame<S::Elem>>,
    ) -> Option<S::Elem> {
        match mgr.node(a) {
            SddNode::False => Some(self.semiring.zero()),
            SddNode::True => Some(self.gap_of(scope).clone()),
            SddNode::Literal { var, positive } => {
                let (wn, wp) = &self.weights[var];
                let lit = if *positive { wp.clone() } else { wn.clone() };
                let leaf = mgr.vtree().leaf_of_var(*var).expect("var in vtree");
                let smooth = self.smoothing(mgr, scope, leaf);
                Some(self.semiring.mul(&lit, &smooth))
            }
            SddNode::Decision { vnode, elems } => {
                let vnode = *vnode;
                self.stats.lookups += 1;
                if let Some((stamp, v)) = self.raw.get(&a) {
                    if *stamp >= self.vnode_epoch[vnode.index()] {
                        self.stats.hits += 1;
                        let raw = v.clone();
                        let smooth = self.smoothing(mgr, scope, vnode);
                        return Some(self.semiring.mul(&raw, &smooth));
                    }
                }
                self.stats.recomputed += 1;
                let elems = elems.clone(); // an arena range, not element data
                let (lv, rv) = mgr.vtree().children(vnode).expect("internal vnode");
                frames.push(RawFrame {
                    a,
                    scope,
                    vnode,
                    lv,
                    rv,
                    elems,
                    i: 0,
                    wait: RawWait::Idle,
                    total: self.semiring.zero(),
                });
                None
            }
        }
    }

    /// `⊗ (w⁻ ⊕ w⁺)` over the variables below `scope` but not below
    /// `target` — the division-free smoothing walk of the one-shot engine,
    /// reading the stamped gap table.
    fn smoothing(
        &self,
        mgr: &(impl SddRead + ?Sized),
        scope: VtreeNodeId,
        target: VtreeNodeId,
    ) -> S::Elem {
        let mut acc = self.semiring.one();
        mgr.vtree().branched_away(scope, target, |t| {
            acc = self.semiring.mul(&acc, self.gap_of(t));
        });
        acc
    }
}

/// The **batched** form of [`EvalCache`]: `lanes` weight rows evaluated
/// per node visit, answers returned as a column of `lanes` elements.
///
/// Values are stored struct-of-arrays — one contiguous column of `lanes`
/// elements per decision node and per vtree gap — so every node visit is a
/// straight-line loop over a contiguous column ([`LaneSemiring`]), paying
/// the node dispatch (topological walk, vtree smoothing walks, hash
/// lookups) once per node instead of once per node *per query*. Per lane,
/// the op sequence is exactly the scalar engine's, so lane `l`'s answer is
/// bit-identical to an [`EvalCache`] evaluation under lane `l`'s weights
/// (`kb` proptests this).
///
/// The epoch story collapses per-lane dirty cones into one union: every
/// [`EvalLanes::set_lane_weight`] bumps the shared epoch and stamps the
/// leaf-to-root vtree path, exactly like the scalar cache — a re-evaluation
/// recomputes the union of all lanes' dirty cones once, as columns.
/// The `(w⁻, w⁺)` lane columns for one variable.
type LaneWeightCols<E> = (Vec<E>, Vec<E>);

pub struct EvalLanes<S: LaneSemiring> {
    mgr_uid: u64,
    semiring: S,
    lanes: usize,
    epoch: u64,
    /// Per variable: the `(w⁻, w⁺)` lane columns.
    weights: FxHashMap<VarId, LaneWeightCols<S::Elem>>,
    /// Per vtree node: the last epoch any weight below it changed.
    vnode_epoch: Vec<u64>,
    /// Per vtree node: stamped smoothing-product column.
    gap: Vec<Option<(u64, Vec<S::Elem>)>>,
    /// Per decision node: stamped raw (unsmoothed) value column.
    raw: FxHashMap<SddId, (u64, Vec<S::Elem>)>,
    vtree_postorder: Vec<VtreeNodeId>,
    stats: EvalCacheStats,
}

impl<S: LaneSemiring> EvalLanes<S> {
    /// A fresh `lanes`-wide evaluator over `mgr`'s vtree; every lane starts
    /// from the same base weights `weight(v, polarity)` (diverge them with
    /// [`EvalLanes::set_lane_weight`]).
    pub fn new(
        mgr: &(impl SddRead + ?Sized),
        semiring: S,
        lanes: usize,
        weight: impl Fn(VarId, bool) -> S::Elem,
    ) -> Self {
        assert!(lanes > 0, "a batch has at least one lane");
        let mut weights = FxHashMap::default();
        for &v in mgr.vtree().vars() {
            let wn = weight(v, false);
            let wp = weight(v, true);
            weights.insert(v, (vec![wn; lanes], vec![wp; lanes]));
        }
        EvalLanes {
            mgr_uid: mgr.uid(),
            semiring,
            lanes,
            epoch: 0,
            weights,
            vnode_epoch: vec![0; mgr.vtree().num_nodes()],
            gap: vec![None; mgr.vtree().num_nodes()],
            raw: FxHashMap::default(),
            vtree_postorder: mgr.vtree().bottom_up_order(),
            stats: EvalCacheStats::default(),
        }
    }

    /// The batch width.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lifetime cache-traffic counters (column recomputations count once,
    /// not once per lane — the whole point of batching).
    pub fn stats(&self) -> EvalCacheStats {
        self.stats
    }

    /// Update one lane's weight pair for `v`. Stamps the same leaf-to-root
    /// vtree cone as the scalar cache — all lanes share the epoch, so N
    /// per-lane updates dirty one cone union, recomputed once as columns.
    pub fn set_lane_weight(
        &mut self,
        mgr: &(impl SddRead + ?Sized),
        v: VarId,
        lane: usize,
        neg: S::Elem,
        pos: S::Elem,
    ) {
        self.check_binding(mgr);
        let leaf = mgr.vtree().leaf_of_var(v).expect("weight var in the vtree");
        self.epoch += 1;
        let (wn, wp) = self.weights.get_mut(&v).expect("var in the vtree");
        wn[lane] = neg;
        wp[lane] = pos;
        let mut cur = Some(leaf);
        while let Some(n) = cur {
            self.vnode_epoch[n.index()] = self.epoch;
            cur = mgr.vtree().parent(n);
        }
    }

    /// Evaluate `root` for all lanes at once, returning the root column
    /// (`lanes` elements, one per weight row). Reuses every cached column
    /// the weight changes since the last call did not invalidate. The
    /// traversal is an indexed sweep over the reachable decisions in
    /// interning order (children precede parents), so its depth is constant
    /// — the iterative-engine invariant holds for the batched sweep too.
    pub fn evaluate(&mut self, mgr: &(impl SddRead + ?Sized), root: SddId) -> Vec<S::Elem> {
        self.check_binding(mgr);
        self.refresh_gaps(mgr);
        let lanes = self.lanes;
        let mut decisions = mgr.reachable_decisions(root);
        decisions.sort_unstable();
        // Scratch columns, allocated once per evaluation.
        let mut pc = vec![self.semiring.zero(); lanes];
        let mut sc = vec![self.semiring.zero(); lanes];
        let mut smooth = vec![self.semiring.zero(); lanes];
        for a in decisions {
            let SddNode::Decision { vnode, .. } = mgr.node(a) else {
                unreachable!("reachable_decisions returns decisions");
            };
            let vnode = *vnode;
            self.stats.lookups += 1;
            if let Some((stamp, _)) = self.raw.get(&a) {
                if *stamp >= self.vnode_epoch[vnode.index()] {
                    self.stats.hits += 1;
                    continue;
                }
            }
            self.stats.recomputed += 1;
            let (lv, rv) = mgr.vtree().children(vnode).expect("internal vnode");
            let mut total = vec![self.semiring.zero(); lanes];
            for &(p, s) in mgr.elements_of(a) {
                self.scoped_col(mgr, p, lv, &mut pc, &mut smooth);
                self.scoped_col(mgr, s, rv, &mut sc, &mut smooth);
                self.semiring.mul_add_assign_lanes(&mut total, &pc, &sc);
            }
            self.raw.insert(a, (self.epoch, total));
        }
        let mut out = vec![self.semiring.zero(); lanes];
        self.scoped_col(mgr, root, mgr.vtree().root(), &mut out, &mut smooth);
        out
    }

    fn check_binding(&self, mgr: &(impl SddRead + ?Sized)) {
        assert_eq!(
            self.mgr_uid,
            mgr.uid(),
            "EvalLanes is bound to the manager it was created with"
        );
    }

    /// Recompute the gap columns whose subtree saw a weight change — the
    /// lane form of [`EvalCache::refresh_gaps`], same stamps, same order.
    fn refresh_gaps(&mut self, mgr: &(impl SddRead + ?Sized)) {
        for i in 0..self.vtree_postorder.len() {
            let n = self.vtree_postorder[i];
            let need = self.vnode_epoch[n.index()];
            if matches!(&self.gap[n.index()], Some((stamp, _)) if *stamp >= need) {
                continue;
            }
            let g: Vec<S::Elem> = match mgr.vtree().children(n) {
                None => {
                    let v = mgr.vtree().leaf_var(n).expect("leaf");
                    let (wn, wp) = &self.weights[&v];
                    // Per lane: add(w⁻, w⁺), the scalar leaf gap.
                    wn.iter()
                        .zip(wp)
                        .map(|(a, b)| self.semiring.add(a, b))
                        .collect()
                }
                Some((l, r)) => {
                    let mut col = self.gap[l.index()].as_ref().expect("postorder").1.clone();
                    let gr = &self.gap[r.index()].as_ref().expect("postorder").1;
                    self.semiring.mul_assign_lanes(&mut col, gr);
                    col
                }
            };
            self.gap[n.index()] = Some((self.epoch, g));
        }
    }

    fn gap_col(&self, t: VtreeNodeId) -> &[S::Elem] {
        &self.gap[t.index()].as_ref().expect("gaps refreshed").1
    }

    /// Write the column of `a` over the scope of vtree node `scope` into
    /// `out`. `smooth` is caller-provided scratch for the smoothing fold —
    /// per lane, the sequence `one, ⊗gap, …, base ⊗ smooth` is exactly the
    /// scalar [`EvalCache::scoped`] sequence, keeping lanes bit-identical.
    fn scoped_col(
        &self,
        mgr: &(impl SddRead + ?Sized),
        a: SddId,
        scope: VtreeNodeId,
        out: &mut [S::Elem],
        smooth: &mut [S::Elem],
    ) {
        match mgr.node(a) {
            SddNode::False => self.semiring.zero_fill(out),
            SddNode::True => out.clone_from_slice(self.gap_col(scope)),
            SddNode::Literal { var, positive } => {
                let (wn, wp) = &self.weights[var];
                let lit: &[S::Elem] = if *positive { wp } else { wn };
                let leaf = mgr.vtree().leaf_of_var(*var).expect("var in vtree");
                self.smoothing_col(mgr, scope, leaf, smooth);
                self.semiring.mul_lanes_into(out, lit, smooth);
            }
            SddNode::Decision { vnode, .. } => {
                let raw = &self.raw.get(&a).expect("children sweep first").1;
                self.smoothing_col(mgr, scope, *vnode, smooth);
                self.semiring.mul_lanes_into(out, raw, smooth);
            }
        }
    }

    /// Smoothing-product column over the variables below `scope` but not
    /// below `target`, written into `out`.
    fn smoothing_col(
        &self,
        mgr: &(impl SddRead + ?Sized),
        scope: VtreeNodeId,
        target: VtreeNodeId,
        out: &mut [S::Elem],
    ) {
        self.semiring.one_fill(out);
        mgr.vtree().branched_away(scope, target, |t| {
            self.semiring.mul_assign_lanes(out, self.gap_col(t));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FALSE, TRUE};
    use boolfunc::{BoolFn, VarSet};
    use vtree::Vtree;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn exact_checked_and_saturating_counts_agree_small() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let f = BoolFn::random(VarSet::from_slice(&vars(7)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(7)).unwrap());
        let r = m.from_boolfn(&f);
        let expect = f.count_models() as u128;
        assert_eq!(m.count_models(r), expect);
        assert_eq!(m.count_models_checked(r), Some(expect));
        assert_eq!(m.count_models_exact(r), BigUint::from_u128(expect));
    }

    #[test]
    fn beyond_u128_is_exact_not_wrapped() {
        // ⊤ over 200 variables: 2^200 models, far past u128.
        let vt = Vtree::balanced(&vars(200)).unwrap();
        let m = SddManager::new(vt);
        assert_eq!(m.count_models_exact(TRUE), BigUint::pow2(200));
        assert_eq!(m.count_models_checked(TRUE), None);
        // A single literal still pins one variable: 2^199.
        let mut m = SddManager::new(Vtree::balanced(&vars(200)).unwrap());
        let x = m.literal(VarId(7), true);
        assert_eq!(m.count_models_exact(x), BigUint::pow2(199));
        assert_eq!(m.count_models_exact(FALSE), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "exceeds u128")]
    fn overflowing_u128_count_panics_in_every_profile() {
        // Release builds used to return u128::MAX silently (the assertion
        // was debug-only); saturated counts must never escape.
        let m = SddManager::new(Vtree::balanced(&vars(130)).unwrap());
        let _ = m.count_models(TRUE);
    }

    #[test]
    fn rational_and_f64_weighted_counts_agree() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(6)).unwrap());
        let r = m.from_boolfn(&f);
        let probs = [0.5, 0.25, 0.125, 0.75, 0.375, 0.0625]; // dyadic: exact in f64
        let approx = m.probability(r, |v| probs[v.index()]);
        let exact = m.probability_exact(r, |v| Rational::from_f64(probs[v.index()]));
        assert!(
            (exact.to_f64() - approx).abs() < 1e-12,
            "exact {exact} vs f64 {approx}"
        );
        let kernel = f.probability(|v| probs[v.index()]);
        assert!((approx - kernel).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_are_handled_without_division() {
        // The old engine divided by smoothing products and special-cased 0;
        // the semiring engine must get w⁻ = w⁺ = 0 right structurally.
        let mut m = SddManager::new(Vtree::balanced(&vars(3)).unwrap());
        let x0 = m.literal(VarId(0), true);
        let x2 = m.literal(VarId(2), true);
        let g = m.or(x0, x2);
        // Var 1 dead (weight 0 both ways): whole count collapses to 0.
        let wc = m.weighted_count(g, |v| {
            if v.index() == 1 {
                (0.0, 0.0)
            } else {
                (1.0, 1.0)
            }
        });
        assert_eq!(wc, 0.0);
        // Var 1 pinned to true only: count halves instead.
        let wc = m.weighted_count(g, |v| {
            if v.index() == 1 {
                (0.0, 1.0)
            } else {
                (1.0, 1.0)
            }
        });
        assert_eq!(wc, 3.0);
    }

    #[test]
    fn eval_cache_matches_one_shot_engine_under_weight_churn() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let f = BoolFn::random(VarSet::from_slice(&vars(8)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(8)).unwrap());
        let r = m.from_boolfn(&f);
        let mut probs = [0.5f64; 8];
        let mut cache = EvalCache::new(&m, F64, |v, pos| {
            if pos {
                probs[v.index()]
            } else {
                1.0 - probs[v.index()]
            }
        });
        for step in 0..20 {
            let fresh = m.probability(r, |v| probs[v.index()]);
            let cached = cache.evaluate(&m, r);
            assert!(
                (fresh - cached).abs() < 1e-12,
                "step {step}: {fresh} vs {cached}"
            );
            // Mutate one weight and go around again.
            let v = VarId(step % 8);
            probs[v.index()] = (step as f64 * 0.37 + 0.13) % 1.0;
            cache.set_weight(&m, v, 1.0 - probs[v.index()], probs[v.index()]);
        }
    }

    #[test]
    fn eval_cache_recomputes_only_the_dirty_cone() {
        // A conjunction of independent literals over a balanced vtree: the
        // SDD has decision nodes spread across the tree, and flipping one
        // variable's weight must not touch the opposite half.
        let n = 16u32;
        let mut m = SddManager::new(Vtree::balanced(&vars(n)).unwrap());
        let mut g = TRUE;
        for i in 0..n {
            let x = m.literal(VarId(i), true);
            let o = if i % 2 == 0 { x } else { m.negate(x) };
            g = m.and(g, o);
        }
        let mut cache = EvalCache::new(&m, F64, |_, _| 0.5);
        let _ = cache.evaluate(&m, g);
        let cold = cache.stats();
        assert!(cold.recomputed > 0 && cold.hits <= cold.lookups);

        // Second evaluation with nothing changed: all hits, zero recompute.
        let _ = cache.evaluate(&m, g);
        let warm = cache.stats().delta_since(cold);
        assert_eq!(warm.recomputed, 0, "clean cache must not recompute");
        // One weight change: strictly fewer recomputations than cold.
        cache.set_weight(&m, VarId(3), 0.25, 0.75);
        let before = cache.stats();
        let _ = cache.evaluate(&m, g);
        let dirty = cache.stats().delta_since(before);
        assert!(dirty.recomputed > 0, "the cone above x3 is dirty");
        assert!(
            dirty.recomputed < cold.recomputed,
            "dirty cone ({}) must be smaller than the full diagram ({})",
            dirty.recomputed,
            cold.recomputed
        );
    }

    #[test]
    fn eval_cache_carries_any_semiring() {
        use arith::MaxPlus;
        // Chain-ish function; max-plus over log-weights = log of the best
        // model's weight. F = x0 ∨ x2 over 3 vars, w⁺ = 0.8, w⁻ = 0.2:
        // best model sets everything true: 0.8³.
        let mut m = SddManager::new(Vtree::balanced(&vars(3)).unwrap());
        let x0 = m.literal(VarId(0), true);
        let x2 = m.literal(VarId(2), true);
        let g = m.or(x0, x2);
        let mut cache =
            EvalCache::new(
                &m,
                MaxPlus,
                |_, pos| {
                    if pos {
                        (0.8f64).ln()
                    } else {
                        (0.2f64).ln()
                    }
                },
            );
        let best = cache.evaluate(&m, g);
        assert!((best - (0.8f64).ln() * 3.0).abs() < 1e-12);
        // Pin x0 false (weight → log 0): best model is now ¬x0 ∧ x2 ∧ x1.
        cache.set_weight(&m, VarId(0), (1.0f64).ln(), f64::NEG_INFINITY);
        let best = cache.evaluate(&m, g);
        assert!((best - (0.8f64).ln() * 2.0).abs() < 1e-12, "{best}");
    }

    #[test]
    #[should_panic(expected = "bound to the manager")]
    fn eval_cache_rejects_a_different_manager_with_the_same_vtree_shape() {
        // SddIds are per-manager indices: a cache built on one manager
        // must refuse another even when the vtrees are identical.
        let mut a = SddManager::new(Vtree::balanced(&vars(4)).unwrap());
        let mut b = SddManager::new(Vtree::balanced(&vars(4)).unwrap());
        let ra = {
            let x = a.literal(VarId(0), true);
            let y = a.literal(VarId(1), true);
            a.and(x, y)
        };
        let rb = {
            let x = b.literal(VarId(2), true);
            let y = b.literal(VarId(3), false);
            b.or(x, y)
        };
        let mut cache = EvalCache::new(&a, F64, |_, _| 0.5);
        let _ = cache.evaluate(&a, ra);
        let _ = cache.evaluate(&b, rb); // must panic, not mis-serve
    }

    #[test]
    fn eval_lanes_is_bit_identical_to_the_scalar_cache_per_lane() {
        use arith::LogF64;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let f = BoolFn::random(VarSet::from_slice(&vars(8)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(8)).unwrap());
        let r = m.from_boolfn(&f);
        let lanes = 5;
        // Per-lane probability tables, deliberately distinct.
        let prob = |v: usize, l: usize| 0.05 + ((v * 7 + l * 13) % 17) as f64 / 20.0;
        let mut batch = EvalLanes::new(&m, LogF64, lanes, |v, pos| {
            let p = prob(v.index(), 0);
            if pos {
                p.ln()
            } else {
                (1.0 - p).ln()
            }
        });
        for l in 1..lanes {
            for v in 0..8 {
                let p = prob(v, l);
                batch.set_lane_weight(&m, VarId(v as u32), l, (1.0 - p).ln(), p.ln());
            }
        }
        let col = batch.evaluate(&m, r);
        for (l, got) in col.iter().enumerate() {
            let mut scalar = EvalCache::new(&m, LogF64, |v, pos| {
                let p = prob(v.index(), l);
                if pos {
                    p.ln()
                } else {
                    (1.0 - p).ln()
                }
            });
            let want = scalar.evaluate(&m, r);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "lane {l}: {got} vs scalar {want}"
            );
        }
    }

    #[test]
    fn eval_lanes_dirty_cone_union_recomputes_once_and_matches_fresh() {
        let n = 16u32;
        let mut m = SddManager::new(Vtree::balanced(&vars(n)).unwrap());
        let mut g = TRUE;
        for i in 0..n {
            let x = m.literal(VarId(i), true);
            let o = if i % 3 == 0 { x } else { m.negate(x) };
            g = m.and(g, o);
        }
        let lanes = 4;
        let mut batch = EvalLanes::new(&m, F64, lanes, |_, _| 0.5);
        let _ = batch.evaluate(&m, g);
        let cold = batch.stats();
        assert!(cold.recomputed > 0);
        // Clean re-evaluation: all hits.
        let _ = batch.evaluate(&m, g);
        let warm = batch.stats().delta_since(cold);
        assert_eq!(warm.recomputed, 0, "clean lanes must not recompute");
        // Two different lanes dirty two different variables: the union cone
        // is recomputed once (column-wise), and every lane's value matches
        // a fresh evaluator with the same weights.
        batch.set_lane_weight(&m, VarId(2), 1, 0.25, 0.75);
        batch.set_lane_weight(&m, VarId(13), 3, 0.1, 0.9);
        let before = batch.stats();
        let col = batch.evaluate(&m, g);
        let dirty = batch.stats().delta_since(before);
        assert!(dirty.recomputed > 0, "the union cone is dirty");
        assert!(
            dirty.recomputed < cold.recomputed,
            "union cone ({}) smaller than the full diagram ({})",
            dirty.recomputed,
            cold.recomputed
        );
        let mut fresh = EvalLanes::new(&m, F64, lanes, |_, _| 0.5);
        fresh.set_lane_weight(&m, VarId(2), 1, 0.25, 0.75);
        fresh.set_lane_weight(&m, VarId(13), 3, 0.1, 0.9);
        let want = fresh.evaluate(&m, g);
        for l in 0..lanes {
            assert_eq!(col[l].to_bits(), want[l].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn eval_lanes_width_one_is_the_scalar_instantiation() {
        let mut m = SddManager::new(Vtree::right_linear(&vars(5)).unwrap());
        let x0 = m.literal(VarId(0), true);
        let x3 = m.literal(VarId(3), false);
        let g = m.and(x0, x3);
        let mut one = EvalLanes::new(&m, F64, 1, |_, _| 1.0);
        assert_eq!(one.lanes(), 1);
        let col = one.evaluate(&m, g);
        assert_eq!(col, vec![8.0]); // 2 pinned, 3 free
    }

    #[test]
    #[should_panic(expected = "bound to the manager")]
    fn eval_lanes_rejects_a_different_manager() {
        let mut a = SddManager::new(Vtree::balanced(&vars(4)).unwrap());
        let b = SddManager::new(Vtree::balanced(&vars(4)).unwrap());
        let ra = {
            let x = a.literal(VarId(0), true);
            let y = a.literal(VarId(1), true);
            a.and(x, y)
        };
        let mut lanes = EvalLanes::new(&a, F64, 2, |_, _| 0.5);
        let _ = lanes.evaluate(&a, ra);
        let _ = lanes.evaluate(&b, ra); // must panic, not mis-serve
    }

    #[test]
    fn counting_semiring_matches_generic_evaluate() {
        let mut m = SddManager::new(Vtree::right_linear(&vars(5)).unwrap());
        let x0 = m.literal(VarId(0), true);
        let x3 = m.literal(VarId(3), false);
        let g = m.and(x0, x3);
        let via_engine = m.evaluate(g, &Nat, |_, _| BigUint::one());
        assert_eq!(via_engine, BigUint::from_u64(8)); // 2 pinned, 3 free
        assert_eq!(m.count_models(g), 8);
    }
}
