//! The immutable freeze-and-serve slab.
//!
//! A compiled SDD is worth amortizing across many queries (and many
//! threads), but [`SddManager`] is mutable — its caches and arena move
//! under apply traffic, so a manager can serve exactly one thread.
//! [`SddManager::freeze`] ends the mutable phase: the node table, element
//! arena, negation array and unique table become plain owned slabs in a
//! [`FrozenSdd`], which is `Send + Sync` and shared via `Arc`. Freezing a
//! standalone manager is **zero-copy** (the vectors move into boxed
//! slices; node ids, arena offsets and the manager [`uid`](FrozenSdd::uid)
//! are all unchanged, so `SddId`s and bound `EvalCache`s stay valid).
//!
//! Conditioning and other structural work on a frozen base goes through
//! [`FrozenSdd::branch`]: a **copy-on-write overlay manager** whose
//! extension vectors intern new nodes on top of the shared slab. The
//! branch memcpys only the lookup structures (unique table, negation
//! array, literal cache — all id-valued, and ids are global), never the
//! slab itself; it draws a fresh uid because it is a different id-space
//! extension. Freezing a branch flattens base + extension into a new
//! standalone slab.

use crate::{next_uid, ApplyStats, IntCache, SddId, SddManager, SddNode, SddRead, UniqueTable};
use std::ops::Range;
use std::sync::Arc;
use vtree::fxhash::FxHashMap;
use vtree::{VarId, Vtree};

/// An immutable SDD slab: every node and element of a finished manager,
/// plus the lookup tables a future [`FrozenSdd::branch`] reopens from.
/// `Send + Sync`; share it with `Arc` and evaluate from any number of
/// threads through [`SddRead`] (e.g. `eval::EvalCache` instances, one per
/// thread, all bound to this slab's uid).
pub struct FrozenSdd {
    pub(crate) vtree: Arc<Vtree>,
    pub(crate) nodes: Box<[SddNode]>,
    pub(crate) arena: Box<[(SddId, SddId)]>,
    /// Negation array (node-indexed, `EMPTY_SLOT` = unknown) — reopened by
    /// branches so complement shortcuts survive the freeze.
    pub(crate) neg: Box<[u32]>,
    /// The unique table at freeze time — reopened by branches so overlay
    /// interning finds every base node.
    pub(crate) unique: UniqueTable,
    pub(crate) lit_cache: FxHashMap<(VarId, bool), SddId>,
    pub(crate) uid: u64,
}

/// Compile-time `Send + Sync` evidence (hand-rolled static assertion —
/// this function only type-checks if the slab is shareable).
#[allow(dead_code)]
fn frozen_sdd_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrozenSdd>();
    assert_send_sync::<Arc<FrozenSdd>>();
}

impl SddManager {
    /// End the mutable phase: turn this manager into an immutable
    /// [`FrozenSdd`] slab.
    ///
    /// For a standalone manager this is zero-copy — the vectors move into
    /// boxed slices, and node ids, arena offsets and [`SddManager::uid`]
    /// are unchanged (an `EvalCache` created against this manager keeps
    /// working against the slab). For an overlay manager (a
    /// [`FrozenSdd::branch`]) the shared base and the extension are
    /// flattened into one new standalone slab; ids are global on both
    /// sides, so flattening is a plain concatenation and the stored
    /// unique-table hashes stay valid.
    pub fn freeze(self) -> FrozenSdd {
        match self.base {
            None => FrozenSdd {
                vtree: self.vtree,
                nodes: self.nodes.into_boxed_slice(),
                arena: self.arena.into_boxed_slice(),
                neg: self.neg_cache.into_boxed_slice(),
                unique: self.unique,
                lit_cache: self.lit_cache,
                uid: self.uid,
            },
            Some(base) => {
                let mut nodes = Vec::with_capacity(base.nodes.len() + self.nodes.len());
                nodes.extend_from_slice(&base.nodes);
                nodes.extend(self.nodes);
                let mut arena = Vec::with_capacity(base.arena.len() + self.arena.len());
                arena.extend_from_slice(&base.arena);
                arena.extend(self.arena);
                FrozenSdd {
                    vtree: self.vtree,
                    nodes: nodes.into_boxed_slice(),
                    arena: arena.into_boxed_slice(),
                    // The overlay's negation array is already full-length
                    // and global-indexed (branch copies the base's).
                    neg: self.neg_cache.into_boxed_slice(),
                    unique: self.unique,
                    lit_cache: self.lit_cache,
                    uid: self.uid,
                }
            }
        }
    }
}

impl FrozenSdd {
    /// Reopen this slab as a copy-on-write overlay [`SddManager`]: apply /
    /// negate / condition intern *new* nodes into the manager's extension
    /// vectors while every existing node resolves into the shared slab —
    /// the base is never written. Cheap: the slab is shared by `Arc`, and
    /// only the id-valued lookup structures (unique table, negation array,
    /// literal cache) are copied. The branch has a fresh
    /// [`SddManager::uid`] — caches bound to the base must not serve an
    /// extension whose ids the base does not know.
    pub fn branch(self: &Arc<Self>) -> SddManager {
        SddManager {
            vtree: Arc::clone(&self.vtree),
            base_nodes: self.nodes.len() as u32,
            base_elems: self.arena.len() as u32,
            nodes: Vec::new(),
            arena: Vec::new(),
            lit_cache: self.lit_cache.clone(),
            unique: self.unique.clone(),
            apply_cache: IntCache::new(),
            neg_cache: self.neg.to_vec(),
            lca_cache: IntCache::new(),
            scratch: Vec::new(),
            frame_pool: Vec::new(),
            stats: ApplyStats::default(),
            uid: next_uid(),
            base: Some(Arc::clone(self)),
        }
    }

    /// The slab's vtree.
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// The uid of the manager this slab was frozen from (see
    /// [`SddRead::uid`]).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Node payload.
    pub fn node(&self, id: SddId) -> &SddNode {
        &self.nodes[id.index()]
    }

    /// Resolve a decision's arena range to its element slice.
    pub fn elements(&self, r: Range<u32>) -> &[(SddId, SddId)] {
        &self.arena[r.start as usize..r.end as usize]
    }

    /// The element slice of a decision node.
    pub fn elements_of(&self, a: SddId) -> &[(SddId, SddId)] {
        SddRead::elements_of(self, a)
    }

    /// Total nodes in the slab (terminals included).
    pub fn num_allocated(&self) -> usize {
        self.nodes.len()
    }

    /// Total elements in the slab's arena.
    pub fn num_elements(&self) -> usize {
        self.arena.len()
    }

    /// Decision nodes reachable from `root`.
    pub fn reachable_decisions(&self, root: SddId) -> Vec<SddId> {
        SddRead::reachable_decisions(self, root)
    }

    /// SDD size (total elements over reachable decisions).
    pub fn size(&self, root: SddId) -> usize {
        SddRead::size(self, root)
    }

    /// Evaluate under an assignment covering the vtree variables.
    pub fn eval(&self, a: SddId, asg: &boolfunc::Assignment) -> bool {
        SddRead::eval(self, a, asg)
    }

    /// Resident bytes of the slab: node table, element arena, negation
    /// array, unique table, literal cache — the same accounting as
    /// [`SddManager::memory_bytes`] minus the mutable-phase caches, so
    /// `mem_bytes` metrics stay comparable pre/post freeze (slices are
    /// exact-length, so a freeze typically reports slightly *less* than
    /// the manager's capacity-based estimate).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<SddNode>()
            + self.arena.len() * size_of::<(SddId, SddId)>()
            + self.neg.len() * size_of::<u32>()
            + self.unique.slots.len() * size_of::<(u64, u32)>()
            + self
                .lit_cache
                .capacity()
                .saturating_mul(size_of::<((VarId, bool), SddId)>() + 1)
    }
}

impl SddRead for FrozenSdd {
    fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    fn uid(&self) -> u64 {
        self.uid
    }

    fn node(&self, id: SddId) -> &SddNode {
        &self.nodes[id.index()]
    }

    fn elements(&self, r: Range<u32>) -> &[(SddId, SddId)] {
        &self.arena[r.start as usize..r.end as usize]
    }

    fn num_allocated(&self) -> usize {
        self.nodes.len()
    }

    fn num_elements(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FALSE, TRUE};
    use boolfunc::{BoolFn, VarSet};
    use vtree::VarId;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn compiled(n: u32, seed: u64) -> (SddManager, SddId, BoolFn) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(n)).unwrap());
        let r = m.from_boolfn(&f);
        (m, r, f)
    }

    #[test]
    fn freeze_preserves_ids_structure_and_uid() {
        let (m, r, f) = compiled(7, 20);
        let uid = m.uid();
        let (nodes, elems, size) = (m.num_allocated(), m.num_elements(), m.size(r));
        let frozen = m.freeze();
        assert_eq!(frozen.uid(), uid, "freeze keeps the manager uid");
        assert_eq!(frozen.num_allocated(), nodes);
        assert_eq!(frozen.num_elements(), elems);
        assert_eq!(frozen.size(r), size);
        // Semantics unchanged node-for-node.
        let vs = VarSet::from_slice(&vars(7));
        for idx in 0..(1u64 << 7) {
            let asg = boolfunc::Assignment::from_index(&vs, idx);
            assert_eq!(frozen.eval(r, &asg), f.eval(&asg));
        }
        assert!(frozen.memory_bytes() > 0);
    }

    #[test]
    fn branch_interns_on_top_without_touching_the_base() {
        let (m, r, f) = compiled(6, 21);
        let base_nodes = m.num_allocated();
        let frozen = Arc::new(m.freeze());
        let mut br = frozen.branch();
        assert_ne!(br.uid(), frozen.uid(), "a branch is a new id space");
        // Conditioning in the branch: base ids stay valid, new nodes get
        // ids past the base mark.
        let c = br.condition(r, VarId(0), true);
        let expect = f.restrict(VarId(0), true);
        assert!(br.to_boolfn(c).equivalent(&expect));
        assert_eq!(frozen.num_allocated(), base_nodes, "base untouched");
        assert_eq!(br.num_allocated() - br.nodes.len(), base_nodes);
        // Canonicity across the overlay: rebuilding a base function must
        // return the original base id, not a duplicate extension node.
        let r2 = br.from_boolfn(&f);
        assert_eq!(r2, r, "unique table reopened — base nodes are found");
    }

    #[test]
    fn branch_negation_and_apply_agree_with_a_standalone_manager() {
        let (m, r, f) = compiled(6, 22);
        let frozen = Arc::new(m.freeze());
        let mut br = frozen.branch();
        let nr = br.negate(r);
        assert!(br.to_boolfn(nr).equivalent(&f.not()));
        let x = br.literal(VarId(2), true);
        let g = br.and(r, x);
        let expect = f.and(&BoolFn::literal(VarId(2), true));
        assert!(br.to_boolfn(g).equivalent(&expect));
        // Two branches off one base are independent.
        let mut br2 = frozen.branch();
        let c2 = br2.condition(r, VarId(1), false);
        assert!(br2.to_boolfn(c2).equivalent(&f.restrict(VarId(1), false)));
    }

    #[test]
    fn freezing_a_branch_flattens_to_a_standalone_slab() {
        let (m, r, f) = compiled(5, 23);
        let frozen = Arc::new(m.freeze());
        let mut br = frozen.branch();
        let c = br.condition(r, VarId(3), true);
        let flat = Arc::new(br.freeze());
        assert!(flat.num_allocated() >= frozen.num_allocated());
        // Both the base root and the branch-built node live in the flat slab.
        let vs = VarSet::from_slice(&vars(5));
        let expect = f.restrict(VarId(3), true);
        for idx in 0..(1u64 << 5) {
            let asg = boolfunc::Assignment::from_index(&vs, idx);
            assert_eq!(flat.eval(r, &asg), f.eval(&asg));
            assert_eq!(flat.eval(c, &asg), expect.eval(&asg));
        }
        // And the flat slab branches again (chains of freeze/branch).
        let mut br2 = flat.branch();
        let cc = br2.condition(c, VarId(0), false);
        assert!(br2
            .to_boolfn(cc)
            .equivalent(&expect.restrict(VarId(0), false)));
    }

    #[test]
    fn terminals_survive_the_freeze() {
        let m = SddManager::new(Vtree::balanced(&vars(3)).unwrap());
        let frozen = m.freeze();
        assert!(matches!(frozen.node(FALSE), SddNode::False));
        assert!(matches!(frozen.node(TRUE), SddNode::True));
    }
}
