//! Structural validation of SDD invariants (test and experiment support).

use crate::{SddId, SddManager, SddNode};
use std::fmt;
use vtree::fxhash::FxHashSet;

/// Violations of the SDD syntax (paper §2.1, conditions (1)–(3)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SddError {
    /// A prime is not over the left subtree of its decision's vnode.
    PrimeOutOfPlace(SddId),
    /// A sub is not over the right subtree of its decision's vnode.
    SubOutOfPlace(SddId),
    /// Primes are not pairwise disjoint (condition (2)).
    PrimesOverlap(SddId),
    /// Primes do not cover the space (condition (1)).
    PrimesNotExhaustive(SddId),
    /// Two equal subs (compression / canonicity condition (3)).
    NotCompressed(SddId),
    /// A ⊥ prime survived construction.
    FalsePrime(SddId),
}

impl fmt::Display for SddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SddError::PrimeOutOfPlace(n) => write!(f, "prime of {n:?} outside left subtree"),
            SddError::SubOutOfPlace(n) => write!(f, "sub of {n:?} outside right subtree"),
            SddError::PrimesOverlap(n) => write!(f, "primes of {n:?} overlap"),
            SddError::PrimesNotExhaustive(n) => write!(f, "primes of {n:?} not exhaustive"),
            SddError::NotCompressed(n) => write!(f, "node {n:?} not compressed"),
            SddError::FalsePrime(n) => write!(f, "node {n:?} has a ⊥ prime"),
        }
    }
}

impl std::error::Error for SddError {}

impl SddManager {
    /// Check every reachable decision node against the SDD conditions.
    ///
    /// Structural checks (placement, compression) are exact everywhere.
    /// The partition checks (disjoint + exhaustive) are *semantic* and
    /// enumerate the prime space, so they are skipped when the manager's
    /// vtree exceeds the truth-table kernel cap ([`boolfunc::MAX_VARS`]) —
    /// validation degrades gracefully instead of panicking on large vtrees.
    /// For a check that is cheap at any size, use
    /// [`SddManager::validate_structure`].
    pub fn validate(&self, root: SddId) -> Result<(), SddError> {
        self.check(root, true)
    }

    /// The structural subset of [`SddManager::validate`] — placement,
    /// compression, and ⊥-prime checks only. Linear in the SDD, no
    /// truth-table enumeration, safe at any size.
    pub fn validate_structure(&self, root: SddId) -> Result<(), SddError> {
        self.check(root, false)
    }

    fn check(&self, root: SddId, semantic: bool) -> Result<(), SddError> {
        for n in self.reachable_decisions(root) {
            let SddNode::Decision { vnode, .. } = self.node(n) else {
                unreachable!()
            };
            let elems = self.elements_of(n);
            let (lv, rv) = self
                .vtree()
                .children(*vnode)
                .expect("decision vnode is internal");
            // Placement.
            for &(p, s) in elems.iter() {
                if p == crate::FALSE {
                    return Err(SddError::FalsePrime(n));
                }
                if let Some(pv) = self.respects(p) {
                    if !self.vtree().is_descendant(pv, lv) {
                        return Err(SddError::PrimeOutOfPlace(n));
                    }
                }
                if let Some(sv) = self.respects(s) {
                    if !self.vtree().is_descendant(sv, rv) {
                        return Err(SddError::SubOutOfPlace(n));
                    }
                }
            }
            // Compression: subs pairwise distinct.
            let subs: FxHashSet<SddId> = elems.iter().map(|&(_, s)| s).collect();
            if subs.len() != elems.len() {
                return Err(SddError::NotCompressed(n));
            }
            // Partition (semantic): enumerate assignments of the left vars.
            // `to_boolfn` expands primes over the manager's full variable
            // set, so the kernel cap applies to the whole vtree here.
            if !semantic || self.vtree().num_vars() > boolfunc::MAX_VARS {
                continue;
            }
            let left_vars = boolfunc::VarSet::from_slice(self.vtree().vars_below(lv));
            let primes: Vec<boolfunc::BoolFn> = elems
                .iter()
                .map(|&(p, _)| {
                    let full = self.to_boolfn(p);
                    // Project onto the left vars: p only mentions them.
                    boolfunc::BoolFn::from_fn(left_vars.clone(), |idx| {
                        let a = boolfunc::Assignment::from_index(&left_vars, idx);
                        // Extend arbitrarily (p does not depend on the rest).
                        let mut ext = a.clone();
                        for v in full.vars().iter() {
                            if ext.get(v).is_none() {
                                ext.set(v, false);
                            }
                        }
                        full.eval(&ext)
                    })
                })
                .collect();
            let mut union_count = 0u64;
            for (i, p) in primes.iter().enumerate() {
                union_count += p.count_models();
                for q in &primes[i + 1..] {
                    if p.and(q).count_models() != 0 {
                        return Err(SddError::PrimesOverlap(n));
                    }
                }
            }
            if union_count != 1u64 << left_vars.len() {
                return Err(SddError::PrimesNotExhaustive(n));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::{BoolFn, VarSet};
    use vtree::{VarId, Vtree};

    #[test]
    fn random_compilations_validate() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let vars: Vec<VarId> = (0..6).map(VarId).collect();
        for _ in 0..10 {
            let f = BoolFn::random(VarSet::from_slice(&vars), &mut rng);
            let vt = Vtree::random(&vars, &mut rng).unwrap();
            let mut m = SddManager::new(vt);
            let r = m.from_boolfn(&f);
            m.validate(r).unwrap();
            assert!(m.to_boolfn(r).equivalent(&f));
        }
    }

    #[test]
    fn circuit_compilations_validate() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let vars: Vec<VarId> = (0..5).map(VarId).collect();
        for _ in 0..10 {
            let c = circuit::families::random_circuit(5, 15, &mut rng);
            let vt = Vtree::balanced(&vars).unwrap();
            let mut m = SddManager::new(vt);
            let r = m.from_circuit(&c);
            m.validate(r).unwrap();
        }
    }
}
