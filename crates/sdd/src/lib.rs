//! Sentential decision diagrams (Darwiche, IJCAI 2011).
//!
//! An SDD respecting a vtree `T` is a deterministic structured NNF built from
//! **sentential decisions** `⋁ᵢ (Pᵢ ∧ Sᵢ)` (paper §2.1, Eq. 5): at an
//! internal vtree node `v`, the primes `Pᵢ` are SDDs over the left subtree
//! forming an exhaustive, pairwise-disjoint case distinction, and the subs
//! `Sᵢ` are SDDs over the right subtree. With **compression** (no two equal
//! subs) and **trimming**, SDDs are canonical: equivalent functions get the
//! *same node*, which this manager maintains through a unique table.
//!
//! The manager implements:
//! * apply-style operations ([`SddManager::and`],
//!   [`SddManager::or`], [`SddManager::negate`]) with memoization, via
//!   lca-normalization and element cross products;
//! * compilation from circuits and truth tables;
//! * conditioning (cofactors), used by the Theorem 5 experiments;
//! * a generic semiring evaluation engine ([`SddManager::evaluate`], module
//!   [`eval`]) with vtree-gap smoothing, instantiated at `BigUint` (exact
//!   #SAT, [`SddManager::count_models_exact`]), `Rational` (exact WMC,
//!   [`SddManager::weighted_count_exact`]) and `f64`
//!   ([`SddManager::weighted_count`], [`SddManager::probability`]);
//! * **SDD size** (total elements) and the paper's **SDD width**
//!   (Definition 5: max ∧-gates structured by a single vtree node).
//!
//! **Depth contract:** no engine in this crate recurses on input-sized
//! structure. Apply, negation, conditioning and decision construction run
//! on an explicit worklist ([`Engine`], heap-allocated frames); evaluation
//! sweeps reachable decisions bottom-up in interning order. Vtree-deep
//! diagrams — Θ(n) deep on the chain families — therefore work on a
//! default-size thread stack at any variable count.

pub mod eval;
pub mod validate;

pub use validate::SddError;

use boolfunc::{Assignment, BoolFn, VarSet};
use vtree::fxhash::FxHashMap;
use vtree::{Side, VarId, Vtree, VtreeNodeId};

/// Index of an SDD node. `FALSE = 0`, `TRUE = 1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SddId(pub u32);

/// The ⊥ terminal.
pub const FALSE: SddId = SddId(0);
/// The ⊤ terminal.
pub const TRUE: SddId = SddId(1);

impl SddId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this ⊥ or ⊤?
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// Node payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SddNode {
    /// ⊥.
    False,
    /// ⊤.
    True,
    /// A literal, attached at the vtree leaf of its variable.
    Literal { var: VarId, positive: bool },
    /// A sentential decision `⋁ (prime ∧ sub)`, normalized for `vnode`.
    Decision {
        /// The internal vtree node this decision respects.
        vnode: VtreeNodeId,
        /// `(prime, sub)` pairs: primes partition the left-subtree space,
        /// subs are pairwise distinct (compression), sorted by prime id.
        elems: Box<[(SddId, SddId)]>,
    },
}

#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// Counters over a manager's lifetime, reported by [`SddManager::apply_stats`].
/// Compilation sessions (see `sentential_core::Compiler`) surface these in
/// their reports to show how much work the apply route did; serving
/// sessions (`kb::KnowledgeBase`) snapshot them per query via
/// [`ApplyStats::delta_since`] so reports don't accumulate across a session.
#[must_use]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Binary apply (`and`/`or`) invocations, including recursive ones.
    pub apply_calls: u64,
    /// Apply invocations answered from the memo table.
    pub cache_hits: u64,
}

impl ApplyStats {
    /// Zero the counters (see also [`SddManager::reset_apply_stats`]).
    pub fn reset(&mut self) {
        *self = ApplyStats::default();
    }

    /// Counter increments since `earlier` (a snapshot of the same manager's
    /// stats) — the per-query delta serving layers report.
    pub fn delta_since(&self, earlier: ApplyStats) -> ApplyStats {
        ApplyStats {
            apply_calls: self.apply_calls.saturating_sub(earlier.apply_calls),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }
}

/// An SDD manager over a fixed vtree.
pub struct SddManager {
    vtree: Vtree,
    nodes: Vec<SddNode>,
    lit_cache: FxHashMap<(VarId, bool), SddId>,
    unique: FxHashMap<(VtreeNodeId, Vec<(SddId, SddId)>), SddId>,
    apply_cache: FxHashMap<(Op, SddId, SddId), SddId>,
    neg_cache: FxHashMap<SddId, SddId>,
    stats: ApplyStats,
    /// Process-unique identity (see [`SddManager::uid`]): node ids are
    /// per-manager indices, so anything caching values under `SddId`s
    /// (e.g. `eval::EvalCache`) must be able to tell managers apart.
    uid: u64,
}

impl SddManager {
    /// Fresh manager over `vtree`.
    pub fn new(vtree: Vtree) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_UID: AtomicU64 = AtomicU64::new(0);
        SddManager {
            vtree,
            nodes: vec![SddNode::False, SddNode::True],
            lit_cache: FxHashMap::default(),
            unique: FxHashMap::default(),
            apply_cache: FxHashMap::default(),
            neg_cache: FxHashMap::default(),
            stats: ApplyStats::default(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A process-unique identity for this manager, stable across moves.
    /// External caches keyed by this manager's [`SddId`]s store it and
    /// refuse to serve a different manager.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Lifetime apply counters (see [`ApplyStats`]).
    pub fn apply_stats(&self) -> ApplyStats {
        self.stats
    }

    /// Zero the lifetime apply counters. Long-lived serving sessions call
    /// this (or snapshot-and-[`ApplyStats::delta_since`]) between queries
    /// so each query's report reflects that query alone.
    pub fn reset_apply_stats(&mut self) {
        self.stats.reset();
    }

    /// The manager's vtree.
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// Node payload.
    pub fn node(&self, id: SddId) -> &SddNode {
        &self.nodes[id.index()]
    }

    /// Total allocated nodes (terminals included).
    pub fn num_allocated(&self) -> usize {
        self.nodes.len()
    }

    /// The vtree node a node respects: leaf for literals, its `vnode` for
    /// decisions, `None` for ⊥/⊤ (which respect every node).
    pub fn respects(&self, id: SddId) -> Option<VtreeNodeId> {
        match &self.nodes[id.index()] {
            SddNode::False | SddNode::True => None,
            SddNode::Literal { var, .. } => {
                Some(self.vtree.leaf_of_var(*var).expect("literal var in vtree"))
            }
            SddNode::Decision { vnode, .. } => Some(*vnode),
        }
    }

    /// The literal `v` / `¬v`.
    pub fn literal(&mut self, v: VarId, positive: bool) -> SddId {
        assert!(
            self.vtree.contains_var(v),
            "literal variable {v} not in the vtree"
        );
        if let Some(&id) = self.lit_cache.get(&(v, positive)) {
            return id;
        }
        let id = SddId(self.nodes.len() as u32);
        self.nodes.push(SddNode::Literal { var: v, positive });
        self.lit_cache.insert((v, positive), id);
        id
    }

    /// Canonical decision-node constructor: drops ⊥ primes, compresses
    /// (merges equal subs, or-ing their primes), trims, sorts, and interns.
    /// The compression disjunctions run through the worklist [`Engine`], so
    /// construction never recurses on node depth.
    fn mk_decision(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        let mut eng = Engine::new(None);
        match eng.start_build(self, vnode, elems) {
            Some(r) => r,
            None => eng.run(self),
        }
    }

    /// The pure tail of decision construction: trimming rules, prime-order
    /// sorting, and unique-table interning. `compressed` must already have
    /// pairwise distinct subs and no ⊥ primes.
    fn finish_decision(
        &mut self,
        vnode: VtreeNodeId,
        mut compressed: Vec<(SddId, SddId)>,
    ) -> SddId {
        // Trimming rule 1: {(⊤, s)} → s.
        if compressed.len() == 1 && compressed[0].0 == TRUE {
            return compressed[0].1;
        }
        // Trimming rule 2: {(p, ⊤), (¬p, ⊥)} → p.
        if compressed.len() == 2 {
            let find = |sub: SddId| compressed.iter().find(|&&(_, s)| s == sub).map(|&(p, _)| p);
            if let (Some(p_true), Some(_p_false)) = (find(TRUE), find(FALSE)) {
                return p_true;
            }
        }
        compressed.sort_unstable_by_key(|&(p, _)| p);
        let key = (vnode, compressed.clone());
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = SddId(self.nodes.len() as u32);
        self.nodes.push(SddNode::Decision {
            vnode,
            elems: compressed.into_boxed_slice(),
        });
        self.unique.insert(key, id);
        id
    }

    /// Public canonical decision constructor: builds `⋁ (prime ∧ sub)`
    /// normalized for `vnode`, applying compression, trimming and unique-table
    /// interning.
    ///
    /// The caller must supply primes forming an exhaustive, pairwise-disjoint
    /// partition of the left-subtree space (the constructor *canonicalizes*
    /// but does not verify this; use [`SddManager::validate`] in tests). This
    /// is the entry point for the paper's direct `S_{F,T}` construction
    /// (§3.2.2), which builds sentential decisions from factor sets rather
    /// than through `apply`.
    pub fn decision(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        assert!(
            !self.vtree.is_leaf(vnode),
            "decision vnode must be internal"
        );
        self.mk_decision(vnode, elems)
    }

    /// Negation (cached; structural: same primes, negated subs). Runs on
    /// the worklist [`Engine`] — heap-bounded depth.
    pub fn negate(&mut self, a: SddId) -> SddId {
        let mut eng = Engine::new(None);
        match eng.start_negate(self, a) {
            Some(r) => r,
            None => eng.run(self),
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: SddId, b: SddId) -> SddId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: SddId, b: SddId) -> SddId {
        self.apply(Op::Or, a, b)
    }

    fn apply(&mut self, op: Op, a: SddId, b: SddId) -> SddId {
        let mut eng = Engine::new(None);
        match eng.start_apply(self, op, a, b) {
            Some(r) => r,
            None => eng.run(self),
        }
    }

    /// The element list of a decision node.
    fn elements_of(&self, a: SddId) -> Vec<(SddId, SddId)> {
        match &self.nodes[a.index()] {
            SddNode::Decision { elems, .. } => elems.to_vec(),
            _ => unreachable!("elements_of on non-decision"),
        }
    }

    /// Compile a circuit bottom-up.
    pub fn from_circuit(&mut self, c: &circuit::Circuit) -> SddId {
        use circuit::GateKind;
        let mut val: Vec<SddId> = Vec::with_capacity(c.size());
        for (_, g) in c.iter() {
            let n = match g {
                GateKind::Var(v) => self.literal(*v, true),
                GateKind::Const(b) => {
                    if *b {
                        TRUE
                    } else {
                        FALSE
                    }
                }
                GateKind::Not(x) => {
                    let x = val[x.index()];
                    self.negate(x)
                }
                GateKind::And(xs) => {
                    let mut acc = TRUE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.and(acc, xv);
                    }
                    acc
                }
                GateKind::Or(xs) => {
                    let mut acc = FALSE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.or(acc, xv);
                    }
                    acc
                }
            };
            val.push(n);
        }
        val[c.output().index()]
    }

    /// Compile a truth table by Shannon expansion along the vtree leaf order
    /// (apply does the structural work; the result is canonical regardless).
    pub fn from_boolfn(&mut self, f: &BoolFn) -> SddId {
        assert!(
            f.vars().iter().all(|v| self.vtree.contains_var(v)),
            "vtree must cover the support"
        );
        let order = self.vtree.leaf_order();
        let mut memo: FxHashMap<BoolFn, SddId> = FxHashMap::default();
        self.from_boolfn_rec(f, &order, 0, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)] // recursive helper of from_boolfn
    fn from_boolfn_rec(
        &mut self,
        f: &BoolFn,
        order: &[VarId],
        mut i: usize,
        memo: &mut FxHashMap<BoolFn, SddId>,
    ) -> SddId {
        if let Some(c) = f.as_constant() {
            return if c { TRUE } else { FALSE };
        }
        if let Some(&n) = memo.get(f) {
            return n;
        }
        while !(f.vars().contains(order[i]) && f.depends_on(order[i])) {
            i += 1;
        }
        let v = order[i];
        let f0 = f.restrict(v, false);
        let f1 = f.restrict(v, true);
        let lo = self.from_boolfn_rec(&f0, order, i + 1, memo);
        let hi = self.from_boolfn_rec(&f1, order, i + 1, memo);
        let pos = self.literal(v, true);
        let neg = self.literal(v, false);
        let a = self.and(pos, hi);
        let b = self.and(neg, lo);
        let n = self.or(a, b);
        memo.insert(f.clone(), n);
        n
    }

    /// Condition on `var := value` (cofactor). Memoized per node and run
    /// on the worklist [`Engine`] — heap-bounded depth even on vtree-deep
    /// diagrams.
    pub fn condition(&mut self, a: SddId, var: VarId, value: bool) -> SddId {
        let mut eng = Engine::new(Some(CondCtx {
            var,
            value,
            memo: FxHashMap::default(),
        }));
        match eng.start_condition(self, a) {
            Some(r) => r,
            None => eng.run(self),
        }
    }

    /// Evaluate under an assignment covering the vtree variables: one
    /// bottom-up sweep over the reachable decisions in interning order
    /// (children are always interned before their parents, so ascending
    /// [`SddId`] is a topological order) — linear in the DAG size, constant
    /// stack depth.
    pub fn eval(&self, a: SddId, asg: &Assignment) -> bool {
        let mut decisions = self.reachable_decisions(a);
        decisions.sort_unstable();
        let mut val: FxHashMap<SddId, bool> = FxHashMap::default();
        let value_of = |n: SddId, val: &FxHashMap<SddId, bool>| match &self.nodes[n.index()] {
            SddNode::False => false,
            SddNode::True => true,
            SddNode::Literal { var, positive } => {
                asg.get(*var).expect("assignment covers vtree vars") == *positive
            }
            SddNode::Decision { .. } => val[&n],
        };
        for d in decisions {
            let SddNode::Decision { elems, .. } = &self.nodes[d.index()] else {
                unreachable!("reachable_decisions returns decisions");
            };
            let b = elems
                .iter()
                .any(|&(p, s)| value_of(p, &val) && value_of(s, &val));
            val.insert(d, b);
        }
        value_of(a, &val)
    }

    /// Read back the function over the full vtree variable set.
    pub fn to_boolfn(&self, a: SddId) -> BoolFn {
        let vars = VarSet::from_slice(self.vtree.vars());
        BoolFn::from_fn(vars.clone(), |idx| {
            self.eval(a, &Assignment::from_index(&vars, idx))
        })
    }

    /// Decision nodes reachable from `root`.
    pub fn reachable_decisions(&self, root: SddId) -> Vec<SddId> {
        let mut seen: FxHashMap<SddId, ()> = FxHashMap::default();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen.contains_key(&n) {
                continue;
            }
            seen.insert(n, ());
            if let SddNode::Decision { elems, .. } = &self.nodes[n.index()] {
                out.push(n);
                for &(p, s) in elems.iter() {
                    stack.push(p);
                    stack.push(s);
                }
            }
        }
        out
    }

    /// SDD size: total number of elements (∧-gates) over reachable decisions.
    pub fn size(&self, root: SddId) -> usize {
        self.reachable_decisions(root)
            .iter()
            .map(|n| match &self.nodes[n.index()] {
                SddNode::Decision { elems, .. } => elems.len(),
                _ => 0,
            })
            .sum()
    }

    /// ∧-gates per vtree node: the counts behind the paper's Definition 5.
    pub fn vnode_profile(&self, root: SddId) -> FxHashMap<VtreeNodeId, usize> {
        let mut profile: FxHashMap<VtreeNodeId, usize> = FxHashMap::default();
        for n in self.reachable_decisions(root) {
            if let SddNode::Decision { vnode, elems } = &self.nodes[n.index()] {
                *profile.entry(*vnode).or_insert(0) += elems.len();
            }
        }
        profile
    }

    /// The paper's **SDD width** (Definition 5): the maximum number of
    /// ∧-gates structured by a single vtree node.
    pub fn width(&self, root: SddId) -> usize {
        self.vnode_profile(root)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// The worklist engine behind apply / negate / condition.
//
// The natural implementations of these operations recurse to the vtree /
// SDD depth, which is Θ(n) on chain-shaped inputs — a 100k-variable
// session would overflow any default stack. The `Engine` below replaces
// the call stack with an explicit frame stack on the heap: every suspended
// operation is a `Frame` recording exactly where it will resume, a single
// `ret` register carries each finished node id to the frame that asked for
// it, and `start_*` resolvers answer what they can immediately (terminal
// shortcuts, cache hits, literals) without growing the stack. Memoization
// and hash-consing are bit-for-bit those of the former recursion: the same
// caches are consulted and filled at the same points, in the same order,
// so the constructed nodes (and the ApplyStats counters) are identical.
// ---------------------------------------------------------------------

/// Context of one `condition` run: the pinned literal and the per-call
/// memo table (cofactor results are not globally cached).
struct CondCtx {
    var: VarId,
    value: bool,
    memo: FxHashMap<SddId, SddId>,
}

/// What a suspended [`Frame::Prep`] is waiting for.
#[derive(Copy, Clone)]
enum PrepWait {
    /// Just pushed; no negation requested yet.
    Fresh,
    /// The negation of operand `a`.
    NegA,
    /// The negation of operand `b`.
    NegB,
}

/// What a suspended [`Frame::Cross`] is waiting for.
enum CrossWait {
    /// Just pushed, or between element pairs.
    Idle,
    /// The prime conjunction of the current pair.
    Prime,
    /// The sub combination; the finished prime rides along.
    Sub(SddId),
    /// The final decision construction.
    Build,
}

/// What a suspended [`Frame::Cond`] is waiting for.
enum CondWait {
    /// Just pushed, or between elements.
    Idle,
    /// The conditioned prime of the current element.
    Prime,
    /// The conditioned sub; the conditioned prime rides along.
    Sub(SddId),
    /// The final decision construction.
    Build,
}

/// One suspended operation of the worklist engine.
enum Frame {
    /// An apply whose operands normalize at their vtree lca: a left-side
    /// operand needs its negation before the element lists exist.
    Prep {
        op: Op,
        key: (Op, SddId, SddId),
        l: VtreeNodeId,
        a: SddId,
        /// `None` when `a` respects `l` itself.
        a_at: Option<Side>,
        b: SddId,
        b_at: Option<Side>,
        na: Option<SddId>,
        nb: Option<SddId>,
        wait: PrepWait,
    },
    /// The element cross product of an apply.
    Cross {
        op: Op,
        key: (Op, SddId, SddId),
        vnode: VtreeNodeId,
        ea: Vec<(SddId, SddId)>,
        eb: Vec<(SddId, SddId)>,
        i: usize,
        j: usize,
        wait: CrossWait,
        out: Vec<(SddId, SddId)>,
    },
    /// Structural negation of a decision (same primes, negated subs).
    Neg {
        a: SddId,
        vnode: VtreeNodeId,
        elems: Box<[(SddId, SddId)]>,
        i: usize,
        out: Vec<(SddId, SddId)>,
        /// Set once the final decision construction was requested.
        building: bool,
    },
    /// Conditioning of a decision (both primes and subs restricted).
    Cond {
        a: SddId,
        vnode: VtreeNodeId,
        elems: Box<[(SddId, SddId)]>,
        i: usize,
        wait: CondWait,
        out: Vec<(SddId, SddId)>,
    },
    /// Canonical decision construction with pending prime-compression
    /// disjunctions (groups of equal subs whose primes must be or-ed).
    Build {
        vnode: VtreeNodeId,
        /// `(primes, sub)` groups, sorted by sub.
        groups: Vec<(Vec<SddId>, SddId)>,
        gi: usize,
        /// Next prime index within the current group (0 = group untouched).
        pi: usize,
        /// The or-accumulator of the current group.
        acc: SddId,
        compressed: Vec<(SddId, SddId)>,
    },
}

impl Frame {
    /// A fresh cross-product frame for an apply normalized at `vnode`.
    fn cross(
        op: Op,
        key: (Op, SddId, SddId),
        vnode: VtreeNodeId,
        ea: Vec<(SddId, SddId)>,
        eb: Vec<(SddId, SddId)>,
    ) -> Frame {
        let cap = ea.len() * eb.len();
        Frame::Cross {
            op,
            key,
            vnode,
            ea,
            eb,
            i: 0,
            j: 0,
            wait: CrossWait::Idle,
            out: Vec::with_capacity(cap),
        }
    }
}

/// A sub-operation a frame asks the engine to resolve.
enum Req {
    Apply(Op, SddId, SddId),
    Negate(SddId),
    Condition(SddId),
    Build(VtreeNodeId, Vec<(SddId, SddId)>),
}

/// Outcome of advancing the top frame in place.
enum Step {
    /// The frame recorded what it waits for and requests a sub-operation.
    Request(Req),
    /// The frame finished; pop it and deliver its result.
    Complete(SddId),
}

/// The frame stack plus the `ret` register. One engine drives one public
/// operation (`and`/`or`/`negate`/`condition`/`decision`) to completion.
struct Engine {
    frames: Vec<Frame>,
    cond: Option<CondCtx>,
}

impl Engine {
    fn new(cond: Option<CondCtx>) -> Self {
        Engine {
            frames: Vec::new(),
            cond,
        }
    }

    /// Drive the frame stack until the initial request is answered.
    ///
    /// Invariant: a frame on top with no pending `ret` was just pushed (or
    /// just transitioned) and issues its first request; any other advance
    /// delivers `ret` to the exact slot the top frame's `wait` state
    /// names. Frames advance **in place** — only completions pop, only new
    /// children push; re-pushing the whole frame per element (the obvious
    /// encoding) moves ~100 bytes twice per cross-product pair, which
    /// measurably taxed the compile path.
    fn run(&mut self, m: &mut SddManager) -> SddId {
        let mut ret: Option<SddId> = None;
        loop {
            let Some(top) = self.frames.last_mut() else {
                return ret.expect("the worklist terminates with the requested node");
            };
            match Self::advance(top, ret.take(), m, &mut self.cond) {
                Step::Request(req) => ret = self.start_request(m, req),
                Step::Complete(v) => {
                    self.frames.pop();
                    ret = Some(v);
                }
            }
        }
    }

    /// Dispatch a frame's sub-operation request to its resolver (which
    /// answers immediately or pushes the frame that will).
    fn start_request(&mut self, m: &mut SddManager, req: Req) -> Option<SddId> {
        match req {
            Req::Apply(op, a, b) => self.start_apply(m, op, a, b),
            Req::Negate(a) => self.start_negate(m, a),
            Req::Condition(a) => self.start_condition(m, a),
            Req::Build(vnode, elems) => self.start_build(m, vnode, elems),
        }
    }

    /// Advance the top frame in place: consume `ret` into the slot its
    /// `wait` state names, then either emit the frame's next request or
    /// declare it complete. The only internal transition is Prep → Cross
    /// (once the needed negations are in hand).
    fn advance(
        frame: &mut Frame,
        mut ret: Option<SddId>,
        m: &mut SddManager,
        cond: &mut Option<CondCtx>,
    ) -> Step {
        loop {
            match frame {
                Frame::Prep {
                    op,
                    key,
                    l,
                    a,
                    a_at,
                    b,
                    b_at,
                    na,
                    nb,
                    wait,
                } => {
                    match wait {
                        PrepWait::Fresh => {}
                        PrepWait::NegA => *na = Some(ret.take().expect("negation result")),
                        PrepWait::NegB => *nb = Some(ret.take().expect("negation result")),
                    }
                    if *a_at == Some(Side::Left) && na.is_none() {
                        *wait = PrepWait::NegA;
                        return Step::Request(Req::Negate(*a));
                    }
                    if *b_at == Some(Side::Left) && nb.is_none() {
                        *wait = PrepWait::NegB;
                        return Step::Request(Req::Negate(*b));
                    }
                    let ea = Self::norm_elems(m, *a, *a_at, *na);
                    let eb = Self::norm_elems(m, *b, *b_at, *nb);
                    *frame = Frame::cross(*op, *key, *l, ea, eb);
                    // Loop: the fresh Cross issues its first request.
                }
                Frame::Cross {
                    op,
                    key,
                    vnode,
                    ea,
                    eb,
                    i,
                    j,
                    wait,
                    out,
                } => {
                    match std::mem::replace(wait, CrossWait::Idle) {
                        CrossWait::Idle => {}
                        CrossWait::Prime => {
                            let p = ret.take().expect("prime result");
                            if p == FALSE {
                                *j += 1;
                                if *j == eb.len() {
                                    *j = 0;
                                    *i += 1;
                                }
                            } else {
                                *wait = CrossWait::Sub(p);
                                return Step::Request(Req::Apply(*op, ea[*i].1, eb[*j].1));
                            }
                        }
                        CrossWait::Sub(p) => {
                            out.push((p, ret.take().expect("sub result")));
                            *j += 1;
                            if *j == eb.len() {
                                *j = 0;
                                *i += 1;
                            }
                        }
                        CrossWait::Build => {
                            let r = ret.take().expect("build result");
                            m.apply_cache.insert(*key, r);
                            return Step::Complete(r);
                        }
                    }
                    if *i < ea.len() {
                        *wait = CrossWait::Prime;
                        return Step::Request(Req::Apply(Op::And, ea[*i].0, eb[*j].0));
                    }
                    *wait = CrossWait::Build;
                    return Step::Request(Req::Build(*vnode, std::mem::take(out)));
                }
                Frame::Neg {
                    a,
                    vnode,
                    elems,
                    i,
                    out,
                    building,
                } => {
                    if *building {
                        let n = ret.take().expect("build result");
                        m.neg_cache.insert(*a, n);
                        m.neg_cache.insert(n, *a);
                        return Step::Complete(n);
                    }
                    if let Some(ns) = ret.take() {
                        out.push((elems[*i].0, ns));
                        *i += 1;
                    }
                    if *i < elems.len() {
                        return Step::Request(Req::Negate(elems[*i].1));
                    }
                    *building = true;
                    return Step::Request(Req::Build(*vnode, std::mem::take(out)));
                }
                Frame::Cond {
                    a,
                    vnode,
                    elems,
                    i,
                    wait,
                    out,
                } => {
                    match std::mem::replace(wait, CondWait::Idle) {
                        CondWait::Idle => {}
                        CondWait::Prime => {
                            let np = ret.take().expect("conditioned prime");
                            *wait = CondWait::Sub(np);
                            return Step::Request(Req::Condition(elems[*i].1));
                        }
                        CondWait::Sub(np) => {
                            out.push((np, ret.take().expect("conditioned sub")));
                            *i += 1;
                        }
                        CondWait::Build => {
                            let r = ret.take().expect("build result");
                            cond.as_mut().expect("condition context").memo.insert(*a, r);
                            return Step::Complete(r);
                        }
                    }
                    if *i < elems.len() {
                        *wait = CondWait::Prime;
                        return Step::Request(Req::Condition(elems[*i].0));
                    }
                    *wait = CondWait::Build;
                    return Step::Request(Req::Build(*vnode, std::mem::take(out)));
                }
                Frame::Build {
                    vnode,
                    groups,
                    gi,
                    pi,
                    acc,
                    compressed,
                } => {
                    if let Some(r) = ret.take() {
                        *acc = r;
                    }
                    loop {
                        if *gi == groups.len() {
                            let elems = std::mem::take(compressed);
                            return Step::Complete(m.finish_decision(*vnode, elems));
                        }
                        if *pi == 0 {
                            *acc = groups[*gi].0[0];
                            *pi = 1;
                        }
                        if *pi < groups[*gi].0.len() {
                            let p = groups[*gi].0[*pi];
                            *pi += 1;
                            return Step::Request(Req::Apply(Op::Or, *acc, p));
                        }
                        compressed.push((*acc, groups[*gi].1));
                        *gi += 1;
                        *pi = 0;
                    }
                }
            }
        }
    }

    /// Begin an apply: answer terminal/identity shortcuts, cache hits and
    /// leaf clashes immediately; otherwise push the frame that will finish
    /// it. Mirrors the former recursive `apply` head exactly (including
    /// which results enter the apply cache and when the stats count).
    fn start_apply(&mut self, m: &mut SddManager, op: Op, a: SddId, b: SddId) -> Option<SddId> {
        m.stats.apply_calls += 1;
        // Terminal and identity shortcuts.
        match op {
            Op::And => {
                if a == FALSE || b == FALSE {
                    return Some(FALSE);
                }
                if a == TRUE {
                    return Some(b);
                }
                if b == TRUE || a == b {
                    return Some(a);
                }
            }
            Op::Or => {
                if a == TRUE || b == TRUE {
                    return Some(TRUE);
                }
                if a == FALSE {
                    return Some(b);
                }
                if b == FALSE || a == b {
                    return Some(a);
                }
            }
        }
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = m.apply_cache.get(&key) {
            m.stats.cache_hits += 1;
            return Some(r);
        }
        // Complement shortcut (uses the cache only — avoid computing fresh
        // negations here, which could traverse deeply for no benefit).
        if m.neg_cache.get(&a) == Some(&b) {
            let r = match op {
                Op::And => FALSE,
                Op::Or => TRUE,
            };
            m.apply_cache.insert(key, r);
            return Some(r);
        }
        let va = m.respects(a).expect("non-terminal");
        let vb = m.respects(b).expect("non-terminal");
        if va == vb {
            if m.vtree.is_leaf(va) {
                // Two literals of the same variable with different polarity
                // (equal nodes were handled above).
                let r = match op {
                    Op::And => FALSE,
                    Op::Or => TRUE,
                };
                m.apply_cache.insert(key, r);
                return Some(r);
            }
            let ea = m.elements_of(a);
            let eb = m.elements_of(b);
            self.frames.push(Frame::cross(op, key, va, ea, eb));
            return None;
        }
        let l = m.vtree.lca(va, vb);
        let a_at = m.vtree.side_of(l, va); // None ⇒ va == l
        let b_at = m.vtree.side_of(l, vb);
        if a_at == Some(Side::Left) || b_at == Some(Side::Left) {
            // A left-side operand normalizes to {(x, ⊤), (¬x, ⊥)}: the
            // negation(s) must be computed first (operand a before b, as
            // the recursion did).
            self.frames.push(Frame::Prep {
                op,
                key,
                l,
                a,
                a_at,
                b,
                b_at,
                na: None,
                nb: None,
                wait: PrepWait::Fresh,
            });
            return None;
        }
        let ea = Self::norm_elems(m, a, a_at, None);
        let eb = Self::norm_elems(m, b, b_at, None);
        self.frames.push(Frame::cross(op, key, l, ea, eb));
        None
    }

    /// Normalize node `x` into an element list for the lca: its own
    /// elements at the lca itself, `{(⊤, x)}` on the right, and
    /// `{(x, ⊤), (¬x, ⊥)}` on the left (negation supplied by the caller).
    fn norm_elems(
        m: &SddManager,
        x: SddId,
        side: Option<Side>,
        nx: Option<SddId>,
    ) -> Vec<(SddId, SddId)> {
        match side {
            None => m.elements_of(x),
            Some(Side::Right) => vec![(TRUE, x)],
            Some(Side::Left) => vec![(x, TRUE), (nx.expect("negation prepared"), FALSE)],
        }
    }

    /// Begin a negation: terminals, literals and cached results answer
    /// immediately; decisions push a frame.
    fn start_negate(&mut self, m: &mut SddManager, a: SddId) -> Option<SddId> {
        match &m.nodes[a.index()] {
            SddNode::False => return Some(TRUE),
            SddNode::True => return Some(FALSE),
            SddNode::Literal { var, positive } => {
                let (v, p) = (*var, *positive);
                return Some(m.literal(v, !p));
            }
            SddNode::Decision { .. } => {}
        }
        if let Some(&n) = m.neg_cache.get(&a) {
            return Some(n);
        }
        let SddNode::Decision { vnode, elems } = m.nodes[a.index()].clone() else {
            unreachable!()
        };
        self.frames.push(Frame::Neg {
            a,
            vnode,
            elems,
            i: 0,
            out: Vec::new(),
            building: false,
        });
        None
    }

    /// Begin a conditioning step: terminals, untouched/pinned literals and
    /// memoized decisions answer immediately; other decisions push a frame.
    fn start_condition(&mut self, m: &mut SddManager, a: SddId) -> Option<SddId> {
        let ctx = self.cond.as_ref().expect("condition context");
        match &m.nodes[a.index()] {
            SddNode::False | SddNode::True => return Some(a),
            SddNode::Literal { var, positive } => {
                if *var == ctx.var {
                    return Some(if *positive == ctx.value { TRUE } else { FALSE });
                }
                return Some(a);
            }
            SddNode::Decision { .. } => {}
        }
        if let Some(&r) = ctx.memo.get(&a) {
            return Some(r);
        }
        let SddNode::Decision { vnode, elems } = m.nodes[a.index()].clone() else {
            unreachable!()
        };
        self.frames.push(Frame::Cond {
            a,
            vnode,
            elems,
            i: 0,
            wait: CondWait::Idle,
            out: Vec::new(),
        });
        None
    }

    /// Begin a canonical decision construction: drop ⊥ primes, group by
    /// sub. Without compression work the node is finished on the spot;
    /// otherwise a frame or-reduces each group's primes through the engine.
    fn start_build(
        &mut self,
        m: &mut SddManager,
        vnode: VtreeNodeId,
        elems: Vec<(SddId, SddId)>,
    ) -> Option<SddId> {
        let mut elems: Vec<(SddId, SddId)> =
            elems.into_iter().filter(|(p, _)| *p != FALSE).collect();
        if elems.is_empty() {
            return Some(FALSE);
        }
        elems.sort_unstable_by_key(|&(_, s)| s);
        // The common case — all subs already distinct — finishes on the
        // spot, without materializing per-group prime lists.
        if elems.windows(2).all(|w| w[0].1 != w[1].1) {
            return Some(m.finish_decision(vnode, elems));
        }
        let mut groups: Vec<(Vec<SddId>, SddId)> = Vec::new();
        for (p, s) in elems {
            match groups.last_mut() {
                Some((ps, sub)) if *sub == s => ps.push(p),
                _ => groups.push((vec![p], s)),
            }
        }
        self.frames.push(Frame::Build {
            vnode,
            groups,
            gi: 0,
            pi: 0,
            acc: FALSE,
            compressed: Vec::new(),
        });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn balanced_mgr(n: u32) -> SddManager {
        SddManager::new(Vtree::balanced(&vars(n)).unwrap())
    }

    #[test]
    fn literal_ops() {
        let mut m = balanced_mgr(2);
        let x = m.literal(v(0), true);
        let nx = m.literal(v(0), false);
        assert_eq!(m.and(x, nx), FALSE);
        assert_eq!(m.or(x, nx), TRUE);
        assert_eq!(m.negate(x), nx);
        assert_eq!(m.and(x, x), x);
    }

    #[test]
    fn and_across_root() {
        let mut m = balanced_mgr(4);
        let x0 = m.literal(v(0), true);
        let x2 = m.literal(v(2), true);
        let g = m.and(x0, x2);
        assert_eq!(m.count_models(g), 4); // 2 free vars
        let f = m.to_boolfn(g);
        let expect = BoolFn::literal(v(0), true).and(&BoolFn::literal(v(2), true));
        assert!(f.equivalent(&expect));
    }

    #[test]
    fn canonicity_same_function_same_node() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let c = circuit::families::random_circuit(5, 12, &mut rng);
            let f = c.to_boolfn().unwrap();
            let mut m = balanced_mgr(5);
            let r1 = m.from_circuit(&c);
            let r2 = m.from_boolfn(&f);
            assert_eq!(r1, r2, "trial {trial}: canonicity violated");
            assert!(m.to_boolfn(r1).equivalent(&f), "trial {trial}: semantics");
        }
    }

    #[test]
    fn canonicity_across_vtrees_semantics_only() {
        // Different vtrees give different nodes but the same function.
        let f = families::parity(&vars(5));
        for vt in [
            Vtree::right_linear(&vars(5)).unwrap(),
            Vtree::left_linear(&vars(5)).unwrap(),
            Vtree::balanced(&vars(5)).unwrap(),
        ] {
            let mut m = SddManager::new(vt);
            let r = m.from_boolfn(&f);
            assert!(m.to_boolfn(r).equivalent(&f));
            assert_eq!(m.count_models(r), 16);
        }
    }

    #[test]
    fn negation_involution_and_semantics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let mut m = balanced_mgr(6);
        let r = m.from_boolfn(&f);
        let nr = m.negate(r);
        assert_eq!(m.negate(nr), r);
        assert!(m.to_boolfn(nr).equivalent(&f.not()));
        assert_eq!(
            m.count_models(r) + m.count_models(nr),
            1 << 6,
            "models partition"
        );
    }

    #[test]
    fn condition_matches_kernel_restrict() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
        let mut m = balanced_mgr(5);
        let r = m.from_boolfn(&f);
        for var in vars(5) {
            for val in [false, true] {
                let c = m.condition(r, var, val);
                let expect = f.restrict(var, val);
                assert!(
                    m.to_boolfn(c).equivalent(&expect),
                    "condition on {var}={val}"
                );
            }
        }
    }

    #[test]
    fn counting_with_gaps() {
        // x3 alone in a 6-var manager: 2^5 models.
        let mut m = balanced_mgr(6);
        let x3 = m.literal(v(3), true);
        assert_eq!(m.count_models(x3), 32);
        assert_eq!(m.count_models(TRUE), 64);
        assert_eq!(m.count_models(FALSE), 0);
    }

    #[test]
    fn weighted_count_matches_kernel() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let f = BoolFn::random(VarSet::from_slice(&vars(7)), &mut rng);
        let vt = Vtree::balanced(&vars(7)).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let probs = [0.05, 0.25, 0.5, 0.75, 0.95, 0.33, 0.66];
        let a = m.probability(r, |u| probs[u.index()]);
        let b = f.probability(|u| probs[u.index()]);
        assert!((a - b).abs() < 1e-12, "sdd {a} vs kernel {b}");
    }

    #[test]
    fn disjointness_width_small_on_interleaved_vtree() {
        // D_n with the pairs (x_i, y_i) grouped: SDD width stays small.
        let n = 4;
        let (f, xs, ys) = families::disjointness(n);
        let mut interleaved = Vec::new();
        for i in 0..n {
            interleaved.push(xs[i]);
            interleaved.push(ys[i]);
        }
        let vt = Vtree::right_linear(&interleaved).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        assert!(m.width(r) <= 6, "width {}", m.width(r));
        assert_eq!(m.count_models(r), 3u128.pow(n as u32));
    }

    #[test]
    fn size_and_width_zero_for_terminals_and_literals() {
        let mut m = balanced_mgr(3);
        assert_eq!(m.size(TRUE), 0);
        let x = m.literal(v(1), false);
        assert_eq!(m.size(x), 0);
        assert_eq!(m.width(x), 0);
    }

    #[test]
    fn apply_on_obdd_vtree_matches_obdd_counts() {
        // Right-linear vtree: SDDs degenerate to OBDD-like structures; model
        // counts must agree with the OBDD package.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let vt = Vtree::right_linear(&vars(6)).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let mut ob = obdd::Obdd::new(vars(6));
        let or = ob.from_boolfn(&f);
        assert_eq!(m.count_models(r), ob.count_models(or));
    }
}
