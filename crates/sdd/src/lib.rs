//! Sentential decision diagrams (Darwiche, IJCAI 2011).
//!
//! An SDD respecting a vtree `T` is a deterministic structured NNF built from
//! **sentential decisions** `⋁ᵢ (Pᵢ ∧ Sᵢ)` (paper §2.1, Eq. 5): at an
//! internal vtree node `v`, the primes `Pᵢ` are SDDs over the left subtree
//! forming an exhaustive, pairwise-disjoint case distinction, and the subs
//! `Sᵢ` are SDDs over the right subtree. With **compression** (no two equal
//! subs) and **trimming**, SDDs are canonical: equivalent functions get the
//! *same node*, which this manager maintains through a unique table.
//!
//! The manager implements:
//! * apply-style operations ([`SddManager::and`],
//!   [`SddManager::or`], [`SddManager::negate`]) with memoization, via
//!   lca-normalization and element cross products;
//! * compilation from circuits and truth tables;
//! * conditioning (cofactors), used by the Theorem 5 experiments;
//! * a generic semiring evaluation engine ([`SddManager::evaluate`], module
//!   [`eval`]) with vtree-gap smoothing, instantiated at `BigUint` (exact
//!   #SAT, [`SddManager::count_models_exact`]), `Rational` (exact WMC,
//!   [`SddManager::weighted_count_exact`]) and `f64`
//!   ([`SddManager::weighted_count`], [`SddManager::probability`]);
//! * **SDD size** (total elements) and the paper's **SDD width**
//!   (Definition 5: max ∧-gates structured by a single vtree node).

pub mod eval;
pub mod validate;

pub use validate::SddError;

use boolfunc::{Assignment, BoolFn, VarSet};
use vtree::fxhash::FxHashMap;
use vtree::{Side, VarId, Vtree, VtreeNodeId};

/// Index of an SDD node. `FALSE = 0`, `TRUE = 1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SddId(pub u32);

/// The ⊥ terminal.
pub const FALSE: SddId = SddId(0);
/// The ⊤ terminal.
pub const TRUE: SddId = SddId(1);

impl SddId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this ⊥ or ⊤?
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// Node payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SddNode {
    /// ⊥.
    False,
    /// ⊤.
    True,
    /// A literal, attached at the vtree leaf of its variable.
    Literal { var: VarId, positive: bool },
    /// A sentential decision `⋁ (prime ∧ sub)`, normalized for `vnode`.
    Decision {
        /// The internal vtree node this decision respects.
        vnode: VtreeNodeId,
        /// `(prime, sub)` pairs: primes partition the left-subtree space,
        /// subs are pairwise distinct (compression), sorted by prime id.
        elems: Box<[(SddId, SddId)]>,
    },
}

#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// Counters over a manager's lifetime, reported by [`SddManager::apply_stats`].
/// Compilation sessions (see `sentential_core::Compiler`) surface these in
/// their reports to show how much work the apply route did; serving
/// sessions (`kb::KnowledgeBase`) snapshot them per query via
/// [`ApplyStats::delta_since`] so reports don't accumulate across a session.
#[must_use]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Binary apply (`and`/`or`) invocations, including recursive ones.
    pub apply_calls: u64,
    /// Apply invocations answered from the memo table.
    pub cache_hits: u64,
}

impl ApplyStats {
    /// Zero the counters (see also [`SddManager::reset_apply_stats`]).
    pub fn reset(&mut self) {
        *self = ApplyStats::default();
    }

    /// Counter increments since `earlier` (a snapshot of the same manager's
    /// stats) — the per-query delta serving layers report.
    pub fn delta_since(&self, earlier: ApplyStats) -> ApplyStats {
        ApplyStats {
            apply_calls: self.apply_calls.saturating_sub(earlier.apply_calls),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
        }
    }
}

/// An SDD manager over a fixed vtree.
pub struct SddManager {
    vtree: Vtree,
    nodes: Vec<SddNode>,
    lit_cache: FxHashMap<(VarId, bool), SddId>,
    unique: FxHashMap<(VtreeNodeId, Vec<(SddId, SddId)>), SddId>,
    apply_cache: FxHashMap<(Op, SddId, SddId), SddId>,
    neg_cache: FxHashMap<SddId, SddId>,
    stats: ApplyStats,
    /// Process-unique identity (see [`SddManager::uid`]): node ids are
    /// per-manager indices, so anything caching values under `SddId`s
    /// (e.g. `eval::EvalCache`) must be able to tell managers apart.
    uid: u64,
}

impl SddManager {
    /// Fresh manager over `vtree`.
    pub fn new(vtree: Vtree) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_UID: AtomicU64 = AtomicU64::new(0);
        SddManager {
            vtree,
            nodes: vec![SddNode::False, SddNode::True],
            lit_cache: FxHashMap::default(),
            unique: FxHashMap::default(),
            apply_cache: FxHashMap::default(),
            neg_cache: FxHashMap::default(),
            stats: ApplyStats::default(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A process-unique identity for this manager, stable across moves.
    /// External caches keyed by this manager's [`SddId`]s store it and
    /// refuse to serve a different manager.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Lifetime apply counters (see [`ApplyStats`]).
    pub fn apply_stats(&self) -> ApplyStats {
        self.stats
    }

    /// Zero the lifetime apply counters. Long-lived serving sessions call
    /// this (or snapshot-and-[`ApplyStats::delta_since`]) between queries
    /// so each query's report reflects that query alone.
    pub fn reset_apply_stats(&mut self) {
        self.stats.reset();
    }

    /// The manager's vtree.
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// Node payload.
    pub fn node(&self, id: SddId) -> &SddNode {
        &self.nodes[id.index()]
    }

    /// Total allocated nodes (terminals included).
    pub fn num_allocated(&self) -> usize {
        self.nodes.len()
    }

    /// The vtree node a node respects: leaf for literals, its `vnode` for
    /// decisions, `None` for ⊥/⊤ (which respect every node).
    pub fn respects(&self, id: SddId) -> Option<VtreeNodeId> {
        match &self.nodes[id.index()] {
            SddNode::False | SddNode::True => None,
            SddNode::Literal { var, .. } => {
                Some(self.vtree.leaf_of_var(*var).expect("literal var in vtree"))
            }
            SddNode::Decision { vnode, .. } => Some(*vnode),
        }
    }

    /// The literal `v` / `¬v`.
    pub fn literal(&mut self, v: VarId, positive: bool) -> SddId {
        assert!(
            self.vtree.contains_var(v),
            "literal variable {v} not in the vtree"
        );
        if let Some(&id) = self.lit_cache.get(&(v, positive)) {
            return id;
        }
        let id = SddId(self.nodes.len() as u32);
        self.nodes.push(SddNode::Literal { var: v, positive });
        self.lit_cache.insert((v, positive), id);
        id
    }

    /// Canonical decision-node constructor: drops ⊥ primes, compresses
    /// (merges equal subs, or-ing their primes), trims, sorts, and interns.
    fn mk_decision(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        // Drop false primes.
        let mut elems: Vec<(SddId, SddId)> =
            elems.into_iter().filter(|(p, _)| *p != FALSE).collect();
        if elems.is_empty() {
            return FALSE;
        }
        // Compression: group primes by sub.
        elems.sort_unstable_by_key(|&(_, s)| s);
        let mut compressed: Vec<(SddId, SddId)> = Vec::with_capacity(elems.len());
        let mut i = 0;
        while i < elems.len() {
            let sub = elems[i].1;
            let mut prime = elems[i].0;
            let mut j = i + 1;
            while j < elems.len() && elems[j].1 == sub {
                prime = self.or(prime, elems[j].0);
                j += 1;
            }
            compressed.push((prime, sub));
            i = j;
        }
        // Trimming rule 1: {(⊤, s)} → s.
        if compressed.len() == 1 && compressed[0].0 == TRUE {
            return compressed[0].1;
        }
        // Trimming rule 2: {(p, ⊤), (¬p, ⊥)} → p.
        if compressed.len() == 2 {
            let find = |sub: SddId| compressed.iter().find(|&&(_, s)| s == sub).map(|&(p, _)| p);
            if let (Some(p_true), Some(_p_false)) = (find(TRUE), find(FALSE)) {
                return p_true;
            }
        }
        compressed.sort_unstable_by_key(|&(p, _)| p);
        let key = (vnode, compressed.clone());
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = SddId(self.nodes.len() as u32);
        self.nodes.push(SddNode::Decision {
            vnode,
            elems: compressed.into_boxed_slice(),
        });
        self.unique.insert(key, id);
        id
    }

    /// Public canonical decision constructor: builds `⋁ (prime ∧ sub)`
    /// normalized for `vnode`, applying compression, trimming and unique-table
    /// interning.
    ///
    /// The caller must supply primes forming an exhaustive, pairwise-disjoint
    /// partition of the left-subtree space (the constructor *canonicalizes*
    /// but does not verify this; use [`SddManager::validate`] in tests). This
    /// is the entry point for the paper's direct `S_{F,T}` construction
    /// (§3.2.2), which builds sentential decisions from factor sets rather
    /// than through `apply`.
    pub fn decision(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        assert!(
            !self.vtree.is_leaf(vnode),
            "decision vnode must be internal"
        );
        self.mk_decision(vnode, elems)
    }

    /// Negation (cached; structural: same primes, negated subs).
    pub fn negate(&mut self, a: SddId) -> SddId {
        match &self.nodes[a.index()] {
            SddNode::False => return TRUE,
            SddNode::True => return FALSE,
            SddNode::Literal { var, positive } => {
                let (v, p) = (*var, *positive);
                return self.literal(v, !p);
            }
            SddNode::Decision { .. } => {}
        }
        if let Some(&n) = self.neg_cache.get(&a) {
            return n;
        }
        let SddNode::Decision { vnode, elems } = self.nodes[a.index()].clone() else {
            unreachable!()
        };
        let neg_elems: Vec<(SddId, SddId)> = elems
            .iter()
            .map(|&(p, s)| {
                let ns = self.negate(s);
                (p, ns)
            })
            .collect();
        let n = self.mk_decision(vnode, neg_elems);
        self.neg_cache.insert(a, n);
        self.neg_cache.insert(n, a);
        n
    }

    /// Conjunction.
    pub fn and(&mut self, a: SddId, b: SddId) -> SddId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: SddId, b: SddId) -> SddId {
        self.apply(Op::Or, a, b)
    }

    fn apply(&mut self, op: Op, a: SddId, b: SddId) -> SddId {
        self.stats.apply_calls += 1;
        // Terminal and identity shortcuts.
        match op {
            Op::And => {
                if a == FALSE || b == FALSE {
                    return FALSE;
                }
                if a == TRUE {
                    return b;
                }
                if b == TRUE || a == b {
                    return a;
                }
            }
            Op::Or => {
                if a == TRUE || b == TRUE {
                    return TRUE;
                }
                if a == FALSE {
                    return b;
                }
                if b == FALSE || a == b {
                    return a;
                }
            }
        }
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&r) = self.apply_cache.get(&key) {
            self.stats.cache_hits += 1;
            return r;
        }
        // Complement shortcut (uses the cache only — avoid computing fresh
        // negations here, which could recurse deeply for no benefit).
        if self.neg_cache.get(&a) == Some(&b) {
            let r = match op {
                Op::And => FALSE,
                Op::Or => TRUE,
            };
            self.apply_cache.insert(key, r);
            return r;
        }
        let va = self.respects(a).expect("non-terminal");
        let vb = self.respects(b).expect("non-terminal");
        let r = if va == vb {
            if self.vtree.is_leaf(va) {
                // Two literals of the same variable with different polarity
                // (equal nodes were handled above).
                match op {
                    Op::And => FALSE,
                    Op::Or => TRUE,
                }
            } else {
                let ea = self.elements_of(a);
                let eb = self.elements_of(b);
                self.cross(op, va, &ea, &eb)
            }
        } else {
            let l = self.vtree.lca(va, vb);
            let ea = self.normalize_for(a, va, l);
            let eb = self.normalize_for(b, vb, l);
            self.cross(op, l, &ea, &eb)
        };
        self.apply_cache.insert(key, r);
        r
    }

    /// The element list of a decision node.
    fn elements_of(&self, a: SddId) -> Vec<(SddId, SddId)> {
        match &self.nodes[a.index()] {
            SddNode::Decision { elems, .. } => elems.to_vec(),
            _ => unreachable!("elements_of on non-decision"),
        }
    }

    /// Normalize node `a` (respecting `va`, a strict descendant of `l` or `l`
    /// itself) into an element list for vnode `l`.
    fn normalize_for(&mut self, a: SddId, va: VtreeNodeId, l: VtreeNodeId) -> Vec<(SddId, SddId)> {
        if va == l {
            return self.elements_of(a);
        }
        match self.vtree.side_of(l, va) {
            Some(Side::Left) => {
                let na = self.negate(a);
                vec![(a, TRUE), (na, FALSE)]
            }
            Some(Side::Right) => vec![(TRUE, a)],
            None => unreachable!("lca guarantees va below l"),
        }
    }

    /// Cross product of two element lists, combining subs with `op`.
    fn cross(
        &mut self,
        op: Op,
        vnode: VtreeNodeId,
        ea: &[(SddId, SddId)],
        eb: &[(SddId, SddId)],
    ) -> SddId {
        let mut out = Vec::with_capacity(ea.len() * eb.len());
        for &(p1, s1) in ea {
            for &(p2, s2) in eb {
                let p = self.and(p1, p2);
                if p == FALSE {
                    continue;
                }
                let s = self.apply(op, s1, s2);
                out.push((p, s));
            }
        }
        self.mk_decision(vnode, out)
    }

    /// Compile a circuit bottom-up.
    pub fn from_circuit(&mut self, c: &circuit::Circuit) -> SddId {
        use circuit::GateKind;
        let mut val: Vec<SddId> = Vec::with_capacity(c.size());
        for (_, g) in c.iter() {
            let n = match g {
                GateKind::Var(v) => self.literal(*v, true),
                GateKind::Const(b) => {
                    if *b {
                        TRUE
                    } else {
                        FALSE
                    }
                }
                GateKind::Not(x) => {
                    let x = val[x.index()];
                    self.negate(x)
                }
                GateKind::And(xs) => {
                    let mut acc = TRUE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.and(acc, xv);
                    }
                    acc
                }
                GateKind::Or(xs) => {
                    let mut acc = FALSE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.or(acc, xv);
                    }
                    acc
                }
            };
            val.push(n);
        }
        val[c.output().index()]
    }

    /// Compile a truth table by Shannon expansion along the vtree leaf order
    /// (apply does the structural work; the result is canonical regardless).
    pub fn from_boolfn(&mut self, f: &BoolFn) -> SddId {
        assert!(
            f.vars().iter().all(|v| self.vtree.contains_var(v)),
            "vtree must cover the support"
        );
        let order = self.vtree.leaf_order();
        let mut memo: FxHashMap<BoolFn, SddId> = FxHashMap::default();
        self.from_boolfn_rec(f, &order, 0, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)] // recursive helper of from_boolfn
    fn from_boolfn_rec(
        &mut self,
        f: &BoolFn,
        order: &[VarId],
        mut i: usize,
        memo: &mut FxHashMap<BoolFn, SddId>,
    ) -> SddId {
        if let Some(c) = f.as_constant() {
            return if c { TRUE } else { FALSE };
        }
        if let Some(&n) = memo.get(f) {
            return n;
        }
        while !(f.vars().contains(order[i]) && f.depends_on(order[i])) {
            i += 1;
        }
        let v = order[i];
        let f0 = f.restrict(v, false);
        let f1 = f.restrict(v, true);
        let lo = self.from_boolfn_rec(&f0, order, i + 1, memo);
        let hi = self.from_boolfn_rec(&f1, order, i + 1, memo);
        let pos = self.literal(v, true);
        let neg = self.literal(v, false);
        let a = self.and(pos, hi);
        let b = self.and(neg, lo);
        let n = self.or(a, b);
        memo.insert(f.clone(), n);
        n
    }

    /// Condition on `var := value` (cofactor).
    pub fn condition(&mut self, a: SddId, var: VarId, value: bool) -> SddId {
        let mut memo: FxHashMap<SddId, SddId> = FxHashMap::default();
        self.condition_rec(a, var, value, &mut memo)
    }

    fn condition_rec(
        &mut self,
        a: SddId,
        var: VarId,
        value: bool,
        memo: &mut FxHashMap<SddId, SddId>,
    ) -> SddId {
        match &self.nodes[a.index()] {
            SddNode::False | SddNode::True => return a,
            SddNode::Literal { var: v, positive } => {
                if *v == var {
                    return if *positive == value { TRUE } else { FALSE };
                }
                return a;
            }
            SddNode::Decision { .. } => {}
        }
        if let Some(&r) = memo.get(&a) {
            return r;
        }
        let SddNode::Decision { vnode, elems } = self.nodes[a.index()].clone() else {
            unreachable!()
        };
        let new: Vec<(SddId, SddId)> = elems
            .iter()
            .map(|&(p, s)| {
                let np = self.condition_rec(p, var, value, memo);
                let ns = self.condition_rec(s, var, value, memo);
                (np, ns)
            })
            .collect();
        let r = self.mk_decision(vnode, new);
        memo.insert(a, r);
        r
    }

    /// Evaluate under an assignment covering the vtree variables.
    /// Memoized per node, so it is linear in the DAG size (the naive
    /// recursion is exponential on diagrams with heavy sharing).
    pub fn eval(&self, a: SddId, asg: &Assignment) -> bool {
        let mut memo: FxHashMap<SddId, bool> = FxHashMap::default();
        self.eval_memo(a, asg, &mut memo)
    }

    fn eval_memo(&self, a: SddId, asg: &Assignment, memo: &mut FxHashMap<SddId, bool>) -> bool {
        match &self.nodes[a.index()] {
            SddNode::False => false,
            SddNode::True => true,
            SddNode::Literal { var, positive } => {
                asg.get(*var).expect("assignment covers vtree vars") == *positive
            }
            SddNode::Decision { elems, .. } => {
                if let Some(&b) = memo.get(&a) {
                    return b;
                }
                let b = elems
                    .iter()
                    .any(|&(p, s)| self.eval_memo(p, asg, memo) && self.eval_memo(s, asg, memo));
                memo.insert(a, b);
                b
            }
        }
    }

    /// Read back the function over the full vtree variable set.
    pub fn to_boolfn(&self, a: SddId) -> BoolFn {
        let vars = VarSet::from_slice(self.vtree.vars());
        BoolFn::from_fn(vars.clone(), |idx| {
            self.eval(a, &Assignment::from_index(&vars, idx))
        })
    }

    /// Decision nodes reachable from `root`.
    pub fn reachable_decisions(&self, root: SddId) -> Vec<SddId> {
        let mut seen: FxHashMap<SddId, ()> = FxHashMap::default();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen.contains_key(&n) {
                continue;
            }
            seen.insert(n, ());
            if let SddNode::Decision { elems, .. } = &self.nodes[n.index()] {
                out.push(n);
                for &(p, s) in elems.iter() {
                    stack.push(p);
                    stack.push(s);
                }
            }
        }
        out
    }

    /// SDD size: total number of elements (∧-gates) over reachable decisions.
    pub fn size(&self, root: SddId) -> usize {
        self.reachable_decisions(root)
            .iter()
            .map(|n| match &self.nodes[n.index()] {
                SddNode::Decision { elems, .. } => elems.len(),
                _ => 0,
            })
            .sum()
    }

    /// ∧-gates per vtree node: the counts behind the paper's Definition 5.
    pub fn vnode_profile(&self, root: SddId) -> FxHashMap<VtreeNodeId, usize> {
        let mut profile: FxHashMap<VtreeNodeId, usize> = FxHashMap::default();
        for n in self.reachable_decisions(root) {
            if let SddNode::Decision { vnode, elems } = &self.nodes[n.index()] {
                *profile.entry(*vnode).or_insert(0) += elems.len();
            }
        }
        profile
    }

    /// The paper's **SDD width** (Definition 5): the maximum number of
    /// ∧-gates structured by a single vtree node.
    pub fn width(&self, root: SddId) -> usize {
        self.vnode_profile(root)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn balanced_mgr(n: u32) -> SddManager {
        SddManager::new(Vtree::balanced(&vars(n)).unwrap())
    }

    #[test]
    fn literal_ops() {
        let mut m = balanced_mgr(2);
        let x = m.literal(v(0), true);
        let nx = m.literal(v(0), false);
        assert_eq!(m.and(x, nx), FALSE);
        assert_eq!(m.or(x, nx), TRUE);
        assert_eq!(m.negate(x), nx);
        assert_eq!(m.and(x, x), x);
    }

    #[test]
    fn and_across_root() {
        let mut m = balanced_mgr(4);
        let x0 = m.literal(v(0), true);
        let x2 = m.literal(v(2), true);
        let g = m.and(x0, x2);
        assert_eq!(m.count_models(g), 4); // 2 free vars
        let f = m.to_boolfn(g);
        let expect = BoolFn::literal(v(0), true).and(&BoolFn::literal(v(2), true));
        assert!(f.equivalent(&expect));
    }

    #[test]
    fn canonicity_same_function_same_node() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let c = circuit::families::random_circuit(5, 12, &mut rng);
            let f = c.to_boolfn().unwrap();
            let mut m = balanced_mgr(5);
            let r1 = m.from_circuit(&c);
            let r2 = m.from_boolfn(&f);
            assert_eq!(r1, r2, "trial {trial}: canonicity violated");
            assert!(m.to_boolfn(r1).equivalent(&f), "trial {trial}: semantics");
        }
    }

    #[test]
    fn canonicity_across_vtrees_semantics_only() {
        // Different vtrees give different nodes but the same function.
        let f = families::parity(&vars(5));
        for vt in [
            Vtree::right_linear(&vars(5)).unwrap(),
            Vtree::left_linear(&vars(5)).unwrap(),
            Vtree::balanced(&vars(5)).unwrap(),
        ] {
            let mut m = SddManager::new(vt);
            let r = m.from_boolfn(&f);
            assert!(m.to_boolfn(r).equivalent(&f));
            assert_eq!(m.count_models(r), 16);
        }
    }

    #[test]
    fn negation_involution_and_semantics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let mut m = balanced_mgr(6);
        let r = m.from_boolfn(&f);
        let nr = m.negate(r);
        assert_eq!(m.negate(nr), r);
        assert!(m.to_boolfn(nr).equivalent(&f.not()));
        assert_eq!(
            m.count_models(r) + m.count_models(nr),
            1 << 6,
            "models partition"
        );
    }

    #[test]
    fn condition_matches_kernel_restrict() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
        let mut m = balanced_mgr(5);
        let r = m.from_boolfn(&f);
        for var in vars(5) {
            for val in [false, true] {
                let c = m.condition(r, var, val);
                let expect = f.restrict(var, val);
                assert!(
                    m.to_boolfn(c).equivalent(&expect),
                    "condition on {var}={val}"
                );
            }
        }
    }

    #[test]
    fn counting_with_gaps() {
        // x3 alone in a 6-var manager: 2^5 models.
        let mut m = balanced_mgr(6);
        let x3 = m.literal(v(3), true);
        assert_eq!(m.count_models(x3), 32);
        assert_eq!(m.count_models(TRUE), 64);
        assert_eq!(m.count_models(FALSE), 0);
    }

    #[test]
    fn weighted_count_matches_kernel() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let f = BoolFn::random(VarSet::from_slice(&vars(7)), &mut rng);
        let vt = Vtree::balanced(&vars(7)).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let probs = [0.05, 0.25, 0.5, 0.75, 0.95, 0.33, 0.66];
        let a = m.probability(r, |u| probs[u.index()]);
        let b = f.probability(|u| probs[u.index()]);
        assert!((a - b).abs() < 1e-12, "sdd {a} vs kernel {b}");
    }

    #[test]
    fn disjointness_width_small_on_interleaved_vtree() {
        // D_n with the pairs (x_i, y_i) grouped: SDD width stays small.
        let n = 4;
        let (f, xs, ys) = families::disjointness(n);
        let mut interleaved = Vec::new();
        for i in 0..n {
            interleaved.push(xs[i]);
            interleaved.push(ys[i]);
        }
        let vt = Vtree::right_linear(&interleaved).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        assert!(m.width(r) <= 6, "width {}", m.width(r));
        assert_eq!(m.count_models(r), 3u128.pow(n as u32));
    }

    #[test]
    fn size_and_width_zero_for_terminals_and_literals() {
        let mut m = balanced_mgr(3);
        assert_eq!(m.size(TRUE), 0);
        let x = m.literal(v(1), false);
        assert_eq!(m.size(x), 0);
        assert_eq!(m.width(x), 0);
    }

    #[test]
    fn apply_on_obdd_vtree_matches_obdd_counts() {
        // Right-linear vtree: SDDs degenerate to OBDD-like structures; model
        // counts must agree with the OBDD package.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let vt = Vtree::right_linear(&vars(6)).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let mut ob = obdd::Obdd::new(vars(6));
        let or = ob.from_boolfn(&f);
        assert_eq!(m.count_models(r), ob.count_models(or));
    }
}
