//! Sentential decision diagrams (Darwiche, IJCAI 2011).
//!
//! An SDD respecting a vtree `T` is a deterministic structured NNF built from
//! **sentential decisions** `⋁ᵢ (Pᵢ ∧ Sᵢ)` (paper §2.1, Eq. 5): at an
//! internal vtree node `v`, the primes `Pᵢ` are SDDs over the left subtree
//! forming an exhaustive, pairwise-disjoint case distinction, and the subs
//! `Sᵢ` are SDDs over the right subtree. With **compression** (no two equal
//! subs) and **trimming**, SDDs are canonical: equivalent functions get the
//! *same node*, which this manager maintains through a unique table.
//!
//! The manager implements:
//! * apply-style operations ([`SddManager::and`],
//!   [`SddManager::or`], [`SddManager::negate`]) with memoization, via
//!   lca-normalization and element cross products;
//! * compilation from circuits and truth tables;
//! * conditioning (cofactors), used by the Theorem 5 experiments;
//! * a generic semiring evaluation engine ([`SddManager::evaluate`], module
//!   [`eval`]) with vtree-gap smoothing, instantiated at `BigUint` (exact
//!   #SAT, [`SddManager::count_models_exact`]), `Rational` (exact WMC,
//!   [`SddManager::weighted_count_exact`]) and `f64`
//!   ([`SddManager::weighted_count`], [`SddManager::probability`]);
//! * **SDD size** (total elements) and the paper's **SDD width**
//!   (Definition 5: max ∧-gates structured by a single vtree node).
//!
//! **Kernel storage.** Every decision node's `(prime, sub)` pairs live in a
//! single contiguous **element arena** owned by the manager;
//! [`SddNode::Decision`] holds only its vtree node and a `Range<u32>` into
//! that arena, and [`SddManager::elements_of`] returns a borrowed slice —
//! element data is stored exactly once and never cloned on the apply path.
//! The arena is **append-only and ranges are immutable once interned**: a
//! node's range never moves or changes, so engines may hold ranges across
//! arena appends (only the backing allocation may relocate; all access is
//! by index). The unique table is a hand-rolled open-addressed table whose
//! slots store `(precomputed hash, node id)`; probes compare candidate
//! elements against arena slices in place, so interning allocates nothing
//! beyond the arena append itself. The apply cache packs its `(op, a, b)`
//! key into one `u64` (2 op bits + 2×31-bit node ids — the manager asserts
//! the 2³¹-node cap at allocation) stored in an open-addressed integer
//! table, the negation cache is a plain node-indexed array, the vtree
//! lca/side resolution is memoized per vnode pair, and the worklist engine
//! recycles its element buffers and frame stack through per-manager pools,
//! so steady-state `and`/`or`/`negate`/`condition` do no per-step heap
//! allocation. [`SddManager::memory_bytes`] estimates the resident size of
//! all of it; [`ApplyStats`] counts unique-table probe/insert traffic
//! alongside apply/cache-hit traffic.
//!
//! **Depth contract:** no engine in this crate recurses on *input-sized*
//! structure. Apply, negation, conditioning and decision construction run
//! a **bounded-recursion hybrid**: a recursive fast path with a constant
//! fuel budget ([`REC_FUEL`] levels — a fixed ~20 KiB of machine stack)
//! handles the overwhelmingly common shallow operations at direct-call
//! speed, and anything deeper spills to the explicit worklist ([`Engine`],
//! heap-allocated frames), which finishes with constant stack depth. Both
//! paths consult and fill the same memo tables in the same order, so they
//! construct identical nodes. Evaluation sweeps reachable decisions
//! bottom-up in interning order. Vtree-deep diagrams — Θ(n) deep on the
//! chain families — therefore work on a default-size thread stack at any
//! variable count.
//!
//! **Freeze-and-serve.** [`SddManager::freeze`] turns a finished manager
//! into an immutable [`FrozenSdd`] — the node table, element arena,
//! negation array and unique table as plain slabs, `Send + Sync`, shared
//! across threads via `Arc` (module [`frozen`]). Everything read-only is
//! abstracted by the [`SddRead`] trait, so evaluation (one-shot and
//! [`eval::EvalCache`]) runs unchanged over managers and frozen slabs.
//! [`FrozenSdd::branch`] reopens a frozen base as a copy-on-write
//! **overlay manager**: new nodes intern on top of the shared slab (ids
//! and arena offsets continue the frozen id space), nothing in the base is
//! ever written, and `freeze`-ing a branch flattens base + extension into
//! a new standalone slab.

pub mod eval;
pub mod frozen;
pub mod snapshot;
pub mod validate;

pub use frozen::FrozenSdd;
pub use validate::SddError;

use boolfunc::{Assignment, BoolFn, VarSet};
use std::ops::Range;
use std::sync::Arc;
use vtree::fxhash::{FxHashMap, FxHashSet};
use vtree::{Side, VarId, Vtree, VtreeNodeId};

/// Index of an SDD node. `FALSE = 0`, `TRUE = 1`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SddId(pub u32);

/// The ⊥ terminal.
pub const FALSE: SddId = SddId(0);
/// The ⊤ terminal.
pub const TRUE: SddId = SddId(1);

impl SddId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this ⊥ or ⊤?
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// Node payload.
///
/// Decisions do not own their elements: they hold a range into the
/// manager's element arena (see the module doc's *Kernel storage*), which
/// is immutable once the node is interned. Resolve it with
/// [`SddManager::elements_of`] / [`SddManager::elements`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SddNode {
    /// ⊥.
    False,
    /// ⊤.
    True,
    /// A literal, attached at the vtree leaf of its variable.
    Literal { var: VarId, positive: bool },
    /// A sentential decision `⋁ (prime ∧ sub)`, normalized for `vnode`.
    Decision {
        /// The internal vtree node this decision respects.
        vnode: VtreeNodeId,
        /// Arena range of the `(prime, sub)` pairs: primes partition the
        /// left-subtree space, subs are pairwise distinct (compression),
        /// sorted by prime id. Immutable once interned.
        elems: Range<u32>,
    },
}

#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum Op {
    And = 0,
    Or = 1,
}

/// The packed apply-cache key: 2 op bits + 2×31-bit node ids. Node ids are
/// capped at 2³¹ by the manager ([`SddManager::push_node`] asserts), so the
/// packing is injective.
#[inline]
fn pack_apply_key(op: Op, a: SddId, b: SddId) -> u64 {
    ((op as u64) << 62) | ((a.0 as u64) << 31) | b.0 as u64
}

/// The canonical apply-cache key: operands ordered (apply is commutative),
/// then packed. Every cache consult and insert goes through this one
/// ordering so the paths cannot drift.
#[inline]
fn apply_key(op: Op, a: SddId, b: SddId) -> u64 {
    if a <= b {
        pack_apply_key(op, a, b)
    } else {
        pack_apply_key(op, b, a)
    }
}

/// One FxHash fold step (the vtree crate's `FxHasher`, inlined here so the
/// unique-table hash needs no `Hasher` indirection on the hot path).
#[inline]
fn fx_fold(h: u64, word: u64) -> u64 {
    const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    (h.rotate_left(5) ^ word).wrapping_mul(SEED64)
}

/// The unique-table hash of a decision: vnode plus every element pair.
fn decision_hash(vnode: VtreeNodeId, elems: &[(SddId, SddId)]) -> u64 {
    let mut h = fx_fold(0, vnode.0 as u64);
    for &(p, s) in elems {
        h = fx_fold(h, ((p.0 as u64) << 32) | s.0 as u64);
    }
    h
}

/// Counters over a manager's lifetime, reported by [`SddManager::apply_stats`].
/// Compilation sessions (see `sentential_core::Compiler`) surface these in
/// their reports to show how much work the apply route did; serving
/// sessions (`kb::KnowledgeBase`) snapshot them per query via
/// [`ApplyStats::delta_since`] so reports don't accumulate across a session.
#[must_use]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Binary apply (`and`/`or`) invocations, including recursive ones.
    pub apply_calls: u64,
    /// Apply invocations answered from the memo table.
    pub cache_hits: u64,
    /// Unique-table slot inspections during decision interning. Every
    /// lookup probes at least once; the excess over lookups measures
    /// open-addressing clustering.
    pub unique_probes: u64,
    /// Fresh decision nodes interned (unique-table misses that allocated).
    pub unique_inserts: u64,
}

impl ApplyStats {
    /// Zero the counters (see also [`SddManager::reset_apply_stats`]).
    pub fn reset(&mut self) {
        *self = ApplyStats::default();
    }

    /// Counter increments since `earlier` (a snapshot of the same manager's
    /// stats) — the per-query delta serving layers report.
    pub fn delta_since(&self, earlier: ApplyStats) -> ApplyStats {
        ApplyStats {
            apply_calls: self.apply_calls.saturating_sub(earlier.apply_calls),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            unique_probes: self.unique_probes.saturating_sub(earlier.unique_probes),
            unique_inserts: self.unique_inserts.saturating_sub(earlier.unique_inserts),
        }
    }

    /// Publish these counters (typically a [`delta_since`](Self::delta_since)
    /// delta) into the kernel's telemetry families: `sdd_apply_calls_total`,
    /// `sdd_apply_cache_hits_total`, `sdd_unique_probes_total`,
    /// `sdd_unique_inserts_total`.
    pub fn publish(&self, reg: &obs::MetricsRegistry) {
        reg.counter("sdd_apply_calls_total", &[])
            .add(self.apply_calls);
        reg.counter("sdd_apply_cache_hits_total", &[])
            .add(self.cache_hits);
        reg.counter("sdd_unique_probes_total", &[])
            .add(self.unique_probes);
        reg.counter("sdd_unique_inserts_total", &[])
            .add(self.unique_inserts);
    }
}

/// The hand-rolled open-addressed unique table (offline constraint: no
/// registry hash-table crates). Slots hold `(precomputed hash, node id)`;
/// empty slots carry [`EMPTY_SLOT`]. Lookups compare candidates against the
/// interned nodes' arena slices in place — the table owns **no** keys, so a
/// decision's elements exist exactly once, in the arena.
/// `Clone` is the copy-on-write branch path: an overlay manager starts
/// from a memcpy of its frozen base's table (hashes and ids are global,
/// so the clone serves lookups against the shared slab unchanged).
#[derive(Clone)]
struct UniqueTable {
    /// Power-of-two slot array.
    slots: Box<[(u64, u32)]>,
    /// Occupied slots.
    len: usize,
}

/// Sentinel for an empty cache/table slot (node ids are capped at 2³¹).
const EMPTY_SLOT: u32 = u32::MAX;

impl UniqueTable {
    fn new() -> Self {
        UniqueTable {
            slots: vec![(0, EMPTY_SLOT); 16].into_boxed_slice(),
            len: 0,
        }
    }
}

/// Fibonacci multiplier for integer-key slot indexing (the golden-ratio
/// constant spreads consecutive keys across the table).
const FIB_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// A hand-rolled open-addressed `u64 → u32` map for the apply cache and
/// the lca memo: linear probing over a power-of-two slot array, exact
/// (grows, never evicts — memoization semantics are unchanged), with the
/// value's [`EMPTY_SLOT`] as the vacancy sentinel (node ids are capped at
/// 2³¹ and packed lca answers at 2³⁰, so stored values never collide with
/// it). Compared to the standard hash map this drops the hasher state
/// machine and control-byte probing — the apply hot loop does one multiply
/// and (usually) one slot read per lookup.
struct IntCache {
    /// Power-of-two key array. Vacancy lives in `vals`, so `keys[i]` is
    /// meaningful only where `vals[i] != EMPTY_SLOT`; keys and values are
    /// split so probes touch only the 8-byte key lane (the tables outgrow
    /// L2 on band-family compiles — probe bandwidth is the cost).
    keys: Box<[u64]>,
    /// Values; [`EMPTY_SLOT`] marks a vacant slot.
    vals: Box<[u32]>,
    /// Occupied slots.
    len: usize,
    /// `64 - log2(keys.len())`, for Fibonacci indexing.
    shift: u32,
}

impl IntCache {
    fn new() -> Self {
        const CAP: usize = 1 << 10;
        IntCache {
            keys: vec![0; CAP].into_boxed_slice(),
            vals: vec![EMPTY_SLOT; CAP].into_boxed_slice(),
            len: 0,
            shift: 64 - CAP.trailing_zeros(),
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB_MIX) >> self.shift) as usize
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let v = self.vals[i];
            if v == EMPTY_SLOT {
                return None;
            }
            if self.keys[i] == key {
                return Some(v);
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, value: u32) {
        debug_assert_ne!(value, EMPTY_SLOT);
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let v = self.vals[i];
            if v == EMPTY_SLOT {
                self.keys[i] = key;
                self.vals[i] = value;
                self.len += 1;
                if self.len * 4 >= self.keys.len() * 3 {
                    self.grow();
                }
                return;
            }
            if self.keys[i] == key {
                // Memo tables never re-bind a key to a new answer (results
                // are canonical); keep the existing entry.
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let shift = 64 - new_cap.trailing_zeros();
        let mut keys = vec![0u64; new_cap].into_boxed_slice();
        let mut vals = vec![EMPTY_SLOT; new_cap].into_boxed_slice();
        let mask = new_cap - 1;
        for i in 0..self.keys.len() {
            let v = self.vals[i];
            if v == EMPTY_SLOT {
                continue;
            }
            let k = self.keys[i];
            let mut j = (k.wrapping_mul(FIB_MIX) >> shift) as usize;
            while vals[j] != EMPTY_SLOT {
                j = (j + 1) & mask;
            }
            keys[j] = k;
            vals[j] = v;
        }
        self.keys = keys;
        self.vals = vals;
        self.shift = shift;
    }

    fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u64>() + self.vals.len() * std::mem::size_of::<u32>()
    }
}

/// An SDD manager over a fixed vtree.
///
/// A manager is either **standalone** (`base == None` — the ordinary
/// case) or an **overlay** over a frozen slab ([`FrozenSdd::branch`]):
/// node ids `< base_nodes` and arena offsets `< base_elems` resolve into
/// the shared immutable base, everything at or past those marks lives in
/// this manager's own (extension) vectors. All id/offset arithmetic is in
/// the *global* space — `push_node` and `finish_decision` hand out ids
/// continuing the base's — so a node's meaning never depends on which
/// manager interned it.
pub struct SddManager {
    vtree: Arc<Vtree>,
    /// Shared immutable base of an overlay manager (`None` = standalone).
    base: Option<Arc<FrozenSdd>>,
    /// Number of nodes owned by `base` (0 when standalone).
    base_nodes: u32,
    /// Number of arena elements owned by `base` (0 when standalone).
    base_elems: u32,
    /// Extension node table: global ids `base_nodes..`.
    nodes: Vec<SddNode>,
    /// The element arena: every decision's `(prime, sub)` pairs,
    /// contiguous, append-only. Ranges handed to [`SddNode::Decision`] are
    /// immutable once interned. Holds global offsets `base_elems..`.
    arena: Vec<(SddId, SddId)>,
    lit_cache: FxHashMap<(VarId, bool), SddId>,
    unique: UniqueTable,
    /// Apply memo keyed by [`pack_apply_key`].
    apply_cache: IntCache,
    /// Negation memo as a node-indexed array (`EMPTY_SLOT` = unknown; both
    /// directions are stored). Read on every uncached apply for the
    /// complement shortcut, so it must be a plain load, not a hash probe.
    neg_cache: Vec<u32>,
    /// Memoized vtree lca/side resolution per `(va, vb)` pair (packed —
    /// see [`pack_lca`]): the binary-lifting walk runs once per pair
    /// instead of once per cache-missing apply.
    lca_cache: IntCache,
    /// Recycled element buffers for the worklist engine (cleared, capacity
    /// kept), so steady-state operations allocate no per-step scratch.
    scratch: Vec<Vec<(SddId, SddId)>>,
    /// Recycled frame stack of the worklist engine (one engine runs at a
    /// time; public operations are not reentrant).
    frame_pool: Vec<Frame>,
    stats: ApplyStats,
    /// Process-unique identity (see [`SddManager::uid`]): node ids are
    /// per-manager indices, so anything caching values under `SddId`s
    /// (e.g. `eval::EvalCache`) must be able to tell managers apart.
    uid: u64,
}

/// Read-only access to an SDD store — implemented by the mutable
/// [`SddManager`] and by the immutable [`FrozenSdd`] slab, so read-side
/// traversals (semiring evaluation, reachability, assignment checks) are
/// written once and run over either. The provided methods are the
/// canonical traversal bodies; implementors only supply the six
/// accessors.
pub trait SddRead {
    /// The store's vtree.
    fn vtree(&self) -> &Vtree;

    /// Process-unique identity of the store's id space (see
    /// [`SddManager::uid`]). A frozen slab keeps the uid of the manager it
    /// was frozen from — ids are unchanged, so caches keyed by them stay
    /// valid; a branch draws a fresh one.
    fn uid(&self) -> u64;

    /// Node payload.
    fn node(&self, id: SddId) -> &SddNode;

    /// Resolve a decision's arena range (as stored in
    /// [`SddNode::Decision`]) to its element slice.
    fn elements(&self, r: Range<u32>) -> &[(SddId, SddId)];

    /// Total allocated nodes (terminals included).
    fn num_allocated(&self) -> usize;

    /// Total elements in the arena.
    fn num_elements(&self) -> usize;

    /// The element slice of a decision node (borrowed from the arena — no
    /// cloning; panics on terminals and literals).
    fn elements_of(&self, a: SddId) -> &[(SddId, SddId)] {
        match self.node(a) {
            SddNode::Decision { elems, .. } => self.elements(elems.clone()),
            _ => panic!("elements_of on non-decision"),
        }
    }

    /// The vtree node a node respects: leaf for literals, its `vnode` for
    /// decisions, `None` for ⊥/⊤ (which respect every node).
    fn respects(&self, id: SddId) -> Option<VtreeNodeId> {
        match self.node(id) {
            SddNode::False | SddNode::True => None,
            SddNode::Literal { var, .. } => Some(
                self.vtree()
                    .leaf_of_var(*var)
                    .expect("literal var in vtree"),
            ),
            SddNode::Decision { vnode, .. } => Some(*vnode),
        }
    }

    /// Decision nodes reachable from `root`.
    fn reachable_decisions(&self, root: SddId) -> Vec<SddId> {
        let mut seen: FxHashSet<SddId> = FxHashSet::default();
        let mut stack = vec![root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let SddNode::Decision { elems, .. } = self.node(n) {
                out.push(n);
                for &(p, s) in self.elements(elems.clone()) {
                    stack.push(p);
                    stack.push(s);
                }
            }
        }
        out
    }

    /// SDD size: total number of elements (∧-gates) over reachable
    /// decisions.
    fn size(&self, root: SddId) -> usize {
        self.reachable_decisions(root)
            .iter()
            .map(|n| match self.node(*n) {
                SddNode::Decision { elems, .. } => elems.len(),
                _ => 0,
            })
            .sum()
    }

    /// Evaluate under an assignment covering the vtree variables: one
    /// bottom-up sweep over the reachable decisions in interning order
    /// (children are always interned before their parents, so ascending
    /// [`SddId`] is a topological order) — linear in the DAG size,
    /// constant stack depth.
    fn eval(&self, a: SddId, asg: &Assignment) -> bool {
        let mut decisions = self.reachable_decisions(a);
        decisions.sort_unstable();
        let mut val: FxHashMap<SddId, bool> = FxHashMap::default();
        let value_of = |n: SddId, val: &FxHashMap<SddId, bool>| match self.node(n) {
            SddNode::False => false,
            SddNode::True => true,
            SddNode::Literal { var, positive } => {
                asg.get(*var).expect("assignment covers vtree vars") == *positive
            }
            SddNode::Decision { .. } => val[&n],
        };
        for d in decisions {
            let b = self
                .elements_of(d)
                .iter()
                .any(|&(p, s)| value_of(p, &val) && value_of(s, &val));
            val.insert(d, b);
        }
        value_of(a, &val)
    }
}

impl SddRead for SddManager {
    fn vtree(&self) -> &Vtree {
        SddManager::vtree(self)
    }

    fn uid(&self) -> u64 {
        SddManager::uid(self)
    }

    fn node(&self, id: SddId) -> &SddNode {
        SddManager::node(self, id)
    }

    fn elements(&self, r: Range<u32>) -> &[(SddId, SddId)] {
        SddManager::elements(self, r)
    }

    fn num_allocated(&self) -> usize {
        SddManager::num_allocated(self)
    }

    fn num_elements(&self) -> usize {
        SddManager::num_elements(self)
    }
}

/// Encode a side for the packed lca memo.
#[inline]
fn side_code(s: Option<Side>) -> u32 {
    match s {
        None => 0,
        Some(Side::Left) => 1,
        Some(Side::Right) => 2,
    }
}

/// Decode a side from the packed lca memo.
#[inline]
fn side_decode(c: u32) -> Option<Side> {
    match c & 3 {
        0 => None,
        1 => Some(Side::Left),
        _ => Some(Side::Right),
    }
}

/// Pack an lca answer `(lca, side of a, side of b)` into a cache value:
/// 4 side bits below the lca id. The cap is a hard assert (like the node
/// cap in `push_node`) — a silent truncation here would mis-serve the lca
/// memo and corrupt apply results; it only runs on memo misses, off the
/// hot path. Vtree node ids stay well under 2²⁸ (2.7·10⁸ nodes) in any
/// session the 2³¹ SDD node cap admits.
#[inline]
fn pack_lca(l: VtreeNodeId, a_at: Option<Side>, b_at: Option<Side>) -> u32 {
    assert!(l.0 < (1 << 28), "vtree node ids fit the packed lca memo");
    (l.0 << 4) | (side_code(a_at) << 2) | side_code(b_at)
}

/// The next process-unique manager identity (every `SddManager::new` and
/// every [`FrozenSdd::branch`] draws one — a branch is a *different* id
/// space extension, so caches bound to the base must refuse it).
fn next_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_UID: AtomicU64 = AtomicU64::new(0);
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

impl SddManager {
    /// Fresh manager over `vtree`.
    pub fn new(vtree: Vtree) -> Self {
        SddManager {
            vtree: Arc::new(vtree),
            base: None,
            base_nodes: 0,
            base_elems: 0,
            nodes: vec![SddNode::False, SddNode::True],
            arena: Vec::new(),
            lit_cache: FxHashMap::default(),
            unique: UniqueTable::new(),
            apply_cache: IntCache::new(),
            neg_cache: vec![EMPTY_SLOT, EMPTY_SLOT],
            lca_cache: IntCache::new(),
            scratch: Vec::new(),
            frame_pool: Vec::new(),
            stats: ApplyStats::default(),
            uid: next_uid(),
        }
    }

    /// A process-unique identity for this manager, stable across moves.
    /// External caches keyed by this manager's [`SddId`]s store it and
    /// refuse to serve a different manager.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Lifetime apply counters (see [`ApplyStats`]).
    pub fn apply_stats(&self) -> ApplyStats {
        self.stats
    }

    /// Zero the lifetime apply counters. Long-lived serving sessions call
    /// this (or snapshot-and-[`ApplyStats::delta_since`]) between queries
    /// so each query's report reflects that query alone.
    pub fn reset_apply_stats(&mut self) {
        self.stats.reset();
    }

    /// The manager's vtree.
    pub fn vtree(&self) -> &Vtree {
        &self.vtree
    }

    /// Node payload. Ids below the base mark resolve into the shared
    /// frozen slab of an overlay manager.
    pub fn node(&self, id: SddId) -> &SddNode {
        if id.0 < self.base_nodes {
            &self.base.as_ref().expect("base ids imply a base").nodes[id.index()]
        } else {
            &self.nodes[id.index() - self.base_nodes as usize]
        }
    }

    /// Total allocated nodes (terminals included; base + extension for an
    /// overlay manager).
    pub fn num_allocated(&self) -> usize {
        self.base_nodes as usize + self.nodes.len()
    }

    /// Total elements in the arena — every decision's elements exactly
    /// once, live or not (base + extension for an overlay manager).
    pub fn num_elements(&self) -> usize {
        self.base_elems as usize + self.arena.len()
    }

    /// Estimated resident bytes of the manager's node storage and caches:
    /// node table, element arena, negation array, the open-addressed
    /// unique/apply/lca tables, and the literal cache (estimated from its
    /// capacity — the standard hash table stores entries plus one control
    /// byte per slot). Scratch-pool and vtree memory are excluded; the SDD
    /// is the part that grows. An overlay manager counts the shared frozen
    /// slab it resolves into ([`FrozenSdd::memory_bytes`]) plus its own
    /// extension storage, so the metric stays comparable pre/post freeze.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.base.as_ref().map_or(0, |b| b.memory_bytes())
            + self.nodes.capacity() * size_of::<SddNode>()
            + self.arena.capacity() * size_of::<(SddId, SddId)>()
            + self.neg_cache.capacity() * size_of::<u32>()
            + self.unique.slots.len() * size_of::<(u64, u32)>()
            + self.apply_cache.memory_bytes()
            + self.lca_cache.memory_bytes()
            + self
                .lit_cache
                .capacity()
                .saturating_mul(size_of::<((VarId, bool), SddId)>() + 1)
    }

    /// The vtree node a node respects: leaf for literals, its `vnode` for
    /// decisions, `None` for ⊥/⊤ (which respect every node).
    pub fn respects(&self, id: SddId) -> Option<VtreeNodeId> {
        SddRead::respects(self, id)
    }

    /// Append a node, enforcing the 31-bit id cap the packed apply key
    /// (and the caches' slot encoding) relies on. Ids are global: an
    /// overlay manager continues its frozen base's id space.
    fn push_node(&mut self, n: SddNode) -> SddId {
        let id = self.base_nodes as usize + self.nodes.len();
        assert!(id < (1 << 31), "SDD node ids are packed into 31 bits");
        self.nodes.push(n);
        self.neg_cache.push(EMPTY_SLOT);
        SddId(id as u32)
    }

    /// The literal `v` / `¬v`.
    pub fn literal(&mut self, v: VarId, positive: bool) -> SddId {
        assert!(
            self.vtree.contains_var(v),
            "literal variable {v} not in the vtree"
        );
        if let Some(&id) = self.lit_cache.get(&(v, positive)) {
            return id;
        }
        let id = self.push_node(SddNode::Literal { var: v, positive });
        self.lit_cache.insert((v, positive), id);
        id
    }

    /// The element slice of a decision node (borrowed from the arena — no
    /// cloning; panics on terminals and literals).
    pub fn elements_of(&self, a: SddId) -> &[(SddId, SddId)] {
        match self.node(a) {
            SddNode::Decision { elems, .. } => self.elements(elems.clone()),
            _ => panic!("elements_of on non-decision"),
        }
    }

    /// Resolve a decision's arena range (as stored in
    /// [`SddNode::Decision`]) to its element slice. A range lies wholly in
    /// the frozen base or wholly in the extension (every decision's
    /// elements are appended to exactly one arena), so the offset test on
    /// `start` decides for the whole slice.
    pub fn elements(&self, r: Range<u32>) -> &[(SddId, SddId)] {
        if r.start < self.base_elems {
            &self.base.as_ref().expect("base offsets imply a base").arena
                [r.start as usize..r.end as usize]
        } else {
            let s = (r.start - self.base_elems) as usize;
            let e = (r.end - self.base_elems) as usize;
            &self.arena[s..e]
        }
    }

    /// One arena element (global offset).
    #[inline]
    fn element(&self, i: u32) -> (SddId, SddId) {
        if i < self.base_elems {
            self.base.as_ref().expect("base offsets imply a base").arena[i as usize]
        } else {
            self.arena[(i - self.base_elems) as usize]
        }
    }

    /// Memoized `(lca, side of va, side of vb)` for a vnode pair: the
    /// binary-lifting lca walk plus two descendant checks run once per
    /// pair; every later apply on the same pair is one cache load.
    fn lca_sides(
        &mut self,
        va: VtreeNodeId,
        vb: VtreeNodeId,
    ) -> (VtreeNodeId, Option<Side>, Option<Side>) {
        let key = ((va.0 as u64) << 32) | vb.0 as u64;
        if let Some(packed) = self.lca_cache.get(key) {
            return (
                VtreeNodeId(packed >> 4),
                side_decode(packed >> 2),
                side_decode(packed),
            );
        }
        let l = self.vtree.lca(va, vb);
        let a_at = self.vtree.side_of(l, va); // None ⇒ va == l
        let b_at = self.vtree.side_of(l, vb);
        self.lca_cache.insert(key, pack_lca(l, a_at, b_at));
        (l, a_at, b_at)
    }

    /// Take a recycled element buffer (empty, capacity retained).
    fn take_buf(&mut self) -> Vec<(SddId, SddId)> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Return an element buffer to the pool.
    fn recycle_buf(&mut self, mut buf: Vec<(SddId, SddId)>) {
        buf.clear();
        self.scratch.push(buf);
    }

    /// Canonical decision-node constructor: drops ⊥ primes, compresses
    /// (merges equal subs, or-ing their primes), trims, sorts, and interns.
    /// Runs on the bounded-recursion fast path; compression disjunctions
    /// past the fuel budget spill to the worklist [`Engine`], so
    /// construction never recurses on node depth.
    fn mk_decision(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        self.build_rec(vnode, elems, REC_FUEL)
    }

    /// The pure tail of decision construction: trimming rules, prime-order
    /// sorting, and unique-table interning. `compressed` must already have
    /// pairwise distinct subs and no ⊥ primes; the buffer is left in an
    /// unspecified state for the caller to recycle. Interning allocates
    /// nothing beyond the arena append (and the occasional table growth):
    /// probes compare `compressed` against arena slices in place.
    fn finish_decision(
        &mut self,
        vnode: VtreeNodeId,
        compressed: &mut Vec<(SddId, SddId)>,
    ) -> SddId {
        // Trimming rule 1: {(⊤, s)} → s.
        if compressed.len() == 1 && compressed[0].0 == TRUE {
            return compressed[0].1;
        }
        // Trimming rule 2: {(p, ⊤), (¬p, ⊥)} → p.
        if compressed.len() == 2 {
            let find = |sub: SddId| compressed.iter().find(|&&(_, s)| s == sub).map(|&(p, _)| p);
            if let (Some(p_true), Some(_p_false)) = (find(TRUE), find(FALSE)) {
                return p_true;
            }
        }
        compressed.sort_unstable_by_key(|&(p, _)| p);
        let hash = decision_hash(vnode, compressed);
        let mask = self.unique.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            self.stats.unique_probes += 1;
            let (slot_hash, slot_id) = self.unique.slots[i];
            if slot_id == EMPTY_SLOT {
                break;
            }
            if slot_hash == hash {
                if let SddNode::Decision { vnode: v2, elems } = self.node(SddId(slot_id)) {
                    if *v2 == vnode && self.elements(elems.clone()) == compressed.as_slice() {
                        return SddId(slot_id);
                    }
                }
            }
            i = (i + 1) & mask;
        }
        // Miss: the elements enter the arena (their single home) and the
        // free slot found above records the new node. Offsets are global:
        // an overlay manager's extension continues its base's arena.
        let start = self.base_elems as usize + self.arena.len();
        assert!(
            start + compressed.len() <= u32::MAX as usize,
            "element arena exceeds u32 indexing"
        );
        self.arena.extend_from_slice(compressed);
        let end = self.base_elems as usize + self.arena.len();
        let id = self.push_node(SddNode::Decision {
            vnode,
            elems: start as u32..end as u32,
        });
        self.stats.unique_inserts += 1;
        self.unique.slots[i] = (hash, id.0);
        self.unique.len += 1;
        if self.unique.len * 4 >= self.unique.slots.len() * 3 {
            self.grow_unique();
        }
        id
    }

    /// Double the unique table, re-slotting entries by their stored hashes
    /// (no key data to rehash — the arena holds it).
    fn grow_unique(&mut self) {
        let new_cap = self.unique.slots.len() * 2;
        let mut slots = vec![(0u64, EMPTY_SLOT); new_cap].into_boxed_slice();
        let mask = new_cap - 1;
        for &(h, id) in self.unique.slots.iter() {
            if id == EMPTY_SLOT {
                continue;
            }
            let mut i = (h as usize) & mask;
            while slots[i].1 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = (h, id);
        }
        self.unique.slots = slots;
    }

    /// Public canonical decision constructor: builds `⋁ (prime ∧ sub)`
    /// normalized for `vnode`, applying compression, trimming and unique-table
    /// interning.
    ///
    /// The caller must supply primes forming an exhaustive, pairwise-disjoint
    /// partition of the left-subtree space (the constructor *canonicalizes*
    /// but does not verify this; use [`SddManager::validate`] in tests). This
    /// is the entry point for the paper's direct `S_{F,T}` construction
    /// (§3.2.2), which builds sentential decisions from factor sets rather
    /// than through `apply`.
    pub fn decision(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        assert!(
            !self.vtree.is_leaf(vnode),
            "decision vnode must be internal"
        );
        self.mk_decision(vnode, elems)
    }

    /// Negation (cached; structural: same primes, negated subs). Bounded
    /// recursion with worklist spill — heap-bounded depth at any size.
    pub fn negate(&mut self, a: SddId) -> SddId {
        self.negate_rec(a, REC_FUEL)
    }

    /// Conjunction.
    pub fn and(&mut self, a: SddId, b: SddId) -> SddId {
        self.apply_rec(Op::And, a, b, REC_FUEL)
    }

    /// Disjunction.
    pub fn or(&mut self, a: SddId, b: SddId) -> SddId {
        self.apply_rec(Op::Or, a, b, REC_FUEL)
    }

    // ------------------------------------------------------------------
    // The bounded-recursion fast path.
    //
    // Every operation first runs the same memo-consulting head as the
    // worklist engine; a genuine miss recurses on the machine stack while
    // `fuel` lasts and spills the subproblem to the worklist at zero.
    // Heads, cache consults and cache inserts happen in the identical
    // order on both paths, so the constructed nodes are the same — the
    // fast path only removes the frame machine's dispatch constant from
    // the (overwhelmingly common) shallow operations.
    // ------------------------------------------------------------------

    /// Apply with a recursion budget; see the section comment above.
    fn apply_rec(&mut self, op: Op, a: SddId, b: SddId, fuel: u32) -> SddId {
        if let Some(r) = Engine::apply_head(self, op, a, b) {
            return r;
        }
        if fuel == 0 {
            return self.apply_spill(op, a, b);
        }
        let key = apply_key(op, a, b);
        let va = self.respects(a).expect("non-terminal");
        let vb = self.respects(b).expect("non-terminal");
        if va == vb {
            let ea = Engine::norm_elems(self, a, None, None);
            let eb = Engine::norm_elems(self, b, None, None);
            return self.cross_rec(op, key, va, ea, eb, fuel);
        }
        let (l, a_at, b_at) = self.lca_sides(va, vb);
        // Left-side operands need their negations first (operand a before
        // b, as both engines always did).
        let na = if a_at == Some(Side::Left) {
            Some(self.negate_rec(a, fuel - 1))
        } else {
            None
        };
        let nb = if b_at == Some(Side::Left) {
            Some(self.negate_rec(b, fuel - 1))
        } else {
            None
        };
        let ea = Engine::norm_elems(self, a, a_at, na);
        let eb = Engine::norm_elems(self, b, b_at, nb);
        self.cross_rec(op, key, l, ea, eb, fuel)
    }

    /// The element cross product of an uncached apply, recursively.
    fn cross_rec(
        &mut self,
        op: Op,
        key: u64,
        vnode: VtreeNodeId,
        ea: Elems,
        eb: Elems,
        fuel: u32,
    ) -> SddId {
        let mut out = self.take_buf();
        out.reserve(ea.len() * eb.len());
        for i in 0..ea.len() {
            for j in 0..eb.len() {
                let (pa, sa) = ea.get(self, i);
                let (pb, sb) = eb.get(self, j);
                // ⊤-conjunctions resolve structurally (primes are never
                // ⊥, so `pa ∧ ⊤ = pa` needs no apply at all — singleton
                // `{(⊤, x)}` normalizations make it the most common
                // prime combination).
                let p = if pb == TRUE {
                    pa
                } else if pa == TRUE {
                    pb
                } else {
                    let p = self.apply_rec(Op::And, pa, pb, fuel - 1);
                    if p == FALSE {
                        continue;
                    }
                    p
                };
                let s = self.apply_rec(op, sa, sb, fuel - 1);
                out.push((p, s));
            }
        }
        let r = self.build_rec(vnode, out, fuel);
        self.apply_cache.insert(key, r.0);
        r
    }

    /// Canonical decision construction, recursively: drop ⊥ primes, sort
    /// by sub, or-reduce equal-sub groups, then intern. Adopts `elems`
    /// into the buffer pool.
    fn build_rec(
        &mut self,
        vnode: VtreeNodeId,
        mut elems: Vec<(SddId, SddId)>,
        fuel: u32,
    ) -> SddId {
        elems.retain(|&(p, _)| p != FALSE);
        if elems.is_empty() {
            self.recycle_buf(elems);
            return FALSE;
        }
        elems.sort_unstable_by_key(|&(_, s)| s);
        // The common case — all subs already distinct — interns directly.
        if elems.windows(2).all(|w| w[0].1 != w[1].1) {
            let r = self.finish_decision(vnode, &mut elems);
            self.recycle_buf(elems);
            return r;
        }
        if fuel == 0 {
            return self.build_spill(vnode, elems);
        }
        let mut compressed = self.take_buf();
        let mut k = 0;
        while k < elems.len() {
            let sub = elems[k].1;
            let mut acc = elems[k].0;
            k += 1;
            while k < elems.len() && elems[k].1 == sub {
                let p = elems[k].0;
                acc = self.apply_rec(Op::Or, acc, p, fuel - 1);
                k += 1;
            }
            compressed.push((acc, sub));
        }
        self.recycle_buf(elems);
        let r = self.finish_decision(vnode, &mut compressed);
        self.recycle_buf(compressed);
        r
    }

    /// Negation with a recursion budget.
    fn negate_rec(&mut self, a: SddId, fuel: u32) -> SddId {
        if let Some(r) = Engine::negate_head(self, a) {
            return r;
        }
        if fuel == 0 {
            return self.negate_spill(a);
        }
        let SddNode::Decision { vnode, elems } = self.node(a) else {
            unreachable!()
        };
        let (vnode, range) = (*vnode, elems.clone());
        let mut out = self.take_buf();
        out.reserve(range.len());
        for idx in range {
            let (p, s) = self.element(idx);
            let ns = self.negate_rec(s, fuel - 1);
            out.push((p, ns));
        }
        let n = self.build_rec(vnode, out, fuel);
        self.neg_cache[a.index()] = n.0;
        self.neg_cache[n.index()] = a.0;
        n
    }

    /// Conditioning with a recursion budget.
    fn condition_rec(&mut self, ctx: &mut CondCtx, a: SddId, fuel: u32) -> SddId {
        if let Some(r) = Engine::condition_head(self, ctx, a) {
            return r;
        }
        if fuel == 0 {
            return self.condition_spill(ctx, a);
        }
        let SddNode::Decision { vnode, elems } = self.node(a) else {
            unreachable!()
        };
        let (vnode, range) = (*vnode, elems.clone());
        let mut out = self.take_buf();
        out.reserve(range.len());
        for idx in range {
            let (p, s) = self.element(idx);
            let np = self.condition_rec(ctx, p, fuel - 1);
            let ns = self.condition_rec(ctx, s, fuel - 1);
            out.push((np, ns));
        }
        let r = self.build_rec(vnode, out, fuel);
        ctx.memo.insert(a, r);
        r
    }

    // ------------------------------------------------------------------
    // Worklist spills: the operation already ran its head (and missed);
    // hand it to the frame machine, which finishes it with heap-bounded
    // depth regardless of how deep the remaining structure is.
    // ------------------------------------------------------------------

    fn apply_spill(&mut self, op: Op, a: SddId, b: SddId) -> SddId {
        let mut eng = Engine::new(std::mem::take(&mut self.frame_pool), None);
        eng.push_apply_frame(self, op, a, b);
        let r = eng.run(self);
        self.frame_pool = eng.into_frames();
        r
    }

    fn negate_spill(&mut self, a: SddId) -> SddId {
        let mut eng = Engine::new(std::mem::take(&mut self.frame_pool), None);
        let r = match eng.start_negate(self, a) {
            Some(r) => r,
            None => eng.run(self),
        };
        self.frame_pool = eng.into_frames();
        r
    }

    fn condition_spill(&mut self, ctx: &mut CondCtx, a: SddId) -> SddId {
        // The engine owns the memo while it runs; hand it over and take
        // it back so the whole `condition` call shares one memo table.
        let taken = CondCtx {
            var: ctx.var,
            value: ctx.value,
            memo: std::mem::take(&mut ctx.memo),
        };
        let mut eng = Engine::new(std::mem::take(&mut self.frame_pool), Some(taken));
        let r = match eng.start_condition(self, a) {
            Some(r) => r,
            None => eng.run(self),
        };
        let (frames, cond) = eng.into_parts();
        self.frame_pool = frames;
        ctx.memo = cond.expect("condition context preserved").memo;
        r
    }

    fn build_spill(&mut self, vnode: VtreeNodeId, elems: Vec<(SddId, SddId)>) -> SddId {
        let mut eng = Engine::new(std::mem::take(&mut self.frame_pool), None);
        let r = match eng.start_build(self, vnode, elems) {
            Some(r) => r,
            None => eng.run(self),
        };
        self.frame_pool = eng.into_frames();
        r
    }

    /// Compile a circuit bottom-up.
    pub fn from_circuit(&mut self, c: &circuit::Circuit) -> SddId {
        use circuit::GateKind;
        let mut val: Vec<SddId> = Vec::with_capacity(c.size());
        for (_, g) in c.iter() {
            let n = match g {
                GateKind::Var(v) => self.literal(*v, true),
                GateKind::Const(b) => {
                    if *b {
                        TRUE
                    } else {
                        FALSE
                    }
                }
                GateKind::Not(x) => {
                    let x = val[x.index()];
                    self.negate(x)
                }
                GateKind::And(xs) => {
                    let mut acc = TRUE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.and(acc, xv);
                    }
                    acc
                }
                GateKind::Or(xs) => {
                    let mut acc = FALSE;
                    for x in xs.iter() {
                        let xv = val[x.index()];
                        acc = self.or(acc, xv);
                    }
                    acc
                }
            };
            val.push(n);
        }
        val[c.output().index()]
    }

    /// Compile a truth table by Shannon expansion along the vtree leaf order
    /// (apply does the structural work; the result is canonical regardless).
    pub fn from_boolfn(&mut self, f: &BoolFn) -> SddId {
        assert!(
            f.vars().iter().all(|v| self.vtree.contains_var(v)),
            "vtree must cover the support"
        );
        let order = self.vtree.leaf_order();
        let mut memo: FxHashMap<BoolFn, SddId> = FxHashMap::default();
        self.from_boolfn_rec(f, &order, 0, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)] // recursive helper of from_boolfn
    fn from_boolfn_rec(
        &mut self,
        f: &BoolFn,
        order: &[VarId],
        mut i: usize,
        memo: &mut FxHashMap<BoolFn, SddId>,
    ) -> SddId {
        if let Some(c) = f.as_constant() {
            return if c { TRUE } else { FALSE };
        }
        if let Some(&n) = memo.get(f) {
            return n;
        }
        while !(f.vars().contains(order[i]) && f.depends_on(order[i])) {
            i += 1;
        }
        let v = order[i];
        let f0 = f.restrict(v, false);
        let f1 = f.restrict(v, true);
        let lo = self.from_boolfn_rec(&f0, order, i + 1, memo);
        let hi = self.from_boolfn_rec(&f1, order, i + 1, memo);
        let pos = self.literal(v, true);
        let neg = self.literal(v, false);
        let a = self.and(pos, hi);
        let b = self.and(neg, lo);
        let n = self.or(a, b);
        memo.insert(f.clone(), n);
        n
    }

    /// Condition on `var := value` (cofactor). Memoized per node; bounded
    /// recursion with worklist spill — heap-bounded depth even on
    /// vtree-deep diagrams.
    pub fn condition(&mut self, a: SddId, var: VarId, value: bool) -> SddId {
        let mut ctx = CondCtx {
            var,
            value,
            memo: FxHashMap::default(),
        };
        self.condition_rec(&mut ctx, a, REC_FUEL)
    }

    /// Evaluate under an assignment covering the vtree variables: one
    /// bottom-up sweep over the reachable decisions in interning order
    /// (children are always interned before their parents, so ascending
    /// [`SddId`] is a topological order) — linear in the DAG size, constant
    /// stack depth.
    pub fn eval(&self, a: SddId, asg: &Assignment) -> bool {
        SddRead::eval(self, a, asg)
    }

    /// Read back the function over the full vtree variable set.
    pub fn to_boolfn(&self, a: SddId) -> BoolFn {
        let vars = VarSet::from_slice(self.vtree.vars());
        BoolFn::from_fn(vars.clone(), |idx| {
            self.eval(a, &Assignment::from_index(&vars, idx))
        })
    }

    /// Decision nodes reachable from `root`.
    pub fn reachable_decisions(&self, root: SddId) -> Vec<SddId> {
        SddRead::reachable_decisions(self, root)
    }

    /// SDD size: total number of elements (∧-gates) over reachable decisions.
    pub fn size(&self, root: SddId) -> usize {
        SddRead::size(self, root)
    }

    /// ∧-gates per vtree node: the counts behind the paper's Definition 5.
    pub fn vnode_profile(&self, root: SddId) -> FxHashMap<VtreeNodeId, usize> {
        let mut profile: FxHashMap<VtreeNodeId, usize> = FxHashMap::default();
        for n in self.reachable_decisions(root) {
            if let SddNode::Decision { vnode, elems } = self.node(n) {
                *profile.entry(*vnode).or_insert(0) += elems.len();
            }
        }
        profile
    }

    /// The paper's **SDD width** (Definition 5): the maximum number of
    /// ∧-gates structured by a single vtree node.
    pub fn width(&self, root: SddId) -> usize {
        self.vnode_profile(root)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// The worklist engine behind apply / negate / condition.
//
// The natural implementations of these operations recurse to the vtree /
// SDD depth, which is Θ(n) on chain-shaped inputs — a 100k-variable
// session would overflow any default stack. The `Engine` below replaces
// the call stack with an explicit frame stack on the heap: every suspended
// operation is a `Frame` recording exactly where it will resume, a single
// `ret` register carries each finished node id to the frame that asked for
// it, and `start_*` resolvers answer what they can immediately (terminal
// shortcuts, cache hits, literals) without growing the stack. Memoization
// and hash-consing match the recursive fast path: the same caches are
// consulted and filled at the same points, in the same order, so both
// paths construct identical nodes. (ApplyStats counts are *not* those of
// the pre-arena engine: ⊤-conjunction primes now resolve structurally
// without an apply call, so apply_calls/cache_hits run strictly lower
// than historical runs on the same input.)
//
// Frames never copy element lists: a normalized operand is either an
// arena range (decisions — the arena is append-only, so the range stays
// valid while children intern new nodes) or at most two inline pairs (the
// lca normalization shapes). Output buffers and the frame stack itself
// come from per-manager pools, so a steady-state apply step allocates
// nothing.
// ---------------------------------------------------------------------

/// Context of one `condition` run: the pinned literal and the per-call
/// memo table (cofactor results are not globally cached).
struct CondCtx {
    var: VarId,
    value: bool,
    memo: FxHashMap<SddId, SddId>,
}

/// What a suspended [`Frame::Prep`] is waiting for.
#[derive(Copy, Clone)]
enum PrepWait {
    /// Just pushed; no negation requested yet.
    Fresh,
    /// The negation of operand `a`.
    NegA,
    /// The negation of operand `b`.
    NegB,
}

/// What a suspended [`Frame::Cross`] is waiting for.
enum CrossWait {
    /// Just pushed, or between element pairs.
    Idle,
    /// The prime conjunction of the current pair.
    Prime,
    /// The sub combination; the finished prime rides along.
    Sub(SddId),
    /// The final decision construction.
    Build,
}

/// What a suspended [`Frame::Cond`] is waiting for.
enum CondWait {
    /// Just pushed, or between elements.
    Idle,
    /// The conditioned prime of the current element.
    Prime,
    /// The conditioned sub; the conditioned prime rides along.
    Sub(SddId),
    /// The final decision construction.
    Build,
}

/// A normalized apply operand's element list: a decision node's arena
/// range (no copy — ranges are immutable once interned), or the up-to-two
/// synthesized pairs of the lca normalization, inline.
enum Elems {
    /// `arena[start..end]` of a decision at the normalization vnode.
    Arena(u32, u32),
    /// `{(⊤, x)}` (right side) or `{(x, ⊤), (¬x, ⊥)}` (left side).
    Inline { buf: [(SddId, SddId); 2], len: u8 },
}

impl Elems {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Elems::Arena(s, e) => (e - s) as usize,
            Elems::Inline { len, .. } => *len as usize,
        }
    }

    #[inline]
    fn get(&self, m: &SddManager, i: usize) -> (SddId, SddId) {
        match self {
            Elems::Arena(s, _) => m.element(s + i as u32),
            Elems::Inline { buf, .. } => buf[i],
        }
    }
}

/// One suspended operation of the worklist engine.
enum Frame {
    /// An apply whose operands normalize at their vtree lca: a left-side
    /// operand needs its negation before the element lists exist.
    Prep {
        op: Op,
        key: u64,
        l: VtreeNodeId,
        a: SddId,
        /// `None` when `a` respects `l` itself.
        a_at: Option<Side>,
        b: SddId,
        b_at: Option<Side>,
        na: Option<SddId>,
        nb: Option<SddId>,
        wait: PrepWait,
    },
    /// The element cross product of an apply.
    Cross {
        op: Op,
        key: u64,
        vnode: VtreeNodeId,
        ea: Elems,
        eb: Elems,
        i: u32,
        j: u32,
        wait: CrossWait,
        out: Vec<(SddId, SddId)>,
    },
    /// Structural negation of a decision (same primes, negated subs).
    Neg {
        a: SddId,
        vnode: VtreeNodeId,
        /// The decision's arena range.
        elems: Range<u32>,
        i: u32,
        out: Vec<(SddId, SddId)>,
        /// Set once the final decision construction was requested.
        building: bool,
    },
    /// Conditioning of a decision (both primes and subs restricted).
    Cond {
        a: SddId,
        vnode: VtreeNodeId,
        /// The decision's arena range.
        elems: Range<u32>,
        i: u32,
        wait: CondWait,
        out: Vec<(SddId, SddId)>,
    },
    /// Canonical decision construction with pending prime-compression
    /// disjunctions (groups of equal subs whose primes must be or-ed).
    Build {
        vnode: VtreeNodeId,
        /// `(primes, sub)` groups, sorted by sub.
        groups: Vec<(Vec<SddId>, SddId)>,
        gi: usize,
        /// Next prime index within the current group (0 = group untouched).
        pi: usize,
        /// The or-accumulator of the current group.
        acc: SddId,
        compressed: Vec<(SddId, SddId)>,
    },
}

impl Frame {
    /// A fresh cross-product frame with a pooled output buffer — the one
    /// place the `Frame::Cross` literal is spelled out, so the worklist's
    /// three construction sites cannot drift.
    fn cross(
        m: &mut SddManager,
        op: Op,
        key: u64,
        vnode: VtreeNodeId,
        ea: Elems,
        eb: Elems,
    ) -> Frame {
        let out = Engine::cross_buf(m, &ea, &eb);
        Frame::Cross {
            op,
            key,
            vnode,
            ea,
            eb,
            i: 0,
            j: 0,
            wait: CrossWait::Idle,
            out,
        }
    }
}

/// A sub-operation a frame asks the engine to resolve.
enum Req {
    Apply(Op, SddId, SddId),
    /// An apply whose memo-consulting head ([`Engine::apply_head`]) was
    /// already run (and missed) by the requesting frame's inline fast
    /// path: go straight to the frame push — re-running the head would
    /// double-count the call in [`ApplyStats`].
    ApplyMiss(Op, SddId, SddId),
    Negate(SddId),
    Condition(SddId),
    Build(VtreeNodeId, Vec<(SddId, SddId)>),
}

/// Outcome of advancing the top frame in place.
enum Step {
    /// The frame recorded what it waits for and requests a sub-operation.
    Request(Req),
    /// The frame finished; pop it and deliver its result.
    Complete(SddId),
}

/// The recursion budget of the bounded-depth fast path: operations nest on
/// the machine stack for this many levels (a constant — ~300 bytes per
/// level, ~20 KiB total, safe on any thread) and spill the remainder to
/// the worklist engine. The fast path is what claws back the frame
/// machine's dispatch constant on shallow work; the spill is what keeps
/// 100k-variable chains off the stack. Depth is bounded by the *constant*,
/// never by input size, so the workspace's iterative-engine invariant
/// holds.
const REC_FUEL: u32 = 64;

/// The frame stack plus the `ret` register. One engine drives one public
/// operation (`and`/`or`/`negate`/`condition`/`decision`) to completion;
/// its frame stack is borrowed from (and returned to) the manager's pool.
struct Engine {
    frames: Vec<Frame>,
    cond: Option<CondCtx>,
}

impl Engine {
    fn new(frames: Vec<Frame>, cond: Option<CondCtx>) -> Self {
        debug_assert!(frames.is_empty(), "the frame pool is handed over empty");
        Engine { frames, cond }
    }

    /// Surrender the (now empty) frame stack back to the manager's pool.
    fn into_frames(mut self) -> Vec<Frame> {
        self.frames.clear();
        self.frames
    }

    /// As [`Engine::into_frames`], also returning the condition context
    /// (the spill path hands the memo back to its recursive caller).
    fn into_parts(mut self) -> (Vec<Frame>, Option<CondCtx>) {
        self.frames.clear();
        let cond = self.cond.take();
        (self.frames, cond)
    }

    /// Drive the frame stack until the initial request is answered.
    ///
    /// Invariant: a frame on top with no pending `ret` was just pushed (or
    /// just transitioned) and issues its first request; any other advance
    /// delivers `ret` to the exact slot the top frame's `wait` state
    /// names. Frames advance **in place** — only completions pop, only new
    /// children push; re-pushing the whole frame per element (the obvious
    /// encoding) moves ~100 bytes twice per cross-product pair, which
    /// measurably taxed the compile path.
    fn run(&mut self, m: &mut SddManager) -> SddId {
        let mut ret: Option<SddId> = None;
        loop {
            let Some(top) = self.frames.last_mut() else {
                return ret.expect("the worklist terminates with the requested node");
            };
            match Self::advance(top, ret.take(), m, &mut self.cond) {
                Step::Request(req) => ret = self.start_request(m, req),
                Step::Complete(v) => {
                    self.frames.pop();
                    ret = Some(v);
                }
            }
        }
    }

    /// Dispatch a frame's sub-operation request to its resolver (which
    /// answers immediately or pushes the frame that will).
    fn start_request(&mut self, m: &mut SddManager, req: Req) -> Option<SddId> {
        match req {
            Req::Apply(op, a, b) => self.start_apply(m, op, a, b),
            Req::ApplyMiss(op, a, b) => {
                self.push_apply_frame(m, op, a, b);
                None
            }
            Req::Negate(a) => self.start_negate(m, a),
            Req::Condition(a) => self.start_condition(m, a),
            Req::Build(vnode, elems) => self.start_build(m, vnode, elems),
        }
    }

    /// Advance the top frame in place: consume `ret` into the slot its
    /// `wait` state names, then either emit the frame's next request or
    /// declare it complete. The only internal transition is Prep → Cross
    /// (once the needed negations are in hand).
    fn advance(
        frame: &mut Frame,
        mut ret: Option<SddId>,
        m: &mut SddManager,
        cond: &mut Option<CondCtx>,
    ) -> Step {
        loop {
            match frame {
                Frame::Prep {
                    op,
                    key,
                    l,
                    a,
                    a_at,
                    b,
                    b_at,
                    na,
                    nb,
                    wait,
                } => {
                    match wait {
                        PrepWait::Fresh => {}
                        PrepWait::NegA => *na = Some(ret.take().expect("negation result")),
                        PrepWait::NegB => *nb = Some(ret.take().expect("negation result")),
                    }
                    if *a_at == Some(Side::Left) && na.is_none() {
                        *wait = PrepWait::NegA;
                        return Step::Request(Req::Negate(*a));
                    }
                    if *b_at == Some(Side::Left) && nb.is_none() {
                        *wait = PrepWait::NegB;
                        return Step::Request(Req::Negate(*b));
                    }
                    let ea = Self::norm_elems(m, *a, *a_at, *na);
                    let eb = Self::norm_elems(m, *b, *b_at, *nb);
                    *frame = Frame::cross(m, *op, *key, *l, ea, eb);
                    // Loop: the fresh Cross issues its first request.
                }
                Frame::Cross {
                    op,
                    key,
                    vnode,
                    ea,
                    eb,
                    i,
                    j,
                    wait,
                    out,
                } => {
                    // Advance one position past the current pair.
                    macro_rules! bump {
                        () => {
                            *j += 1;
                            if *j as usize == eb.len() {
                                *j = 0;
                                *i += 1;
                            }
                        };
                    }
                    // Deliver the pending answer, finishing its pair inline
                    // where the partner operation resolves from the memos.
                    match std::mem::replace(wait, CrossWait::Idle) {
                        CrossWait::Idle => {}
                        CrossWait::Prime => {
                            let p = ret.take().expect("prime result");
                            if p == FALSE {
                                bump!();
                            } else {
                                let sa = ea.get(m, *i as usize).1;
                                let sb = eb.get(m, *j as usize).1;
                                match Self::apply_head(m, *op, sa, sb) {
                                    Some(s) => {
                                        out.push((p, s));
                                        bump!();
                                    }
                                    None => {
                                        *wait = CrossWait::Sub(p);
                                        return Step::Request(Req::ApplyMiss(*op, sa, sb));
                                    }
                                }
                            }
                        }
                        CrossWait::Sub(p) => {
                            out.push((p, ret.take().expect("sub result")));
                            bump!();
                        }
                        CrossWait::Build => {
                            let r = ret.take().expect("build result");
                            m.apply_cache.insert(*key, r.0);
                            return Step::Complete(r);
                        }
                    }
                    // The pair loop: run entirely on the memo fast path —
                    // most prime conjunctions and sub combinations answer
                    // from the caches, and yielding to the frame stack for
                    // those costs more than computing them here.
                    while (*i as usize) < ea.len() {
                        let (pa, sa) = ea.get(m, *i as usize);
                        let (pb, sb) = eb.get(m, *j as usize);
                        // ⊤-conjunctions are resolved structurally: primes
                        // are never ⊥ (construction drops them), so
                        // `pa ∧ ⊤ = pa` needs no apply call at all — and
                        // singleton `{(⊤, x)}` normalizations make this
                        // the single most common prime combination.
                        let prime = if pb == TRUE {
                            Some(pa)
                        } else if pa == TRUE {
                            Some(pb)
                        } else {
                            match Self::apply_head(m, Op::And, pa, pb) {
                                None => {
                                    *wait = CrossWait::Prime;
                                    return Step::Request(Req::ApplyMiss(Op::And, pa, pb));
                                }
                                Some(p) => Some(p).filter(|&p| p != FALSE),
                            }
                        };
                        match prime {
                            None => {
                                bump!();
                            }
                            Some(p) => match Self::apply_head(m, *op, sa, sb) {
                                Some(s) => {
                                    out.push((p, s));
                                    bump!();
                                }
                                None => {
                                    *wait = CrossWait::Sub(p);
                                    return Step::Request(Req::ApplyMiss(*op, sa, sb));
                                }
                            },
                        }
                    }
                    *wait = CrossWait::Build;
                    return Step::Request(Req::Build(*vnode, std::mem::take(out)));
                }
                Frame::Neg {
                    a,
                    vnode,
                    elems,
                    i,
                    out,
                    building,
                } => {
                    if *building {
                        let n = ret.take().expect("build result");
                        m.neg_cache[a.index()] = n.0;
                        m.neg_cache[n.index()] = a.0;
                        return Step::Complete(n);
                    }
                    if let Some(ns) = ret.take() {
                        out.push((m.element(elems.start + *i).0, ns));
                        *i += 1;
                    }
                    // Element loop on the memo fast path (literal flips and
                    // cached negations answer inline).
                    while elems.start + *i < elems.end {
                        let s = m.element(elems.start + *i).1;
                        match Self::negate_head(m, s) {
                            Some(ns) => {
                                out.push((m.element(elems.start + *i).0, ns));
                                *i += 1;
                            }
                            None => return Step::Request(Req::Negate(s)),
                        }
                    }
                    *building = true;
                    return Step::Request(Req::Build(*vnode, std::mem::take(out)));
                }
                Frame::Cond {
                    a,
                    vnode,
                    elems,
                    i,
                    wait,
                    out,
                } => {
                    let ctx = cond.as_mut().expect("condition context");
                    match std::mem::replace(wait, CondWait::Idle) {
                        CondWait::Idle => {}
                        CondWait::Prime => {
                            let np = ret.take().expect("conditioned prime");
                            let s = m.element(elems.start + *i).1;
                            match Self::condition_head(m, ctx, s) {
                                Some(ns) => {
                                    out.push((np, ns));
                                    *i += 1;
                                }
                                None => {
                                    *wait = CondWait::Sub(np);
                                    return Step::Request(Req::Condition(s));
                                }
                            }
                        }
                        CondWait::Sub(np) => {
                            out.push((np, ret.take().expect("conditioned sub")));
                            *i += 1;
                        }
                        CondWait::Build => {
                            let r = ret.take().expect("build result");
                            ctx.memo.insert(*a, r);
                            return Step::Complete(r);
                        }
                    }
                    // Element loop on the memo fast path (terminals,
                    // literals, and already-conditioned decisions inline).
                    while elems.start + *i < elems.end {
                        let p = m.element(elems.start + *i).0;
                        match Self::condition_head(m, ctx, p) {
                            Some(np) => {
                                let s = m.element(elems.start + *i).1;
                                match Self::condition_head(m, ctx, s) {
                                    Some(ns) => {
                                        out.push((np, ns));
                                        *i += 1;
                                    }
                                    None => {
                                        *wait = CondWait::Sub(np);
                                        return Step::Request(Req::Condition(s));
                                    }
                                }
                            }
                            None => {
                                *wait = CondWait::Prime;
                                return Step::Request(Req::Condition(p));
                            }
                        }
                    }
                    *wait = CondWait::Build;
                    return Step::Request(Req::Build(*vnode, std::mem::take(out)));
                }
                Frame::Build {
                    vnode,
                    groups,
                    gi,
                    pi,
                    acc,
                    compressed,
                } => {
                    if let Some(r) = ret.take() {
                        *acc = r;
                    }
                    loop {
                        if *gi == groups.len() {
                            let mut elems = std::mem::take(compressed);
                            let r = m.finish_decision(*vnode, &mut elems);
                            m.recycle_buf(elems);
                            return Step::Complete(r);
                        }
                        if *pi == 0 {
                            *acc = groups[*gi].0[0];
                            *pi = 1;
                        }
                        if *pi < groups[*gi].0.len() {
                            let p = groups[*gi].0[*pi];
                            *pi += 1;
                            return Step::Request(Req::Apply(Op::Or, *acc, p));
                        }
                        compressed.push((*acc, groups[*gi].1));
                        *gi += 1;
                        *pi = 0;
                    }
                }
            }
        }
    }

    /// The memo-consulting head of an apply: terminal/identity shortcuts,
    /// apply-cache and complement lookups, and the same-variable literal
    /// clash. Shared verbatim by the recursive fast path and the worklist,
    /// so both consult and fill the caches in the same order and count
    /// every apply invocation exactly once (callers that resolve a
    /// combination *structurally* — the ⊤-prime shortcut — skip the head
    /// and therefore the count). `None` means the operation genuinely
    /// needs a frame ([`Engine::push_apply_frame`]).
    #[inline]
    fn apply_head(m: &mut SddManager, op: Op, a: SddId, b: SddId) -> Option<SddId> {
        m.stats.apply_calls += 1;
        // Terminal and identity shortcuts.
        match op {
            Op::And => {
                if a == FALSE || b == FALSE {
                    return Some(FALSE);
                }
                if a == TRUE {
                    return Some(b);
                }
                if b == TRUE || a == b {
                    return Some(a);
                }
            }
            Op::Or => {
                if a == TRUE || b == TRUE {
                    return Some(TRUE);
                }
                if a == FALSE {
                    return Some(b);
                }
                if b == FALSE || a == b {
                    return Some(a);
                }
            }
        }
        let key = apply_key(op, a, b);
        if let Some(r) = m.apply_cache.get(key) {
            m.stats.cache_hits += 1;
            return Some(SddId(r));
        }
        // Complement shortcut (a plain array read — avoid computing fresh
        // negations here, which could traverse deeply for no benefit).
        if m.neg_cache[a.index()] == b.0 {
            let r = match op {
                Op::And => FALSE,
                Op::Or => TRUE,
            };
            m.apply_cache.insert(key, r.0);
            return Some(r);
        }
        // Two literals of the same variable with different polarity
        // (equal nodes were handled above).
        if let (SddNode::Literal { var: va, .. }, SddNode::Literal { var: vb, .. }) =
            (m.node(a), m.node(b))
        {
            if va == vb {
                let r = match op {
                    Op::And => FALSE,
                    Op::Or => TRUE,
                };
                m.apply_cache.insert(key, r.0);
                return Some(r);
            }
        }
        None
    }

    /// The slow tail of an apply whose head missed: normalize the operands
    /// at their (memoized) lca and push the frame that computes the cross
    /// product. Must be preceded by [`Engine::apply_head`] on the same
    /// operands with no manager operations in between.
    fn push_apply_frame(&mut self, m: &mut SddManager, op: Op, a: SddId, b: SddId) {
        let key = apply_key(op, a, b);
        let va = m.respects(a).expect("non-terminal");
        let vb = m.respects(b).expect("non-terminal");
        if va == vb {
            let ea = Self::norm_elems(m, a, None, None);
            let eb = Self::norm_elems(m, b, None, None);
            let frame = Frame::cross(m, op, key, va, ea, eb);
            self.frames.push(frame);
            return;
        }
        let (l, a_at, b_at) = m.lca_sides(va, vb);
        if a_at == Some(Side::Left) || b_at == Some(Side::Left) {
            // A left-side operand normalizes to {(x, ⊤), (¬x, ⊥)}: the
            // negation(s) must be computed first (operand a before b, as
            // the recursion did).
            self.frames.push(Frame::Prep {
                op,
                key,
                l,
                a,
                a_at,
                b,
                b_at,
                na: None,
                nb: None,
                wait: PrepWait::Fresh,
            });
            return;
        }
        let ea = Self::norm_elems(m, a, a_at, None);
        let eb = Self::norm_elems(m, b, b_at, None);
        let frame = Frame::cross(m, op, key, l, ea, eb);
        self.frames.push(frame);
    }

    /// Begin an apply: the head answers what it can immediately; a miss
    /// pushes the frame that will finish it.
    fn start_apply(&mut self, m: &mut SddManager, op: Op, a: SddId, b: SddId) -> Option<SddId> {
        let r = Self::apply_head(m, op, a, b);
        if r.is_none() {
            self.push_apply_frame(m, op, a, b);
        }
        r
    }

    /// Normalize node `x` into an element list for the lca: its own arena
    /// range at the lca itself, `{(⊤, x)}` on the right, and
    /// `{(x, ⊤), (¬x, ⊥)}` on the left (negation supplied by the caller).
    /// No element data is copied in any case.
    fn norm_elems(m: &SddManager, x: SddId, side: Option<Side>, nx: Option<SddId>) -> Elems {
        match side {
            None => match m.node(x) {
                SddNode::Decision { elems, .. } => Elems::Arena(elems.start, elems.end),
                _ => unreachable!("lca-respecting operand is a decision"),
            },
            Some(Side::Right) => Elems::Inline {
                buf: [(TRUE, x), (FALSE, FALSE)],
                len: 1,
            },
            Some(Side::Left) => Elems::Inline {
                buf: [(x, TRUE), (nx.expect("negation prepared"), FALSE)],
                len: 2,
            },
        }
    }

    /// A pooled output buffer sized for the cross product of `ea × eb`.
    fn cross_buf(m: &mut SddManager, ea: &Elems, eb: &Elems) -> Vec<(SddId, SddId)> {
        let mut out = m.take_buf();
        out.reserve(ea.len() * eb.len());
        out
    }

    /// The memo-consulting head of a negation: terminals, literal flips
    /// and cached negations answer immediately; `None` means the decision
    /// needs a frame.
    #[inline]
    fn negate_head(m: &mut SddManager, a: SddId) -> Option<SddId> {
        match m.node(a) {
            SddNode::False => return Some(TRUE),
            SddNode::True => return Some(FALSE),
            SddNode::Literal { var, positive } => {
                let (v, p) = (*var, *positive);
                return Some(m.literal(v, !p));
            }
            SddNode::Decision { .. } => {}
        }
        let cached = m.neg_cache[a.index()];
        if cached != EMPTY_SLOT {
            return Some(SddId(cached));
        }
        None
    }

    /// Begin a negation: the head answers what it can immediately; a
    /// decision miss pushes the frame that will finish it.
    fn start_negate(&mut self, m: &mut SddManager, a: SddId) -> Option<SddId> {
        if let Some(r) = Self::negate_head(m, a) {
            return Some(r);
        }
        let SddNode::Decision { vnode, elems } = m.node(a) else {
            unreachable!()
        };
        let (vnode, elems) = (*vnode, elems.clone());
        let out = m.take_buf();
        self.frames.push(Frame::Neg {
            a,
            vnode,
            elems,
            i: 0,
            out,
            building: false,
        });
        None
    }

    /// The memo-consulting head of a conditioning step: terminals,
    /// untouched/pinned literals and memoized decisions answer
    /// immediately; `None` means the decision needs a frame.
    #[inline]
    fn condition_head(m: &SddManager, ctx: &CondCtx, a: SddId) -> Option<SddId> {
        match m.node(a) {
            SddNode::False | SddNode::True => return Some(a),
            SddNode::Literal { var, positive } => {
                if *var == ctx.var {
                    return Some(if *positive == ctx.value { TRUE } else { FALSE });
                }
                return Some(a);
            }
            SddNode::Decision { .. } => {}
        }
        ctx.memo.get(&a).copied()
    }

    /// Begin a conditioning step: the head answers what it can
    /// immediately; an unmemoized decision pushes the frame that will
    /// finish it.
    fn start_condition(&mut self, m: &mut SddManager, a: SddId) -> Option<SddId> {
        let ctx = self.cond.as_ref().expect("condition context");
        if let Some(r) = Self::condition_head(m, ctx, a) {
            return Some(r);
        }
        let SddNode::Decision { vnode, elems } = m.node(a) else {
            unreachable!()
        };
        let (vnode, elems) = (*vnode, elems.clone());
        let out = m.take_buf();
        self.frames.push(Frame::Cond {
            a,
            vnode,
            elems,
            i: 0,
            wait: CondWait::Idle,
            out,
        });
        None
    }

    /// Begin a canonical decision construction: drop ⊥ primes, group by
    /// sub. Without compression work the node is finished on the spot;
    /// otherwise a frame or-reduces each group's primes through the engine.
    /// The element buffer is adopted into the manager's pool either way.
    fn start_build(
        &mut self,
        m: &mut SddManager,
        vnode: VtreeNodeId,
        mut elems: Vec<(SddId, SddId)>,
    ) -> Option<SddId> {
        elems.retain(|&(p, _)| p != FALSE);
        if elems.is_empty() {
            m.recycle_buf(elems);
            return Some(FALSE);
        }
        elems.sort_unstable_by_key(|&(_, s)| s);
        // The common case — all subs already distinct — finishes on the
        // spot, without materializing per-group prime lists.
        if elems.windows(2).all(|w| w[0].1 != w[1].1) {
            let r = m.finish_decision(vnode, &mut elems);
            m.recycle_buf(elems);
            return Some(r);
        }
        let mut groups: Vec<(Vec<SddId>, SddId)> = Vec::new();
        for &(p, s) in &elems {
            match groups.last_mut() {
                Some((ps, sub)) if *sub == s => ps.push(p),
                _ => groups.push((vec![p], s)),
            }
        }
        let compressed = m.take_buf();
        m.recycle_buf(elems);
        self.frames.push(Frame::Build {
            vnode,
            groups,
            gi: 0,
            pi: 0,
            acc: FALSE,
            compressed,
        });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfunc::families;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn balanced_mgr(n: u32) -> SddManager {
        SddManager::new(Vtree::balanced(&vars(n)).unwrap())
    }

    #[test]
    fn literal_ops() {
        let mut m = balanced_mgr(2);
        let x = m.literal(v(0), true);
        let nx = m.literal(v(0), false);
        assert_eq!(m.and(x, nx), FALSE);
        assert_eq!(m.or(x, nx), TRUE);
        assert_eq!(m.negate(x), nx);
        assert_eq!(m.and(x, x), x);
    }

    #[test]
    fn and_across_root() {
        let mut m = balanced_mgr(4);
        let x0 = m.literal(v(0), true);
        let x2 = m.literal(v(2), true);
        let g = m.and(x0, x2);
        assert_eq!(m.count_models(g), 4); // 2 free vars
        let f = m.to_boolfn(g);
        let expect = BoolFn::literal(v(0), true).and(&BoolFn::literal(v(2), true));
        assert!(f.equivalent(&expect));
    }

    #[test]
    fn canonicity_same_function_same_node() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let c = circuit::families::random_circuit(5, 12, &mut rng);
            let f = c.to_boolfn().unwrap();
            let mut m = balanced_mgr(5);
            let r1 = m.from_circuit(&c);
            let r2 = m.from_boolfn(&f);
            assert_eq!(r1, r2, "trial {trial}: canonicity violated");
            assert!(m.to_boolfn(r1).equivalent(&f), "trial {trial}: semantics");
        }
    }

    #[test]
    fn canonicity_across_vtrees_semantics_only() {
        // Different vtrees give different nodes but the same function.
        let f = families::parity(&vars(5));
        for vt in [
            Vtree::right_linear(&vars(5)).unwrap(),
            Vtree::left_linear(&vars(5)).unwrap(),
            Vtree::balanced(&vars(5)).unwrap(),
        ] {
            let mut m = SddManager::new(vt);
            let r = m.from_boolfn(&f);
            assert!(m.to_boolfn(r).equivalent(&f));
            assert_eq!(m.count_models(r), 16);
        }
    }

    #[test]
    fn negation_involution_and_semantics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let mut m = balanced_mgr(6);
        let r = m.from_boolfn(&f);
        let nr = m.negate(r);
        assert_eq!(m.negate(nr), r);
        assert!(m.to_boolfn(nr).equivalent(&f.not()));
        assert_eq!(
            m.count_models(r) + m.count_models(nr),
            1 << 6,
            "models partition"
        );
    }

    #[test]
    fn condition_matches_kernel_restrict() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let f = BoolFn::random(VarSet::from_slice(&vars(5)), &mut rng);
        let mut m = balanced_mgr(5);
        let r = m.from_boolfn(&f);
        for var in vars(5) {
            for val in [false, true] {
                let c = m.condition(r, var, val);
                let expect = f.restrict(var, val);
                assert!(
                    m.to_boolfn(c).equivalent(&expect),
                    "condition on {var}={val}"
                );
            }
        }
    }

    #[test]
    fn counting_with_gaps() {
        // x3 alone in a 6-var manager: 2^5 models.
        let mut m = balanced_mgr(6);
        let x3 = m.literal(v(3), true);
        assert_eq!(m.count_models(x3), 32);
        assert_eq!(m.count_models(TRUE), 64);
        assert_eq!(m.count_models(FALSE), 0);
    }

    #[test]
    fn weighted_count_matches_kernel() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let f = BoolFn::random(VarSet::from_slice(&vars(7)), &mut rng);
        let vt = Vtree::balanced(&vars(7)).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let probs = [0.05, 0.25, 0.5, 0.75, 0.95, 0.33, 0.66];
        let a = m.probability(r, |u| probs[u.index()]);
        let b = f.probability(|u| probs[u.index()]);
        assert!((a - b).abs() < 1e-12, "sdd {a} vs kernel {b}");
    }

    #[test]
    fn disjointness_width_small_on_interleaved_vtree() {
        // D_n with the pairs (x_i, y_i) grouped: SDD width stays small.
        let n = 4;
        let (f, xs, ys) = families::disjointness(n);
        let mut interleaved = Vec::new();
        for i in 0..n {
            interleaved.push(xs[i]);
            interleaved.push(ys[i]);
        }
        let vt = Vtree::right_linear(&interleaved).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        assert!(m.width(r) <= 6, "width {}", m.width(r));
        assert_eq!(m.count_models(r), 3u128.pow(n as u32));
    }

    #[test]
    fn size_and_width_zero_for_terminals_and_literals() {
        let mut m = balanced_mgr(3);
        assert_eq!(m.size(TRUE), 0);
        let x = m.literal(v(1), false);
        assert_eq!(m.size(x), 0);
        assert_eq!(m.width(x), 0);
    }

    #[test]
    fn apply_on_obdd_vtree_matches_obdd_counts() {
        // Right-linear vtree: SDDs degenerate to OBDD-like structures; model
        // counts must agree with the OBDD package.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let vt = Vtree::right_linear(&vars(6)).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let mut ob = obdd::Obdd::new(vars(6));
        let or = ob.from_boolfn(&f);
        assert_eq!(m.count_models(r), ob.count_models(or));
    }

    #[test]
    fn elements_are_stored_exactly_once_and_borrowed() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let f = BoolFn::random(VarSet::from_slice(&vars(6)), &mut rng);
        let mut m = balanced_mgr(6);
        let r = m.from_boolfn(&f);
        // Every decision's range resolves inside the arena, ranges are
        // disjoint per node, and the total arena length is the sum of all
        // interned decisions' element counts (each stored exactly once).
        let mut total = 0usize;
        for id in 0..m.num_allocated() {
            if let SddNode::Decision { elems, .. } = m.node(SddId(id as u32)) {
                assert!(elems.end as usize <= m.num_elements());
                assert!(elems.start < elems.end, "no empty decisions");
                total += elems.len();
                let slice = m.elements_of(SddId(id as u32));
                assert!(slice.windows(2).all(|w| w[0].0 < w[1].0), "sorted by prime");
            }
        }
        assert_eq!(total, m.num_elements(), "arena holds each element once");
        assert!(m.memory_bytes() > 0);
        let _ = r;
    }

    #[test]
    fn unique_table_probe_and_insert_counters_move() {
        let mut m = balanced_mgr(4);
        let before = m.apply_stats();
        assert_eq!(before.unique_inserts, 0);
        let x0 = m.literal(v(0), true);
        let x2 = m.literal(v(2), true);
        let g = m.and(x0, x2);
        let mid = m.apply_stats();
        assert!(mid.unique_inserts > 0, "a decision was interned");
        assert!(mid.unique_probes >= mid.unique_inserts);
        // The same apply again: pure cache hit, no interning.
        let g2 = m.and(x0, x2);
        assert_eq!(g, g2);
        let after = m.apply_stats();
        assert_eq!(after.unique_inserts, mid.unique_inserts);
        assert_eq!(after.cache_hits, mid.cache_hits + 1);
    }

    #[test]
    fn interning_survives_unique_table_growth() {
        // Enough distinct decisions to force several growth rounds, then
        // every one of them must still be found (canonicity: re-building an
        // equal decision returns the same id).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 10u32;
        let mut m = balanced_mgr(n);
        let mut roots = Vec::new();
        for _ in 0..40 {
            let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
            roots.push((f.clone(), m.from_boolfn(&f)));
        }
        for (f, r) in roots {
            assert_eq!(m.from_boolfn(&f), r, "canonicity across table growth");
        }
    }
}
