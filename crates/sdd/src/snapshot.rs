//! Snapshot persistence for the frozen slab: [`FrozenSdd::write_to`] /
//! [`FrozenSdd::read_from`].
//!
//! The slab is already the serialization-friendly form — plain contiguous
//! arrays indexed by global ids — so a snapshot is little more than those
//! arrays framed by the `snap` container format:
//!
//! | tag | section | payload |
//! |-----|---------|---------|
//! | 1   | vtree   | `count, root`, then `(kind, a, b)` per node (leaf: `a` = var; internal: `a, b` = children) |
//! | 2   | nodes   | `(tag, x, y, z)` per node — `0`⊥ `1`⊤ `2`literal(`var, positive`) `3`decision(`vnode, start, end`) |
//! | 3   | arena   | raw `(prime, sub)` id pairs |
//! | 4   | neg     | raw node-indexed negation ids (`EMPTY_SLOT` = unknown) |
//!
//! Loading is **allocation-lean**: each section is read once into its
//! final contiguous buffer, bulk-converted with word-level sweeps, and
//! then validated in a single linear pass that doubles as the literal-
//! cache rebuild. Derived lookup structures are *not* serialized: the
//! literal cache and the unique table are rebuilt from the node table
//! (correct by construction — a corrupted table cannot smuggle broken
//! canonicity in), and the manager [`uid`](FrozenSdd::uid) is drawn fresh
//! because uids are process-unique, never durable.
//!
//! Validation accepts exactly the arrays a real freeze produces: ids and
//! ranges in bounds, terminals only at ids 0/1, decision elements
//! strictly below their decision (interning order is topological) with
//! primes strictly ascending (canonical element order), the negation
//! array an involution. Everything else is a typed [`SnapError`] — never
//! a panic, never an out-of-bounds index.

use crate::{decision_hash, next_uid, FrozenSdd, SddId, SddNode, UniqueTable, EMPTY_SLOT};
use snap::{bytes_to_u32s, put_u32, Dec, Reader, SnapError, Writer, KIND_SDD};
use std::io::{BufRead, Write};
use std::sync::Arc;
use vtree::fxhash::FxHashMap;
use vtree::{VarId, Vtree, VtreeError, VtreeNodeId, VtreeNodeKind};

/// Section tag: the vtree arena.
pub const TAG_VTREE: u32 = 1;
/// Section tag: the SDD node table.
pub const TAG_NODES: u32 = 2;
/// Section tag: the element arena.
pub const TAG_ARENA: u32 = 3;
/// Section tag: the negation array.
pub const TAG_NEG: u32 = 4;

/// Sections a frozen slab contributes to a container (the KB container
/// embeds these plus its own).
pub const SDD_SECTIONS: u32 = 4;

/// Node-record tags inside [`TAG_NODES`].
const NODE_FALSE: u32 = 0;
const NODE_TRUE: u32 = 1;
const NODE_LITERAL: u32 = 2;
const NODE_DECISION: u32 = 3;

fn vtree_error(e: VtreeError) -> SnapError {
    SnapError::Invalid {
        what: match e {
            VtreeError::Empty => "vtree: empty arena",
            VtreeError::DuplicateVar(_) => "vtree: duplicate variable",
            VtreeError::Malformed(what) => what,
        },
    }
}

impl FrozenSdd {
    /// Write this slab as a standalone `KIND_SDD` container.
    pub fn write_to<W: Write>(&self, out: W) -> Result<(), SnapError> {
        let mut w = Writer::new(out, KIND_SDD, SDD_SECTIONS)?;
        self.write_sections(&mut w)?;
        w.finish()?;
        Ok(())
    }

    /// Read a slab back from a standalone `KIND_SDD` container.
    pub fn read_from<R: BufRead>(mut input: R) -> Result<FrozenSdd, SnapError> {
        let mut r = Reader::new(&mut input, KIND_SDD)?;
        Self::read_sections(&mut r)
    }

    /// Append the slab's sections to an open container (the KB snapshot
    /// embeds a slab this way; [`FrozenSdd::write_to`] is the standalone
    /// wrapper).
    pub fn write_sections<W: Write>(&self, w: &mut Writer<W>) -> Result<(), SnapError> {
        // Vtree: count, root, then (kind, a, b) per node.
        let vt = &self.vtree;
        let mut buf = Vec::with_capacity(8 + vt.num_nodes() * 12);
        put_u32(&mut buf, vt.num_nodes() as u32);
        put_u32(&mut buf, vt.root().0);
        for id in vt.node_ids() {
            match *vt.kind(id) {
                VtreeNodeKind::Leaf(v) => {
                    put_u32(&mut buf, 0);
                    put_u32(&mut buf, v.0);
                    put_u32(&mut buf, 0);
                }
                VtreeNodeKind::Internal { left, right } => {
                    put_u32(&mut buf, 1);
                    put_u32(&mut buf, left.0);
                    put_u32(&mut buf, right.0);
                }
            }
        }
        w.section(TAG_VTREE, &buf)?;

        // Node table: 16-byte records.
        let mut buf = Vec::with_capacity(self.nodes.len() * 16);
        for n in self.nodes.iter() {
            match n {
                SddNode::False => {
                    put_u32(&mut buf, NODE_FALSE);
                    put_u32(&mut buf, 0);
                    put_u32(&mut buf, 0);
                    put_u32(&mut buf, 0);
                }
                SddNode::True => {
                    put_u32(&mut buf, NODE_TRUE);
                    put_u32(&mut buf, 0);
                    put_u32(&mut buf, 0);
                    put_u32(&mut buf, 0);
                }
                SddNode::Literal { var, positive } => {
                    put_u32(&mut buf, NODE_LITERAL);
                    put_u32(&mut buf, var.0);
                    put_u32(&mut buf, *positive as u32);
                    put_u32(&mut buf, 0);
                }
                SddNode::Decision { vnode, elems } => {
                    put_u32(&mut buf, NODE_DECISION);
                    put_u32(&mut buf, vnode.0);
                    put_u32(&mut buf, elems.start);
                    put_u32(&mut buf, elems.end);
                }
            }
        }
        w.section(TAG_NODES, &buf)?;

        // Element arena: raw id pairs.
        let mut buf = Vec::with_capacity(self.arena.len() * 8);
        for &(p, s) in self.arena.iter() {
            put_u32(&mut buf, p.0);
            put_u32(&mut buf, s.0);
        }
        w.section(TAG_ARENA, &buf)?;

        // Negation array: raw ids.
        let mut buf = Vec::with_capacity(self.neg.len() * 4);
        for &n in self.neg.iter() {
            put_u32(&mut buf, n);
        }
        w.section(TAG_NEG, &buf)?;
        Ok(())
    }

    /// Rebuild a slab from an already-framed container's sections,
    /// validating everything (see the module doc for the accepted
    /// invariants).
    pub fn read_sections(r: &mut Reader) -> Result<FrozenSdd, SnapError> {
        // Vtree first — node validation needs it.
        let bytes = r.take(TAG_VTREE)?;
        let mut d = Dec::new(&bytes, "vtree section");
        let count = d.u32()? as usize;
        let root = VtreeNodeId(d.u32()?);
        let words = bytes_to_u32s(d.rest(), "vtree section ragged")?;
        if words.len() != count * 3 {
            return Err(SnapError::Invalid {
                what: "vtree section length disagrees with its count",
            });
        }
        let mut kinds = Vec::with_capacity(count);
        for rec in words.chunks_exact(3) {
            kinds.push(match rec[0] {
                0 => VtreeNodeKind::Leaf(VarId(rec[1])),
                1 => VtreeNodeKind::Internal {
                    left: VtreeNodeId(rec[1]),
                    right: VtreeNodeId(rec[2]),
                },
                _ => {
                    return Err(SnapError::Invalid {
                        what: "vtree: unknown node kind",
                    })
                }
            });
        }
        let vtree = Vtree::from_node_kinds(kinds, root).map_err(vtree_error)?;

        // Element arena next — decision validation needs its bounds.
        let arena: Vec<(SddId, SddId)> =
            snap::bytes_to_u32_pairs(&r.take(TAG_ARENA)?, "arena section ragged")?
                .into_iter()
                .map(|(p, s)| (SddId(p), SddId(s)))
                .collect();

        // Node table: one linear validation pass that also rebuilds the
        // literal cache.
        let node_words = bytes_to_u32s(&r.take(TAG_NODES)?, "node section ragged")?;
        if node_words.len() % 4 != 0 {
            return Err(SnapError::Invalid {
                what: "node section length is not a record multiple",
            });
        }
        let num_nodes = node_words.len() / 4;
        if num_nodes < 2 {
            return Err(SnapError::Invalid {
                what: "node table lacks the terminal nodes",
            });
        }
        if num_nodes > (1 << 31) {
            return Err(SnapError::Invalid {
                what: "node table exceeds the 31-bit id cap",
            });
        }
        let mut nodes: Vec<SddNode> = Vec::with_capacity(num_nodes);
        let mut lit_cache: FxHashMap<(VarId, bool), SddId> = FxHashMap::default();
        let mut decisions = 0usize;
        for (id, rec) in node_words.chunks_exact(4).enumerate() {
            let node = match (rec[0], rec[1], rec[2], rec[3]) {
                (NODE_FALSE, 0, 0, 0) if id == 0 => SddNode::False,
                (NODE_TRUE, 0, 0, 0) if id == 1 => SddNode::True,
                (NODE_LITERAL, var, positive @ (0 | 1), 0) if id >= 2 => {
                    let var = VarId(var);
                    if vtree.leaf_of_var(var).is_none() {
                        return Err(SnapError::Invalid {
                            what: "literal variable not in the vtree",
                        });
                    }
                    let positive = positive == 1;
                    if lit_cache
                        .insert((var, positive), SddId(id as u32))
                        .is_some()
                    {
                        return Err(SnapError::Invalid {
                            what: "duplicate literal node",
                        });
                    }
                    SddNode::Literal { var, positive }
                }
                (NODE_DECISION, vnode, start, end) if id >= 2 => {
                    let vnode = VtreeNodeId(vnode);
                    if vnode.index() >= vtree.num_nodes() || vtree.is_leaf(vnode) {
                        return Err(SnapError::Invalid {
                            what: "decision vnode is not an internal vtree node",
                        });
                    }
                    if start >= end || end as usize > arena.len() {
                        return Err(SnapError::Invalid {
                            what: "decision element range out of bounds",
                        });
                    }
                    let mut prev_prime = None;
                    for &(p, s) in &arena[start as usize..end as usize] {
                        if p.index() >= id || s.index() >= id {
                            return Err(SnapError::Invalid {
                                what: "decision element not below its decision",
                            });
                        }
                        if prev_prime.is_some_and(|pp| p <= pp) {
                            return Err(SnapError::Invalid {
                                what: "decision elements not sorted by prime",
                            });
                        }
                        prev_prime = Some(p);
                    }
                    decisions += 1;
                    SddNode::Decision {
                        vnode,
                        elems: start..end,
                    }
                }
                _ => {
                    return Err(SnapError::Invalid {
                        what: "malformed node record",
                    })
                }
            };
            nodes.push(node);
        }

        // Negation array: node-indexed, in bounds, an involution.
        let neg = bytes_to_u32s(&r.take(TAG_NEG)?, "negation section ragged")?;
        if neg.len() != num_nodes {
            return Err(SnapError::Invalid {
                what: "negation array length disagrees with the node table",
            });
        }
        for (id, &n) in neg.iter().enumerate() {
            if n == EMPTY_SLOT {
                continue;
            }
            if n as usize >= num_nodes {
                return Err(SnapError::Invalid {
                    what: "negation id out of bounds",
                });
            }
            if neg[n as usize] != id as u32 {
                return Err(SnapError::Invalid {
                    what: "negation array is not an involution",
                });
            }
        }

        // Rebuild the unique table from the validated decisions — correct
        // by construction, so a snapshot cannot smuggle in a table that
        // breaks canonicity for future branches.
        let capacity = (decisions * 2).next_power_of_two().max(16);
        let mut slots = vec![(0u64, EMPTY_SLOT); capacity].into_boxed_slice();
        let mask = capacity - 1;
        for (id, n) in nodes.iter().enumerate() {
            let SddNode::Decision { vnode, elems } = n else {
                continue;
            };
            let hash = decision_hash(*vnode, &arena[elems.start as usize..elems.end as usize]);
            let mut i = (hash as usize) & mask;
            while slots[i].1 != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = (hash, id as u32);
        }

        Ok(FrozenSdd {
            vtree: Arc::new(vtree),
            nodes: nodes.into_boxed_slice(),
            arena: arena.into_boxed_slice(),
            neg: neg.into_boxed_slice(),
            unique: UniqueTable {
                slots,
                len: decisions,
            },
            lit_cache,
            // Uids are process-unique, never durable: a loaded slab is a
            // new id space as far as external caches are concerned.
            uid: next_uid(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SddManager;
    use boolfunc::{BoolFn, VarSet};

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn compiled(n: u32, seed: u64) -> (FrozenSdd, SddId, BoolFn) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
        let mut m = SddManager::new(Vtree::balanced(&vars(n)).unwrap());
        let r = m.from_boolfn(&f);
        (m.freeze(), r, f)
    }

    fn roundtrip(slab: &FrozenSdd) -> FrozenSdd {
        let mut bytes = Vec::new();
        slab.write_to(&mut bytes).unwrap();
        FrozenSdd::read_from(bytes.as_slice()).unwrap()
    }

    #[test]
    fn slab_roundtrips_bit_identically() {
        for seed in 30..35 {
            let (slab, root, f) = compiled(7, seed);
            let back = roundtrip(&slab);
            assert_eq!(back.nodes, slab.nodes);
            assert_eq!(back.arena, slab.arena);
            assert_eq!(back.neg, slab.neg);
            assert_eq!(back.vtree.to_string(), slab.vtree.to_string());
            assert_ne!(back.uid(), slab.uid(), "uids are never durable");
            let vs = VarSet::from_slice(&vars(7));
            for idx in 0..(1u64 << 7) {
                let asg = boolfunc::Assignment::from_index(&vs, idx);
                assert_eq!(back.eval(root, &asg), f.eval(&asg));
            }
        }
    }

    #[test]
    fn loaded_slab_branches_canonically() {
        let (slab, root, f) = compiled(6, 40);
        let back = Arc::new(roundtrip(&slab));
        // Rebuilding the same function on a branch must find the loaded
        // base nodes (the rebuilt unique table and literal cache work).
        let mut br = back.branch();
        let r2 = br.from_boolfn(&f);
        assert_eq!(r2, root, "canonicity across the snapshot");
        assert_eq!(br.num_allocated(), back.num_allocated());
        // And fresh structural work on top stays correct.
        let c = br.condition(root, VarId(0), true);
        assert!(br.to_boolfn(c).equivalent(&f.restrict(VarId(0), true)));
    }

    #[test]
    fn empty_manager_roundtrips() {
        let slab = SddManager::new(Vtree::balanced(&vars(3)).unwrap()).freeze();
        let back = roundtrip(&slab);
        assert_eq!(back.num_allocated(), 2);
        assert!(matches!(back.node(crate::FALSE), SddNode::False));
        assert!(matches!(back.node(crate::TRUE), SddNode::True));
    }

    /// Rewrite one section of a valid container through a fresh writer,
    /// with checksums recomputed — the white-box corruption harness.
    fn rewrite_section(bytes: &[u8], tag: u32, tweak: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let mut r = Reader::new(&mut &bytes[..], KIND_SDD).unwrap();
        let mut sections: Vec<(u32, Vec<u8>)> = [TAG_VTREE, TAG_NODES, TAG_ARENA, TAG_NEG]
            .into_iter()
            .map(|t| (t, r.take(t).unwrap()))
            .collect();
        let payload = &mut sections.iter_mut().find(|(t, _)| *t == tag).unwrap().1;
        tweak(payload);
        let mut w = Writer::new(Vec::new(), KIND_SDD, SDD_SECTIONS).unwrap();
        for (t, p) in &sections {
            w.section(*t, p).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn adversarial_payloads_fail_with_typed_errors() {
        let (slab, _, _) = compiled(6, 50);
        let mut bytes = Vec::new();
        slab.write_to(&mut bytes).unwrap();

        // Find a decision record to corrupt (tag word == 3).
        let nodes_payload = {
            let mut r = Reader::new(&mut bytes.as_slice(), KIND_SDD).unwrap();
            r.take(TAG_NODES).unwrap()
        };
        let words = bytes_to_u32s(&nodes_payload, "x").unwrap();
        let dec_rec = (0..words.len() / 4)
            .find(|i| words[i * 4] == NODE_DECISION)
            .expect("a compiled SDD has decisions");

        // Oversized element range.
        let bad = rewrite_section(&bytes, TAG_NODES, |p| {
            p[dec_rec * 16 + 12..dec_rec * 16 + 16].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        assert!(matches!(
            FrozenSdd::read_from(bad.as_slice()),
            Err(SnapError::Invalid { what }) if what.contains("range")
        ));

        // Element above its decision (forward reference).
        let bad = rewrite_section(&bytes, TAG_ARENA, |p| {
            p[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        assert!(FrozenSdd::read_from(bad.as_slice()).is_err());

        // Terminal in the middle of the table.
        let bad = rewrite_section(&bytes, TAG_NODES, |p| {
            p[dec_rec * 16..dec_rec * 16 + 16].copy_from_slice(&[0u8; 16]);
        });
        assert!(matches!(
            FrozenSdd::read_from(bad.as_slice()),
            Err(SnapError::Invalid { .. })
        ));

        // Negation involution broken.
        let bad = rewrite_section(&bytes, TAG_NEG, |p| {
            p[8..12].copy_from_slice(&0u32.to_le_bytes());
        });
        assert!(FrozenSdd::read_from(bad.as_slice()).is_err());

        // Vtree root out of bounds.
        let bad = rewrite_section(&bytes, TAG_VTREE, |p| {
            p[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        assert!(matches!(
            FrozenSdd::read_from(bad.as_slice()),
            Err(SnapError::Invalid { .. })
        ));

        // A missing section is typed, not a panic.
        let mut w = Writer::new(Vec::new(), KIND_SDD, 1).unwrap();
        w.section(TAG_VTREE, &[0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        let short = w.finish().unwrap();
        assert!(FrozenSdd::read_from(short.as_slice()).is_err());
    }
}
