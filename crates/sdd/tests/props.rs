//! Property tests pinning the element-arena kernel to the semantics of
//! the node-owned-storage kernel it replaced: interning must be
//! observationally identical — structurally equal decisions get the same
//! `SddId` (canonicity), model counts match brute force, `sdd_size`
//! is stable across recompilation, and the structural invariants validate.

use boolfunc::{BoolFn, VarSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdd::{SddManager, SddNode};
use vtree::{VarId, Vtree};

fn vars(n: u32) -> Vec<VarId> {
    (0..n).map(VarId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Canonicity under the open-addressed unique table: compiling the
    /// same function again — and re-interning every reachable decision
    /// through the public constructor — returns the *same* node ids.
    #[test]
    fn interning_is_canonical(n in 2u32..=10, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
        let vt = Vtree::random(&vars(n), &mut rng).unwrap();
        let mut m = SddManager::new(vt);
        let r1 = m.from_boolfn(&f);
        let r2 = m.from_boolfn(&f);
        prop_assert_eq!(r1, r2, "same function, same node");
        // Structurally equal decisions intern to the same id: rebuild each
        // reachable decision from its own element list.
        for d in m.reachable_decisions(r1) {
            let SddNode::Decision { vnode, .. } = m.node(d) else { unreachable!() };
            let vnode = *vnode;
            let elems = m.elements_of(d).to_vec();
            let again = m.decision(vnode, elems);
            prop_assert_eq!(again, d, "re-interned decision must dedupe");
        }
    }

    /// Model counts and structure agree with the truth-table kernel, and
    /// `sdd_size` is reproducible in a fresh manager (the arena layout
    /// cannot change what is reachable).
    #[test]
    fn counts_and_size_match_brute_force(n in 1u32..=9, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
        let vt = Vtree::random(&vars(n), &mut rng).unwrap();
        let mut m = SddManager::new(vt.clone());
        let r = m.from_boolfn(&f);
        prop_assert_eq!(m.count_models(r), f.count_models() as u128);
        m.validate(r).unwrap();

        let mut m2 = SddManager::new(vt);
        let r2 = m2.from_boolfn(&f);
        prop_assert_eq!(m.size(r), m2.size(r2), "size is a function of (f, vtree)");
        prop_assert_eq!(m.width(r), m2.width(r2));
    }

    /// The apply route at the issue's full 16-variable bound: random
    /// circuits compile through `from_circuit` and count exactly what the
    /// brute-force kernel counts (structural validation stays on — the
    /// semantic partition checks are what need the small-n test above).
    #[test]
    fn circuit_route_counts_match_brute_force_at_16_vars(n in 10u32..=16, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = circuit::families::random_circuit(n as usize, 3 * n as usize, &mut rng);
        let f = c.to_boolfn().unwrap();
        let vt = Vtree::random(&vars(n), &mut rng).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_circuit(&c);
        // Count over the full vtree scope (the circuit may not mention
        // every variable; the SDD smooths over all of them).
        let scope = VarSet::from_slice(&vars(n));
        prop_assert_eq!(m.count_models(r), f.count_models_over(&scope) as u128);
        m.validate_structure(r).unwrap();
    }

    /// Negation and conditioning stay observationally identical: they
    /// agree with the kernel's `not`/`restrict`, and the double negation
    /// returns the original id (the neg cache round-trips through the
    /// arena-backed builds).
    #[test]
    fn negate_and_condition_agree_with_kernel(n in 2u32..=8, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
        let vt = Vtree::random(&vars(n), &mut rng).unwrap();
        let mut m = SddManager::new(vt);
        let r = m.from_boolfn(&f);
        let nr = m.negate(r);
        prop_assert_eq!(m.negate(nr), r, "double negation is the identity");
        prop_assert!(m.to_boolfn(nr).equivalent(&f.not()));
        let v = VarId(seed as u32 % n);
        for value in [false, true] {
            let c = m.condition(r, v, value);
            prop_assert!(m.to_boolfn(c).equivalent(&f.restrict(v, value)));
        }
    }

    /// The arena stores every interned decision's elements exactly once,
    /// and `elements_of` exposes them sorted by prime — the kernel-storage
    /// invariants the module documents.
    #[test]
    fn arena_holds_each_element_exactly_once(n in 2u32..=10, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = BoolFn::random(VarSet::from_slice(&vars(n)), &mut rng);
        let vt = Vtree::random(&vars(n), &mut rng).unwrap();
        let mut m = SddManager::new(vt);
        let _ = m.from_boolfn(&f);
        let mut total = 0usize;
        for id in 0..m.num_allocated() as u32 {
            let id = sdd::SddId(id);
            if let SddNode::Decision { elems, .. } = m.node(id) {
                prop_assert!(elems.start < elems.end);
                prop_assert!(elems.end as usize <= m.num_elements());
                total += elems.len();
                let slice = m.elements_of(id);
                prop_assert!(slice.windows(2).all(|w| w[0].0 < w[1].0));
            }
        }
        prop_assert_eq!(total, m.num_elements());
    }
}
