//! Property-based tests exploiting SDD canonicity: algebraic laws hold as
//! *node identities*, not just semantic equivalences.

use boolfunc::{BoolFn, VarSet};
use proptest::prelude::*;
use sdd::{SddManager, FALSE, TRUE};
use vtree::{VarId, Vtree};

const N: usize = 5;

fn table() -> impl Strategy<Value = BoolFn> {
    prop::collection::vec(any::<bool>(), 1 << N).prop_map(|bs| {
        let vars = VarSet::from_iter((0..N as u32).map(VarId));
        BoolFn::from_fn(vars, |i| bs[i as usize])
    })
}

fn manager(seed: u64) -> SddManager {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vars: Vec<VarId> = (0..N as u32).map(VarId).collect();
    SddManager::new(Vtree::random(&vars, &mut rng).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn apply_laws_as_node_identities(f in table(), g in table(), seed in 0u64..500) {
        let mut m = manager(seed);
        let a = m.from_boolfn(&f);
        let b = m.from_boolfn(&g);
        // Commutativity.
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        prop_assert_eq!(ab, ba);
        let oab = m.or(a, b);
        let oba = m.or(b, a);
        prop_assert_eq!(oab, oba);
        // Idempotence and identities.
        let aa = m.and(a, a);
        prop_assert_eq!(aa, a);
        let at = m.and(a, TRUE);
        prop_assert_eq!(at, a);
        let of = m.or(a, FALSE);
        prop_assert_eq!(of, a);
        // Complement laws.
        let na = m.negate(a);
        let contradiction = m.and(a, na);
        prop_assert_eq!(contradiction, FALSE);
        let excluded_middle = m.or(a, na);
        prop_assert_eq!(excluded_middle, TRUE);
        // De Morgan as node identity.
        let lhs0 = m.and(a, b);
        let lhs = m.negate(lhs0);
        let na2 = m.negate(a);
        let nb = m.negate(b);
        let rhs = m.or(na2, nb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn associativity(f in table(), g in table(), h in table(), seed in 0u64..500) {
        let mut m = manager(seed);
        let a = m.from_boolfn(&f);
        let b = m.from_boolfn(&g);
        let c = m.from_boolfn(&h);
        let ab = m.and(a, b);
        let ab_c = m.and(ab, c);
        let bc = m.and(b, c);
        let a_bc = m.and(a, bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn compilation_respects_ops(f in table(), g in table(), seed in 0u64..500) {
        // Compiling f∧g directly equals applying ∧ to compiled halves.
        let mut m = manager(seed);
        let a = m.from_boolfn(&f);
        let b = m.from_boolfn(&g);
        let applied = m.and(a, b);
        let direct = m.from_boolfn(&f.and(&g));
        prop_assert_eq!(applied, direct);
    }

    #[test]
    fn condition_then_count(f in table(), v in 0u32..N as u32, seed in 0u64..500) {
        let mut m = manager(seed);
        let a = m.from_boolfn(&f);
        let hi = m.condition(a, VarId(v), true);
        let lo = m.condition(a, VarId(v), false);
        // Total models split across the two branches.
        let total = m.count_models(hi) + m.count_models(lo);
        prop_assert_eq!(total, 2 * f.count_models() as u128);
    }

    #[test]
    fn sizes_are_consistent(f in table(), seed in 0u64..500) {
        let mut m = manager(seed);
        let a = m.from_boolfn(&f);
        let size = m.size(a);
        let width = m.width(a);
        prop_assert!(width <= size.max(1));
        // Negation preserves per-decision element counts, but NOT reachable
        // sharing (primes stay un-negated while subs flip, so the negated
        // DAG can share more or fewer nodes). Sound invariants: negation is
        // an involution by node identity, with complementary counts, and its
        // size stays within the structural envelope.
        let na = m.negate(a);
        let nna = m.negate(na);
        prop_assert_eq!(nna, a);
        prop_assert_eq!(
            m.count_models(a) + m.count_models(na),
            1u128 << N
        );
        prop_assert!(m.size(na) <= 2 * size.max(1));
    }
}
