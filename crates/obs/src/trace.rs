//! Per-query tracing: a thread-local active trace accumulates named
//! stage timings ([`span`]) and integer notes ([`trace_note`]) between
//! [`trace_begin`] and [`trace_end`], producing a [`TraceRecord`] with a
//! process-wide monotone id. [`SlowLog`] retains the N worst records.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Process-wide trace id allocator; ids are assigned at `trace_end` so a
/// record's id also orders it by completion.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

struct ActiveTrace {
    label: &'static str,
    start: Instant,
    stages: Vec<(&'static str, Duration)>,
    notes: Vec<(&'static str, u64)>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// One completed trace: a labelled query with its total latency, stage
/// breakdown (in completion order; stages may repeat), and integer notes.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Monotone process-wide id (1-based).
    pub id: u64,
    /// What kind of work this was (e.g. the query kind).
    pub label: &'static str,
    /// Wall-clock time from `trace_begin` to `trace_end`.
    pub total: Duration,
    /// `(stage, elapsed)` pairs pushed by [`Span`] guards as they drop.
    pub stages: Vec<(&'static str, Duration)>,
    /// `(key, value)` pairs pushed by [`trace_note`].
    pub notes: Vec<(&'static str, u64)>,
}

impl TraceRecord {
    /// Single-line JSON: durations in microseconds, stages and notes as
    /// arrays of pairs (stage names may repeat, so no object keys).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"id\":{},\"label\":\"{}\",\"total_us\":{:.1},\"stages\":[",
            self.id,
            self.label,
            self.total.as_secs_f64() * 1e6,
        );
        for (i, (stage, d)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{stage}\",{:.1}]", d.as_secs_f64() * 1e6);
        }
        out.push_str("],\"notes\":[");
        for (i, (key, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{key}\",{v}]");
        }
        out.push_str("]}");
        out
    }
}

/// Start a trace on this thread. A trace already in progress is replaced
/// (traces do not nest — queries in this system don't either).
pub fn trace_begin(label: &'static str) {
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(ActiveTrace {
            label,
            start: Instant::now(),
            stages: Vec::with_capacity(4),
            notes: Vec::with_capacity(4),
        });
    });
}

/// Whether a trace is active on this thread.
pub fn trace_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Attach an integer note (a counter delta, a flag) to the active trace.
/// No-op when no trace is active.
pub fn trace_note(key: &'static str, value: u64) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.notes.push((key, value));
        }
    });
}

/// A scoped stage timer: created by [`span`], pushes `(stage, elapsed)`
/// onto the active trace when dropped. When no trace is active at
/// construction the guard is inert and costs only the TLS check.
pub struct Span {
    stage: &'static str,
    start: Option<Instant>,
}

/// Open a stage span. Bind it (`let _sp = obs::span("sweep");`) so it
/// drops at the end of the stage.
#[inline]
pub fn span(stage: &'static str) -> Span {
    Span {
        stage,
        start: if trace_active() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            ACTIVE.with(|a| {
                if let Some(t) = a.borrow_mut().as_mut() {
                    t.stages.push((self.stage, elapsed));
                }
            });
        }
    }
}

/// Finish the active trace, assigning its id. Returns `None` when no
/// trace was active (instrumentation disabled).
pub fn trace_end() -> Option<TraceRecord> {
    ACTIVE.with(|a| a.borrow_mut().take()).map(|t| TraceRecord {
        id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
        label: t.label,
        total: t.start.elapsed(),
        stages: t.stages,
        notes: t.notes,
    })
}

/// A fixed-capacity log of the worst (slowest) traces seen. Admission is
/// pre-checked lock-free against the current floor, so fast queries pay
/// two relaxed loads and never touch the mutex.
pub struct SlowLog {
    cap: usize,
    len: AtomicUsize,
    /// Total latency (µs) of the *fastest* retained record once the log
    /// is full — the bar a new record must clear.
    floor_us: AtomicU64,
    worst: Mutex<Vec<TraceRecord>>,
}

impl SlowLog {
    /// A log retaining the `cap` worst traces (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            len: AtomicUsize::new(0),
            floor_us: AtomicU64::new(0),
            worst: Mutex::new(Vec::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Would a trace of this duration make the log? Lock-free; callers
    /// use it to skip building/offering records for fast queries.
    #[inline]
    pub fn would_admit(&self, total: Duration) -> bool {
        self.len.load(Ordering::Relaxed) < self.cap
            || total.as_micros() as u64 > self.floor_us.load(Ordering::Relaxed)
    }

    /// Offer a record; it is retained iff it ranks among the `cap` worst
    /// seen so far.
    pub fn offer(&self, rec: TraceRecord) {
        if !self.would_admit(rec.total) {
            return;
        }
        let mut worst = self.worst.lock().unwrap();
        if worst.len() == self.cap {
            // Evict the fastest retained record if the newcomer beats it.
            let (mi, _) = match worst.iter().enumerate().min_by_key(|(_, r)| r.total) {
                Some(m) => m,
                None => return,
            };
            if worst[mi].total >= rec.total {
                return;
            }
            worst[mi] = rec;
        } else {
            worst.push(rec);
        }
        self.len.store(worst.len(), Ordering::Relaxed);
        if worst.len() == self.cap {
            let floor = worst.iter().map(|r| r.total).min().unwrap_or_default();
            self.floor_us
                .store(floor.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// The retained traces, slowest first.
    pub fn worst(&self) -> Vec<TraceRecord> {
        let mut v = self.worst.lock().unwrap().clone();
        v.sort_by(|a, b| b.total.cmp(&a.total).then(a.id.cmp(&b.id)));
        v
    }

    /// Look up a retained trace by id.
    pub fn get(&self, id: u64) -> Option<TraceRecord> {
        self.worst
            .lock()
            .unwrap()
            .iter()
            .find(|r| r.id == id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_notes_assemble_a_record() {
        trace_begin("marginal");
        {
            let _sp = span("sweep");
            std::hint::black_box(0u64);
        }
        trace_note("memo_hit", 1);
        let rec = trace_end().expect("trace was active");
        assert_eq!(rec.label, "marginal");
        assert_eq!(rec.stages.len(), 1);
        assert_eq!(rec.stages[0].0, "sweep");
        assert_eq!(rec.notes, vec![("memo_hit", 1)]);
        assert!(rec.total >= rec.stages[0].1);
        let json = rec.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"label\":\"marginal\""));
        assert!(json.contains("[\"memo_hit\",1]"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn trace_ids_are_monotone() {
        trace_begin("a");
        let a = trace_end().unwrap();
        trace_begin("b");
        let b = trace_end().unwrap();
        assert!(b.id > a.id);
    }

    #[test]
    fn inactive_trace_api_is_inert() {
        assert!(trace_end().is_none());
        assert!(!trace_active());
        trace_note("ignored", 7);
        let _sp = span("ignored");
        assert!(trace_end().is_none());
    }

    #[test]
    fn slow_log_retains_the_worst() {
        let log = SlowLog::new(2);
        let rec = |id, us| TraceRecord {
            id,
            label: "q",
            total: Duration::from_micros(us),
            stages: Vec::new(),
            notes: Vec::new(),
        };
        log.offer(rec(1, 10));
        log.offer(rec(2, 50));
        log.offer(rec(3, 5)); // too fast: dropped
        log.offer(rec(4, 100)); // evicts the 10us record
        let worst = log.worst();
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].id, 4);
        assert_eq!(worst[1].id, 2);
        assert!(log.get(2).is_some());
        assert!(log.get(1).is_none());
        assert!(log.would_admit(Duration::from_micros(60)));
        assert!(!log.would_admit(Duration::from_micros(40)));
    }
}
