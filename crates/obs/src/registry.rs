//! The metrics registry: named, labelled counters, gauges, and
//! power-of-two latency histograms with lock-free recording.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of histogram buckets. Bucket `0` holds values `<= 1`; bucket
/// `k` (for `0 < k < HISTOGRAM_BUCKETS - 1`) holds `(2^(k-1), 2^k]`; the
/// last bucket is the overflow (`+Inf`) bucket. With values recorded in
/// microseconds the finite range tops out at `2^38 us` (~3 days), far
/// beyond any query this system answers.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Bucket index for a recorded value: `0` for `v <= 1`, else
/// `ceil(log2 v)`, clamped into the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket). Quantile estimates report this bound.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A metric identity: family name plus a canonically-sorted label set.
/// Ordering is lexicographic, which makes snapshot renders deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",…}` with Prometheus label-value escaping; just `name`
    /// when there are no labels.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
        out
    }

    /// Like [`render`](Self::render) but with an extra `le` label
    /// appended (histogram bucket lines).
    fn render_with_le(&self, le: &str) -> String {
        let mut out = format!("{}_bucket{{", self.name);
        for (k, v) in &self.labels {
            let _ = write!(out, "{k}=\"{}\",", escape_label(v));
        }
        let _ = write!(out, "le=\"{le}\"}}");
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A monotonically-increasing counter handle. Clones share the cell;
/// recording is a single relaxed atomic add.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle storing an `f64` (as bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A power-of-two-bucketed histogram handle. Values are dimensionless
/// `u64`s; by convention latency families record microseconds and carry a
/// `_us` name suffix.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        let cell = &self.0;
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (saturating).
    #[inline]
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

/// A `Send + Sync` registry of metrics. Handle lookup takes a read lock
/// (write lock on first registration); callers on hot paths should
/// resolve handles once and cache them — recording through a handle is
/// lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<MetricKey, Cell>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Resolve (registering on first use) the counter `name{labels}`.
    ///
    /// Panics if the same key was previously registered as a different
    /// metric type — that is a programming error, not an operational one.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        if let Some(Cell::Counter(c)) = self.lookup(&key) {
            return Counter(c);
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0))))
        {
            Cell::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Resolve (registering on first use) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        if let Some(Cell::Gauge(g)) = self.lookup(&key) {
            return Gauge(g);
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        {
            Cell::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Resolve (registering on first use) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        if let Some(Cell::Histogram(h)) = self.lookup(&key) {
            return Histogram(h);
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Cell::Histogram(Arc::new(HistogramCell::new())))
        {
            Cell::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    fn lookup(&self, key: &MetricKey) -> Option<Cell> {
        let map = self.metrics.read().unwrap();
        map.get(key).map(|cell| match cell {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        })
    }

    /// A point-in-time copy of every metric. Concurrent recorders may be
    /// mid-update; each individual load is atomic, so totals are exact
    /// once writers quiesce.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (key, cell) in map.iter() {
            match cell {
                Cell::Counter(c) => {
                    snap.counters.insert(key.clone(), c.load(Ordering::Relaxed));
                }
                Cell::Gauge(g) => {
                    snap.gauges
                        .insert(key.clone(), f64::from_bits(g.load(Ordering::Relaxed)));
                }
                Cell::Histogram(h) => {
                    snap.histograms.insert(
                        key.clone(),
                        HistogramSnapshot {
                            buckets: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            sum: h.sum.load(Ordering::Relaxed),
                            count: h.count.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
        snap
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket occupancy (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0 <= q <= 1`); `0` when empty. Monotone in `q` by construction:
    /// the rank threshold grows with `q`, so the answer bucket index (and
    /// with it the bound) never decreases.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

/// A mergeable, renderable copy of a registry's state. Shard registries
/// snapshot independently; the pool merges the snapshots into one view.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<MetricKey, u64>,
    pub gauges: BTreeMap<MetricKey, f64>,
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`. Counters and histograms add (the merged
    /// view saw the union of events); gauges take the max — summing a
    /// level like `sdd_mem_bytes` across replicas that share one slab
    /// would overcount, whereas the max is the honest per-holder level.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (key, v) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += v;
        }
        for (key, v) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(*v);
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(h);
        }
    }

    /// Insert (or overwrite) a counter value directly — used to graft
    /// derived families (e.g. per-shard serve stats) into a snapshot.
    pub fn set_counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.counters.insert(MetricKey::new(name, labels), v);
    }

    /// Insert (or overwrite) a gauge value directly.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Look up a counter by name and labels (test/assertion helper).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&MetricKey::new(name, labels)).copied()
    }

    /// Look up a histogram by name and labels.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// Render Prometheus text exposition format. Families are emitted in
    /// name order with one `# TYPE` line each; histogram buckets are
    /// cumulative with power-of-two `le` bounds, trimmed after the last
    /// occupied bucket (the omitted tail is implied by `+Inf`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, v) in &self.counters {
            if last_family != key.name {
                let _ = writeln!(out, "# TYPE {} counter", key.name);
                last_family.clone_from(&key.name);
            }
            let _ = writeln!(out, "{} {v}", key.render());
        }
        last_family.clear();
        for (key, v) in &self.gauges {
            if last_family != key.name {
                let _ = writeln!(out, "# TYPE {} gauge", key.name);
                last_family.clone_from(&key.name);
            }
            let _ = writeln!(out, "{} {v}", key.render());
        }
        last_family.clear();
        for (key, h) in &self.histograms {
            if last_family != key.name {
                let _ = writeln!(out, "# TYPE {} histogram", key.name);
                last_family.clone_from(&key.name);
            }
            let top = h
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .map(|i| i.min(HISTOGRAM_BUCKETS - 2))
                .unwrap_or(0);
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate().take(top + 1) {
                cum += b;
                let _ = writeln!(
                    out,
                    "{} {cum}",
                    key.render_with_le(&bucket_upper_bound(i).to_string())
                );
            }
            let _ = writeln!(out, "{} {}", key.render_with_le("+Inf"), h.count);
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                render_labels(&key.labels),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                render_labels(&key.labels),
                h.count
            );
        }
        out
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn registry_records_and_snapshots() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total", &[("kind", "marginal")]);
        c.add(3);
        reg.counter("requests_total", &[("kind", "marginal")]).inc();
        reg.gauge("mem_bytes", &[]).set(42.5);
        let h = reg.histogram("latency_us", &[]);
        h.record(1);
        h.record(100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("requests_total", &[("kind", "marginal")]),
            Some(4)
        );
        assert_eq!(snap.gauges.values().next().copied(), Some(42.5));
        let hist = snap.histogram_value("latency_us", &[]).unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 101);
    }

    #[test]
    fn prometheus_render_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("kb_queries_total", &[("kind", "marginal")])
            .add(7);
        reg.gauge("sdd_mem_bytes", &[]).set(1024.0);
        reg.histogram("kb_query_us", &[("kind", "marginal")])
            .record(5);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE kb_queries_total counter"));
        assert!(text.contains("kb_queries_total{kind=\"marginal\"} 7"));
        assert!(text.contains("# TYPE sdd_mem_bytes gauge"));
        assert!(text.contains("sdd_mem_bytes 1024"));
        assert!(text.contains("# TYPE kb_query_us histogram"));
        assert!(text.contains("kb_query_us_bucket{kind=\"marginal\",le=\"8\"} 1"));
        assert!(text.contains("kb_query_us_bucket{kind=\"marginal\",le=\"+Inf\"} 1"));
        assert!(text.contains("kb_query_us_sum{kind=\"marginal\"} 5"));
        assert!(text.contains("kb_query_us_count{kind=\"marginal\"} 1"));
    }

    #[test]
    fn gauges_merge_by_max_counters_by_sum() {
        let a = MetricsRegistry::new();
        a.counter("served_total", &[]).add(10);
        a.gauge("mem_bytes", &[]).set(100.0);
        let b = MetricsRegistry::new();
        b.counter("served_total", &[]).add(5);
        b.gauge("mem_bytes", &[]).set(250.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter_value("served_total", &[]), Some(15));
        assert_eq!(m.gauges.values().next().copied(), Some(250.0));
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[]);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram_value("lat_us", &[]).unwrap();
        assert_eq!(hist.quantile(0.0), 1);
        assert_eq!(hist.quantile(1.0), 1024);
        assert!(hist.quantile(0.5) <= hist.quantile(0.9));
    }
}
