//! # obs — telemetry for the sentential workspace
//!
//! A dependency-free observability layer threaded through every tier
//! (kernel → compiler → kb → serve). Three pieces:
//!
//! - [`MetricsRegistry`]: a `Send + Sync` registry of named, labelled
//!   counters, gauges, and power-of-two-bucketed latency histograms.
//!   Registration takes a lock once; the returned [`Counter`] /
//!   [`Gauge`] / [`Histogram`] handles are `Arc`-backed atomics, so the
//!   hot path records lock-free. [`MetricsRegistry::snapshot`] produces a
//!   [`MetricsSnapshot`] that merges across registries (shards) and
//!   renders Prometheus text exposition format.
//! - A span/trace API ([`trace_begin`] / [`span`] / [`trace_note`] /
//!   [`trace_end`]): a thread-local active trace accumulates named stage
//!   timings and integer notes into a [`TraceRecord`] with a
//!   monotonically-assigned process-wide id. When no trace is active the
//!   whole API is a few-nanosecond no-op, so instrumented code does not
//!   pay for tracing it isn't using.
//! - [`SlowLog`]: a fixed-capacity ring retaining the N worst (slowest)
//!   traces, with a lock-free admission pre-check so the common fast
//!   query skips the mutex entirely.
//!
//! Everything here is plain `std`; the crate exists so lower tiers (`sdd`,
//! `core`, `kb`) can publish without dragging in serving concerns.

mod registry;
mod trace;

pub use registry::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricKey,
    MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{
    span, trace_active, trace_begin, trace_end, trace_note, SlowLog, Span, TraceRecord,
};

/// Version of the observability surface (metric families, trace JSON
/// shape, protocol verbs). Advertised in the `kb-server` hello banner as
/// `obs <version>` so clients can gate on scrape support.
pub const OBS_VERSION: u32 = 1;
