//! Property tests pinning the histogram's power-of-two bucket scheme.

use obs::{bucket_index, bucket_upper_bound, MetricsRegistry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// A value mixing small (dense-bucket) and huge (overflow) magnitudes out
/// of two generator dimensions: `base * 2^shift`.
fn value(base: u64, shift: u32) -> u64 {
    base.saturating_mul(1u64 << shift)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands in exactly the bucket whose half-open range
    /// contains it: bucket 0 is `[0, 1]`, bucket k is `(2^(k-1), 2^k]`,
    /// and the last bucket takes everything past the finite range.
    #[test]
    fn bucket_boundaries_contain_their_values(base in 0u64..=4096, shift in 0u32..48) {
        let v = value(base, shift);
        let idx = bucket_index(v);
        prop_assert!(idx < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(idx), "v={v} above bucket {idx}");
        if idx > 0 {
            prop_assert!(
                v > bucket_upper_bound(idx - 1) || idx == HISTOGRAM_BUCKETS - 1,
                "v={v} should be below bucket {idx}"
            );
        }
    }

    /// Recording a batch loses no sample and double-counts none: the
    /// bucket occupancies sum to the count and the sum is exact.
    #[test]
    fn no_sample_lost_or_double_counted(seed: u64, n in 1usize..200) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[]);
        let mut expect_sum = 0u64;
        let mut state = seed | 1;
        for _ in 0..n {
            // xorshift over a wide magnitude range, 0..2^44.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = state >> 20;
            h.record(v);
            expect_sum += v;
        }
        let snap = reg.snapshot();
        let hist = snap.histogram_value("lat_us", &[]).unwrap();
        prop_assert_eq!(hist.count, n as u64);
        prop_assert_eq!(hist.sum, expect_sum);
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), n as u64);
    }

    /// record → quantile is monotone in q, and every reported quantile is
    /// a genuine bucket upper bound at or above the true minimum sample.
    #[test]
    fn quantiles_are_monotone(seed: u64, n in 1usize..100) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[]);
        let mut min_v = u64::MAX;
        let mut state = seed | 1;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = state >> 32;
            h.record(v);
            min_v = min_v.min(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram_value("lat_us", &[]).unwrap();
        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let b = hist.quantile(q);
            prop_assert!(b >= prev, "quantile not monotone at q={q}");
            prop_assert!(b >= min_v || i == 0, "q={q} below the smallest sample");
            prev = b;
        }
        prop_assert_eq!(hist.quantile(0.0), bucket_upper_bound(bucket_index(min_v)));
    }
}
