//! Cross-thread and merge-algebra coverage for the metrics registry.

use obs::{MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;

/// 8 threads hammer one registry through independently-resolved handles;
/// once they join, every total must be exact — nothing lost to races.
#[test]
fn eight_threads_record_exact_totals() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = Arc::new(MetricsRegistry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let c = reg.counter("hits_total", &[("kind", "x")]);
                let h = reg.histogram("lat_us", &[]);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter_value("hits_total", &[("kind", "x")]),
        Some(THREADS * PER_THREAD)
    );
    let hist = snap.histogram_value("lat_us", &[]).unwrap();
    assert_eq!(hist.count, THREADS * PER_THREAD);
    // Sum of 0..80000 — every recorded value accounted for exactly.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum, n * (n - 1) / 2);
    // No sample lost or double-counted across buckets either.
    assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
}

fn sample_snapshot(seed: u64) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    reg.counter("c_total", &[]).add(seed);
    reg.counter("k_total", &[("kind", "m")]).add(seed * 3 + 1);
    reg.gauge("level", &[]).set(seed as f64 * 1.5);
    let h = reg.histogram("lat_us", &[("kind", "m")]);
    for i in 0..seed {
        h.record(i * 17 % 300);
    }
    reg.snapshot()
}

fn assert_snap_eq(a: &MetricsSnapshot, b: &MetricsSnapshot) {
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.histograms, b.histograms);
    assert_eq!(a.gauges.len(), b.gauges.len());
    for (k, v) in &a.gauges {
        assert_eq!(b.gauges.get(k), Some(v), "gauge {k:?}");
    }
}

/// merge is associative (and the render is a pure function of the merged
/// state): (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
#[test]
fn snapshot_merge_is_associative() {
    let (a, b, c) = (sample_snapshot(5), sample_snapshot(9), sample_snapshot(23));
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_snap_eq(&left, &right);
    assert_eq!(left.render_prometheus(), right.render_prometheus());
}

/// Merging an empty snapshot is the identity for counters/histograms.
#[test]
fn snapshot_merge_empty_is_identity() {
    let a = sample_snapshot(7);
    let mut merged = a.clone();
    merged.merge(&MetricsSnapshot::default());
    assert_snap_eq(&a, &merged);
}
