//! Truth-table Boolean function kernel.
//!
//! Everything semantic in this workspace is defined against [`BoolFn`]: a
//! bit-packed truth table over an explicit, globally named variable support.
//! The kernel implements the notions of Bova & Szeider (PODS 2017) §2–3
//! *directly from their definitions*:
//!
//! * cofactors (subfunctions) of `F(Y ∩ X, X ∖ Y)` induced by assignments of
//!   `Y ∩ X` — [`BoolFn::restrict_assignment`];
//! * **factors** of `F` relative to `Y` (Definition 1) and **factor width**
//!   relative to a vtree (Definition 2) — [`factor`];
//! * combinatorial rectangles and (disjoint) rectangle covers (§2.2) —
//!   [`rectangle`];
//! * communication matrices and their rank (Theorem 2, Eq. 8) — [`comm`];
//! * the function families the paper's separations are proved on
//!   (disjointness `D_n`, the inversion functions `H^i_{k,n}`, `ISA_n`, …) —
//!   [`families`];
//! * prime implicants / IP forms, the DNF-side of Result 3's separation —
//!   [`implicant`].
//!
//! Scalable representations (OBDDs, SDDs, circuits) are verified against this
//! kernel on small supports; the kernel's hard cap is [`MAX_VARS`] variables.

pub mod assignment;
pub mod comm;
pub mod factor;
pub mod families;
pub mod func;
pub mod implicant;
pub mod rectangle;
pub mod varset;

pub use assignment::Assignment;
pub use comm::CommMatrix;
pub use factor::{factor_width, factors, min_factor_width, Factor};
pub use func::{BoolFn, BoolFnError, MAX_VARS};
pub use implicant::{ip_term_count, prime_implicants, Cube};
pub use rectangle::{Rectangle, RectangleCover};
pub use varset::VarSet;

// Re-export the shared variable id type for convenience.
pub use vtree::VarId;
